/**
 * @file
 * Reproduces Figure 8: the per-application breakdown of warm, cold, and
 * dropped invocations for vanilla OpenWhisk versus FaasCache under the
 * skewed-frequency FunctionBench workload (CNN/disk-bench/web-serving
 * at 1500 ms mean IAT, floating-point at 400 ms), plus the resulting
 * application-latency improvement. Cold starts burn extra platform CPU
 * during initialization (cold_start_cpu_slots = 2), the load feedback
 * the paper attributes OpenWhisk's drops to.
 */
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "platform/experiment.h"
#include "platform/load_generator.h"
#include "util/table.h"
#include "workloads.h"

using namespace faascache;

int
main(int argc, char** argv)
{
    const TimeUs duration = kHour;
    const Trace trace = skewedFrequencyWorkload(duration);

    ServerConfig server;
    server.cores = 8;
    server.memory_mb = 1000;
    server.cold_start_cpu_slots = 2;

    // FAASCACHE_PLATFORM_BACKEND=reference replays through the retained
    // pre-rebuild queue path (the differential oracle); both backends
    // print byte-identical tables.
    if (const char* env = std::getenv("FAASCACHE_PLATFORM_BACKEND")) {
        if (std::strcmp(env, "reference") == 0) {
            server.platform_backend = PlatformBackend::Reference;
        } else if (std::strcmp(env, "dense") != 0) {
            std::cerr << "fig8_server_load: unknown "
                         "FAASCACHE_PLATFORM_BACKEND '"
                      << env << "' (want dense|reference)\n";
            return 1;
        }
    }

    std::cout << "Figure 8: warm/cold/dropped breakdown, OpenWhisk vs "
                 "FaasCache\n(skewed-frequency FunctionBench workload, "
              << server.cores << " cores, " << server.memory_mb
              << " MB pool, " << toSeconds(duration) / 60 << " min)\n\n";

    // The OW and FC runs execute concurrently under the crash-safety
    // harness (--jobs N, --deadline-s X, --retries N; the output is
    // byte-identical for any worker count). The whole table compares
    // the two runs, so either failing is fatal here.
    PolicyConfig openwhisk_config;
    openwhisk_config.ttl_victim_order = TtlVictimOrder::OldestCreated;
    const std::vector<PlatformCell> cells = {
        {&trace, PolicyKind::Ttl, server, openwhisk_config, {}},
        {&trace, PolicyKind::GreedyDual, server, PolicyConfig{}, {}},
    };
    const PlatformSweepReport report = bench::runBenchPlatformSweep(
        cells, bench::parseBenchArgs(argc, argv));
    if (!report.allOk())
        return 1;
    PlatformComparison cmp;
    cmp.openwhisk = report.cells[0].result;
    cmp.faascache = report.cells[1].result;

    TablePrinter table({"Function", "OW warm", "OW cold", "OW drop",
                        "OW hit%", "FC warm", "FC cold", "FC drop",
                        "FC hit%", "OW lat (s)", "FC lat (s)"});
    for (const auto& fn : trace.functions()) {
        const FunctionOutcome& ow = cmp.openwhisk.per_function[fn.id];
        const FunctionOutcome& fc = cmp.faascache.per_function[fn.id];
        auto hit = [](const FunctionOutcome& o) {
            return o.served() > 0
                ? 100.0 * static_cast<double>(o.warm) /
                    static_cast<double>(o.served())
                : 0.0;
        };
        table.addRow({fn.name, std::to_string(ow.warm),
                      std::to_string(ow.cold), std::to_string(ow.dropped),
                      formatDouble(hit(ow), 1), std::to_string(fc.warm),
                      std::to_string(fc.cold), std::to_string(fc.dropped),
                      formatDouble(hit(fc), 1),
                      formatDouble(cmp.openwhisk.meanLatencySecOf(fn.id), 2),
                      formatDouble(cmp.faascache.meanLatencySecOf(fn.id),
                                   2)});
    }
    table.print(std::cout);

    std::cout << "\nTotals: OW warm=" << cmp.openwhisk.warm_starts
              << " cold=" << cmp.openwhisk.cold_starts
              << " dropped=" << cmp.openwhisk.dropped() << " ("
              << formatDouble(cmp.openwhisk.dropPercent(), 1)
              << "%), mean latency "
              << formatDouble(cmp.openwhisk.meanLatencySec(), 2) << " s\n"
              << "        FC warm=" << cmp.faascache.warm_starts
              << " cold=" << cmp.faascache.cold_starts
              << " dropped=" << cmp.faascache.dropped() << " ("
              << formatDouble(cmp.faascache.dropPercent(), 1)
              << "%), mean latency "
              << formatDouble(cmp.faascache.meanLatencySec(), 2) << " s\n"
              << "Warm-start ratio FC/OW: "
              << formatDouble(cmp.warmStartRatio(), 2)
              << ", served ratio: " << formatDouble(cmp.servedRatio(), 2)
              << ", latency improvement: "
              << formatDouble(cmp.latencyImprovement(), 2) << "x\n";
    return 0;
}

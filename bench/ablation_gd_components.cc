/**
 * @file
 * Ablation of the Greedy-Dual priority terms (paper §4.1/§4.2): the
 * full Priority = Clock + Freq x Cost / Size formula versus variants
 * with individual terms removed, on the representative trace. Shows
 * what each characteristic contributes — dropping everything leaves
 * pure recency (LRU-like aging).
 */
#include <iostream>

#include "core/greedy_dual.h"
#include "sim/simulator.h"
#include "util/table.h"
#include "workloads.h"

using namespace faascache;

namespace {

struct Variant
{
    const char* label;
    bool use_frequency;
    bool use_cost;
    bool use_size;
};

}  // namespace

int
main()
{
    const Trace pop = bench::population();
    const Trace rep = bench::representativeTrace(pop);

    const Variant variants[] = {
        {"full GDSF", true, true, true},
        {"no frequency (GD-Size)", false, true, true},
        {"no cost", true, false, true},
        {"no size", true, true, false},
        {"clock only (LRU-like)", false, false, false},
    };

    std::cout << "Greedy-Dual priority-term ablation — % increase in "
                 "execution time on the\nrepresentative trace (lower is "
                 "better)\n\n";

    std::vector<std::string> headers = {"Variant"};
    const std::vector<double> sizes_gb = {10.0, 15.0, 20.0, 30.0};
    for (double gb : sizes_gb)
        headers.push_back(formatDouble(gb, 0) + " GB");
    TablePrinter table(std::move(headers));

    for (const Variant& variant : variants) {
        std::vector<std::string> row = {variant.label};
        for (double gb : sizes_gb) {
            GreedyDualConfig gd;
            gd.use_frequency = variant.use_frequency;
            gd.use_cost = variant.use_cost;
            gd.use_size = variant.use_size;
            SimulatorConfig config;
            config.memory_mb = gb * 1024.0;
            config.memory_sample_interval_us = 0;
            const SimResult r = simulateTrace(
                rep, std::make_unique<GreedyDualPolicy>(gd), config);
            row.push_back(formatDouble(r.execTimeIncreasePercent(), 2));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nThe full formula needs all three characteristics: "
                 "cost protects expensive\ninitializations, size stops "
                 "big containers from squatting, frequency keeps\nheavy "
                 "hitters resident.\n";
    return 0;
}

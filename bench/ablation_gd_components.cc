/**
 * @file
 * Ablation of the Greedy-Dual priority terms (paper §4.1/§4.2): the
 * full Priority = Clock + Freq x Cost / Size formula versus variants
 * with individual terms removed, on the representative trace. Shows
 * what each characteristic contributes — dropping everything leaves
 * pure recency (LRU-like aging).
 *
 * The (variant x memory) grid runs through the parallel SweepRunner
 * (`--jobs N`); output is byte-identical for any worker count.
 * Crash-safety flags: `--deadline-s X`, `--retries N`,
 * `--ckpt PATH [--resume]`; failed cells render as ERR.
 */
#include <iostream>

#include "core/greedy_dual.h"
#include "sim/sweep_runner.h"
#include "util/table.h"
#include "workloads.h"

using namespace faascache;

namespace {

struct Variant
{
    const char* label;
    bool use_frequency;
    bool use_cost;
    bool use_size;
};

}  // namespace

int
main(int argc, char** argv)
{
    const Trace pop = bench::population();
    const Trace rep = bench::representativeTrace(pop);

    const Variant variants[] = {
        {"full GDSF", true, true, true},
        {"no frequency (GD-Size)", false, true, true},
        {"no cost", true, false, true},
        {"no size", true, true, false},
        {"clock only (LRU-like)", false, false, false},
    };

    std::cout << "Greedy-Dual priority-term ablation — % increase in "
                 "execution time on the\nrepresentative trace (lower is "
                 "better)\n\n";

    std::vector<std::string> headers = {"Variant"};
    const std::vector<double> sizes_gb = {10.0, 15.0, 20.0, 30.0};
    for (double gb : sizes_gb)
        headers.push_back(formatDouble(gb, 0) + " GB");
    TablePrinter table(std::move(headers));

    std::vector<SweepCell> cells;
    for (const Variant& variant : variants) {
        for (double gb : sizes_gb) {
            GreedyDualConfig gd;
            gd.use_frequency = variant.use_frequency;
            gd.use_cost = variant.use_cost;
            gd.use_size = variant.use_size;

            SweepCell cell;
            cell.trace = &rep;
            cell.make_policy = [gd]() {
                return std::make_unique<GreedyDualPolicy>(gd);
            };
            cell.sim.memory_mb = gb * 1024.0;
            cell.sim.memory_sample_interval_us = 0;
            cells.push_back(std::move(cell));
        }
    }
    const SweepReport report =
        bench::runBenchSweep(cells, bench::parseBenchArgs(argc, argv));

    std::size_t next = 0;
    for (const Variant& variant : variants) {
        std::vector<std::string> row = {variant.label};
        for (double gb : sizes_gb) {
            (void)gb;
            row.push_back(bench::cellText(
                report.cells[next++],
                [](const SimResult& r) {
                    return r.execTimeIncreasePercent();
                },
                2));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nThe full formula needs all three characteristics: "
                 "cost protects expensive\ninitializations, size stops "
                 "big containers from squatting, frequency keeps\nheavy "
                 "hitters resident.\n";
    return report.allOk() ? 0 : 1;
}

/**
 * @file
 * Fault-tolerance experiment: TTL (vanilla OpenWhisk) versus Greedy-Dual
 * (FaasCache) keep-alive on a 4-server cluster, with and without an
 * injected fault schedule — two mid-trace server crashes with delayed
 * restarts, transient container-spawn failures, and cold-start
 * stragglers — under the health-aware front end (failover, bounded
 * retries with exponential backoff, admission control).
 *
 * The question the table answers: does FaasCache's keep-alive advantage
 * survive a fleet that loses and regains capacity, and what does the
 * outage cost each policy in drops, sheds, and crash-induced cold
 * starts?
 */
#include <iostream>
#include <string>
#include <vector>

#include "platform/cluster.h"
#include "trace/azure_model.h"
#include "util/table.h"
#include "workloads.h"

using namespace faascache;

namespace {

/**
 * An Azure-model population large enough that every server's share of
 * functions oversubscribes its pool — the regime where the keep-alive
 * policy decides who stays warm and the two policies diverge.
 */
Trace
workload(TimeUs duration)
{
    AzureModelConfig model;
    model.seed = 7;
    model.num_functions = 96;
    model.duration_us = duration;
    model.iat_median_sec = 30.0;
    model.max_rate_per_sec = 2.0;
    model.warm_median_ms = 300.0;
    model.warm_sigma = 1.0;
    model.mem_median_mb = 160.0;
    model.mem_sigma = 0.7;
    model.mem_min_mb = 64;
    model.mem_max_mb = 512;
    return generateAzureTrace(model);
}

ClusterConfig
baseConfig()
{
    ClusterConfig config;
    config.num_servers = 4;
    config.server.cores = 6;
    config.server.memory_mb = 2000;
    config.server.cold_start_cpu_slots = 2;
    config.balancing = LoadBalancing::FunctionHash;
    return config;
}

FaultPlan
outagePlan()
{
    FaultPlan plan;
    // Server 1 dies 15 min in and is back 5 min later; server 2 dies at
    // 35 min for 10 min. Between crashes the fleet also suffers flaky
    // container spawns and straggling cold starts.
    plan.crashes.push_back({1, 15 * kMinute, 5 * kMinute});
    plan.crashes.push_back({2, 35 * kMinute, 10 * kMinute});
    plan.spawn_failure_prob = 0.02;
    plan.straggler_prob = 0.05;
    plan.straggler_multiplier = 4.0;
    return plan;
}

}  // namespace

int
main(int argc, char** argv)
{
    const bench::BenchOptions options = bench::parseBenchArgs(argc, argv);
    const TimeUs duration = kHour;
    const Trace trace = workload(duration);

    std::cout << "Fault tolerance: OpenWhisk (TTL) vs FaasCache "
                 "(Greedy-Dual), 4-server cluster\n(Azure-model "
                 "workload, "
              << trace.functions().size() << " functions, "
              << toSeconds(duration) / 60
              << " min; faulted runs crash server 1 at 15 min for 5 min "
                 "and\nserver 2 at 35 min for 10 min, with 2% spawn "
                 "failures and 5% 4x cold-start stragglers)\n\n";

    std::vector<std::string> labels;
    std::vector<ClusterCell> cells;
    for (PolicyKind kind : {PolicyKind::Ttl, PolicyKind::GreedyDual}) {
        const std::string name =
            kind == PolicyKind::Ttl ? "TTL" : "GreedyDual";
        labels.push_back(name + " healthy");
        cells.push_back(
            {&trace, kind, baseConfig(), {}, name + "/healthy"});
        ClusterConfig faulted = baseConfig();
        faulted.faults = outagePlan();
        faulted.failover.shed_queue_depth = 256;
        labels.push_back(name + " faulted");
        cells.push_back({&trace, kind, faulted, {}, name + "/faulted"});
    }
    const ClusterSweepReport report =
        bench::runBenchClusterSweep(cells, options);

    TablePrinter table({"Run", "Warm%", "Cold", "Dropped", "Shed",
                        "Failed", "Retries", "Failovers", "CrashCold",
                        "Down(s)", "MeanLat(s)"});
    for (std::size_t i = 0; i < report.cells.size(); ++i) {
        const CellOutcome<ClusterResult>& cell = report.cells[i];
        if (!cell.ok()) {
            table.addRow({labels[i], "ERR", "ERR", "ERR", "ERR", "ERR",
                          "ERR", "ERR", "ERR", "ERR", "ERR"});
            continue;
        }
        const ClusterResult& r = cell.result;
        const RobustnessCounters rc = r.robustness();
        table.addRow({labels[i], formatDouble(r.warmPercent(), 1),
                      std::to_string(r.coldStarts()),
                      std::to_string(r.dropped()),
                      std::to_string(r.shed_requests),
                      std::to_string(r.failed_requests),
                      std::to_string(r.retries),
                      std::to_string(r.failovers),
                      std::to_string(rc.redispatch_cold_starts),
                      formatDouble(toSeconds(rc.downtime_us), 0),
                      formatDouble(r.meanLatencySec(), 2)});
    }
    table.print(std::cout);

    if (!report.cells[1].ok() || !report.cells[3].ok())
        return 1;
    const ClusterResult& ttl = report.cells[1].result;
    const ClusterResult& gd = report.cells[3].result;
    const auto lost = [](const ClusterResult& r) {
        return r.dropped() + r.shed_requests + r.failed_requests;
    };
    std::cout << "\nUnder the outage schedule FaasCache loses "
              << lost(gd) << " requests to TTL's " << lost(ttl)
              << " (drops + sheds + failures) and serves at "
              << formatDouble(gd.meanLatencySec(), 2) << " s mean vs "
              << formatDouble(ttl.meanLatencySec(), 2)
              << " s; warm ratios are " << formatDouble(gd.warmPercent(), 1)
              << "% vs " << formatDouble(ttl.warmPercent(), 1) << "%.\n"
              << "Fleet downtime is identical by construction ("
              << formatDouble(toSeconds(gd.unavailabilityUs()), 0)
              << " s); the policies differ in what the outage costs the "
                 "requests that survive it.\n";
    return report.allOk() ? 0 : 1;
}

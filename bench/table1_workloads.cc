/**
 * @file
 * Reproduces Table 1: the memory size, total running time, and
 * initialization time of the FunctionBench-derived applications, with
 * the init time additionally "measured" by running each application
 * once cold and once warm through the platform model (the same
 * procedure FaasCache's implementation uses to learn init overheads:
 * cold minus warm).
 */
#include <iostream>

#include "core/policy_factory.h"
#include "platform/function_bench.h"
#include "platform/server.h"
#include "util/table.h"

using namespace faascache;

namespace {

/** Measure cold and warm latency of one app on an idle server. */
std::pair<double, double>
measure(const FunctionSpec& spec)
{
    Trace trace("probe");
    FunctionSpec local = spec;
    local.id = 0;
    trace.addFunction(local);
    trace.addInvocation(0, 0);
    trace.addInvocation(0, 2 * fromSeconds(toSeconds(spec.cold_us)) +
                               kMinute);

    ServerConfig config;
    config.cores = 4;
    config.memory_mb = 4096;
    Server server(makePolicy(PolicyKind::GreedyDual), config);
    const PlatformResult result = server.run(trace);
    return {result.latencies_sec.at(0), result.latencies_sec.at(1)};
}

}  // namespace

int
main()
{
    std::cout << "Table 1: FaaS application diversity "
                 "(catalog values + measured cold/warm)\n\n";
    TablePrinter table({"Application", "Mem size (MB)", "Run time (s)",
                        "Init time (s)", "measured cold (s)",
                        "measured warm (s)", "measured init (s)"});
    for (const auto& spec : functionBenchCatalog()) {
        const auto [cold_sec, warm_sec] = measure(spec);
        table.addRow({spec.name, formatDouble(spec.mem_mb, 0),
                      formatDouble(toSeconds(spec.cold_us), 1),
                      formatDouble(toSeconds(spec.initTime()), 1),
                      formatDouble(cold_sec, 1), formatDouble(warm_sec, 1),
                      formatDouble(cold_sec - warm_sec, 1)});
    }
    table.print(std::cout);
    std::cout << "\nInitialization dominates the total running time for "
                 "most applications (up to ~83%),\nwhich is the "
                 "cold-start overhead keep-alive policies try to avoid.\n";
    return 0;
}

/**
 * @file
 * Reproduces Figure 9: the proportional controller dynamically resizes
 * the keep-alive cache so the cold-start speed tracks a target while a
 * diurnal workload swings, reducing the average provisioned size versus
 * a conservative static 10,000 MB allocation by >= 30%.
 *
 * A single long replay, driven as a one-cell elastic sweep so it shares
 * the crash-safe bench contract: SIGINT/SIGTERM cancel it cooperatively
 * (exit 128+sig), --ckpt/--resume journal and restore the completed
 * run, and --deadline-s/--retries bound it.
 */
#include <iostream>
#include <vector>

#include "core/policy_factory.h"
#include "provisioning/elastic_sweep.h"
#include "trace/azure_model.h"
#include "util/table.h"
#include "workloads.h"

using namespace faascache;

int
main(int argc, char** argv)
{
    const bench::BenchOptions options = bench::parseBenchArgs(argc, argv);
    AzureModelConfig workload;
    workload.seed = 17;
    workload.num_functions = 80;
    workload.duration_us = 6 * kHour;
    workload.iat_median_sec = 30.0;
    workload.max_rate_per_sec = 2.0;
    workload.warm_median_ms = 100.0;
    workload.warm_sigma = 0.8;
    workload.mem_median_mb = 128.0;
    workload.mem_sigma = 0.6;
    workload.mem_min_mb = 64;
    workload.mem_max_mb = 512;
    workload.diurnal = true;
    workload.diurnal_peak_to_mean = 2.0;
    workload.diurnal_period_us = 6 * kHour;
    workload.name = "diurnal";
    const Trace trace = generateAzureTrace(workload);

    ControllerConfig controller;
    controller.target_miss_speed = 1.0;  // cold starts per second
    controller.arrival_smoothing_alpha = 0.5;
    controller.min_size_mb = 1024;
    controller.max_size_mb = 32 * 1024;

    ElasticConfig elastic;
    elastic.initial_size_mb = 10'000;

    std::cout << "Figure 9: dynamic vertical scaling under a diurnal "
                 "workload\n(target miss speed "
              << controller.target_miss_speed
              << " cold starts/s, 10-minute control period, 30% error "
                 "deadband)\n\n";

    std::vector<ElasticCell> cells;
    cells.push_back({&trace, PolicyKind::GreedyDual, {}, controller,
                     elastic, "diurnal/GreedyDual/fig9"});
    const ElasticSweepReport report =
        bench::runBenchElasticSweep(cells, options);
    if (!report.cells[0].ok())
        return 1;
    const ElasticResult& r = report.cells[0].result;

    TablePrinter table({"t (min)", "arrivals/s", "smoothed/s",
                        "cold starts/s", "cache size (MB)", ""});
    for (const auto& s : r.timeline) {
        const auto bar = static_cast<std::size_t>(s.cache_size_mb / 400.0);
        table.addRow({formatDouble(toSeconds(s.time_us) / 60.0, 0),
                      formatDouble(s.arrival_rate, 1),
                      formatDouble(s.smoothed_arrival, 1),
                      formatDouble(s.miss_speed, 2),
                      formatDouble(s.cache_size_mb, 0),
                      std::string(bar, '#')});
    }
    table.print(std::cout);

    const double cold_speed = static_cast<double>(r.sim.cold_starts) /
        toSeconds(workload.duration_us);
    std::cout << "\nStatic conservative provisioning: "
              << formatDouble(elastic.initial_size_mb, 0)
              << " MB\nDynamic average size:            "
              << formatDouble(r.averageSizeMb(), 0) << " MB ("
              << formatDouble(100.0 * r.averageSizeMb() /
                                  elastic.initial_size_mb,
                              0)
              << "% of static, peak "
              << formatDouble(r.peakSizeMb(), 0)
              << " MB)\nOverall cold-start speed:        "
              << formatDouble(cold_speed, 3) << " /s vs target "
              << formatDouble(controller.target_miss_speed, 3)
              << " /s\nDropped requests:                " << r.sim.dropped
              << " of " << r.sim.total() << "\n";
    return 0;
}

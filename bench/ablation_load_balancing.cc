/**
 * @file
 * Cluster-level ablation (paper §9 discussion): how the front-end
 * load-balancing policy affects keep-alive effectiveness. A
 * function-affine ("stateful") balancer concentrates each function's
 * temporal locality on one invoker; randomized balancing spreads it
 * thin and hurts every keep-alive policy.
 */
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "platform/cluster.h"
#include "platform/load_generator.h"
#include "util/table.h"
#include "workloads.h"

using namespace faascache;

namespace {

const char*
balancingName(LoadBalancing lb)
{
    switch (lb) {
      case LoadBalancing::Random:
        return "random";
      case LoadBalancing::RoundRobin:
        return "round-robin";
      case LoadBalancing::FunctionHash:
        return "function-hash (affine)";
    }
    return "?";
}

}  // namespace

int
main(int argc, char** argv)
{
    const bench::BenchOptions options = bench::parseBenchArgs(argc, argv);
    const Trace trace = skewedFrequencyWorkload(30 * kMinute);

    ClusterConfig config;
    config.num_servers = 4;
    config.server.cores = 4;
    config.server.memory_mb = 512;

    std::cout << "Load-balancing ablation — " << config.num_servers
              << " invokers x (" << config.server.cores << " cores, "
              << config.server.memory_mb
              << " MB pool), skewed-frequency workload\n\n";

    // The grid varies the balancer, which the derived cell key cannot
    // see — name each cell explicitly.
    std::vector<ClusterCell> cells;
    std::vector<std::pair<LoadBalancing, PolicyKind>> axes;
    for (LoadBalancing lb : {LoadBalancing::Random,
                             LoadBalancing::RoundRobin,
                             LoadBalancing::FunctionHash}) {
        for (PolicyKind kind : {PolicyKind::Ttl, PolicyKind::GreedyDual}) {
            config.balancing = lb;
            cells.push_back({&trace, kind, config, {},
                             std::string(balancingName(lb)) + "/" +
                                 policyKindName(kind)});
            axes.emplace_back(lb, kind);
        }
    }
    const ClusterSweepReport report =
        bench::runBenchClusterSweep(cells, options);

    TablePrinter table({"Balancer", "Policy", "warm %", "cold", "dropped",
                        "mean latency (s)"});
    for (std::size_t i = 0; i < report.cells.size(); ++i) {
        const CellOutcome<ClusterResult>& cell = report.cells[i];
        const std::string balancer = balancingName(axes[i].first);
        const std::string policy = policyKindName(axes[i].second);
        if (!cell.ok()) {
            table.addRow({balancer, policy, "ERR", "ERR", "ERR", "ERR"});
            continue;
        }
        const ClusterResult& r = cell.result;
        table.addRow({balancer, policy,
                      formatDouble(r.warmPercent(), 1),
                      std::to_string(r.coldStarts()),
                      std::to_string(r.dropped()),
                      formatDouble(r.meanLatencySec(), 2)});
    }
    table.print(std::cout);
    std::cout << "\nStateful (function-affine) balancing improves "
                 "temporal locality per invoker and\nlifts the warm "
                 "ratio for every keep-alive policy — the paper's §9 "
                 "observation.\n";
    return report.allOk() ? 0 : 1;
}

/**
 * @file
 * Distance-to-optimal study: every online keep-alive policy versus the
 * clairvoyant farthest-next-use baseline (Belady's MIN adapted to
 * keep-alive) on the representative trace. Landlord's theoretical
 * guarantee (paper §4.2) is a competitive ratio against exactly this
 * kind of offline optimum; this bench measures the empirical gap.
 *
 * The (memory x policy) grid — oracle included — runs through the
 * parallel SweepRunner (`--jobs N`); output is byte-identical for any
 * worker count. Crash-safety flags: `--deadline-s X`, `--retries N`,
 * `--ckpt PATH [--resume]`; failed cells render as ERR.
 */
#include <iostream>

#include "core/oracle_policy.h"
#include "core/policy_factory.h"
#include "sim/sweep_runner.h"
#include "util/table.h"
#include "workloads.h"

using namespace faascache;

int
main(int argc, char** argv)
{
    const Trace pop = bench::population();
    const Trace rep = bench::representativeTrace(pop);

    std::cout << "Empirical gap to the clairvoyant baseline — % cold "
                 "starts on the representative\ntrace (ORACLE = "
                 "farthest-next-use with full future knowledge)\n\n";

    std::vector<std::string> headers = {"Memory (GB)", "ORACLE"};
    for (PolicyKind kind : allPolicyKinds())
        headers.push_back(policyKindName(kind));
    TablePrinter table(std::move(headers));

    const std::vector<double> sizes_gb = {5.0, 10.0, 15.0, 20.0};
    std::vector<SweepCell> cells;
    for (double gb : sizes_gb) {
        const MemMb memory = gb * 1024.0;

        SweepCell oracle;
        oracle.trace = &rep;
        oracle.make_policy = [&rep]() {
            return std::make_unique<OraclePolicy>(rep);
        };
        oracle.sim.memory_mb = memory;
        oracle.sim.memory_sample_interval_us = 0;
        cells.push_back(std::move(oracle));

        for (PolicyKind kind : allPolicyKinds()) {
            SweepCell cell = makeCell(rep, kind, memory);
            cell.sim.memory_sample_interval_us = 0;
            cells.push_back(std::move(cell));
        }
    }
    const SweepReport report =
        bench::runBenchSweep(cells, bench::parseBenchArgs(argc, argv));

    const auto cold_percent = [](const SimResult& r) {
        return r.coldStartPercent();
    };
    std::size_t next = 0;
    for (double gb : sizes_gb) {
        std::vector<std::string> row = {formatDouble(gb, 0)};
        row.push_back(
            bench::cellText(report.cells[next++], cold_percent, 2));
        for (PolicyKind kind : allPolicyKinds()) {
            (void)kind;
            row.push_back(
                bench::cellText(report.cells[next++], cold_percent, 2));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nGreedy-Dual closes most of the gap between the naive "
                 "baselines and the offline\noptimum without any future "
                 "knowledge.\n";
    return report.allOk() ? 0 : 1;
}

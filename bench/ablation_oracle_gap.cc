/**
 * @file
 * Distance-to-optimal study: every online keep-alive policy versus the
 * clairvoyant farthest-next-use baseline (Belady's MIN adapted to
 * keep-alive) on the representative trace. Landlord's theoretical
 * guarantee (paper §4.2) is a competitive ratio against exactly this
 * kind of offline optimum; this bench measures the empirical gap.
 */
#include <iostream>

#include "core/oracle_policy.h"
#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "util/table.h"
#include "workloads.h"

using namespace faascache;

int
main()
{
    const Trace pop = bench::population();
    const Trace rep = bench::representativeTrace(pop);

    std::cout << "Empirical gap to the clairvoyant baseline — % cold "
                 "starts on the representative\ntrace (ORACLE = "
                 "farthest-next-use with full future knowledge)\n\n";

    std::vector<std::string> headers = {"Memory (GB)", "ORACLE"};
    for (PolicyKind kind : allPolicyKinds())
        headers.push_back(policyKindName(kind));
    TablePrinter table(std::move(headers));

    for (double gb : {5.0, 10.0, 15.0, 20.0}) {
        SimulatorConfig config;
        config.memory_mb = gb * 1024.0;
        config.memory_sample_interval_us = 0;

        std::vector<std::string> row = {formatDouble(gb, 0)};
        const SimResult oracle = simulateTrace(
            rep, std::make_unique<OraclePolicy>(rep), config);
        row.push_back(formatDouble(oracle.coldStartPercent(), 2));
        for (PolicyKind kind : allPolicyKinds()) {
            const SimResult r =
                simulateTrace(rep, makePolicy(kind), config);
            row.push_back(formatDouble(r.coldStartPercent(), 2));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nGreedy-Dual closes most of the gap between the naive "
                 "baselines and the offline\noptimum without any future "
                 "knowledge.\n";
    return 0;
}

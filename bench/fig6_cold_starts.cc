/**
 * @file
 * Reproduces Figure 6 (a, b, c): the fraction of cold starts for all
 * seven keep-alive policies across cache sizes, on the REPRESENTATIVE,
 * RARE, and RANDOM traces. The miss-ratio view of Figure 5 — the paper
 * notes the two do not rank policies identically because classic miss
 * ratios ignore the (initialization) miss cost.
 */
#include <iostream>

#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "util/table.h"
#include "workloads.h"

using namespace faascache;

namespace {

void
runSubfigure(const char* label, const Trace& trace,
             const std::vector<MemMb>& sizes)
{
    std::cout << label << " — trace '" << trace.name() << "'\n\n";

    std::vector<std::string> headers = {"Memory (GB)"};
    for (PolicyKind kind : allPolicyKinds())
        headers.push_back(policyKindName(kind));
    TablePrinter table(std::move(headers));

    for (MemMb size_mb : sizes) {
        std::vector<std::string> row = {formatDouble(size_mb / 1024.0, 0)};
        for (PolicyKind kind : allPolicyKinds()) {
            SimulatorConfig config;
            config.memory_mb = size_mb;
            config.memory_sample_interval_us = 0;
            const SimResult r =
                simulateTrace(trace, makePolicy(kind), config);
            row.push_back(formatDouble(r.coldStartPercent(), 2));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n";
}

}  // namespace

int
main()
{
    std::cout << "Figure 6: % cold starts (lower is better)\n\n";
    const Trace pop = bench::population();
    runSubfigure("(a) Representative functions",
                 bench::representativeTrace(pop),
                 bench::largeMemorySweepMb());
    runSubfigure("(b) Rare functions", bench::rareTrace(pop),
                 bench::largeMemorySweepMb());
    runSubfigure("(c) Random sampling", bench::randomTrace(pop),
                 bench::smallMemorySweepMb());
    return 0;
}

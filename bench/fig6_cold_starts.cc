/**
 * @file
 * Reproduces Figure 6 (a, b, c): the fraction of cold starts for all
 * seven keep-alive policies across cache sizes, on the REPRESENTATIVE,
 * RARE, and RANDOM traces. The miss-ratio view of Figure 5 — the paper
 * notes the two do not rank policies identically because classic miss
 * ratios ignore the (initialization) miss cost.
 *
 * The whole (trace x memory x policy) grid runs through the parallel
 * SweepRunner; pass `--jobs N` to pick the worker count (default:
 * hardware concurrency). Output is byte-identical for any N. The
 * crash-safety flags `--deadline-s X`, `--retries N`, and
 * `--ckpt PATH [--resume]` bound, retry, and checkpoint/resume the
 * sweep; failed cells render as ERR instead of aborting the table.
 */
#include <iostream>

#include "core/policy_factory.h"
#include "sim/sweep_runner.h"
#include "util/table.h"
#include "workloads.h"

using namespace faascache;

namespace {

struct Subfigure
{
    const char* label;
    Trace trace;
    std::vector<MemMb> sizes;
};

std::vector<SweepCell>
cellsOf(const Subfigure& sub)
{
    std::vector<SweepCell> cells;
    for (MemMb size_mb : sub.sizes) {
        for (PolicyKind kind : allPolicyKinds()) {
            SweepCell cell = makeCell(sub.trace, kind, size_mb);
            cell.sim.memory_sample_interval_us = 0;
            cells.push_back(std::move(cell));
        }
    }
    return cells;
}

void
printSubfigure(const Subfigure& sub,
               const std::vector<CellOutcome<SimResult>>& outcomes)
{
    std::cout << sub.label << " — trace '" << sub.trace.name() << "'\n\n";

    std::vector<std::string> headers = {"Memory (GB)"};
    for (PolicyKind kind : allPolicyKinds())
        headers.push_back(policyKindName(kind));
    TablePrinter table(std::move(headers));

    std::size_t next = 0;
    for (MemMb size_mb : sub.sizes) {
        std::vector<std::string> row = {formatDouble(size_mb / 1024.0, 0)};
        for (PolicyKind kind : allPolicyKinds()) {
            (void)kind;
            row.push_back(bench::cellText(
                outcomes[next++],
                [](const SimResult& r) { return r.coldStartPercent(); },
                2));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n";
}

}  // namespace

int
main(int argc, char** argv)
{
    std::cout << "Figure 6: % cold starts (lower is better)\n\n";
    const Trace pop = bench::population();
    const Subfigure subfigures[] = {
        {"(a) Representative functions", bench::representativeTrace(pop),
         bench::largeMemorySweepMb()},
        {"(b) Rare functions", bench::rareTrace(pop),
         bench::largeMemorySweepMb()},
        {"(c) Random sampling", bench::randomTrace(pop),
         bench::smallMemorySweepMb()},
    };

    std::vector<SweepCell> cells;
    for (const Subfigure& sub : subfigures) {
        std::vector<SweepCell> sub_cells = cellsOf(sub);
        cells.insert(cells.end(),
                     std::make_move_iterator(sub_cells.begin()),
                     std::make_move_iterator(sub_cells.end()));
    }
    const SweepReport report =
        bench::runBenchSweep(cells, bench::parseBenchArgs(argc, argv));

    std::size_t offset = 0;
    for (const Subfigure& sub : subfigures) {
        const std::size_t count =
            sub.sizes.size() * allPolicyKinds().size();
        printSubfigure(sub, {report.cells.begin() + offset,
                             report.cells.begin() + offset + count});
        offset += count;
    }
    return report.allOk() ? 0 : 1;
}

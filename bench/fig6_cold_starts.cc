/**
 * @file
 * Reproduces Figure 6 (a, b, c): the fraction of cold starts for all
 * seven keep-alive policies across cache sizes, on the REPRESENTATIVE,
 * RARE, and RANDOM traces. The miss-ratio view of Figure 5 — the paper
 * notes the two do not rank policies identically because classic miss
 * ratios ignore the (initialization) miss cost.
 *
 * The whole (trace x memory x policy) grid runs through the parallel
 * SweepRunner; pass `--jobs N` to pick the worker count (default:
 * hardware concurrency). Output is byte-identical for any N. The
 * crash-safety flags `--deadline-s X`, `--retries N`, and
 * `--ckpt PATH [--resume]` bound, retry, and checkpoint/resume the
 * sweep; failed cells render as ERR instead of aborting the table.
 *
 * `--streamed` compiles each subfigure's trace to a temporary
 * `.ftrace` file and runs the grid on mmap-backed stream cells
 * (DESIGN.md §4h) instead of materialized traces. The output — and the
 * checkpoint journal, thanks to the portable workload fingerprint — is
 * byte-identical to the default mode; CI's kill-and-resume smoke runs
 * this mode to cover checkpoint/resume over streamed cells.
 */
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "core/policy_factory.h"
#include "sim/sweep_runner.h"
#include "trace/ftrace_format.h"
#include "trace/invocation_source.h"
#include "util/table.h"
#include "workloads.h"

using namespace faascache;

namespace {

struct Subfigure
{
    const char* label;
    Trace trace;
    std::vector<MemMb> sizes;
};

/** Cells for one subfigure; with a non-empty `ftrace_path` the cells
 *  stream the compiled trace instead of holding the materialized one. */
std::vector<SweepCell>
cellsOf(const Subfigure& sub, const std::string& ftrace_path)
{
    std::vector<SweepCell> cells;
    for (MemMb size_mb : sub.sizes) {
        for (PolicyKind kind : allPolicyKinds()) {
            SweepCell cell = ftrace_path.empty()
                ? makeCell(sub.trace, kind, size_mb)
                : makeStreamCell(
                      [ftrace_path]() {
                          return std::make_unique<FtraceSource>(
                              ftrace_path);
                      },
                      kind, size_mb);
            cell.sim.memory_sample_interval_us = 0;
            cells.push_back(std::move(cell));
        }
    }
    return cells;
}

void
printSubfigure(const Subfigure& sub,
               const std::vector<CellOutcome<SimResult>>& outcomes)
{
    std::cout << sub.label << " — trace '" << sub.trace.name() << "'\n\n";

    std::vector<std::string> headers = {"Memory (GB)"};
    for (PolicyKind kind : allPolicyKinds())
        headers.push_back(policyKindName(kind));
    TablePrinter table(std::move(headers));

    std::size_t next = 0;
    for (MemMb size_mb : sub.sizes) {
        std::vector<std::string> row = {formatDouble(size_mb / 1024.0, 0)};
        for (PolicyKind kind : allPolicyKinds()) {
            (void)kind;
            row.push_back(bench::cellText(
                outcomes[next++],
                [](const SimResult& r) { return r.coldStartPercent(); },
                2));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n";
}

}  // namespace

int
main(int argc, char** argv)
{
    bool streamed = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--streamed") == 0)
            streamed = true;

    std::cout << "Figure 6: % cold starts (lower is better)\n\n";
    const Trace pop = bench::population();
    const Subfigure subfigures[] = {
        {"(a) Representative functions", bench::representativeTrace(pop),
         bench::largeMemorySweepMb()},
        {"(b) Rare functions", bench::rareTrace(pop),
         bench::largeMemorySweepMb()},
        {"(c) Random sampling", bench::randomTrace(pop),
         bench::smallMemorySweepMb()},
    };

    // --streamed: compile each subfigure trace to a private temp
    // .ftrace (pid-keyed so concurrent CI runs cannot collide) and
    // sweep mmap-backed stream cells instead.
    std::vector<std::string> ftrace_paths(std::size(subfigures));
    if (streamed) {
        for (std::size_t i = 0; i < std::size(subfigures); ++i) {
            ftrace_paths[i] = "/tmp/fig6_stream_" +
                std::to_string(getpid()) + "_" + std::to_string(i) +
                ".ftrace";
            TraceSource source(subfigures[i].trace);
            writeFtraceFile(ftrace_paths[i], source);
        }
    }

    std::vector<SweepCell> cells;
    for (std::size_t i = 0; i < std::size(subfigures); ++i) {
        std::vector<SweepCell> sub_cells =
            cellsOf(subfigures[i], ftrace_paths[i]);
        cells.insert(cells.end(),
                     std::make_move_iterator(sub_cells.begin()),
                     std::make_move_iterator(sub_cells.end()));
    }
    const SweepReport report =
        bench::runBenchSweep(cells, bench::parseBenchArgs(argc, argv));
    for (const std::string& path : ftrace_paths)
        if (!path.empty())
            std::remove(path.c_str());

    std::size_t offset = 0;
    for (const Subfigure& sub : subfigures) {
        const std::size_t count =
            sub.sizes.size() * allPolicyKinds().size();
        printSubfigure(sub, {report.cells.begin() + offset,
                             report.cells.begin() + offset + count});
        offset += count;
    }
    return report.allOk() ? 0 : 1;
}

/**
 * @file
 * Sharded-cluster scaling bench (DESIGN.md §4i, PR 10).
 *
 * Replays one Azure-shaped workload — compiled once to `.ftrace` and
 * fanned out through a single shared FtraceRegion mapping — through the
 * windowed sharded cluster engine at several shard counts, with the
 * full front-end armed (fault plan, retry budget, circuit breakers), and
 * reports wall-clock, peak RSS, and the cluster checkpoint payload per
 * shard count. The headline claims this bench defends:
 *
 *  - results are byte-identical for every shard count (the payload
 *    comparison is a hard failure, not a statistic), and
 *  - on a machine with cores to spare, wall-clock scales near-linearly
 *    with shards while peak RSS stays flat (one mapping, O(chunk)
 *    resident trace, per-shard state is a slice of the fleet).
 *
 * Wall-clock speedups are only meaningful when the machine can actually
 * run the shard threads in parallel; the JSON therefore records
 * available_cores, and scripts/run_benchmarks.sh gates the speedup
 * assertion on it. RSS and byte-identity are asserted everywhere.
 *
 * Usage:
 *   fig_shard_scaling [--smoke] [--out PATH]
 *
 * Full mode regenerates the committed BENCH_PR10.json via
 * scripts/run_benchmarks.sh: a 50k-function, 256-invoker, 14-day-shaped
 * (diurnal) workload. --smoke shrinks the workload for the CI gate.
 */
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "platform/cluster.h"
#include "platform/experiment_checkpoint.h"
#include "sim/sweep_runner.h"
#include "trace/azure_model.h"
#include "trace/ftrace_format.h"
#include "trace/generated_source.h"

using namespace faascache;

namespace {

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Reset the kernel's peak-RSS high-water mark for this process.
 *  @return false when /proc/self/clear_refs is unavailable. */
bool
resetPeakRss()
{
    std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
    if (f == nullptr)
        return false;
    const bool ok = std::fputs("5", f) >= 0;
    std::fclose(f);
    return ok;
}

/** Peak RSS in MB: VmHWM from /proc/self/status (resettable), falling
 *  back to the monotonic getrusage high-water mark. */
double
peakRssMb()
{
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) == 0)
            return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
    struct rusage usage
    {
    };
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0.0;
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

struct Row
{
    std::size_t shards = 0;
    double wall_s = 0.0;
    double peak_rss_mb = 0.0;
    bool rss_resettable = false;
    bool payload_matches = true;
};

AzureModelConfig
workloadConfig(bool smoke)
{
    AzureModelConfig model;
    model.seed = deriveCellSeed(2026, 10);
    if (smoke) {
        model.num_functions = 600;
        model.duration_us = 20 * kMinute;
        model.iat_median_sec = 60.0;
    } else {
        // The headline workload: 50k functions over a 14-day diurnal
        // span. Per-function rates are kept low so the invocation count
        // stays in the low millions — the scaling story is about
        // per-event simulation work, not raw stream length.
        model.num_functions = 50'000;
        model.duration_us = 14 * 24 * kHour;
        model.iat_median_sec = 8.0 * 3600.0;
        model.diurnal = true;
    }
    model.iat_sigma = 1.2;
    model.max_rate_per_sec = 0.5;
    model.mem_median_mb = 96.0;
    model.mem_sigma = 0.7;
    model.mem_max_mb = 1024.0;
    model.warm_median_ms = 250.0;
    model.warm_sigma = 1.0;
    model.name = smoke ? "shard-scaling-smoke" : "shard-scaling-14d";
    return model;
}

/** Fleet + armed front end (faults, budget, breakers): the windowed
 *  sharded engine, not the embarrassingly parallel fault-free split. */
ClusterConfig
clusterConfig(bool smoke, TimeUs duration)
{
    ClusterConfig config;
    config.seed = 7;
    config.num_servers = smoke ? 16 : 256;
    config.server.cores = 4;
    config.server.memory_mb = 2048;
    config.balancing = LoadBalancing::FunctionHash;
    // A light but non-trivial chaos plan spread over the run: flaky
    // spawns throughout plus a couple of crash/restart cycles, so the
    // cross-shard failover/retry machinery is genuinely exercised.
    config.faults.spawn_failure_prob = 0.02;
    config.faults.spawn_retry_delay_us = 100 * kMillisecond;
    config.faults.crashes.push_back(
        {1, duration / 4, 2 * kMinute});
    config.faults.crashes.push_back(
        {3, duration / 2, 5 * kMinute});
    config.failover.retry_budget.ratio = 0.25;
    config.failover.retry_budget.burst = 32;
    config.failover.breaker.failure_threshold = 16;
    config.failover.breaker.open_duration_us = 10 * kSecond;
    return config;
}

void
writeJson(std::ostream& out, bool smoke, unsigned available_cores,
          std::size_t invocations, std::size_t num_servers,
          bool identical_payloads, const std::vector<Row>& rows)
{
    char buffer[64];
    const auto num = [&](double value) {
        std::snprintf(buffer, sizeof buffer, "%.6g", value);
        return std::string(buffer);
    };
    const double base_wall = rows.empty() ? 0.0 : rows.front().wall_s;
    out << "{\n";
    out << "  \"schema\": \"faascache-bench-pr10-v1\",\n";
    out << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
    out << "  \"available_cores\": " << available_cores << ",\n";
    out << "  \"invocations\": " << invocations << ",\n";
    out << "  \"num_servers\": " << num_servers << ",\n";
    out << "  \"identical_payloads\": "
        << (identical_payloads ? "true" : "false") << ",\n";
    out << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& row = rows[i];
        const double speedup =
            row.wall_s > 0.0 ? base_wall / row.wall_s : 0.0;
        out << "    {\"shards\": " << row.shards
            << ", \"wall_s\": " << num(row.wall_s)
            << ", \"peak_rss_mb\": " << num(row.peak_rss_mb)
            << ", \"rss_resettable\": "
            << (row.rss_resettable ? "true" : "false")
            << ", \"speedup_vs_1\": " << num(speedup) << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
}

}  // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string out_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--smoke] [--out PATH]\n";
            return 2;
        }
    }

    const AzureModelConfig model = workloadConfig(smoke);
    const ClusterConfig base = clusterConfig(smoke, model.duration_us);
    const std::vector<std::size_t> shard_counts =
        smoke ? std::vector<std::size_t>{1, 2, 4}
              : std::vector<std::size_t>{1, 2, 4, 8};
    const unsigned available_cores = std::thread::hardware_concurrency();

    // Compile the workload to .ftrace once by streaming generation
    // (untimed), then share ONE mapping across every run and every
    // shard: each shard thread gets its own cheap cursor.
    const std::string path = "/tmp/faascache_shard_scaling.ftrace";
    std::cerr << "fig_shard_scaling: compiling workload...\n";
    std::size_t invocations = 0;
    {
        const auto source = makeAzureSource(model);
        invocations = writeFtraceFile(path, *source);
    }
    std::cerr << "fig_shard_scaling: " << invocations
              << " invocations, fleet of " << base.num_servers
              << ", cores available: " << available_cores << "\n";

    const std::shared_ptr<FtraceRegion> region = FtraceRegion::open(path);
    ShardedWorkload workload;
    workload.make_full = [&region] { return region->makeCursor(); };

    std::vector<Row> rows;
    std::string reference_payload;
    bool identical = true;
    for (std::size_t shards : shard_counts) {
        std::cerr << "fig_shard_scaling: shards=" << shards << "...\n";
        Row row;
        row.shards = shards;
        row.rss_resettable = resetPeakRss();
        const double start = nowSeconds();
        ClusterConfig config = base;
        config.shards = shards;
        const ClusterResult result =
            runCluster(workload, PolicyKind::GreedyDual, config);
        row.wall_s = nowSeconds() - start;
        row.peak_rss_mb = peakRssMb();
        const std::string payload =
            encodeClusterCheckpointPayload("scaling", result);
        if (reference_payload.empty()) {
            reference_payload = payload;
        } else {
            row.payload_matches = payload == reference_payload;
            identical = identical && row.payload_matches;
        }
        std::fprintf(stderr,
                     "  shards=%zu  wall %7.2fs  peak rss %7.1f MB  %s\n",
                     shards, row.wall_s, row.peak_rss_mb,
                     row.payload_matches ? "payload ok"
                                         : "PAYLOAD MISMATCH");
        rows.push_back(row);
    }
    std::remove(path.c_str());

    if (out_path.empty()) {
        writeJson(std::cout, smoke, available_cores, invocations,
                  base.num_servers, identical, rows);
    } else {
        std::ofstream out(out_path);
        if (!out) {
            std::cerr << "fig_shard_scaling: cannot write " << out_path
                      << "\n";
            return 1;
        }
        writeJson(out, smoke, available_cores, invocations,
                  base.num_servers, identical, rows);
        std::cerr << "fig_shard_scaling: wrote " << out_path << "\n";
    }
    if (!identical) {
        std::cerr << "fig_shard_scaling: FAIL: payloads differ across "
                     "shard counts\n";
        return 1;
    }
    return 0;
}

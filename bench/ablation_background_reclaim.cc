/**
 * @file
 * Ablation of kswapd-style background reclamation (paper §6 future
 * work): a periodic reclaimer keeps a free-memory reserve so demand
 * evictions move off the invocation critical path entirely.
 *
 * The reclaimer-setting cells run through the parallel SweepRunner
 * (`--jobs N`); output is byte-identical for any worker count.
 * Crash-safety flags: `--deadline-s X`, `--retries N`,
 * `--ckpt PATH [--resume]`; failed cells render as ERR.
 */
#include <iostream>

#include "core/policy_factory.h"
#include "sim/sweep_runner.h"
#include "util/table.h"
#include "workloads.h"

using namespace faascache;

int
main(int argc, char** argv)
{
    const Trace pop = bench::population();
    const Trace rep = bench::representativeTrace(pop);
    const MemMb memory = 15 * 1024.0;

    std::cout << "Background-reclaim ablation — Greedy-Dual on the "
                 "representative trace at "
              << formatDouble(memory / 1024.0, 0) << " GB\n\n";

    struct Setting
    {
        const char* label;
        TimeUs interval;
        MemMb target;
    };
    const Setting settings[] = {
        {"off (demand eviction only)", 0, 0},
        {"every 10 s, 512 MB reserve", 10 * kSecond, 512},
        {"every 10 s, 1024 MB reserve", 10 * kSecond, 1024},
        {"every 60 s, 1024 MB reserve", kMinute, 1024},
    };

    std::vector<SweepCell> cells;
    for (const Setting& setting : settings) {
        SweepCell cell = makeCell(rep, PolicyKind::GreedyDual, memory);
        cell.sim.memory_sample_interval_us = 0;
        cell.sim.background_reclaim_interval_us = setting.interval;
        cell.sim.background_free_target_mb = setting.target;
        cells.push_back(std::move(cell));
    }
    const SweepReport report =
        bench::runBenchSweep(cells, bench::parseBenchArgs(argc, argv));

    TablePrinter table({"Reclaimer", "cold %", "exec increase %",
                        "critical-path rounds", "background reclaims"});
    for (std::size_t i = 0; i < std::size(settings); ++i) {
        const CellOutcome<SimResult>& cell = report.cells[i];
        table.addRow(
            {settings[i].label,
             bench::cellText(
                 cell,
                 [](const SimResult& r) { return r.coldStartPercent(); },
                 2),
             bench::cellText(
                 cell,
                 [](const SimResult& r) {
                     return r.execTimeIncreasePercent();
                 },
                 2),
             bench::cellCount(
                 cell,
                 [](const SimResult& r) { return r.eviction_rounds; }),
             bench::cellCount(cell, [](const SimResult& r) {
                 return r.background_reclaims;
             })});
    }
    table.print(std::cout);
    std::cout << "\nA modest reserve eliminates most slow-path eviction "
                 "rounds from the invocation\npath at a small hit-ratio "
                 "cost (containers die earlier than strictly needed).\n";
    return report.allOk() ? 0 : 1;
}

/**
 * @file
 * Ablation of kswapd-style background reclamation (paper §6 future
 * work): a periodic reclaimer keeps a free-memory reserve so demand
 * evictions move off the invocation critical path entirely.
 */
#include <iostream>

#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "util/table.h"
#include "workloads.h"

using namespace faascache;

int
main()
{
    const Trace pop = bench::population();
    const Trace rep = bench::representativeTrace(pop);
    const MemMb memory = 15 * 1024.0;

    std::cout << "Background-reclaim ablation — Greedy-Dual on the "
                 "representative trace at "
              << formatDouble(memory / 1024.0, 0) << " GB\n\n";

    struct Setting
    {
        const char* label;
        TimeUs interval;
        MemMb target;
    };
    const Setting settings[] = {
        {"off (demand eviction only)", 0, 0},
        {"every 10 s, 512 MB reserve", 10 * kSecond, 512},
        {"every 10 s, 1024 MB reserve", 10 * kSecond, 1024},
        {"every 60 s, 1024 MB reserve", kMinute, 1024},
    };

    TablePrinter table({"Reclaimer", "cold %", "exec increase %",
                        "critical-path rounds", "background reclaims"});
    for (const Setting& setting : settings) {
        SimulatorConfig config;
        config.memory_mb = memory;
        config.memory_sample_interval_us = 0;
        config.background_reclaim_interval_us = setting.interval;
        config.background_free_target_mb = setting.target;
        const SimResult r = simulateTrace(
            rep, makePolicy(PolicyKind::GreedyDual), config);
        table.addRow({setting.label,
                      formatDouble(r.coldStartPercent(), 2),
                      formatDouble(r.execTimeIncreasePercent(), 2),
                      std::to_string(r.eviction_rounds),
                      std::to_string(r.background_reclaims)});
    }
    table.print(std::cout);
    std::cout << "\nA modest reserve eliminates most slow-path eviction "
                 "rounds from the invocation\npath at a small hit-ratio "
                 "cost (containers die earlier than strictly needed).\n";
    return 0;
}

/**
 * @file
 * Chaos soak (ISSUE 8): a seeded battery of correlated crash bursts,
 * network-partition windows, and memory-pressure OOM kills against a
 * 4-server cluster with every defense engaged — health-aware failover,
 * bounded retries under per-server token budgets, circuit breakers,
 * admission control, and cold-start brownout — while the runtime
 * invariant auditor (util/audit.h) watches every layer.
 *
 * The question the table answers: does the platform conserve every
 * request and keep its internal invariants (request ledger, pool
 * accounting, event order, breaker legality) under randomized
 * compound chaos, and how fast does the fleet recover?
 *
 * Pass criteria (exit status): every cell completes and the auditor
 * records zero violations across the whole battery.
 *
 * Shared sweep flags (--jobs/--deadline-s/--retries/--ckpt/--resume,
 * see bench/workloads.h) plus --smoke, which shrinks the battery for
 * sanitizer CI runs.
 */
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "platform/cluster.h"
#include "trace/azure_model.h"
#include "util/audit.h"
#include "util/table.h"
#include "workloads.h"

using namespace faascache;

namespace {

constexpr std::size_t kServers = 4;

/** Azure-model workload; each battery seed gets its own stream. */
Trace
workload(std::uint64_t seed, TimeUs duration)
{
    AzureModelConfig model;
    model.seed = 100 + seed;
    model.num_functions = 48;
    model.duration_us = duration;
    model.iat_median_sec = 20.0;
    model.max_rate_per_sec = 2.0;
    model.warm_median_ms = 250.0;
    model.mem_median_mb = 160.0;
    model.mem_sigma = 0.7;
    model.mem_min_mb = 64;
    model.mem_max_mb = 512;
    model.name = "chaos-" + std::to_string(seed);
    return generateAzureTrace(model);
}

/** Every defense on: the configuration the chaos battery certifies. */
ClusterConfig
defendedConfig(Auditor* audit)
{
    ClusterConfig config;
    config.num_servers = kServers;
    config.server.cores = 4;
    config.server.memory_mb = 1500;
    config.server.cold_start_cpu_slots = 2;
    config.server.audit = audit;
    config.balancing = LoadBalancing::FunctionHash;
    config.failover.shed_queue_depth = 64;
    config.failover.retry_budget.ratio = 0.5;
    config.failover.retry_budget.burst = 16.0;
    config.failover.breaker.failure_threshold = 5;
    config.failover.breaker.open_duration_us = 5 * kSecond;
    config.server.overload.admission.enabled = true;
    config.server.overload.brownout.enabled = true;
    return config;
}

/** One correlated burst takes down half the fleet inside a window. */
FaultPlan
burstPlan(std::uint64_t seed, TimeUs duration)
{
    FaultPlan plan;
    CrashBurst burst;
    burst.at_us = duration / 3;
    burst.window_us = 2 * kMinute;
    burst.servers = kServers / 2;
    burst.restart_after_us = 2 * kMinute;
    burst.seed = seed;
    plan.crash_bursts.push_back(burst);
    return plan;
}

/** Front-end partitions: two servers unreachable in rolling windows. */
FaultPlan
partitionPlan(std::uint64_t seed, TimeUs duration)
{
    FaultPlan plan;
    const TimeUs t0 = duration / 4;
    plan.partitions.push_back(
        {static_cast<std::size_t>(seed % kServers), t0,
         t0 + 2 * kMinute});
    plan.partitions.push_back(
        {static_cast<std::size_t>((seed + 1) % kServers),
         t0 + 3 * kMinute, t0 + 4 * kMinute});
    return plan;
}

/** Memory-pressure kills of the fattest busy container. */
FaultPlan
oomPlan(std::uint64_t seed, TimeUs duration)
{
    FaultPlan plan;
    plan.oom_kills.push_back(
        {static_cast<std::size_t>(seed % kServers), duration / 4});
    plan.oom_kills.push_back(
        {static_cast<std::size_t>((seed * 7 + 1) % kServers),
         duration / 2});
    plan.oom_kills.push_back(
        {static_cast<std::size_t>((seed * 13 + 2) % kServers),
         (3 * duration) / 4});
    return plan;
}

/** All of the above at once, plus flaky spawns and stragglers. */
FaultPlan
combinedPlan(std::uint64_t seed, TimeUs duration)
{
    FaultPlan plan = burstPlan(seed, duration);
    const FaultPlan partitions = partitionPlan(seed, duration);
    const FaultPlan ooms = oomPlan(seed + 5, duration);
    plan.partitions = partitions.partitions;
    plan.oom_kills = ooms.oom_kills;
    plan.spawn_failure_prob = 0.02;
    plan.straggler_prob = 0.05;
    plan.straggler_multiplier = 4.0;
    plan.seed = seed;
    return plan;
}

struct Scenario
{
    const char* label;
    FaultPlan (*plan)(std::uint64_t, TimeUs);
};

}  // namespace

int
main(int argc, char** argv)
{
    const bench::BenchOptions options = bench::parseBenchArgs(argc, argv);
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    const std::size_t seeds = smoke ? 6 : 32;
    const TimeUs duration = smoke ? 20 * kMinute : 40 * kMinute;

    const Scenario scenarios[] = {
        {"crash-burst", burstPlan},
        {"partition", partitionPlan},
        {"oom-kill", oomPlan},
        {"combined", combinedPlan},
    };

    std::cout << "Chaos soak: " << seeds << " seeds x "
              << std::size(scenarios)
              << " fault scenarios on a 4-server cluster, every defense "
                 "on,\nruntime invariant auditor enabled ("
              << toSeconds(duration) / 60 << " min Azure-model "
              << "workload per seed)\n\n";

    // Traces must outlive the sweep (cells hold pointers).
    std::vector<Trace> traces;
    traces.reserve(seeds);
    for (std::uint64_t seed = 0; seed < seeds; ++seed)
        traces.push_back(workload(seed, duration));

    // One auditor per scenario, shared by all its seeds (thread-safe),
    // so a violation is attributed to the fault class that caused it.
    std::vector<std::unique_ptr<Auditor>> audits;
    std::vector<ClusterCell> cells;
    std::vector<std::string> labels;
    for (const Scenario& scenario : scenarios) {
        audits.push_back(std::make_unique<Auditor>());
        for (std::uint64_t seed = 0; seed < seeds; ++seed) {
            ClusterConfig config = defendedConfig(audits.back().get());
            config.faults = scenario.plan(seed, duration);
            config.seed = seed + 1;
            cells.push_back({&traces[seed], PolicyKind::GreedyDual,
                             config, {},
                             std::string(scenario.label) + "/seed" +
                                 std::to_string(seed)});
        }
        labels.push_back(scenario.label);
    }

    const ClusterSweepReport report =
        bench::runBenchClusterSweep(cells, options);

    TablePrinter table({"Scenario", "Seeds", "Crashes", "OOMKills",
                        "PartSkips", "Shed", "Failed", "Recov(s)",
                        "Viol"});
    bool all_ok = report.allOk();
    std::int64_t total_violations = 0;
    for (std::size_t g = 0; g < std::size(scenarios); ++g) {
        std::int64_t crashes = 0, restarts = 0, oom = 0, part = 0;
        std::int64_t shed = 0, failed = 0;
        TimeUs downtime = 0;
        bool group_ok = true;
        for (std::size_t i = 0; i < seeds; ++i) {
            const CellOutcome<ClusterResult>& cell =
                report.cells[g * seeds + i];
            if (!cell.ok()) {
                group_ok = false;
                continue;
            }
            const ClusterResult& r = cell.result;
            const RobustnessCounters rc = r.robustness();
            crashes += rc.crashes;
            restarts += rc.restarts;
            oom += rc.oom_kills;
            part += r.partition_unreachable;
            shed += r.shed_requests;
            failed += r.failed_requests;
            downtime += rc.downtime_us;
        }
        const std::int64_t violations = audits[g]->violationCount();
        total_violations += violations;
        // Mean outage-to-restart time across the scenario's crash
        // windows: how long the fleet ran degraded per incident.
        const double recovery = crashes > 0
            ? toSeconds(downtime) / static_cast<double>(crashes)
            : 0.0;
        table.addRow({labels[g],
                      group_ok ? std::to_string(seeds) : "ERR",
                      std::to_string(crashes), std::to_string(oom),
                      std::to_string(part), std::to_string(shed),
                      std::to_string(failed),
                      formatDouble(recovery, 0),
                      std::to_string(violations)});
        if (violations > 0) {
            std::cerr << "\n" << labels[g]
                      << " violated invariants:\n"
                      << audits[g]->report();
        }
    }
    table.print(std::cout);

    if (total_violations == 0 && all_ok) {
        std::cout << "\nZero invariant violations across "
                  << cells.size()
                  << " chaos runs: every request conserved, every "
                     "ledger balanced, every state machine legal.\n";
        return 0;
    }
    std::cerr << "\nCHAOS SOAK FAILED: " << total_violations
              << " invariant violation(s)"
              << (all_ok ? "" : " and at least one cell error") << "\n";
    return 1;
}

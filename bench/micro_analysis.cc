/**
 * @file
 * Micro-benchmarks of the provisioning analysis substrate: exact
 * (Fenwick) reuse-distance computation versus SHARDS sampling at
 * several rates, and hit-ratio-curve queries. Quantifies the paper's
 * claim that SHARDS "drastically reduces the overhead" of the
 * O(N log N) full-trace analysis.
 */
#include <benchmark/benchmark.h>

#include "analysis/reuse_distance.h"
#include "analysis/shards.h"
#include "trace/azure_model.h"

using namespace faascache;

namespace {

const Trace&
analysisTrace()
{
    static const Trace kTrace = [] {
        AzureModelConfig config;
        config.seed = 99;
        config.num_functions = 500;
        config.duration_us = kHour;
        config.iat_median_sec = 60.0;
        return generateAzureTrace(config);
    }();
    return kTrace;
}

void
BM_ReuseDistancesExact(benchmark::State& state)
{
    const Trace& trace = analysisTrace();
    for (auto _ : state) {
        auto distances = computeReuseDistances(trace);
        benchmark::DoNotOptimize(distances);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.invocations().size()));
}

void
BM_ReuseDistancesShards(benchmark::State& state)
{
    const Trace& trace = analysisTrace();
    const double rate = static_cast<double>(state.range(0)) / 100.0;
    for (auto _ : state) {
        auto result = shardsSample(trace, rate, 42);
        benchmark::DoNotOptimize(result);
    }
    state.SetLabel("rate=" + std::to_string(rate));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.invocations().size()));
}

void
BM_HitRatioCurveBuild(benchmark::State& state)
{
    const auto distances = computeReuseDistances(analysisTrace());
    for (auto _ : state) {
        auto curve = HitRatioCurve::fromReuseDistances(distances);
        benchmark::DoNotOptimize(curve);
    }
}

void
BM_HitRatioQuery(benchmark::State& state)
{
    const HitRatioCurve curve = HitRatioCurve::fromReuseDistances(
        computeReuseDistances(analysisTrace()));
    MemMb size = 128.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(curve.hitRatio(size));
        size = size < 1e6 ? size * 1.1 : 128.0;
    }
}

BENCHMARK(BM_ReuseDistancesExact);
BENCHMARK(BM_ReuseDistancesShards)->Arg(25)->Arg(10)->Arg(1);
BENCHMARK(BM_HitRatioCurveBuild);
BENCHMARK(BM_HitRatioQuery);

}  // namespace

BENCHMARK_MAIN();

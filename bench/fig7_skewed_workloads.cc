/**
 * @file
 * Reproduces Figure 7: cold and warm invocation counts for vanilla
 * OpenWhisk (10-minute TTL, oldest-created pressure eviction) versus
 * FaasCache (Greedy-Dual) on three skewed workload types — skewed
 * frequency, cyclic, and skewed size — on a memory-constrained invoker.
 *
 * All six platform runs (3 workloads x {OW, FC}) execute concurrently
 * through the harnessed platform sweep (`--jobs N`); output is
 * byte-identical for any worker count. Crash-safety flags:
 * `--deadline-s X`, `--retries N`; failed runs render as ERR.
 */
#include <iostream>

#include "platform/experiment.h"
#include "platform/load_generator.h"
#include "util/table.h"
#include "workloads.h"

using namespace faascache;

int
main(int argc, char** argv)
{
    const TimeUs duration = kHour;
    ServerConfig server;
    server.cores = 8;
    server.memory_mb = 1000;

    std::cout << "Figure 7: OpenWhisk (OW) vs FaasCache (FC) on skewed "
                 "workloads\n(server: "
              << server.cores << " cores, " << server.memory_mb
              << " MB container pool, " << toSeconds(duration) / 60
              << " min runs)\n\n";

    struct Workload
    {
        const char* label;
        Trace trace;
    };
    Workload workloads[] = {
        {"Skewed Freq", skewedFrequencyWorkload(duration)},
        {"Cyclic", cyclicWorkload(duration)},
        {"Skewed Size", skewedSizeWorkload(duration)},
    };

    // Vanilla OpenWhisk: 10-minute TTL, oldest-created pressure
    // eviction (matches compareOpenWhiskVsFaasCache).
    PolicyConfig openwhisk_config;
    openwhisk_config.ttl_victim_order = TtlVictimOrder::OldestCreated;

    std::vector<PlatformCell> cells;
    for (const Workload& workload : workloads) {
        cells.push_back({&workload.trace, PolicyKind::Ttl, server,
                         openwhisk_config, {}});
        cells.push_back({&workload.trace, PolicyKind::GreedyDual, server,
                         PolicyConfig{}, {}});
    }
    const PlatformSweepReport report = bench::runBenchPlatformSweep(
        cells, bench::parseBenchArgs(argc, argv));

    TablePrinter table({"Workload Type", "OW Cold", "OW Warm", "OW Drop",
                        "FC Cold", "FC Warm", "FC Drop", "FC/OW warm",
                        "FC/OW served"});
    for (std::size_t i = 0; i < std::size(workloads); ++i) {
        const CellOutcome<PlatformResult>& ow = report.cells[2 * i];
        const CellOutcome<PlatformResult>& fc = report.cells[2 * i + 1];
        // The ratio columns need both head-to-head runs.
        std::string warm_ratio = "ERR";
        std::string served_ratio = "ERR";
        if (ow.ok() && fc.ok()) {
            PlatformComparison cmp;
            cmp.openwhisk = ow.result;
            cmp.faascache = fc.result;
            warm_ratio = formatDouble(cmp.warmStartRatio(), 2);
            served_ratio = formatDouble(cmp.servedRatio(), 2);
        }
        const auto cold = [](const PlatformResult& r) {
            return r.cold_starts;
        };
        const auto warm = [](const PlatformResult& r) {
            return r.warm_starts;
        };
        const auto drop = [](const PlatformResult& r) {
            return r.dropped();
        };
        table.addRow({workloads[i].label, bench::cellCount(ow, cold),
                      bench::cellCount(ow, warm),
                      bench::cellCount(ow, drop),
                      bench::cellCount(fc, cold),
                      bench::cellCount(fc, warm),
                      bench::cellCount(fc, drop), warm_ratio,
                      served_ratio});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape (paper §7.2): FaasCache serves more "
                 "invocations warm on every\nskewed workload; the cyclic "
                 "(recency-adversarial) pattern shows the largest gap\n"
                 "(paper: 50-100% more warm invocations).\n";
    return report.allOk() ? 0 : 1;
}

/**
 * @file
 * Reproduces Figure 7: cold and warm invocation counts for vanilla
 * OpenWhisk (10-minute TTL, oldest-created pressure eviction) versus
 * FaasCache (Greedy-Dual) on three skewed workload types — skewed
 * frequency, cyclic, and skewed size — on a memory-constrained invoker.
 */
#include <iostream>

#include "platform/experiment.h"
#include "platform/load_generator.h"
#include "util/table.h"

using namespace faascache;

int
main()
{
    const TimeUs duration = kHour;
    ServerConfig server;
    server.cores = 8;
    server.memory_mb = 1000;

    std::cout << "Figure 7: OpenWhisk (OW) vs FaasCache (FC) on skewed "
                 "workloads\n(server: "
              << server.cores << " cores, " << server.memory_mb
              << " MB container pool, " << toSeconds(duration) / 60
              << " min runs)\n\n";

    struct Workload
    {
        const char* label;
        Trace trace;
    };
    Workload workloads[] = {
        {"Skewed Freq", skewedFrequencyWorkload(duration)},
        {"Cyclic", cyclicWorkload(duration)},
        {"Skewed Size", skewedSizeWorkload(duration)},
    };

    TablePrinter table({"Workload Type", "OW Cold", "OW Warm", "OW Drop",
                        "FC Cold", "FC Warm", "FC Drop", "FC/OW warm",
                        "FC/OW served"});
    for (auto& workload : workloads) {
        const PlatformComparison cmp =
            compareOpenWhiskVsFaasCache(workload.trace, server);
        table.addRow({workload.label,
                      std::to_string(cmp.openwhisk.cold_starts),
                      std::to_string(cmp.openwhisk.warm_starts),
                      std::to_string(cmp.openwhisk.dropped()),
                      std::to_string(cmp.faascache.cold_starts),
                      std::to_string(cmp.faascache.warm_starts),
                      std::to_string(cmp.faascache.dropped()),
                      formatDouble(cmp.warmStartRatio(), 2),
                      formatDouble(cmp.servedRatio(), 2)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape (paper §7.2): FaasCache serves more "
                 "invocations warm on every\nskewed workload; the cyclic "
                 "(recency-adversarial) pattern shows the largest gap\n"
                 "(paper: 50-100% more warm invocations).\n";
    return 0;
}

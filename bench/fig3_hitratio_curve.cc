/**
 * @file
 * Reproduces Figure 3: the hit-ratio curve of the representative trace
 * constructed from reuse distances (Equation 2), compared against the
 * hit ratio actually observed when the Greedy-Dual simulator runs at
 * each cache size. The reuse-distance curve over-predicts at small
 * sizes (dropped requests and busy containers) and under-predicts at
 * large sizes (concurrent executions create duplicate containers) —
 * the "limitations of the caching analogy" the paper discusses.
 * A SHARDS-sampled approximation of the curve is printed alongside.
 *
 * The per-size Greedy-Dual simulations run through the parallel
 * SweepRunner (`--jobs N`); output is byte-identical for any worker
 * count. Crash-safety flags: `--deadline-s X`, `--retries N`,
 * `--ckpt PATH [--resume]`; failed cells render as ERR.
 */
#include <iostream>

#include "analysis/che_approximation.h"
#include "analysis/reuse_distance.h"
#include "analysis/shards.h"
#include "core/policy_factory.h"
#include "sim/sweep_runner.h"
#include "util/table.h"
#include "workloads.h"

using namespace faascache;

int
main(int argc, char** argv)
{
    const Trace pop = bench::population();
    const Trace rep = bench::representativeTrace(pop);

    const HitRatioCurve exact =
        HitRatioCurve::fromReuseDistances(computeReuseDistances(rep));
    const HitRatioCurve sampled =
        curveFromShards(shardsSample(rep, 0.1, 42));
    const CheApproximation che = CheApproximation::fromTrace(rep);

    std::cout << "Figure 3: hit-ratio curve from reuse distances vs "
                 "observed Greedy-Dual hit ratio\n(trace: "
              << rep.name() << ", " << rep.invocations().size()
              << " invocations; SHARDS rate 0.1)\n\n";

    const std::vector<MemMb> sizes = bench::largeMemorySweepMb();
    std::vector<SweepCell> cells;
    for (MemMb size_mb : sizes) {
        SweepCell cell = makeCell(rep, PolicyKind::GreedyDual, size_mb);
        cell.sim.memory_sample_interval_us = 0;
        cells.push_back(std::move(cell));
    }
    const SweepReport report =
        bench::runBenchSweep(cells, bench::parseBenchArgs(argc, argv));

    TablePrinter table({"Cache size (GB)", "Reuse-dist HR",
                        "SHARDS HR (R=0.1)", "Che approx HR",
                        "Observed GD HR", "GD drops"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        const MemMb size_mb = sizes[i];
        const CellOutcome<SimResult>& cell = report.cells[i];
        table.addRow({formatDouble(size_mb / 1024.0, 0),
                      formatDouble(exact.hitRatio(size_mb), 3),
                      formatDouble(sampled.hitRatio(size_mb), 3),
                      formatDouble(che.hitRatio(size_mb), 3),
                      bench::cellText(
                          cell,
                          [](const SimResult& r) {
                              return r.total() > 0
                                  ? static_cast<double>(r.warm_starts) /
                                      static_cast<double>(r.total())
                                  : 0.0;
                          },
                          3),
                      bench::cellCount(cell, [](const SimResult& r) {
                          return r.dropped;
                      })});
    }
    table.print(std::cout);
    std::cout << "\nMax achievable hit ratio (compulsory-miss bound): "
              << formatDouble(exact.maxHitRatio(), 3) << "\n";
    return report.allOk() ? 0 : 1;
}

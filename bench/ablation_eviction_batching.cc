/**
 * @file
 * Ablation of eviction batching (paper §6: "we batch eviction
 * operations to optimize the slow-path: we evict multiple containers to
 * reach a certain free resource threshold (1000 MB is the current
 * default)"). Larger batches run the sorting slow path less often at
 * the cost of evicting containers earlier than strictly necessary.
 */
#include <iostream>

#include "core/greedy_dual.h"
#include "sim/simulator.h"
#include "util/table.h"
#include "workloads.h"

using namespace faascache;

int
main()
{
    const Trace pop = bench::population();
    const Trace rep = bench::representativeTrace(pop);
    const MemMb memory = 15 * 1024.0;

    std::cout << "Eviction-batching ablation — Greedy-Dual on the "
                 "representative trace at "
              << formatDouble(memory / 1024.0, 0) << " GB\n\n";

    TablePrinter table({"Batch threshold (MB)", "cold %",
                        "exec increase %", "slow-path rounds",
                        "evictions", "evictions/round"});
    for (double batch : {0.0, 256.0, 1024.0, 4096.0}) {
        GreedyDualConfig gd;
        gd.batch_free_mb = batch;
        SimulatorConfig config;
        config.memory_mb = memory;
        config.memory_sample_interval_us = 0;
        const SimResult r = simulateTrace(
            rep, std::make_unique<GreedyDualPolicy>(gd), config);
        const double per_round = r.eviction_rounds > 0
            ? static_cast<double>(r.evictions) /
                static_cast<double>(r.eviction_rounds)
            : 0.0;
        table.addRow({formatDouble(batch, 0),
                      formatDouble(r.coldStartPercent(), 2),
                      formatDouble(r.execTimeIncreasePercent(), 2),
                      std::to_string(r.eviction_rounds),
                      std::to_string(r.evictions),
                      formatDouble(per_round, 1)});
    }
    table.print(std::cout);
    std::cout << "\nBatching trades slightly earlier evictions (a small "
                 "hit-ratio cost) for far\nfewer slow-path sorting "
                 "rounds on the invocation critical path.\n";
    return 0;
}

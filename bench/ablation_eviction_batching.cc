/**
 * @file
 * Ablation of eviction batching (paper §6: "we batch eviction
 * operations to optimize the slow-path: we evict multiple containers to
 * reach a certain free resource threshold (1000 MB is the current
 * default)"). Larger batches run the sorting slow path less often at
 * the cost of evicting containers earlier than strictly necessary.
 *
 * The batch-threshold cells run through the parallel SweepRunner
 * (`--jobs N`); output is byte-identical for any worker count.
 * Crash-safety flags: `--deadline-s X`, `--retries N`,
 * `--ckpt PATH [--resume]`; failed cells render as ERR.
 */
#include <iostream>

#include "core/greedy_dual.h"
#include "sim/sweep_runner.h"
#include "util/table.h"
#include "workloads.h"

using namespace faascache;

int
main(int argc, char** argv)
{
    const Trace pop = bench::population();
    const Trace rep = bench::representativeTrace(pop);
    const MemMb memory = 15 * 1024.0;

    std::cout << "Eviction-batching ablation — Greedy-Dual on the "
                 "representative trace at "
              << formatDouble(memory / 1024.0, 0) << " GB\n\n";

    const std::vector<double> batches = {0.0, 256.0, 1024.0, 4096.0};
    std::vector<SweepCell> cells;
    for (double batch : batches) {
        GreedyDualConfig gd;
        gd.batch_free_mb = batch;

        SweepCell cell;
        cell.trace = &rep;
        cell.make_policy = [gd]() {
            return std::make_unique<GreedyDualPolicy>(gd);
        };
        cell.sim.memory_mb = memory;
        cell.sim.memory_sample_interval_us = 0;
        cells.push_back(std::move(cell));
    }
    const SweepReport report =
        bench::runBenchSweep(cells, bench::parseBenchArgs(argc, argv));

    TablePrinter table({"Batch threshold (MB)", "cold %",
                        "exec increase %", "slow-path rounds",
                        "evictions", "evictions/round"});
    for (std::size_t i = 0; i < batches.size(); ++i) {
        const CellOutcome<SimResult>& cell = report.cells[i];
        table.addRow(
            {formatDouble(batches[i], 0),
             bench::cellText(
                 cell,
                 [](const SimResult& r) { return r.coldStartPercent(); },
                 2),
             bench::cellText(
                 cell,
                 [](const SimResult& r) {
                     return r.execTimeIncreasePercent();
                 },
                 2),
             bench::cellCount(
                 cell,
                 [](const SimResult& r) { return r.eviction_rounds; }),
             bench::cellCount(
                 cell, [](const SimResult& r) { return r.evictions; }),
             bench::cellText(
                 cell,
                 [](const SimResult& r) {
                     return r.eviction_rounds > 0
                         ? static_cast<double>(r.evictions) /
                             static_cast<double>(r.eviction_rounds)
                         : 0.0;
                 },
                 1)});
    }
    table.print(std::cout);
    std::cout << "\nBatching trades slightly earlier evictions (a small "
                 "hit-ratio cost) for far\nfewer slow-path sorting "
                 "rounds on the invocation critical path.\n";
    return report.allOk() ? 0 : 1;
}

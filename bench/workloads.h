/**
 * @file
 * Canonical workloads and sweep grids shared by the bench harnesses.
 *
 * All figure/table benches derive their traces from one synthetic Azure
 * population (DESIGN.md §1 documents the substitution) using the
 * paper's three sampling recipes, so the numbers across benches are
 * mutually consistent.
 *
 * Seeding: every stochastic step (population generation, each sampling
 * recipe) runs on its own stream derived SplitMix64-style from the
 * single bench base seed via deriveCellSeed(). Streams are keyed by
 * stable constants, never by grid position, so adding a policy, a
 * memory size, or a whole subfigure to a sweep can never perturb the
 * trace another cell replays.
 */
#ifndef FAASCACHE_BENCH_WORKLOADS_H_
#define FAASCACHE_BENCH_WORKLOADS_H_

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "platform/experiment.h"
#include "provisioning/elastic_sweep.h"
#include "sim/sweep_runner.h"
#include "trace/azure_model.h"
#include "trace/samplers.h"
#include "trace/trace.h"
#include "util/cancellation.h"
#include "util/table.h"

namespace faascache::bench {

/** Base seed every bench stream is derived from. */
inline constexpr std::uint64_t kBenchSeed = 2021;

/** Stable stream keys for the derived bench seeds. */
enum BenchStream : std::uint64_t
{
    kStreamPopulation = 1,
    kStreamRepresentative = 2,
    kStreamRare = 3,
    kStreamRandom = 4,
};

/** The seed of one named bench stream. */
inline std::uint64_t
streamSeed(BenchStream stream)
{
    return deriveCellSeed(kBenchSeed, stream);
}

/** The population every sample is drawn from (deterministic). */
inline Trace
population()
{
    AzureModelConfig config;
    config.seed = streamSeed(kStreamPopulation);
    config.num_functions = 2000;
    config.duration_us = 2 * kHour;
    config.iat_median_sec = 120.0;
    config.max_rate_per_sec = 2.0;
    // Per-function memory: the Azure trace reports memory per *app*,
    // split across the app's functions, so per-function footprints are
    // small (tens to a few hundred MB).
    config.mem_median_mb = 64.0;
    config.mem_sigma = 0.7;
    config.mem_max_mb = 512.0;
    config.name = "azure-synthetic-population";
    return generateAzureTrace(config);
}

/** REPRESENTATIVE sample: 400 functions, one quarter per frequency
 *  quartile (Table 2 row 1). */
inline Trace
representativeTrace(const Trace& pop)
{
    return sampleRepresentative(pop, 400, streamSeed(kStreamRepresentative));
}

/** RARE sample: 1000 of the most infrequently invoked functions
 *  (Table 2 row 2). */
inline Trace
rareTrace(const Trace& pop)
{
    return sampleRare(pop, 1000, streamSeed(kStreamRare));
}

/** RANDOM sample: 200 functions chosen uniformly (Table 2 row 3). */
inline Trace
randomTrace(const Trace& pop)
{
    return sampleRandom(pop, 200, streamSeed(kStreamRandom));
}

/** Memory sweep (MB) for the REPRESENTATIVE and RARE figures. */
inline std::vector<MemMb>
largeMemorySweepMb()
{
    std::vector<MemMb> sizes;
    for (double gb : {5.0, 10.0, 15.0, 20.0, 30.0, 40.0, 60.0, 80.0})
        sizes.push_back(gb * 1024.0);
    return sizes;
}

/** Memory sweep (MB) for the RANDOM figure (smaller active set). */
inline std::vector<MemMb>
smallMemorySweepMb()
{
    std::vector<MemMb> sizes;
    for (double gb : {2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0, 24.0})
        sizes.push_back(gb * 1024.0);
    return sizes;
}

/** Shared bench command-line options (crash-safe sweep driving). */
struct BenchOptions
{
    /** Sweep worker count; 0 = hardware concurrency. */
    std::size_t jobs = 0;

    /** Per-cell wall-clock deadline, seconds; 0 disables it. */
    double deadline_s = 0.0;

    /** Extra attempts after a failed or timed-out cell. */
    int retries = 0;

    /** Checkpoint journal path; empty disables checkpointing. */
    std::string checkpoint_path;

    /** Restore completed cells from checkpoint_path before running. */
    bool resume = false;
};

/**
 * Parse the shared bench command line:
 *   --jobs N        sweep worker count (0/absent = hardware concurrency)
 *   --deadline-s X  per-cell wall-clock deadline in seconds
 *   --retries N     extra attempts for failed/timed-out cells
 *   --ckpt PATH     journal completed cells to PATH as they finish
 *   --resume        restore completed cells from --ckpt before running
 * Every flag also accepts the --flag=value form. Exits with usage on
 * malformed input; unknown arguments are ignored (benches may layer
 * their own flags).
 */
inline BenchOptions
parseBenchArgs(int argc, char** argv)
{
    const auto usage = [&]() {
        std::cerr << "usage: " << argv[0]
                  << " [--jobs N] [--deadline-s X] [--retries N]"
                     " [--ckpt PATH [--resume]]\n";
        std::exit(2);
    };
    const auto parse_size = [&](const char* text) -> std::size_t {
        char* end = nullptr;
        const unsigned long value = std::strtoul(text, &end, 10);
        if (end == text || *end != '\0')
            usage();
        return static_cast<std::size_t>(value);
    };
    const auto parse_double = [&](const char* text) -> double {
        char* end = nullptr;
        const double value = std::strtod(text, &end);
        if (end == text || *end != '\0' || value < 0.0)
            usage();
        return value;
    };
    // Value of `--name V` / `--name=V`, or nullptr when argv[i] is not
    // this flag; advances i past a detached value.
    const auto value_of = [&](const char* name, int& i) -> const char* {
        const std::size_t len = std::strlen(name);
        if (std::strcmp(argv[i], name) == 0) {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        }
        if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=')
            return argv[i] + len + 1;
        return nullptr;
    };

    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
        if (const char* v = value_of("--jobs", i))
            options.jobs = parse_size(v);
        else if (const char* v = value_of("--deadline-s", i))
            options.deadline_s = parse_double(v);
        else if (const char* v = value_of("--retries", i))
            options.retries = static_cast<int>(parse_size(v));
        else if (const char* v = value_of("--ckpt", i))
            options.checkpoint_path = v;
        else if (std::strcmp(argv[i], "--resume") == 0)
            options.resume = true;
    }
    if (options.resume && options.checkpoint_path.empty()) {
        std::cerr << argv[0] << ": --resume requires --ckpt PATH\n";
        std::exit(2);
    }
    return options;
}

/** Legacy shim: the worker count alone. */
inline std::size_t
jobsFromArgs(int argc, char** argv)
{
    return parseBenchArgs(argc, argv).jobs;
}

/**
 * Non-ok cells, rendered one per line to `err` (empty report prints
 * nothing). @return the number of cells that did not produce a result.
 */
template <typename Result>
inline std::size_t
reportCellIssues(const std::vector<CellOutcome<Result>>& cells,
                 std::ostream& err)
{
    std::size_t issues = 0;
    for (const CellOutcome<Result>& cell : cells) {
        if (cell.ok())
            continue;
        ++issues;
        err << "ERR cell " << cell.key << " ["
            << cellStatusName(cell.status) << "]: " << cell.error;
        if (cell.attempts > 1)
            err << " (after " << cell.attempts << " attempts)";
        err << "\n";
    }
    return issues;
}

/**
 * The bench's shared post-sweep behaviour, applied to any report
 * flavour (sim, platform, cluster, elastic — they share the
 * cells/completed/restored shape):
 *  - restored cells are announced on stderr;
 *  - a signal-interrupted sweep prints progress (with a resume hint
 *    when --ckpt is set) and exits 128+sig;
 *  - failed/timed-out cells are reported to stderr and rendered as ERR
 *    by the caller's table (cellText below); they never abort the run.
 */
template <typename Report>
inline Report
finishBenchSweep(Report report, const BenchOptions& options)
{
    if (report.restored > 0) {
        std::cerr << "sweep: restored " << report.restored << " of "
                  << report.cells.size() << " cells from checkpoint "
                  << options.checkpoint_path << "\n";
    }
    if (!report.completed) {
        const std::size_t done =
            report.countWithStatus(CellStatus::Ok);
        std::cerr << "sweep: interrupted by signal "
                  << ScopedSignalCancellation::lastSignal() << "; "
                  << done << " of " << report.cells.size()
                  << " cells completed";
        if (!options.checkpoint_path.empty())
            std::cerr << " (journaled to " << options.checkpoint_path
                      << "; rerun with --resume to continue)";
        std::cerr << "\n";
        std::exit(128 + ScopedSignalCancellation::lastSignal());
    }
    reportCellIssues(report.cells, std::cerr);
    return report;
}

/**
 * Run a SimResult sweep under the crash-safety harness with the bench's
 * shared behaviour:
 *  - SIGINT/SIGTERM cancel outstanding cells, completed cells are kept
 *    (and journaled when --ckpt is set), and the bench exits 128+sig;
 *  - --ckpt journals every completed cell; --resume restores from the
 *    journal and re-runs only missing cells;
 *  - failed/timed-out cells never abort the run (see finishBenchSweep).
 */
inline SweepReport
runBenchSweep(const std::vector<SweepCell>& cells,
              const BenchOptions& options)
{
    CancellationToken cancel;
    ScopedSignalCancellation signals(cancel);

    SweepOptions sweep;
    sweep.deadline_s = options.deadline_s;
    sweep.max_retries = options.retries;
    sweep.checkpoint_path = options.checkpoint_path;
    sweep.resume = options.resume;
    sweep.cancel = &cancel;

    return finishBenchSweep(runSweepReport(cells, options.jobs, sweep),
                            options);
}

/** Like runBenchSweep, for platform sweeps (PlatformResult journal). */
inline PlatformSweepReport
runBenchPlatformSweep(const std::vector<PlatformCell>& cells,
                      const BenchOptions& options)
{
    CancellationToken cancel;
    ScopedSignalCancellation signals(cancel);

    PlatformSweepOptions sweep;
    sweep.deadline_s = options.deadline_s;
    sweep.max_retries = options.retries;
    sweep.checkpoint_path = options.checkpoint_path;
    sweep.resume = options.resume;
    sweep.cancel = &cancel;

    return finishBenchSweep(
        runPlatformSweepReport(cells, options.jobs, sweep), options);
}

/** Like runBenchSweep, for cluster sweeps (ClusterResult journal). */
inline ClusterSweepReport
runBenchClusterSweep(const std::vector<ClusterCell>& cells,
                     const BenchOptions& options)
{
    CancellationToken cancel;
    ScopedSignalCancellation signals(cancel);

    PlatformSweepOptions sweep;
    sweep.deadline_s = options.deadline_s;
    sweep.max_retries = options.retries;
    sweep.checkpoint_path = options.checkpoint_path;
    sweep.resume = options.resume;
    sweep.cancel = &cancel;

    return finishBenchSweep(
        runClusterSweepReport(cells, options.jobs, sweep), options);
}

/** Like runBenchSweep, for elastic sweeps (ElasticResult journal). */
inline ElasticSweepReport
runBenchElasticSweep(const std::vector<ElasticCell>& cells,
                     const BenchOptions& options)
{
    CancellationToken cancel;
    ScopedSignalCancellation signals(cancel);

    SweepOptions sweep;
    sweep.deadline_s = options.deadline_s;
    sweep.max_retries = options.retries;
    sweep.checkpoint_path = options.checkpoint_path;
    sweep.resume = options.resume;
    sweep.cancel = &cancel;

    return finishBenchSweep(
        runElasticSweepReport(cells, options.jobs, sweep), options);
}

/**
 * Table text of one cell metric: formatDouble(metric(result)) when the
 * cell produced a result, the explicit "ERR" marker otherwise.
 */
template <typename Result, typename Metric>
inline std::string
cellText(const CellOutcome<Result>& cell, Metric metric, int precision)
{
    if (!cell.ok())
        return "ERR";
    return formatDouble(metric(cell.result), precision);
}

/** Table text of one integral cell metric ("ERR" when the cell has no
 *  result). */
template <typename Result, typename Metric>
inline std::string
cellCount(const CellOutcome<Result>& cell, Metric metric)
{
    if (!cell.ok())
        return "ERR";
    return std::to_string(metric(cell.result));
}

}  // namespace faascache::bench

#endif  // FAASCACHE_BENCH_WORKLOADS_H_

/**
 * @file
 * Canonical workloads and sweep grids shared by the bench harnesses.
 *
 * All figure/table benches derive their traces from one synthetic Azure
 * population (DESIGN.md §1 documents the substitution) using the
 * paper's three sampling recipes, so the numbers across benches are
 * mutually consistent.
 *
 * Seeding: every stochastic step (population generation, each sampling
 * recipe) runs on its own stream derived SplitMix64-style from the
 * single bench base seed via deriveCellSeed(). Streams are keyed by
 * stable constants, never by grid position, so adding a policy, a
 * memory size, or a whole subfigure to a sweep can never perturb the
 * trace another cell replays.
 */
#ifndef FAASCACHE_BENCH_WORKLOADS_H_
#define FAASCACHE_BENCH_WORKLOADS_H_

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "sim/sweep_runner.h"
#include "trace/azure_model.h"
#include "trace/samplers.h"
#include "trace/trace.h"

namespace faascache::bench {

/** Base seed every bench stream is derived from. */
inline constexpr std::uint64_t kBenchSeed = 2021;

/** Stable stream keys for the derived bench seeds. */
enum BenchStream : std::uint64_t
{
    kStreamPopulation = 1,
    kStreamRepresentative = 2,
    kStreamRare = 3,
    kStreamRandom = 4,
};

/** The seed of one named bench stream. */
inline std::uint64_t
streamSeed(BenchStream stream)
{
    return deriveCellSeed(kBenchSeed, stream);
}

/** The population every sample is drawn from (deterministic). */
inline Trace
population()
{
    AzureModelConfig config;
    config.seed = streamSeed(kStreamPopulation);
    config.num_functions = 2000;
    config.duration_us = 2 * kHour;
    config.iat_median_sec = 120.0;
    config.max_rate_per_sec = 2.0;
    // Per-function memory: the Azure trace reports memory per *app*,
    // split across the app's functions, so per-function footprints are
    // small (tens to a few hundred MB).
    config.mem_median_mb = 64.0;
    config.mem_sigma = 0.7;
    config.mem_max_mb = 512.0;
    config.name = "azure-synthetic-population";
    return generateAzureTrace(config);
}

/** REPRESENTATIVE sample: 400 functions, one quarter per frequency
 *  quartile (Table 2 row 1). */
inline Trace
representativeTrace(const Trace& pop)
{
    return sampleRepresentative(pop, 400, streamSeed(kStreamRepresentative));
}

/** RARE sample: 1000 of the most infrequently invoked functions
 *  (Table 2 row 2). */
inline Trace
rareTrace(const Trace& pop)
{
    return sampleRare(pop, 1000, streamSeed(kStreamRare));
}

/** RANDOM sample: 200 functions chosen uniformly (Table 2 row 3). */
inline Trace
randomTrace(const Trace& pop)
{
    return sampleRandom(pop, 200, streamSeed(kStreamRandom));
}

/** Memory sweep (MB) for the REPRESENTATIVE and RARE figures. */
inline std::vector<MemMb>
largeMemorySweepMb()
{
    std::vector<MemMb> sizes;
    for (double gb : {5.0, 10.0, 15.0, 20.0, 30.0, 40.0, 60.0, 80.0})
        sizes.push_back(gb * 1024.0);
    return sizes;
}

/** Memory sweep (MB) for the RANDOM figure (smaller active set). */
inline std::vector<MemMb>
smallMemorySweepMb()
{
    std::vector<MemMb> sizes;
    for (double gb : {2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0, 24.0})
        sizes.push_back(gb * 1024.0);
    return sizes;
}

/**
 * Parse the shared bench command line: `--jobs N` (or `--jobs=N`)
 * selects the sweep worker count; 0 or absence selects
 * hardware_concurrency. Exits with usage on malformed input, so every
 * bench gets the flag by routing main(argc, argv) through here.
 */
inline std::size_t
jobsFromArgs(int argc, char** argv)
{
    const auto parse = [&](const char* text) -> std::size_t {
        char* end = nullptr;
        const unsigned long value = std::strtoul(text, &end, 10);
        if (end == text || *end != '\0') {
            std::cerr << "usage: " << argv[0] << " [--jobs N]\n";
            std::exit(2);
        }
        return static_cast<std::size_t>(value);
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
            return parse(argv[i + 1]);
        if (std::strncmp(argv[i], "--jobs=", 7) == 0)
            return parse(argv[i] + 7);
    }
    return 0;
}

}  // namespace faascache::bench

#endif  // FAASCACHE_BENCH_WORKLOADS_H_

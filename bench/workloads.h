/**
 * @file
 * Canonical workloads and sweep grids shared by the bench harnesses.
 *
 * All figure/table benches derive their traces from one synthetic Azure
 * population (DESIGN.md §1 documents the substitution) using the
 * paper's three sampling recipes, so the numbers across benches are
 * mutually consistent.
 */
#ifndef FAASCACHE_BENCH_WORKLOADS_H_
#define FAASCACHE_BENCH_WORKLOADS_H_

#include <vector>

#include "trace/azure_model.h"
#include "trace/samplers.h"
#include "trace/trace.h"

namespace faascache::bench {

/** The population every sample is drawn from (deterministic). */
inline Trace
population()
{
    AzureModelConfig config;
    config.seed = 2021;
    config.num_functions = 2000;
    config.duration_us = 2 * kHour;
    config.iat_median_sec = 120.0;
    config.max_rate_per_sec = 2.0;
    // Per-function memory: the Azure trace reports memory per *app*,
    // split across the app's functions, so per-function footprints are
    // small (tens to a few hundred MB).
    config.mem_median_mb = 64.0;
    config.mem_sigma = 0.7;
    config.mem_max_mb = 512.0;
    config.name = "azure-synthetic-population";
    return generateAzureTrace(config);
}

/** REPRESENTATIVE sample: 400 functions, one quarter per frequency
 *  quartile (Table 2 row 1). */
inline Trace
representativeTrace(const Trace& pop)
{
    return sampleRepresentative(pop, 400, 1);
}

/** RARE sample: 1000 of the most infrequently invoked functions
 *  (Table 2 row 2). */
inline Trace
rareTrace(const Trace& pop)
{
    return sampleRare(pop, 1000, 1);
}

/** RANDOM sample: 200 functions chosen uniformly (Table 2 row 3). */
inline Trace
randomTrace(const Trace& pop)
{
    return sampleRandom(pop, 200, 1);
}

/** Memory sweep (MB) for the REPRESENTATIVE and RARE figures. */
inline std::vector<MemMb>
largeMemorySweepMb()
{
    std::vector<MemMb> sizes;
    for (double gb : {5.0, 10.0, 15.0, 20.0, 30.0, 40.0, 60.0, 80.0})
        sizes.push_back(gb * 1024.0);
    return sizes;
}

/** Memory sweep (MB) for the RANDOM figure (smaller active set). */
inline std::vector<MemMb>
smallMemorySweepMb()
{
    std::vector<MemMb> sizes;
    for (double gb : {2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0, 24.0})
        sizes.push_back(gb * 1024.0);
    return sizes;
}

}  // namespace faascache::bench

#endif  // FAASCACHE_BENCH_WORKLOADS_H_

/**
 * @file
 * Reproduces Table 2: the size and inter-arrival-time characteristics
 * of the three Azure-derived trace samples (REPRESENTATIVE, RARE,
 * RANDOM) used throughout the trace-driven evaluation.
 */
#include <iostream>

#include "util/table.h"
#include "workloads.h"

using namespace faascache;

int
main()
{
    const Trace pop = bench::population();
    const Trace rep = bench::representativeTrace(pop);
    const Trace rare = bench::rareTrace(pop);
    const Trace rnd = bench::randomTrace(pop);

    std::cout << "Table 2: trace samples drawn from the synthetic Azure "
                 "population\n(population: "
              << pop.functions().size() << " functions, "
              << pop.invocations().size() << " invocations over "
              << formatDouble(toSeconds(pop.stats().duration_us) / 3600, 1)
              << " h)\n\n";

    TablePrinter table({"Trace", "Functions", "Num Invocations",
                        "Reqs per sec", "Avg IAT (ms)",
                        "Unique mem (GB)"});
    for (const Trace* trace : {&rep, &rare, &rnd}) {
        const TraceStats s = trace->stats();
        table.addRow({trace->name(), std::to_string(s.num_functions),
                      std::to_string(s.num_invocations),
                      formatDouble(s.requests_per_sec, 1),
                      formatDouble(toMillis(s.avg_iat_us), 2),
                      formatDouble(s.total_unique_mem_mb / 1024.0, 1)});
    }
    table.print(std::cout);
    std::cout << "\nAs in the paper, the representative sample mixes all "
                 "frequency quartiles,\nthe rare sample is dominated by "
                 "infrequent functions (long IATs), and the\nrandom "
                 "sample mostly misses the few heavy hitters.\n";
    return 0;
}

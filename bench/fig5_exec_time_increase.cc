/**
 * @file
 * Reproduces Figure 5 (a, b, c): the percent increase in execution time
 * caused by cold starts, for all seven keep-alive policies
 * (GD, TTL, LRU, HIST, SIZE, LND, FREQ) across cache sizes, on the
 * REPRESENTATIVE, RARE, and RANDOM traces.
 *
 * The grid runs through the parallel SweepRunner (`--jobs N`); output
 * is byte-identical for any worker count. Crash-safety flags:
 * `--deadline-s X`, `--retries N`, `--ckpt PATH [--resume]`; failed
 * cells render as ERR instead of aborting the table.
 */
#include <iostream>

#include "core/policy_factory.h"
#include "sim/sweep_runner.h"
#include "util/table.h"
#include "workloads.h"

using namespace faascache;

namespace {

struct Subfigure
{
    const char* label;
    Trace trace;
    std::vector<MemMb> sizes;
};

std::vector<SweepCell>
cellsOf(const Subfigure& sub)
{
    std::vector<SweepCell> cells;
    for (MemMb size_mb : sub.sizes) {
        for (PolicyKind kind : allPolicyKinds()) {
            SweepCell cell = makeCell(sub.trace, kind, size_mb);
            cell.sim.memory_sample_interval_us = 0;
            cells.push_back(std::move(cell));
        }
    }
    return cells;
}

void
printSubfigure(const Subfigure& sub,
               const std::vector<CellOutcome<SimResult>>& outcomes)
{
    std::cout << sub.label << " — trace '" << sub.trace.name() << "' ("
              << sub.trace.invocations().size() << " invocations, "
              << sub.trace.functions().size() << " functions)\n\n";

    std::vector<std::string> headers = {"Memory (GB)"};
    for (PolicyKind kind : allPolicyKinds())
        headers.push_back(policyKindName(kind));
    TablePrinter table(std::move(headers));

    std::size_t next = 0;
    for (MemMb size_mb : sub.sizes) {
        std::vector<std::string> row = {formatDouble(size_mb / 1024.0, 0)};
        for (PolicyKind kind : allPolicyKinds()) {
            (void)kind;
            row.push_back(bench::cellText(
                outcomes[next++],
                [](const SimResult& r) {
                    return r.execTimeIncreasePercent();
                },
                2));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n";
}

}  // namespace

int
main(int argc, char** argv)
{
    std::cout << "Figure 5: % increase in execution time due to "
                 "cold-starts (lower is better)\n\n";
    const Trace pop = bench::population();
    const Subfigure subfigures[] = {
        {"(a) Representative functions", bench::representativeTrace(pop),
         bench::largeMemorySweepMb()},
        {"(b) Rare functions", bench::rareTrace(pop),
         bench::largeMemorySweepMb()},
        {"(c) Random sampling", bench::randomTrace(pop),
         bench::smallMemorySweepMb()},
    };

    std::vector<SweepCell> cells;
    for (const Subfigure& sub : subfigures) {
        std::vector<SweepCell> sub_cells = cellsOf(sub);
        cells.insert(cells.end(),
                     std::make_move_iterator(sub_cells.begin()),
                     std::make_move_iterator(sub_cells.end()));
    }
    const SweepReport report =
        bench::runBenchSweep(cells, bench::parseBenchArgs(argc, argv));

    std::size_t offset = 0;
    for (const Subfigure& sub : subfigures) {
        const std::size_t count =
            sub.sizes.size() * allPolicyKinds().size();
        printSubfigure(sub, {report.cells.begin() + offset,
                             report.cells.begin() + offset + count});
        offset += count;
    }
    std::cout << "Expected shape (paper §7.1): GD reaches its floor at a "
                 "~3x smaller cache than the\nother policies on the "
                 "representative trace; recency (LRU) dominates on the "
                 "rare and\nrandom traces where TTL pays its 10-minute "
                 "expirations.\n";
    return report.allOk() ? 0 : 1;
}

/**
 * @file
 * Reproduces Figure 5 (a, b, c): the percent increase in execution time
 * caused by cold starts, for all seven keep-alive policies
 * (GD, TTL, LRU, HIST, SIZE, LND, FREQ) across cache sizes, on the
 * REPRESENTATIVE, RARE, and RANDOM traces.
 */
#include <iostream>

#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "util/table.h"
#include "workloads.h"

using namespace faascache;

namespace {

void
runSubfigure(const char* label, const Trace& trace,
             const std::vector<MemMb>& sizes)
{
    std::cout << label << " — trace '" << trace.name() << "' ("
              << trace.invocations().size() << " invocations, "
              << trace.functions().size() << " functions)\n\n";

    std::vector<std::string> headers = {"Memory (GB)"};
    for (PolicyKind kind : allPolicyKinds())
        headers.push_back(policyKindName(kind));
    TablePrinter table(std::move(headers));

    for (MemMb size_mb : sizes) {
        std::vector<std::string> row = {formatDouble(size_mb / 1024.0, 0)};
        for (PolicyKind kind : allPolicyKinds()) {
            SimulatorConfig config;
            config.memory_mb = size_mb;
            config.memory_sample_interval_us = 0;
            const SimResult r =
                simulateTrace(trace, makePolicy(kind), config);
            row.push_back(formatDouble(r.execTimeIncreasePercent(), 2));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n";
}

}  // namespace

int
main()
{
    std::cout << "Figure 5: % increase in execution time due to "
                 "cold-starts (lower is better)\n\n";
    const Trace pop = bench::population();
    runSubfigure("(a) Representative functions",
                 bench::representativeTrace(pop),
                 bench::largeMemorySweepMb());
    runSubfigure("(b) Rare functions", bench::rareTrace(pop),
                 bench::largeMemorySweepMb());
    runSubfigure("(c) Random sampling", bench::randomTrace(pop),
                 bench::smallMemorySweepMb());
    std::cout << "Expected shape (paper §7.1): GD reaches its floor at a "
                 "~3x smaller cache than the\nother policies on the "
                 "representative trace; recency (LRU) dominates on the "
                 "rare and\nrandom traces where TTL pays its 10-minute "
                 "expirations.\n";
    return 0;
}

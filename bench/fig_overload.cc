/**
 * @file
 * Overload-control experiment: a flash crowd (burst intensity sweep)
 * plus a mid-burst server crash, replayed against a 4-server cluster
 * with TTL (vanilla OpenWhisk) and Greedy-Dual (FaasCache) keep-alive,
 * each undefended and defended by the overload subsystem — CoDel-style
 * adaptive admission, cold-start brownout, cluster retry budgets, and
 * per-server circuit breakers (DESIGN.md §4e).
 *
 * The question the table answers: when the §7.2 feedback loop (cold
 * starts hold cores and memory longer, the queue grows, requests time
 * out) is provoked on purpose, does shedding early and denying only the
 * cold path buy back goodput and time-to-recovery — and does the
 * Greedy-Dual cache value the brownout protects show up as warm hits?
 *
 * Flags: the shared bench sweep flags (--jobs/--deadline-s/--retries/
 * --ckpt/--resume, see bench/workloads.h) plus --smoke, which shrinks
 * the grid to one burst intensity for CI, and --shards N, which runs
 * every cell through the sharded windowed cluster engine (N worker
 * threads per cell; results are shard-count invariant).
 */
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <iostream>
#include <string>
#include <vector>

#include "platform/cluster.h"
#include "trace/azure_model.h"
#include "util/stats.h"
#include "util/table.h"
#include "workloads.h"

using namespace faascache;

namespace {

constexpr TimeUs kBurstStart = 20 * kMinute;
constexpr TimeUs kBurstLen = 5 * kMinute;

/** Burst invocations injected per unit of intensity. */
constexpr std::int64_t kBurstPerIntensity = 1'200;

/**
 * Steady Azure-model background plus a flash crowd: `intensity` x 1200
 * invocations of previously-unseen functions — one invocation per
 * function, so there is no warm reuse to hide behind — evenly spaced
 * across the burst window. Every crowd request is an expensive
 * multi-second cold init at cold_start_cpu_slots, so the burst provokes
 * exactly the §7.2 feedback loop: cold starts eat cores and evict the
 * warm background working set, which then re-cold-starts.
 */
Trace
workload(TimeUs duration, int intensity)
{
    AzureModelConfig model;
    model.seed = 11;
    model.num_functions = 96;
    model.duration_us = duration;
    model.iat_median_sec = 60.0;
    model.max_rate_per_sec = 0.5;
    // Bounded warm times keep the steady background comfortably inside
    // the fleet's capacity: congestion in this experiment comes from the
    // crowd, not from a heavy hitter saturating its hash-home server.
    model.warm_median_ms = 300.0;
    model.warm_sigma = 0.8;
    model.warm_max_ms = 4'000.0;
    // Background cold starts stay cheap; the expensive inits belong to
    // the flash crowd below.
    model.init_ratio_max = 2.0;
    model.mem_median_mb = 160.0;
    model.mem_sigma = 0.7;
    model.mem_min_mb = 64;
    model.mem_max_mb = 512;
    Trace trace = generateAzureTrace(model);

    const std::size_t catalog = trace.functions().size();
    const std::int64_t extra = intensity * kBurstPerIntensity;
    trace.reserveInvocations(trace.invocations().size() +
                             static_cast<std::size_t>(extra));
    for (std::int64_t i = 0; i < extra; ++i) {
        const FunctionId id =
            static_cast<FunctionId>(catalog + static_cast<std::size_t>(i));
        // The web-serving end of the paper's Table 1: a quick warm run
        // behind a multi-second, CPU-heavy initialization.
        trace.addFunction(makeFunction(id, "crowd-" + std::to_string(i),
                                       /*mem_mb=*/256, fromMillis(400),
                                       fromMillis(2'500)));
        trace.addInvocation(id, kBurstStart + (i * kBurstLen) / extra);
    }
    trace.sortInvocations();
    trace.setName("overload-x" + std::to_string(intensity));
    return trace;
}

/**
 * Mid-burst fault schedule: server 1 dies one minute into the crowd and
 * is back two minutes later, spilling its queue into the retry path
 * while the fleet is already saturated; flaky spawns ride along.
 */
FaultPlan
burstOutage()
{
    FaultPlan plan;
    plan.crashes.push_back({1, kBurstStart + kMinute, 2 * kMinute});
    plan.spawn_failure_prob = 0.02;
    return plan;
}

ClusterConfig
baseConfig()
{
    ClusterConfig config;
    config.num_servers = 4;
    config.server.cores = 6;
    // Roomy pools: the crowd's cold starts are core-bound, not
    // memory-bound, so the §7.2 collapse the defense fights is queue
    // growth behind busy cores rather than eviction churn. Cold inits
    // occupy one ordinary core slot, which makes the collapse a pure
    // head-of-line-blocking story: once every core is grinding through
    // a crowd init, the warm background hits queued behind the crowd
    // cannot start at all.
    config.server.memory_mb = 8000;
    config.balancing = LoadBalancing::FunctionHash;
    config.faults = burstOutage();
    return config;
}

/** The defended variant: every overload mechanism armed. */
ClusterConfig
defendedConfig()
{
    ClusterConfig config = baseConfig();
    config.server.overload.admission.enabled = true;
    config.server.overload.admission.target_delay_us = 2 * kSecond;
    config.server.overload.admission.interval_us = 5 * kSecond;
    config.server.overload.brownout.enabled = true;
    config.server.overload.brownout.min_duration_us = 10 * kSecond;
    config.failover.retry_budget.ratio = 0.1;
    config.failover.retry_budget.burst = 8;
    config.failover.breaker.failure_threshold = 16;
    config.failover.breaker.open_duration_us = 10 * kSecond;
    return config;
}

std::int64_t
totalServed(const ClusterResult& r)
{
    return r.warmStarts() + r.coldStarts();
}

/**
 * Goodput SLO: a request only counts as good if it completes within
 * this latency bound — over 10x the calm cluster's p50, so it only
 * excludes requests the overload actually damaged.
 */
constexpr double kSloSec = 5.0;

/** Served invocations that met the SLO. */
std::int64_t
sloServed(const ClusterResult& r)
{
    std::int64_t good = 0;
    for (const PlatformResult& s : r.servers)
        for (double latency : s.latencies_sec)
            good += latency <= kSloSec ? 1 : 0;
    return good;
}

/** Last instant any server still had a core's worth of backlog. */
TimeUs
lastCongestedUs(const ClusterResult& r)
{
    TimeUs last = 0;
    for (const PlatformResult& s : r.servers)
        last = std::max(last, s.last_congested_us);
    return last;
}

/** Time from burst onset until the fleet's queues last backed up. */
double
recoverySec(const ClusterResult& r)
{
    const TimeUs last = lastCongestedUs(r);
    return last > kBurstStart ? toSeconds(last - kBurstStart) : 0.0;
}

Summary
latencySummary(const ClusterResult& r)
{
    std::vector<double> all;
    for (const PlatformResult& s : r.servers)
        all.insert(all.end(), s.latencies_sec.begin(),
                   s.latencies_sec.end());
    return summarize(std::move(all));
}

}  // namespace

int
main(int argc, char** argv)
{
    const bench::BenchOptions options = bench::parseBenchArgs(argc, argv);
    bool smoke = false;
    std::size_t shards = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc)
            shards = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
    }

    const TimeUs duration = smoke ? 40 * kMinute : kHour;
    const std::vector<int> intensities =
        smoke ? std::vector<int>{4} : std::vector<int>{2, 4, 8};

    std::cout << "Overload control: flash crowd + mid-burst crash, "
                 "4-server cluster, TTL vs GreedyDual,\nundefended vs "
                 "defended (CoDel admission + cold-start brownout + "
                 "retry budget + breaker)\n(burst of intensity x "
              << kBurstPerIntensity << " extra invocations over "
              << toSeconds(kBurstLen) / 60 << " min starting at "
              << toSeconds(kBurstStart) / 60
              << " min; server 1 crashes 1 min in for 2 min)\n\n";

    std::deque<Trace> traces;
    std::vector<std::string> labels;
    std::vector<ClusterCell> cells;
    std::vector<std::size_t> totals;
    for (int intensity : intensities) {
        traces.push_back(workload(duration, intensity));
        const Trace& trace = traces.back();
        for (PolicyKind kind :
             {PolicyKind::Ttl, PolicyKind::GreedyDual}) {
            const std::string policy =
                kind == PolicyKind::Ttl ? "TTL" : "GreedyDual";
            for (bool defended : {false, true}) {
                const std::string mode =
                    defended ? "defended" : "undefended";
                labels.push_back("x" + std::to_string(intensity) + " " +
                                 policy + " " + mode);
                ClusterConfig config =
                    defended ? defendedConfig() : baseConfig();
                config.shards = shards;
                cells.push_back({&trace, kind, config, {},
                                 trace.name() + "/" + policy + "/" + mode});
                totals.push_back(trace.invocations().size());
            }
        }
    }

    const ClusterSweepReport report =
        bench::runBenchClusterSweep(cells, options);

    TablePrinter table({"Run", "Goodput%", "Served%", "Warm%", "Cold",
                        "Drop", "Shed", "Denied", "Fail", "p50(s)",
                        "p99(s)", "Recov(s)"});
    for (std::size_t i = 0; i < report.cells.size(); ++i) {
        const CellOutcome<ClusterResult>& cell = report.cells[i];
        if (!cell.ok()) {
            table.addRow({labels[i], "ERR", "ERR", "ERR", "ERR", "ERR",
                          "ERR", "ERR", "ERR", "ERR", "ERR", "ERR"});
            continue;
        }
        const ClusterResult& r = cell.result;
        const OverloadCounters oc = r.overload();
        const Summary lat = latencySummary(r);
        const double goodput =
            100.0 * static_cast<double>(sloServed(r)) /
            static_cast<double>(totals[i]);
        const double served =
            100.0 * static_cast<double>(totalServed(r)) /
            static_cast<double>(totals[i]);
        // Drop = queue-full + queue-timeout losses only; arrivals the
        // defense turned away on purpose report as Shed (admission +
        // cluster high-water) and Denied (brownout cold path).
        const std::int64_t queue_drops = r.dropped() - oc.admission_shed -
                                         oc.brownout_denied_cold;
        table.addRow({labels[i], formatDouble(goodput, 1),
                      formatDouble(served, 1),
                      formatDouble(r.warmPercent(), 1),
                      std::to_string(r.coldStarts()),
                      std::to_string(queue_drops),
                      std::to_string(r.shed_requests + oc.admission_shed),
                      std::to_string(oc.brownout_denied_cold),
                      std::to_string(r.failed_requests),
                      formatDouble(lat.p50, 2), formatDouble(lat.p99, 2),
                      formatDouble(recoverySec(r), 0)});
    }
    table.print(std::cout);

    // Headline comparison: Greedy-Dual defended vs undefended at the
    // middle burst intensity (the sweet spot the defense is tuned for;
    // the heaviest row shows the trade-off's boundary instead).
    const std::size_t mid =
        intensities.size() > 1 ? 1 : 0;  // x4 in both full and smoke grids
    const std::size_t gd_undef = mid * 4 + 2;
    const std::size_t gd_def = mid * 4 + 3;
    if (report.cells[gd_undef].ok() && report.cells[gd_def].ok()) {
        const ClusterResult& undef = report.cells[gd_undef].result;
        const ClusterResult& def = report.cells[gd_def].result;
        const double total = static_cast<double>(totals[gd_def]);
        std::cout << "\nAt the x" << intensities[mid]
                  << " burst the defended Greedy-Dual cluster delivers "
                  << formatDouble(100.0 * sloServed(def) / total, 1)
                  << "% goodput (served within " << formatDouble(kSloSec, 0)
                  << " s) vs "
                  << formatDouble(100.0 * sloServed(undef) / total, 1)
                  << "% undefended, clears its backlog "
                  << formatDouble(
                         recoverySec(undef) - recoverySec(def), 0)
                  << " s sooner ("
                  << formatDouble(recoverySec(def), 0) << " s vs "
                  << formatDouble(recoverySec(undef), 0)
                  << " s after burst onset), and keeps p99 latency at "
                  << formatDouble(latencySummary(def).p99, 2) << " s vs "
                  << formatDouble(latencySummary(undef).p99, 2)
                  << " s.\nThe brownout denied "
                  << def.overload().brownout_denied_cold
                  << " cold-path requests across "
                  << def.overload().brownout_windows
                  << " windows; admission shed "
                  << def.overload().admission_shed
                  << "; the retry budget refused "
                  << def.retry_budget_exhausted << " retries.\n";
    }
    return report.allOk() ? 0 : 1;
}

/**
 * @file
 * Perf-regression harness for the allocation-free hot paths (PR 5 pool
 * rebuild, PR 7 platform rebuild).
 *
 * Times the pool-churn micro-benchmarks through BOTH ContainerPool
 * backends, the fig6-style simulator sweep through both pool backends,
 * the fig8-style platform run through BOTH PlatformBackends (dense
 * arena queue + batched event admission vs the retained reference
 * deque path, pool backend held at Slab so the ratio isolates the
 * platform rebuild), plus the trace-generation reserve() win, and
 * emits a JSON report (BENCH_PR7.json) with per-bench wall-clock,
 * operations/sec, backend speedups, and peak RSS.
 *
 * The regression signal is the *speedup ratio* (reference backend
 * wall-clock / optimized wall-clock), not absolute times: each
 * reference backend is the pre-PR data structure kept alive as an
 * oracle, so the ratio is machine-speed-invariant and a CI smoke run
 * on any hardware can compare it against the committed baseline.
 *
 * Usage:
 *   perf_harness [--smoke] [--reps N] [--out PATH]
 *
 * --smoke shrinks op counts and skips the 100k-container benches so the
 * whole run fits in CI smoke budgets; scripts/run_benchmarks.sh --smoke
 * performs the baseline comparison.
 */
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/container_pool.h"
#include "core/policy_factory.h"
#include "platform/experiment.h"
#include "sim/simulator.h"
#include "sim/sweep_runner.h"
#include "trace/azure_model.h"
#include "trace/samplers.h"
#include "util/rng.h"

using namespace faascache;

namespace {

struct HarnessOptions
{
    bool smoke = false;
    int reps = 3;
    std::string out_path;  // empty = stdout
};

struct BenchResult
{
    std::string name;
    std::int64_t ops = 0;
    double optimized_wall_s = 0.0;
    double reference_wall_s = 0.0;

    double optimizedOpsPerSec() const
    {
        return optimized_wall_s > 0
            ? static_cast<double>(ops) / optimized_wall_s
            : 0.0;
    }

    double referenceOpsPerSec() const
    {
        return reference_wall_s > 0
            ? static_cast<double>(ops) / reference_wall_s
            : 0.0;
    }

    double speedup() const
    {
        return optimized_wall_s > 0 ? reference_wall_s / optimized_wall_s
                                    : 0.0;
    }
};

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Best-of-`reps` wall-clock of `body()`, seconds. */
template <typename Body>
double
bestOf(int reps, Body&& body)
{
    double best = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        const double start = nowSeconds();
        body();
        const double elapsed = nowSeconds() - start;
        if (rep == 0 || elapsed < best)
            best = elapsed;
    }
    return best;
}

double
peakRssMb()
{
    struct rusage usage
    {
    };
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0.0;
    // ru_maxrss is KiB on Linux.
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

FunctionSpec
specOf(FunctionId id)
{
    return makeFunction(id, "fn" + std::to_string(id),
                        64.0 + static_cast<double>(id % 16) * 32.0,
                        fromMillis(100),
                        fromMillis(100 + 50 * (id % 10)));
}

// ---------------------------------------------------------------------
// Pool micro-benches (mirror bench/micro_policy_ops.cc's churn loops).

constexpr std::size_t kContainersPerFunction = 64;

std::vector<ContainerId>
fillPoolDense(ContainerPool& pool, std::size_t num_containers)
{
    const std::size_t num_functions =
        std::max<std::size_t>(1, num_containers / kContainersPerFunction);
    std::vector<ContainerId> ids;
    ids.reserve(num_containers);
    for (std::size_t i = 0; i < num_containers; ++i) {
        Container& c = pool.add(
            specOf(static_cast<FunctionId>(i % num_functions)),
            static_cast<TimeUs>(i));
        ids.push_back(c.id());
    }
    return ids;
}

/** One timed pass of add/remove churn: `ops` evict-one-admit-one steps
 *  against a pool held at `num_containers`. */
void
runChurn(PoolBackend backend, std::size_t num_containers, std::int64_t ops)
{
    const std::size_t num_functions =
        std::max<std::size_t>(1, num_containers / kContainersPerFunction);
    ContainerPool pool(1e12, backend);
    pool.reserve(num_containers, num_functions);
    std::vector<ContainerId> ids = fillPoolDense(pool, num_containers);

    Rng rng(13);
    TimeUs now = static_cast<TimeUs>(num_containers);
    for (std::int64_t op = 0; op < ops; ++op) {
        const std::size_t pick = rng.uniformInt(ids.size());
        now += 1;
        pool.remove(ids[pick]);
        Container& fresh = pool.add(
            specOf(static_cast<FunctionId>(rng.uniformInt(num_functions))),
            now);
        ids[pick] = fresh.id();
    }
}

/** One timed pass of busy/idle lifecycle churn driven by
 *  releaseFinished() — the platform model's per-event pattern. */
void
runLifecycle(PoolBackend backend, std::size_t num_containers,
             std::int64_t ops)
{
    constexpr std::size_t kBatch = 64;
    ContainerPool pool(1e12, backend);
    pool.reserve(num_containers, num_containers / kContainersPerFunction);
    const std::vector<ContainerId> ids =
        fillPoolDense(pool, num_containers);

    Rng rng(17);
    TimeUs now = static_cast<TimeUs>(num_containers);
    for (std::int64_t op = 0; op < ops; op += kBatch) {
        for (std::size_t i = 0; i < kBatch; ++i) {
            Container* c = pool.get(ids[rng.uniformInt(ids.size())]);
            if (c != nullptr && c->idle())
                c->startInvocation(now, now + 1);
        }
        now += 2;
        (void)pool.releaseFinished(now);
    }
}

BenchResult
churnBench(const std::string& name, std::size_t num_containers,
           std::int64_t ops, int reps)
{
    BenchResult result;
    result.name = name;
    result.ops = ops;
    result.optimized_wall_s = bestOf(
        reps, [&] { runChurn(PoolBackend::Slab, num_containers, ops); });
    result.reference_wall_s = bestOf(reps, [&] {
        runChurn(PoolBackend::ReferenceMap, num_containers, ops);
    });
    return result;
}

BenchResult
lifecycleBench(const std::string& name, std::size_t num_containers,
               std::int64_t ops, int reps)
{
    BenchResult result;
    result.name = name;
    result.ops = ops;
    result.optimized_wall_s = bestOf(reps, [&] {
        runLifecycle(PoolBackend::Slab, num_containers, ops);
    });
    result.reference_wall_s = bestOf(reps, [&] {
        runLifecycle(PoolBackend::ReferenceMap, num_containers, ops);
    });
    return result;
}

// ---------------------------------------------------------------------
// End-to-end benches: miniature versions of the fig6 (cold-start sweep)
// and fig8 (server load) grids, replayed through both backends.

const Trace&
miniPopulation()
{
    static const Trace kPopulation = [] {
        AzureModelConfig config;
        config.seed = deriveCellSeed(2021, 1);
        config.num_functions = 400;
        config.duration_us = kHour;
        config.iat_median_sec = 60.0;
        config.max_rate_per_sec = 1.0;
        config.mem_median_mb = 64.0;
        config.mem_sigma = 0.7;
        config.mem_max_mb = 512.0;
        config.name = "perf-harness-population";
        return generateAzureTrace(config);
    }();
    return kPopulation;
}

const Trace&
miniRepresentative()
{
    static const Trace kTrace = sampleRepresentative(
        miniPopulation(), 120, deriveCellSeed(2021, 2));
    return kTrace;
}

/** fig6-style: simulator sweep of GD + TTL over two memory sizes. */
void
runFig6(PoolBackend backend)
{
    for (PolicyKind kind : {PolicyKind::GreedyDual, PolicyKind::Ttl}) {
        for (MemMb memory_mb : {3.0 * 1024.0, 6.0 * 1024.0}) {
            SimulatorConfig config;
            config.memory_mb = memory_mb;
            config.pool_backend = backend;
            const SimResult result = simulateTrace(
                miniRepresentative(), makePolicy(kind), config);
            if (result.warm_starts < 0)
                std::abort();  // defeat over-eager optimizers
        }
    }
}

/** fig8-style: one loaded platform-server replay under GD — the whole
 *  population against a single invoker, the paper's server-load
 *  regime. The pool backend stays Slab on both sides so the measured
 *  ratio isolates the PR 7 platform rebuild (arena request queue +
 *  batched event admission) from the PR 5 pool rebuild. */
void
runFig8(PlatformBackend backend)
{
    ServerConfig config;
    config.cores = 16;
    config.memory_mb = 8.0 * 1024.0;
    config.platform_backend = backend;
    const PlatformResult result =
        runPlatform(miniPopulation(), PolicyKind::GreedyDual, config);
    if (result.served() < 0)
        std::abort();
}

BenchResult
endToEndBench(const std::string& name, std::int64_t ops, int reps,
              void (*body)(PoolBackend))
{
    BenchResult result;
    result.name = name;
    result.ops = ops;
    result.optimized_wall_s =
        bestOf(reps, [&] { body(PoolBackend::Slab); });
    result.reference_wall_s =
        bestOf(reps, [&] { body(PoolBackend::ReferenceMap); });
    return result;
}

BenchResult
platformBench(const std::string& name, std::int64_t ops, int reps,
              void (*body)(PlatformBackend))
{
    BenchResult result;
    result.name = name;
    result.ops = ops;
    result.optimized_wall_s =
        bestOf(reps, [&] { body(PlatformBackend::Dense); });
    result.reference_wall_s =
        bestOf(reps, [&] { body(PlatformBackend::Reference); });
    return result;
}

// ---------------------------------------------------------------------
// Trace-generation reserve() win: append the population's invocation
// stream into a Trace with and without the new reserve() hints.

BenchResult
traceReserveBench(int reps)
{
    const Trace& source = miniPopulation();
    const auto append_all = [&](bool reserve) {
        Trace out("reserve-bench");
        if (reserve) {
            out.reserveFunctions(source.functions().size());
            out.reserveInvocations(source.invocations().size());
        }
        for (const FunctionSpec& spec : source.functions())
            out.addFunction(spec);
        for (const Invocation& inv : source.invocations())
            out.addInvocation(inv.function, inv.arrival_us);
        if (out.invocations().size() != source.invocations().size())
            std::abort();
    };

    BenchResult result;
    result.name = "trace_reserve";
    result.ops = static_cast<std::int64_t>(source.invocations().size());
    // More inner repetitions: a single append pass is microseconds.
    const int inner = 50;
    result.optimized_wall_s = bestOf(reps, [&] {
        for (int i = 0; i < inner; ++i)
            append_all(true);
    });
    result.reference_wall_s = bestOf(reps, [&] {
        for (int i = 0; i < inner; ++i)
            append_all(false);
    });
    result.ops *= inner;
    return result;
}

// ---------------------------------------------------------------------

void
writeJson(std::ostream& out, const HarnessOptions& options,
          const std::vector<BenchResult>& benches)
{
    char buffer[64];
    const auto num = [&](double value) {
        std::snprintf(buffer, sizeof buffer, "%.6g", value);
        return std::string(buffer);
    };
    out << "{\n";
    out << "  \"schema\": \"faascache-bench-pr7-v1\",\n";
    out << "  \"mode\": \"" << (options.smoke ? "smoke" : "full")
        << "\",\n";
    out << "  \"reps\": " << options.reps << ",\n";
    out << "  \"peak_rss_mb\": " << num(peakRssMb()) << ",\n";
    out << "  \"benches\": [\n";
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const BenchResult& b = benches[i];
        out << "    {\n";
        out << "      \"name\": \"" << b.name << "\",\n";
        out << "      \"ops\": " << b.ops << ",\n";
        out << "      \"optimized_wall_s\": " << num(b.optimized_wall_s)
            << ",\n";
        out << "      \"reference_wall_s\": " << num(b.reference_wall_s)
            << ",\n";
        out << "      \"optimized_ops_per_sec\": "
            << num(b.optimizedOpsPerSec()) << ",\n";
        out << "      \"reference_ops_per_sec\": "
            << num(b.referenceOpsPerSec()) << ",\n";
        out << "      \"speedup\": " << num(b.speedup()) << "\n";
        out << "    }" << (i + 1 < benches.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
}

HarnessOptions
parseArgs(int argc, char** argv)
{
    HarnessOptions options;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            options.smoke = true;
        } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
            options.reps = std::max(1, std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            options.out_path = argv[++i];
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--smoke] [--reps N] [--out PATH]\n";
            return options;
        }
    }
    return options;
}

}  // namespace

int
main(int argc, char** argv)
{
    const HarnessOptions options = parseArgs(argc, argv);
    const int reps = options.smoke ? std::min(options.reps, 2)
                                   : options.reps;
    const std::int64_t churn_ops = options.smoke ? 200'000 : 2'000'000;
    const std::int64_t lifecycle_ops = options.smoke ? 100'000 : 1'000'000;

    std::vector<BenchResult> benches;
    std::cerr << "perf_harness: pool churn...\n";
    benches.push_back(churnBench("pool_churn_1k", 1'000, churn_ops, reps));
    benches.push_back(
        churnBench("pool_churn_10k", 10'000, churn_ops, reps));
    if (!options.smoke) {
        benches.push_back(
            churnBench("pool_churn_100k", 100'000, churn_ops, reps));
    }
    std::cerr << "perf_harness: pool lifecycle...\n";
    benches.push_back(
        lifecycleBench("pool_lifecycle_10k", 10'000, lifecycle_ops, reps));
    if (!options.smoke) {
        benches.push_back(lifecycleBench("pool_lifecycle_100k", 100'000,
                                         lifecycle_ops, reps));
    }

    // Amortize the (untimed) population build before the timed benches.
    const auto invocations =
        static_cast<std::int64_t>(miniRepresentative().invocations().size());
    std::cerr << "perf_harness: fig6 end-to-end ("
              << invocations << " invocations per run)...\n";
    benches.push_back(
        endToEndBench("fig6_mini", 4 * invocations, reps, runFig6));
    std::cerr << "perf_harness: fig8 end-to-end...\n";
    const auto population_invocations =
        static_cast<std::int64_t>(miniPopulation().invocations().size());
    benches.push_back(platformBench("fig8_mini", population_invocations,
                                    reps, runFig8));
    std::cerr << "perf_harness: trace reserve...\n";
    benches.push_back(traceReserveBench(reps));

    if (options.out_path.empty()) {
        writeJson(std::cout, options, benches);
    } else {
        std::ofstream out(options.out_path);
        if (!out) {
            std::cerr << "perf_harness: cannot write "
                      << options.out_path << "\n";
            return 1;
        }
        writeJson(out, options, benches);
        std::cerr << "perf_harness: wrote " << options.out_path << "\n";
    }
    for (const BenchResult& b : benches) {
        std::fprintf(stderr, "  %-20s opt  %8.4fs  ref %8.4fs  %5.2fx\n",
                     b.name.c_str(), b.optimized_wall_s,
                     b.reference_wall_s, b.speedup());
    }
    return 0;
}

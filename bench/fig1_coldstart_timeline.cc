/**
 * @file
 * Reproduces Figure 1: the timeline of a cold function invocation in
 * OpenWhisk for the ML-inference application — container-pool check,
 * Akka/Docker startup, OpenWhisk/Python runtime initialization, the
 * function's explicit initialization (model download etc.), and the
 * actual execution.
 */
#include <iostream>

#include "platform/cold_start_model.h"
#include "platform/function_bench.h"
#include "util/table.h"

using namespace faascache;

namespace {

void
printTimeline(const FunctionSpec& spec)
{
    const ColdStartBreakdown b = coldStartBreakdown(spec);
    struct Stage
    {
        const char* name;
        TimeUs duration;
    };
    const Stage stages[] = {
        {"container pool check", b.pool_check_us},
        {"Akka + Docker startup", b.docker_startup_us},
        {"OpenWhisk runtime init", b.ow_runtime_init_us},
        {"language runtime init", b.language_init_us},
        {"explicit (user) init", b.explicit_init_us},
        {"function execution", b.execution_us},
    };

    std::cout << "Cold-start timeline for '" << spec.name << "' (total "
              << formatDouble(toSeconds(b.totalUs()), 2) << " s, overhead "
              << formatDouble(toSeconds(b.overheadUs()), 2) << " s = "
              << formatDouble(100.0 * static_cast<double>(b.overheadUs()) /
                                  static_cast<double>(b.totalUs()),
                              0)
              << "% of total):\n\n";

    TablePrinter table({"stage", "start (s)", "duration (s)", ""});
    TimeUs at = 0;
    for (const Stage& stage : stages) {
        const int width = static_cast<int>(
            50.0 * static_cast<double>(stage.duration) /
            static_cast<double>(b.totalUs()));
        table.addRow({stage.name, formatDouble(toSeconds(at), 2),
                      formatDouble(toSeconds(stage.duration), 2),
                      std::string(static_cast<std::size_t>(width), '#')});
        at += stage.duration;
    }
    table.print(std::cout);
}

}  // namespace

int
main()
{
    std::cout << "Figure 1: sources of cold-start delay in the OpenWhisk "
                 "invocation path\n\n";
    printTimeline(functionBenchSpec(FunctionBenchApp::MlInference));
    std::cout << "\nA warm invocation skips everything but the final "
                 "execution stage.\n";
    return 0;
}

/**
 * @file
 * Micro-benchmarks of the keep-alive fast path and slow path: per
 * invocation bookkeeping, warm-container lookup, and victim selection,
 * for every policy. The paper keeps the ContainerPool unsorted on the
 * fast path and sorts only on evictions (§6); these benchmarks quantify
 * that trade-off.
 */
#include <benchmark/benchmark.h>

#include "core/container_pool.h"
#include "core/policy_factory.h"
#include "util/rng.h"

using namespace faascache;

namespace {

FunctionSpec
specOf(FunctionId id)
{
    return makeFunction(id, "fn" + std::to_string(id),
                        64.0 + static_cast<double>(id % 16) * 32.0,
                        fromMillis(100),
                        fromMillis(100 + 50 * (id % 10)));
}

/** Fill a pool with idle containers of `num_functions` functions. */
void
fillPool(ContainerPool& pool, KeepAlivePolicy& policy,
         std::size_t num_functions)
{
    for (std::size_t i = 0; i < num_functions; ++i) {
        const FunctionSpec spec = specOf(static_cast<FunctionId>(i));
        if (!pool.fits(spec.mem_mb))
            break;
        policy.onInvocationArrival(spec, static_cast<TimeUs>(i) * kSecond);
        Container& c = pool.add(spec, static_cast<TimeUs>(i) * kSecond);
        c.startInvocation(static_cast<TimeUs>(i) * kSecond,
                          static_cast<TimeUs>(i) * kSecond + spec.warm_us);
        policy.onColdStart(c, spec, static_cast<TimeUs>(i) * kSecond);
        c.finishInvocation();
    }
}

PolicyKind
kindFromIndex(std::int64_t index)
{
    return allPolicyKinds().at(static_cast<std::size_t>(index));
}

void
BM_WarmLookupAndTouch(benchmark::State& state)
{
    const PolicyKind kind = kindFromIndex(state.range(0));
    const auto num_functions = static_cast<std::size_t>(state.range(1));
    ContainerPool pool(1e9);
    auto policy = makePolicy(kind);
    fillPool(pool, *policy, num_functions);

    Rng rng(7);
    TimeUs now = static_cast<TimeUs>(num_functions) * kSecond;
    for (auto _ : state) {
        const auto fn = static_cast<FunctionId>(
            rng.uniformInt(num_functions));
        const FunctionSpec spec = specOf(fn);
        now += kMillisecond;
        policy->onInvocationArrival(spec, now);
        Container* warm = pool.findIdleWarm(fn);
        benchmark::DoNotOptimize(warm);
        if (warm != nullptr) {
            warm->startInvocation(now, now + spec.warm_us);
            policy->onWarmStart(*warm, spec, now);
            warm->finishInvocation();
        }
    }
    state.SetLabel(policyKindName(kind));
}

void
BM_VictimSelection(benchmark::State& state)
{
    const PolicyKind kind = kindFromIndex(state.range(0));
    const auto num_functions = static_cast<std::size_t>(state.range(1));
    ContainerPool pool(1e9);
    auto policy = makePolicy(kind);
    fillPool(pool, *policy, num_functions);

    const TimeUs now = static_cast<TimeUs>(num_functions + 1) * kSecond;
    for (auto _ : state) {
        auto victims = policy->selectVictims(pool, 256.0, now);
        benchmark::DoNotOptimize(victims);
    }
    state.SetLabel(policyKindName(kind));
}

void
policyArgs(benchmark::internal::Benchmark* bench)
{
    for (std::int64_t kind = 0;
         kind < static_cast<std::int64_t>(allPolicyKinds().size()); ++kind) {
        bench->Args({kind, 256});
        bench->Args({kind, 4096});
    }
}

BENCHMARK(BM_WarmLookupAndTouch)->Apply(policyArgs);
BENCHMARK(BM_VictimSelection)->Apply(policyArgs);

}  // namespace

BENCHMARK_MAIN();

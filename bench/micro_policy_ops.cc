/**
 * @file
 * Micro-benchmarks of the keep-alive fast path and slow path: per
 * invocation bookkeeping, warm-container lookup, and victim selection,
 * for every policy. The paper keeps the ContainerPool unsorted on the
 * fast path and sorts only on evictions (§6); these benchmarks quantify
 * that trade-off.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/container_pool.h"
#include "core/policy_factory.h"
#include "util/rng.h"

using namespace faascache;

namespace {

FunctionSpec
specOf(FunctionId id)
{
    return makeFunction(id, "fn" + std::to_string(id),
                        64.0 + static_cast<double>(id % 16) * 32.0,
                        fromMillis(100),
                        fromMillis(100 + 50 * (id % 10)));
}

/** Fill a pool with idle containers of `num_functions` functions. */
void
fillPool(ContainerPool& pool, KeepAlivePolicy& policy,
         std::size_t num_functions)
{
    for (std::size_t i = 0; i < num_functions; ++i) {
        const FunctionSpec spec = specOf(static_cast<FunctionId>(i));
        if (!pool.fits(spec.mem_mb))
            break;
        policy.onInvocationArrival(spec, static_cast<TimeUs>(i) * kSecond);
        Container& c = pool.add(spec, static_cast<TimeUs>(i) * kSecond);
        c.startInvocation(static_cast<TimeUs>(i) * kSecond,
                          static_cast<TimeUs>(i) * kSecond + spec.warm_us);
        policy.onColdStart(c, spec, static_cast<TimeUs>(i) * kSecond);
        c.finishInvocation();
    }
}

PolicyKind
kindFromIndex(std::int64_t index)
{
    return allPolicyKinds().at(static_cast<std::size_t>(index));
}

void
BM_WarmLookupAndTouch(benchmark::State& state)
{
    const PolicyKind kind = kindFromIndex(state.range(0));
    const auto num_functions = static_cast<std::size_t>(state.range(1));
    ContainerPool pool(1e9);
    auto policy = makePolicy(kind);
    fillPool(pool, *policy, num_functions);

    Rng rng(7);
    TimeUs now = static_cast<TimeUs>(num_functions) * kSecond;
    for (auto _ : state) {
        const auto fn = static_cast<FunctionId>(
            rng.uniformInt(num_functions));
        const FunctionSpec spec = specOf(fn);
        now += kMillisecond;
        policy->onInvocationArrival(spec, now);
        Container* warm = pool.findIdleWarm(fn);
        benchmark::DoNotOptimize(warm);
        if (warm != nullptr) {
            warm->startInvocation(now, now + spec.warm_us);
            policy->onWarmStart(*warm, spec, now);
            warm->finishInvocation();
        }
    }
    state.SetLabel(policyKindName(kind));
}

void
BM_VictimSelection(benchmark::State& state)
{
    const PolicyKind kind = kindFromIndex(state.range(0));
    const auto num_functions = static_cast<std::size_t>(state.range(1));
    ContainerPool pool(1e9);
    auto policy = makePolicy(kind);
    fillPool(pool, *policy, num_functions);

    const TimeUs now = static_cast<TimeUs>(num_functions + 1) * kSecond;
    for (auto _ : state) {
        auto victims = policy->selectVictims(pool, 256.0, now);
        benchmark::DoNotOptimize(victims);
    }
    state.SetLabel(policyKindName(kind));
}

void
policyArgs(benchmark::internal::Benchmark* bench)
{
    for (std::int64_t kind = 0;
         kind < static_cast<std::int64_t>(allPolicyKinds().size()); ++kind) {
        bench->Args({kind, 256});
        bench->Args({kind, 4096});
    }
}

BENCHMARK(BM_WarmLookupAndTouch)->Apply(policyArgs);
BENCHMARK(BM_VictimSelection)->Apply(policyArgs);

// ---------------------------------------------------------------------
// Pool-backend benchmarks (PR 5): the slab arena vs the reference
// hash-map pool, at pool sizes far beyond what the policy benches
// above use. Containers per function is deliberately high (64) so the
// backends' per-function bookkeeping — intrusive idle lists vs vector
// scan-and-erase — dominates, which is the regime the platform model
// hits under load.

constexpr std::int64_t kContainersPerFunction = 64;

PoolBackend
backendFromIndex(std::int64_t index)
{
    return index == 0 ? PoolBackend::Slab : PoolBackend::ReferenceMap;
}

/** Fill `pool` with `num_containers` idle containers spread over
 *  num_containers / kContainersPerFunction functions. */
std::vector<ContainerId>
fillPoolDense(ContainerPool& pool, std::size_t num_containers)
{
    const std::size_t num_functions =
        std::max<std::size_t>(1, num_containers / kContainersPerFunction);
    std::vector<ContainerId> ids;
    ids.reserve(num_containers);
    for (std::size_t i = 0; i < num_containers; ++i) {
        const FunctionSpec spec =
            specOf(static_cast<FunctionId>(i % num_functions));
        Container& c = pool.add(spec, static_cast<TimeUs>(i));
        ids.push_back(c.id());
    }
    return ids;
}

/**
 * Steady-state add/remove churn: each iteration evicts one tracked
 * (random) container and admits a fresh one, holding the pool at a
 * constant size. Slab: O(1) intrusive unlink + O(1) slot reuse, no
 * allocation. Reference: a linear scan of the per-function vector, a
 * hash-map erase, and a heap free, then an allocation on re-add.
 */
void
BM_PoolChurn(benchmark::State& state)
{
    const PoolBackend backend = backendFromIndex(state.range(0));
    const auto num_containers = static_cast<std::size_t>(state.range(1));
    const std::size_t num_functions =
        std::max<std::size_t>(1, num_containers / kContainersPerFunction);
    ContainerPool pool(1e12, backend);
    pool.reserve(num_containers, num_functions);
    std::vector<ContainerId> ids = fillPoolDense(pool, num_containers);

    Rng rng(13);
    TimeUs now = static_cast<TimeUs>(num_containers);
    for (auto _ : state) {
        const std::size_t pick = rng.uniformInt(ids.size());
        now += 1;
        pool.remove(ids[pick]);
        const auto add_fn =
            static_cast<FunctionId>(rng.uniformInt(num_functions));
        Container& fresh = pool.add(specOf(add_fn), now);
        ids[pick] = fresh.id();
        benchmark::DoNotOptimize(&fresh);
    }
    state.SetLabel(poolBackendName(backend));
    state.SetItemsProcessed(state.iterations());
}

/**
 * Busy/idle lifecycle churn: start a batch of invocations and release
 * them via releaseFinished(). Slab walks the busy list only; the
 * reference pool re-scans every container per release pass.
 */
void
BM_PoolLifecycle(benchmark::State& state)
{
    const PoolBackend backend = backendFromIndex(state.range(0));
    const auto num_containers = static_cast<std::size_t>(state.range(1));
    ContainerPool pool(1e12, backend);
    pool.reserve(num_containers, num_containers / kContainersPerFunction);
    const std::vector<ContainerId> ids = fillPoolDense(pool, num_containers);

    Rng rng(17);
    constexpr std::size_t kBatch = 64;
    TimeUs now = static_cast<TimeUs>(num_containers);
    for (auto _ : state) {
        for (std::size_t i = 0; i < kBatch; ++i) {
            Container* c = pool.get(ids[rng.uniformInt(ids.size())]);
            if (c != nullptr && c->idle())
                c->startInvocation(now, now + 1);
        }
        now += 2;
        auto released = pool.releaseFinished(now);
        benchmark::DoNotOptimize(released);
    }
    state.SetLabel(poolBackendName(backend));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kBatch));
}

/**
 * Victim selection against a big pool: the GD lazy heap (and its dense
 * slot-keyed live table) scanning a slab vs reference pool.
 */
void
BM_PoolVictimSelection(benchmark::State& state)
{
    const PoolBackend backend = backendFromIndex(state.range(0));
    const auto num_containers = static_cast<std::size_t>(state.range(1));
    ContainerPool pool(1e12, backend);
    auto policy = makePolicy(PolicyKind::GreedyDual);
    const std::size_t num_functions =
        std::max<std::size_t>(1, num_containers / kContainersPerFunction);
    policy->reserveFunctions(num_functions);
    pool.reserve(num_containers, num_functions);
    for (std::size_t i = 0; i < num_containers; ++i) {
        const FunctionSpec spec =
            specOf(static_cast<FunctionId>(i % num_functions));
        const auto now = static_cast<TimeUs>(i);
        policy->onInvocationArrival(spec, now);
        Container& c = pool.add(spec, now);
        c.startInvocation(now, now + spec.warm_us);
        policy->onColdStart(c, spec, now);
        c.finishInvocation();
    }

    const TimeUs now = static_cast<TimeUs>(num_containers + 1);
    for (auto _ : state) {
        auto victims = policy->selectVictims(pool, 512.0, now);
        benchmark::DoNotOptimize(victims);
    }
    state.SetLabel(poolBackendName(backend));
}

void
poolArgs(benchmark::internal::Benchmark* bench)
{
    for (std::int64_t backend : {0, 1}) {
        for (std::int64_t size : {1'000, 10'000, 100'000})
            bench->Args({backend, size});
    }
}

BENCHMARK(BM_PoolChurn)->Apply(poolArgs);
BENCHMARK(BM_PoolLifecycle)->Apply(poolArgs);
BENCHMARK(BM_PoolVictimSelection)->Apply(poolArgs);

}  // namespace

BENCHMARK_MAIN();

/**
 * @file
 * Streaming-substrate memory/wall bench (DESIGN.md §4h, PR 9).
 *
 * Replays the fig6-style simulator grid, the fig8-style loaded server,
 * and an oversized (>= 10x invocations) workload through BOTH trace
 * shapes — the materialized Trace and the streamed `.ftrace` cursor —
 * and reports wall-clock plus per-phase peak RSS. The headline claim
 * this bench defends: streamed peak RSS is flat in trace length (the
 * oversized streamed replay stays within ~1.1x of the small streamed
 * replay), while the materialized shape grows with the invocation
 * count.
 *
 * Peak RSS is measured per phase by resetting the kernel's VmHWM
 * high-water mark (`echo 5 > /proc/self/clear_refs`) before the phase
 * and reading VmHWM from /proc/self/status after it; where clear_refs
 * is unavailable the monotonic getrusage(ru_maxrss) is reported and
 * the JSON marks the degraded measurement. Streamed phases run before
 * any workload is materialized so allocator retention of a big
 * materialized heap can never flatter (or smear) the streamed numbers.
 *
 * Usage:
 *   fig_stream_replay [--smoke] [--out PATH]
 *
 * Full mode regenerates the committed BENCH_PR9.json via
 * scripts/run_benchmarks.sh; --smoke shrinks durations ~10x for the CI
 * gate, which asserts the rss flatness ratio, not absolute sizes.
 */
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/policy_factory.h"
#include "platform/experiment.h"
#include "platform/server.h"
#include "sim/simulator.h"
#include "sim/sweep_runner.h"
#include "trace/azure_model.h"
#include "trace/ftrace_format.h"
#include "trace/generated_source.h"
#include "trace/invocation_source.h"
#include "trace/trace.h"

using namespace faascache;

namespace {

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Reset the kernel's peak-RSS high-water mark for this process.
 *  @return false when /proc/self/clear_refs is unavailable. */
bool
resetPeakRss()
{
    std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
    if (f == nullptr)
        return false;
    const bool ok = std::fputs("5", f) >= 0;
    std::fclose(f);
    return ok;
}

/** Peak RSS in MB: VmHWM from /proc/self/status (resettable), falling
 *  back to the monotonic getrusage high-water mark. */
double
peakRssMb(bool* from_hwm = nullptr)
{
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) == 0) {
            if (from_hwm != nullptr)
                *from_hwm = true;
            return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
        }
    }
    if (from_hwm != nullptr)
        *from_hwm = false;
    struct rusage usage
    {
    };
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0.0;
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

struct Phase
{
    double wall_s = 0.0;
    double peak_rss_mb = 0.0;
    bool rss_resettable = false;
};

/** Run `body` as one measured phase (single rep: RSS, the headline
 *  metric here, is deterministic; wall-clock is informational). */
template <typename Body>
Phase
measure(const std::string& label, Body&& body)
{
    std::cerr << "fig_stream_replay: " << label << "...\n";
    Phase phase;
    phase.rss_resettable = resetPeakRss();
    const double start = nowSeconds();
    body();
    phase.wall_s = nowSeconds() - start;
    phase.peak_rss_mb = peakRssMb();
    return phase;
}

struct BenchRow
{
    std::string name;
    std::int64_t invocations = 0;
    Phase streamed;
    Phase materialized;
};

AzureModelConfig
workloadConfig(bool smoke, bool oversized)
{
    AzureModelConfig config;
    config.seed = deriveCellSeed(2026, oversized ? 9 : 8);
    config.num_functions = 400;
    // The oversized workload is the same population shape run 10x
    // longer, so its invocation count is >= 10x the small one's.
    const TimeUs base = smoke ? 6 * kMinute : kHour;
    config.duration_us = oversized ? 10 * base : base;
    config.iat_median_sec = 20.0;
    config.max_rate_per_sec = 2.0;
    config.mem_median_mb = 64.0;
    config.mem_sigma = 0.7;
    config.mem_max_mb = 512.0;
    config.name = oversized ? "stream-bench-oversized"
                            : "stream-bench-small";
    return config;
}

/** Compile a workload to .ftrace by pure streaming (the invocation
 *  vector is never built). @return invocations written. */
std::size_t
compileStreaming(const AzureModelConfig& config, const std::string& path)
{
    const auto source = makeAzureSource(config);
    return writeFtraceFile(path, *source);
}

void
simReplaySource(InvocationSource& source)
{
    SimulatorConfig config;
    config.memory_mb = 6.0 * 1024.0;
    const SimResult result =
        simulateSource(source, makePolicy(PolicyKind::GreedyDual), config);
    if (result.warm_starts < 0)
        std::abort();  // defeat over-eager optimizers
}

void
serverReplay(Server& server, auto&& workload)
{
    const PlatformResult result = server.run(workload);
    if (result.served() < 0)
        std::abort();
}

ServerConfig
loadedServerConfig()
{
    ServerConfig config;
    config.cores = 16;
    config.memory_mb = 8.0 * 1024.0;
    return config;
}

void
writeJson(std::ostream& out, bool smoke,
          const std::vector<BenchRow>& rows, double rss_flatness)
{
    char buffer[64];
    const auto num = [&](double value) {
        std::snprintf(buffer, sizeof buffer, "%.6g", value);
        return std::string(buffer);
    };
    out << "{\n";
    out << "  \"schema\": \"faascache-bench-pr9-v1\",\n";
    out << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
    out << "  \"rss_flatness_streamed_oversized_vs_small\": "
        << num(rss_flatness) << ",\n";
    out << "  \"benches\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const BenchRow& row = rows[i];
        const auto phase = [&](const char* key, const Phase& p,
                               bool last) {
            out << "      \"" << key << "\": {\"wall_s\": "
                << num(p.wall_s)
                << ", \"peak_rss_mb\": " << num(p.peak_rss_mb)
                << ", \"rss_resettable\": "
                << (p.rss_resettable ? "true" : "false") << "}"
                << (last ? "\n" : ",\n");
        };
        out << "    {\n";
        out << "      \"name\": \"" << row.name << "\",\n";
        out << "      \"invocations\": " << row.invocations << ",\n";
        phase("streamed", row.streamed, false);
        phase("materialized", row.materialized, true);
        out << "    }" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
}

}  // namespace

int
main(int argc, char** argv)
{
    bool smoke = false;
    std::string out_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--smoke] [--out PATH]\n";
            return 2;
        }
    }

    const std::string dir = "/tmp/";
    const std::string small_path = dir + "faascache_bench_small.ftrace";
    const std::string big_path = dir + "faascache_bench_big.ftrace";
    const AzureModelConfig small_config = workloadConfig(smoke, false);
    const AzureModelConfig big_config = workloadConfig(smoke, true);

    // Compile both workloads by streaming generation (untimed; nothing
    // materialized yet).
    std::cerr << "fig_stream_replay: compiling workloads...\n";
    const std::size_t small_count =
        compileStreaming(small_config, small_path);
    const std::size_t big_count = compileStreaming(big_config, big_path);
    std::cerr << "fig_stream_replay: small=" << small_count
              << " oversized=" << big_count << " invocations ("
              << static_cast<double>(big_count) /
            static_cast<double>(small_count ? small_count : 1)
              << "x)\n";

    BenchRow fig6{"fig6_sim_small", static_cast<std::int64_t>(small_count),
                  {}, {}};
    BenchRow fig8{"fig8_server_small",
                  static_cast<std::int64_t>(small_count), {}, {}};
    BenchRow oversized{"oversized_sim",
                       static_cast<std::int64_t>(big_count), {}, {}};

    // All streamed phases run before any trace is materialized.
    fig6.streamed = measure("fig6 streamed", [&] {
        FtraceSource source(small_path);
        simReplaySource(source);
    });
    fig8.streamed = measure("fig8 streamed", [&] {
        FtraceSource source(small_path);
        Server server(makePolicy(PolicyKind::GreedyDual),
                      loadedServerConfig());
        serverReplay(server, source);
    });
    oversized.streamed = measure("oversized streamed", [&] {
        FtraceSource source(big_path);
        simReplaySource(source);
    });

    // Materialized oracles of the same replays.
    fig6.materialized = measure("fig6 materialized", [&] {
        const Trace trace = generateAzureTrace(small_config);
        TraceSource source(trace);
        simReplaySource(source);
    });
    fig8.materialized = measure("fig8 materialized", [&] {
        const Trace trace = generateAzureTrace(small_config);
        Server server(makePolicy(PolicyKind::GreedyDual),
                      loadedServerConfig());
        serverReplay(server, trace);
    });
    oversized.materialized = measure("oversized materialized", [&] {
        const Trace trace = generateAzureTrace(big_config);
        TraceSource source(trace);
        simReplaySource(source);
    });

    std::remove(small_path.c_str());
    std::remove(big_path.c_str());

    const double flatness = fig6.streamed.peak_rss_mb > 0
        ? oversized.streamed.peak_rss_mb / fig6.streamed.peak_rss_mb
        : 0.0;
    const std::vector<BenchRow> rows = {fig6, fig8, oversized};
    if (out_path.empty()) {
        writeJson(std::cout, smoke, rows, flatness);
    } else {
        std::ofstream out(out_path);
        if (!out) {
            std::cerr << "fig_stream_replay: cannot write " << out_path
                      << "\n";
            return 1;
        }
        writeJson(out, smoke, rows, flatness);
        std::cerr << "fig_stream_replay: wrote " << out_path << "\n";
    }
    for (const BenchRow& row : rows) {
        std::fprintf(
            stderr,
            "  %-18s %9lld inv  streamed %7.1f MB / %6.2fs"
            "  materialized %7.1f MB / %6.2fs\n",
            row.name.c_str(), static_cast<long long>(row.invocations),
            row.streamed.peak_rss_mb, row.streamed.wall_s,
            row.materialized.peak_rss_mb, row.materialized.wall_s);
    }
    std::fprintf(stderr,
                 "  rss flatness (oversized streamed / small streamed): "
                 "%.3fx\n",
                 flatness);
    return 0;
}

/**
 * @file
 * Fault injection walkthrough: run one invoker server through a steady
 * workload while a FaultPlan crashes it mid-trace, makes 10% of
 * container spawns fail transiently, and turns 10% of cold starts into
 * 4x stragglers — then read the robustness counters the run produced.
 *
 * The same plan, seed, and trace always reproduce the same counters, so
 * a fault scenario can be studied like any other experiment input.
 */
#include <iostream>

#include "core/policy_factory.h"
#include "platform/load_generator.h"
#include "platform/server.h"

using namespace faascache;

int
main()
{
    const Trace trace = skewedFrequencyWorkload(30 * kMinute);

    ServerConfig config;
    config.cores = 8;
    config.memory_mb = 1000;

    FaultPlan plan;
    // One crash 10 minutes in; the server is back (cold) 2 minutes
    // later. Stochastic faults use the plan's seed: rerunning this
    // program prints identical numbers.
    plan.crashes.push_back({0, 10 * kMinute, 2 * kMinute});
    plan.spawn_failure_prob = 0.10;
    plan.straggler_prob = 0.10;
    plan.straggler_multiplier = 4.0;
    plan.validate();

    Server server(makePolicy(PolicyKind::GreedyDual), config);
    FaultInjector injector(plan, /*server=*/0);
    server.setFaultInjector(&injector);
    const PlatformResult r = server.run(trace);

    const RobustnessCounters& rc = r.robustness;
    std::cout << "Workload: " << trace.invocations().size()
              << " invocations over 30 min, one server, Greedy-Dual "
                 "keep-alive\n\n"
              << "Served:            " << r.served() << " (warm "
              << r.warm_starts << ", cold " << r.cold_starts << ")\n"
              << "Dropped:           " << r.dropped()
              << " (queue-full " << r.dropped_queue_full << ", timeout "
              << r.dropped_timeout << ", server down "
              << rc.dropped_unavailable << ")\n"
              << "Aborted by crash:  " << rc.crash_aborted << "\n\n"
              << "Crashes/restarts:  " << rc.crashes << "/" << rc.restarts
              << " (downtime " << toSeconds(rc.downtime_us) << " s, "
              << rc.crash_flushed_containers
              << " warm containers lost)\n"
              << "Spawn failures:    " << rc.spawn_failures << "\n"
              << "Straggler colds:   " << rc.straggler_cold_starts
              << "\n\n"
              << "Every invocation is accounted for: " << r.total()
              << " == " << trace.invocations().size() << "\n";
    return 0;
}

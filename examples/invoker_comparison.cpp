/**
 * @file
 * Head-to-head invoker comparison (paper §7.2): run the FunctionBench
 * skewed-frequency workload against the OpenWhisk-like server model
 * under vanilla keep-alive (TTL) and under FaasCache (Greedy-Dual), and
 * report warm/cold/dropped counts and per-application latency.
 */
#include <iostream>

#include "platform/experiment.h"
#include "platform/load_generator.h"
#include "util/table.h"

using namespace faascache;

int
main()
{
    const Trace workload = cyclicWorkload(30 * kMinute);

    ServerConfig server;
    server.cores = 8;
    server.memory_mb = 1000;

    const PlatformComparison cmp =
        compareOpenWhiskVsFaasCache(workload, server);

    std::cout << "Invoker model: " << server.cores << " cores, "
              << server.memory_mb << " MB container pool, workload '"
              << workload.name() << "' (" << workload.invocations().size()
              << " invocations)\n\n";

    TablePrinter table({"system", "warm", "cold", "dropped",
                        "mean latency (s)", "p99 latency (s)"});
    for (const PlatformResult* r : {&cmp.openwhisk, &cmp.faascache}) {
        const Summary lat = r->latencySummary();
        table.addRow({r->policy_name == "TTL" ? "OpenWhisk (TTL)"
                                              : "FaasCache (GD)",
                      std::to_string(r->warm_starts),
                      std::to_string(r->cold_starts),
                      std::to_string(r->dropped()),
                      formatDouble(r->meanLatencySec(), 2),
                      formatDouble(lat.p99, 2)});
    }
    table.print(std::cout);
    std::cout << "\nFaasCache warm-start ratio: "
              << formatDouble(cmp.warmStartRatio(), 2)
              << "x, latency improvement: "
              << formatDouble(cmp.latencyImprovement(), 2) << "x\n";
    return 0;
}

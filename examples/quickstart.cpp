/**
 * @file
 * Quickstart: build a tiny workload, run the Greedy-Dual keep-alive
 * policy against OpenWhisk's 10-minute TTL in the keep-alive simulator,
 * and print the outcome.
 *
 * Build and run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/example_quickstart
 */
#include <iostream>

#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "util/table.h"

using namespace faascache;

int
main()
{
    // 1. Describe three functions: (memory MB, warm time, init time).
    //    ml-inference is heavy to initialize but invoked only every
    //    12 minutes — a constant 10-minute TTL always expires it.
    Trace trace("quickstart");
    trace.addFunction(makeFunction(0, "ml-inference", 512, fromSeconds(2.0),
                                   fromSeconds(4.5)));
    trace.addFunction(makeFunction(1, "web-api", 64, fromMillis(400),
                                   fromSeconds(2.0)));
    trace.addFunction(makeFunction(2, "thumbnailer", 256, fromMillis(800),
                                   fromSeconds(1.5)));

    // 2. Generate 2 hours of invocations.
    const TimeUs duration = 2 * kHour;
    for (TimeUs t = 0; t < duration; t += 2 * kSecond)
        trace.addInvocation(1, t);  // web-api: every 2 s
    for (TimeUs t = kSecond; t < duration; t += 12 * kMinute)
        trace.addInvocation(0, t);  // ml-inference: every 12 min
    for (TimeUs t = 2 * kSecond; t < duration; t += 30 * kSecond)
        trace.addInvocation(2, t);  // thumbnailer: every 30 s
    trace.sortInvocations();

    // 3. Run both policies on a 900 MB server: the full working set
    //    (832 MB) fits, so the only question is whether the policy
    //    keeps it alive.
    SimulatorConfig config;
    config.memory_mb = 900;

    std::cout << "Keep-alive on a 900 MB server, 2 h workload:\n\n";
    TablePrinter table({"policy", "warm", "cold", "expired", "cold %",
                        "exec-time increase %"});
    for (PolicyKind kind : {PolicyKind::GreedyDual, PolicyKind::Ttl}) {
        const SimResult result =
            simulateTrace(trace, makePolicy(kind), config);
        table.addRow({result.policy_name, std::to_string(result.warm_starts),
                      std::to_string(result.cold_starts),
                      std::to_string(result.expirations),
                      formatDouble(result.coldStartPercent()),
                      formatDouble(result.execTimeIncreasePercent())});
    }
    table.print(std::cout);
    std::cout << "\nGreedy-Dual is resource-conserving: with memory "
                 "available it never terminates\na warm container, so "
                 "the expensive ml-inference function stays warm. The\n"
                 "TTL default expires it between invocations and pays "
                 "the 4.5 s init each time.\n";
    return 0;
}

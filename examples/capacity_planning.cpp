/**
 * @file
 * Capacity planning with hit-ratio curves (paper §5.1): compute
 * size-weighted reuse distances for a workload, build its hit-ratio
 * curve (exactly and with SHARDS sampling), and provision a server by
 * target hit ratio and by the curve's knee.
 */
#include <iostream>

#include "analysis/reuse_distance.h"
#include "analysis/shards.h"
#include "provisioning/static_provisioner.h"
#include "trace/azure_model.h"
#include "util/table.h"

using namespace faascache;

int
main()
{
    AzureModelConfig model;
    model.seed = 11;
    model.num_functions = 500;
    model.duration_us = kHour;
    model.iat_median_sec = 90.0;
    model.mem_median_mb = 64.0;
    model.mem_sigma = 0.7;
    model.mem_max_mb = 512.0;
    const Trace workload = generateAzureTrace(model);

    std::cout << "Workload: " << workload.invocations().size()
              << " invocations across " << workload.functions().size()
              << " functions\n\n";

    // Exact curve from reuse distances, plus a 10% SHARDS estimate.
    const HitRatioCurve exact =
        HitRatioCurve::fromReuseDistances(computeReuseDistances(workload));
    const ShardsResult shards = shardsSample(workload, 0.10, 1);
    const HitRatioCurve approx = curveFromShards(shards);

    std::cout << "Hit-ratio curve (exact vs SHARDS at rate 0.1, which "
                 "analyzed only "
              << shards.sampled_invocations << " of "
              << shards.total_invocations << " invocations):\n\n";
    TablePrinter curve_table(
        {"Cache size (GB)", "Exact hit ratio", "SHARDS hit ratio"});
    for (double gb : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
        curve_table.addRow({formatDouble(gb, 1),
                            formatDouble(exact.hitRatio(gb * 1024), 3),
                            formatDouble(approx.hitRatio(gb * 1024), 3)});
    }
    curve_table.print(std::cout);

    // Provision: by target hit ratio and by the knee.
    const StaticProvisioner provisioner(exact);
    const ProvisioningPlan plan = provisioner.plan(0.90, 32 * 1024.0);
    std::cout << "\nProvisioning plan:\n"
              << "  target 90% hit ratio -> "
              << formatDouble(plan.target_size_mb / 1024.0, 2)
              << " GB (achieves "
              << formatDouble(plan.achieved_hit_ratio * 100, 1) << "%)\n"
              << "  knee of the curve    -> "
              << formatDouble(plan.knee_size_mb / 1024.0, 2)
              << " GB (achieves "
              << formatDouble(plan.knee_hit_ratio * 100, 1) << "%)\n"
              << "  compulsory-miss bound: max hit ratio "
              << formatDouble(plan.max_hit_ratio * 100, 1) << "%\n";
    return 0;
}

/**
 * @file
 * Using the real Azure Functions 2019 dataset (paper §7). If you have
 * downloaded the dataset, pass the three day-1 CSV paths:
 *
 *     example_azure_dataset_demo invocations.csv durations.csv memory.csv
 *
 * Without arguments the example runs on a bundled miniature dataset in
 * the same format, demonstrating the paper's pre-processing: app memory
 * split across functions, cold start = max - average duration, and
 * minute-bucket replay.
 */
#include <iostream>

#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "trace/azure_dataset.h"
#include "util/table.h"

using namespace faascache;

namespace {

AzureDatasetCsv
miniatureDataset()
{
    AzureDatasetCsv csv;
    std::string header = "HashOwner,HashApp,HashFunction,Trigger";
    for (int m = 1; m <= 30; ++m)
        header += "," + std::to_string(m);
    csv.invocations = header + "\n";
    // Three apps, five functions, 30 minutes of minute-bucket counts.
    const char* rows[] = {
        "o1,shop,cart,http",   "o1,shop,checkout,http",
        "o1,ml,infer,queue",   "o2,site,render,http",
        "o2,site,thumb,timer",
    };
    const int rates[] = {6, 1, 2, 12, 1};  // invocations per minute
    for (int f = 0; f < 5; ++f) {
        csv.invocations += rows[f];
        for (int m = 0; m < 30; ++m)
            csv.invocations += "," + std::to_string(rates[f]);
        csv.invocations += "\n";
    }
    csv.durations =
        "HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum\n"
        "o1,shop,cart,120,180,80,900\n"
        "o1,shop,checkout,350,30,200,2500\n"
        "o1,ml,infer,2000,60,1500,6500\n"
        "o2,site,render,90,360,60,2100\n"
        "o2,site,thumb,800,30,500,2300\n";
    csv.memory = "HashOwner,HashApp,SampleCount,AverageAllocatedMb\n"
                 "o1,shop,100,360\n"
                 "o1,ml,50,512\n"
                 "o2,site,100,170\n";
    return csv;
}

}  // namespace

int
main(int argc, char** argv)
{
    AzureDatasetResult adapted;
    if (argc == 4) {
        adapted = loadAzureDataset(argv[1], argv[2], argv[3]);
    } else {
        std::cout << "(no dataset paths given — using the bundled "
                     "miniature dataset)\n\n";
        adapted = adaptAzureDataset(miniatureDataset());
    }

    const Trace& trace = adapted.trace;
    const TraceStats stats = trace.stats();
    std::cout << "Adapted trace '" << trace.name() << "': "
              << stats.num_functions << " functions, "
              << stats.num_invocations << " invocations, "
              << formatDouble(stats.requests_per_sec, 2) << " req/s\n"
              << "Skipped: " << adapted.skipped_no_duration
              << " without durations, " << adapted.skipped_no_memory
              << " without app memory; dropped " << adapted.dropped_rare
              << " rare functions\n\n";

    TablePrinter functions({"function", "mem (MB)", "warm (ms)",
                            "init (ms)"});
    for (const auto& fn : trace.functions()) {
        functions.addRow({fn.name, formatDouble(fn.mem_mb, 0),
                          formatDouble(toMillis(fn.warm_us), 0),
                          formatDouble(toMillis(fn.initTime()), 0)});
    }
    functions.print(std::cout);

    SimulatorConfig config;
    config.memory_mb = stats.total_unique_mem_mb * 0.7;
    std::cout << "\nKeep-alive on "
              << formatDouble(config.memory_mb, 0) << " MB:\n\n";
    TablePrinter results({"policy", "warm", "cold", "cold %"});
    for (PolicyKind kind : {PolicyKind::GreedyDual, PolicyKind::Ttl,
                            PolicyKind::Hist}) {
        const SimResult r = simulateTrace(trace, makePolicy(kind), config);
        results.addRow({r.policy_name, std::to_string(r.warm_starts),
                        std::to_string(r.cold_starts),
                        formatDouble(r.coldStartPercent(), 1)});
    }
    results.print(std::cout);
    return 0;
}

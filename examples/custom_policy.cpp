/**
 * @file
 * Extending FaasCache with a custom keep-alive policy (paper §4.2: the
 * Greedy-Dual framework "permits many specialized and simpler
 * policies"). This example implements a cost-aware LRU — recency first,
 * initialization cost as the tie-breaker within a recency window — by
 * subclassing KeepAlivePolicy, and races it against the built-ins.
 */
#include <iostream>
#include <unordered_map>

#include "core/keepalive_policy.h"
#include "core/policy_factory.h"
#include "sim/simulator.h"
#include "trace/azure_model.h"
#include "trace/samplers.h"
#include "util/table.h"

using namespace faascache;

namespace {

/**
 * Cost-aware LRU: containers idle for less than `window` are never
 * victims before older ones, but among containers of similar age the
 * cheapest-to-rebuild (lowest init cost per MB) goes first.
 */
class CostAwareLruPolicy : public KeepAlivePolicy
{
  public:
    explicit CostAwareLruPolicy(TimeUs window = kMinute)
        : window_us_(window)
    {
    }

    std::string name() const override { return "COST-LRU"; }

    void
    onColdStart(Container& container, const FunctionSpec& function,
                TimeUs) override
    {
        cost_density_[function.id] =
            toSeconds(function.initTime()) / function.mem_mb;
        (void)container;
    }

    std::vector<ContainerId>
    selectVictims(ContainerPool& pool, MemMb needed_mb, TimeUs) override
    {
        const auto& density = cost_density_;
        const TimeUs window = window_us_;
        return selectAscending(
            pool, needed_mb,
            [&density, window](const Container& a, const Container& b) {
                // Bucket last-use times into recency windows.
                const TimeUs bucket_a = a.lastUsed() / window;
                const TimeUs bucket_b = b.lastUsed() / window;
                if (bucket_a != bucket_b)
                    return bucket_a < bucket_b;
                const auto da = density.count(a.function())
                    ? density.at(a.function()) : 0.0;
                const auto db = density.count(b.function())
                    ? density.at(b.function()) : 0.0;
                if (da != db)
                    return da < db;  // cheap-to-rebuild goes first
                return a.id() < b.id();
            });
    }

  private:
    TimeUs window_us_;
    std::unordered_map<FunctionId, double> cost_density_;
};

}  // namespace

int
main()
{
    AzureModelConfig model;
    model.seed = 5;
    model.num_functions = 400;
    model.duration_us = 30 * kMinute;
    model.iat_median_sec = 45.0;
    model.mem_median_mb = 64.0;
    model.mem_sigma = 0.7;
    model.mem_max_mb = 512.0;
    const Trace workload =
        sampleRepresentative(generateAzureTrace(model), 150, 1);

    std::cout << "Custom policy vs built-ins ("
              << workload.invocations().size() << " invocations):\n\n";
    TablePrinter table({"policy", "cold %", "exec-time increase %",
                        "evictions"});

    SimulatorConfig config;
    config.memory_mb = 2048;

    auto report = [&](SimResult r) {
        table.addRow({r.policy_name, formatDouble(r.coldStartPercent(), 2),
                      formatDouble(r.execTimeIncreasePercent(), 2),
                      std::to_string(r.evictions)});
    };
    report(simulateTrace(workload,
                         std::make_unique<CostAwareLruPolicy>(), config));
    for (PolicyKind kind :
         {PolicyKind::GreedyDual, PolicyKind::Lru, PolicyKind::Ttl}) {
        report(simulateTrace(workload, makePolicy(kind), config));
    }
    table.print(std::cout);
    std::cout << "\nAny class deriving KeepAlivePolicy plugs into the "
                 "simulator and the platform\nmodel unchanged — the same "
                 "interface drives both.\n";
    return 0;
}

/**
 * @file
 * Elastic vertical scaling (paper §5.2): run a diurnal workload through
 * the keep-alive simulator while the proportional controller resizes
 * the cache every 10 minutes to track a target cold-start speed, and
 * report the provisioned-memory savings versus static allocation.
 */
#include <iostream>

#include "core/policy_factory.h"
#include "provisioning/elastic_simulation.h"
#include "trace/azure_model.h"
#include "util/table.h"

using namespace faascache;

int
main()
{
    AzureModelConfig model;
    model.seed = 23;
    model.num_functions = 80;
    model.duration_us = 4 * kHour;
    model.iat_median_sec = 30.0;
    model.max_rate_per_sec = 2.0;
    model.warm_median_ms = 100.0;
    model.warm_sigma = 0.8;
    model.mem_median_mb = 128.0;
    model.mem_sigma = 0.6;
    model.mem_min_mb = 64;
    model.mem_max_mb = 512;
    model.diurnal = true;
    model.diurnal_peak_to_mean = 2.0;
    model.diurnal_period_us = 4 * kHour;
    const Trace workload = generateAzureTrace(model);

    ControllerConfig controller;
    controller.target_miss_speed = 1.0;
    controller.arrival_smoothing_alpha = 0.5;
    controller.min_size_mb = 1024;
    controller.max_size_mb = 32 * 1024;

    ElasticConfig elastic;
    elastic.initial_size_mb = 10'000;

    const ElasticResult result = runElasticSimulation(
        workload, makePolicy(PolicyKind::GreedyDual), controller, elastic);

    std::cout << "Elastic scaling of the keep-alive cache (target "
              << controller.target_miss_speed << " cold starts/s):\n\n";
    TablePrinter table({"t (min)", "arrivals/s", "cold/s", "size (MB)"});
    for (std::size_t i = 0; i < result.timeline.size(); i += 3) {
        const ElasticSample& s = result.timeline[i];
        table.addRow({formatDouble(toSeconds(s.time_us) / 60, 0),
                      formatDouble(s.arrival_rate, 1),
                      formatDouble(s.miss_speed, 2),
                      formatDouble(s.cache_size_mb, 0)});
    }
    table.print(std::cout);
    std::cout << "\nAverage dynamic size: "
              << formatDouble(result.averageSizeMb(), 0) << " MB vs "
              << formatDouble(elastic.initial_size_mb, 0)
              << " MB static ("
              << formatDouble(100 - 100 * result.averageSizeMb() /
                                           elastic.initial_size_mb,
                              0)
              << "% saved), peak " << formatDouble(result.peakSizeMb(), 0)
              << " MB\n";
    return 0;
}

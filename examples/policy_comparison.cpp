/**
 * @file
 * Compare all seven keep-alive policies on a realistic Azure-like
 * workload at several server sizes — a miniature of the paper's
 * Figure 5/6 study, using only the public API.
 */
#include <iostream>

#include "core/oracle_policy.h"
#include "core/policy_factory.h"
#include "core/warm_pool_policy.h"
#include "sim/simulator.h"
#include "trace/azure_model.h"
#include "trace/samplers.h"
#include "util/table.h"

using namespace faascache;

int
main()
{
    // A 30-minute synthetic Azure-like population, sampled down to a
    // representative 120-function server workload.
    AzureModelConfig model;
    model.seed = 7;
    model.num_functions = 600;
    model.duration_us = 30 * kMinute;
    model.iat_median_sec = 60.0;
    model.mem_median_mb = 64.0;
    model.mem_sigma = 0.7;
    model.mem_max_mb = 512.0;
    const Trace population = generateAzureTrace(model);
    const Trace workload = sampleRepresentative(population, 120, 1);

    const TraceStats stats = workload.stats();
    std::cout << "Workload: " << stats.num_invocations << " invocations, "
              << stats.num_functions << " functions, "
              << formatDouble(stats.requests_per_sec, 1) << " req/s, "
              << formatDouble(stats.total_unique_mem_mb / 1024.0, 1)
              << " GB unique function memory\n\n"
              << "Percent cold starts by policy and server memory:\n\n";

    std::vector<std::string> headers = {"Memory (GB)"};
    for (PolicyKind kind : allPolicyKinds())
        headers.push_back(policyKindName(kind));
    headers.push_back("POOL");
    headers.push_back("ORACLE");
    TablePrinter table(std::move(headers));

    for (double gb : {1.0, 2.0, 4.0, 8.0}) {
        std::vector<std::string> row = {formatDouble(gb, 0)};
        for (PolicyKind kind : allPolicyKinds()) {
            SimulatorConfig config;
            config.memory_mb = gb * 1024.0;
            const SimResult r =
                simulateTrace(workload, makePolicy(kind), config);
            row.push_back(formatDouble(r.coldStartPercent(), 1));
        }
        // Two baselines beyond the paper's figures: the fixed warm pool
        // of Lin & Glikson and the clairvoyant offline optimum.
        SimulatorConfig config;
        config.memory_mb = gb * 1024.0;
        row.push_back(formatDouble(
            simulateTrace(workload, std::make_unique<WarmPoolPolicy>(1),
                          config)
                .coldStartPercent(),
            1));
        row.push_back(formatDouble(
            simulateTrace(workload,
                          std::make_unique<OraclePolicy>(workload), config)
                .coldStartPercent(),
            1));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nGD = Greedy-Dual-Size-Frequency (FaasCache), "
                 "TTL = OpenWhisk default,\nHIST = histogram policy of "
                 "Shahrad et al., LND = Landlord,\nPOOL = fixed warm "
                 "pool (1/function), ORACLE = clairvoyant offline "
                 "baseline.\n";
    return 0;
}

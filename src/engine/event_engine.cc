#include "engine/event_engine.h"

namespace faascache {

const char*
eventLaneName(EventLane lane)
{
    switch (lane) {
      case EventLane::Normal:
        return "normal";
      case EventLane::Failure:
        return "failure";
    }
    return "unknown";
}

}  // namespace faascache

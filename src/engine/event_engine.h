/**
 * @file
 * The shared discrete-event engine core (DESIGN.md §4c).
 *
 * All three execution layers — the trace-driven simulator (sim/), the
 * OpenWhisk-like platform model (platform/), and the elastic
 * provisioning harness (provisioning/) — schedule through this one
 * engine instead of hand-rolling their own loops:
 *
 *  - EventCore<Kind>: a deterministic event queue ordered by
 *    (time, lane, seq). Events at equal timestamps are delivered by
 *    tie-break lane first, then in insertion (FIFO) order via a
 *    monotonically increasing sequence number.
 *  - SimClock: the simulation clock, advanced monotonically as events
 *    are delivered.
 *  - PeriodicSchedule (periodic_schedule.h): registered periodic tasks
 *    (maintenance, memory sampling, background reclaim, controller
 *    periods, HRC refresh).
 *
 * Tie-break lanes. A lane is the engine-level replacement for PR 3's
 * same-timestamp crash/restart deferral hack: instead of popping a
 * crash, noticing the server is down, and re-enqueueing it once so a
 * same-instant restart can run first, fault-injection events are
 * scheduled in the late `Failure` lane up front. At any timestamp t:
 *
 *    lane      | delivered | carries
 *    ----------+-----------+------------------------------------------
 *    Normal=0  | first     | arrivals, finishes, maintenance, retries,
 *              |           | restarts — all ordinary simulation events
 *    Failure=1 | last      | injected faults (crashes)
 *
 * so a restart due at the exact instant of a crash always runs before
 * it, and a crash that still finds the server down is absorbed by the
 * wider outage — with no special-case code at the delivery site. The
 * lane is also the engine's fault-injection hook: any future injected
 * fault kind schedules in the Failure lane and inherits the same
 * deterministic ordering guarantee.
 *
 * Cooperative cancellation. A bound util/cancellation token is checked
 * on every pop(), so a watchdog or signal handler unwinds any event
 * loop built on the engine promptly (CancelledError propagates out of
 * the loop). A run that is never cancelled is byte-identical with or
 * without a token bound.
 *
 * Cancellation handles. schedule() returns an EventHandle; cancel()
 * marks the event dead without disturbing the heap (lazy deletion: dead
 * events are discarded before they can surface), so the head of the
 * queue is never a cancelled event and empty()/size()/nextTime() stay
 * exact.
 *
 * Heap layout (DESIGN.md §4d). The queue is a flat 4-ary heap: children
 * of node i sit at 4i+1..4i+4, so the tree is half as deep as a binary
 * heap and a sift touches one cache line of children per level. Because
 * (time, lane, seq) is a *total* order (seq is unique), the pop sequence
 * is the sorted event sequence regardless of heap arity — switching
 * arity cannot change observable behavior, only constant factors. The
 * backing vector is recycled through a per-thread stash across
 * EventCore lifetimes, so consecutive sweep cells on a worker thread
 * reuse the previous cell's reserved capacity instead of reallocating.
 */
#ifndef FAASCACHE_ENGINE_EVENT_ENGINE_H_
#define FAASCACHE_ENGINE_EVENT_ENGINE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/audit.h"
#include "util/cancellation.h"
#include "util/types.h"

namespace faascache {

/**
 * Same-timestamp tie-break lane. Lower lanes deliver first; within a
 * lane, insertion (FIFO) order wins. Keep ordinary simulation traffic
 * in Normal so existing FIFO semantics are untouched; schedule injected
 * faults in Failure so same-instant recovery events always precede
 * them.
 */
enum class EventLane : std::uint8_t
{
    Normal = 0,   ///< ordinary simulation events (FIFO among themselves)
    Failure = 1,  ///< injected faults; delivered after all Normal events
};

/** Lower-case display name of a lane ("normal", "failure"). */
const char* eventLaneName(EventLane lane);

/** Ticket for cancelling a scheduled event. */
struct EventHandle
{
    static constexpr std::uint64_t kInvalid = ~0ULL;

    std::uint64_t seq = kInvalid;

    bool valid() const { return seq != kInvalid; }
};

/** One scheduled event; `Kind` is the layer's own event vocabulary. */
template <typename Kind>
struct EngineEvent
{
    TimeUs time_us = 0;
    EventLane lane = EventLane::Normal;
    std::uint64_t seq = 0;  ///< assigned by the core; breaks time ties
    Kind kind{};
    std::uint64_t payload = 0;
    std::uint64_t payload2 = 0;
};

/**
 * One entry of a bulk admission (EventCore::scheduleBatch). Sequence
 * numbers are assigned at admission in array order, so a batch keeps
 * the exact FIFO tie-break it would have had as individual schedule()
 * calls in the same order.
 */
template <typename Kind>
struct EventBatchItem
{
    TimeUs time_us = 0;
    Kind kind{};
    std::uint64_t payload = 0;
    std::uint64_t payload2 = 0;
};

/**
 * Deterministic min-heap of events ordered by (time, lane, seq), laid
 * out as a flat 4-ary heap over an explicit vector so callers can
 * reserve() capacity up front (no mid-run reallocation) and clear()
 * state between runs.
 */
template <typename Kind>
class EventCore
{
  public:
    /** Adopts the calling thread's stashed buffer (capacity reuse). */
    EventCore() { heap_ = acquireStash(); }

    /** Returns the buffer to the thread stash for the next EventCore. */
    ~EventCore() { releaseStash(std::move(heap_)); }

    EventCore(const EventCore&) = delete;
    EventCore& operator=(const EventCore&) = delete;

    /** Schedule an event; its sequence number is assigned here. */
    EventHandle schedule(TimeUs time_us, Kind kind,
                         std::uint64_t payload = 0,
                         std::uint64_t payload2 = 0,
                         EventLane lane = EventLane::Normal)
    {
        EngineEvent<Kind> event;
        event.time_us = time_us;
        event.lane = lane;
        event.seq = next_seq_++;
        event.kind = kind;
        event.payload = payload;
        event.payload2 = payload2;
        heap_.push_back(event);
        siftUp(heap_.size() - 1);
        return EventHandle{event.seq};
    }

    /**
     * Admit a whole setup schedule in one coalesced push. Equivalent to
     * calling schedule() once per item in array order — sequence
     * numbers are assigned in that order, and because (time, lane, seq)
     * is a total order the pop sequence cannot depend on how the heap
     * was built — but the heap is restored once per batch instead of
     * once per item: appended items are sifted individually only while
     * they are few relative to the existing heap; a batch that
     * dominates the heap triggers a single bottom-up (Floyd) rebuild,
     * O(n) instead of O(n log n) sifts.
     */
    void scheduleBatch(const std::vector<EventBatchItem<Kind>>& items,
                       EventLane lane = EventLane::Normal)
    {
        if (items.empty())
            return;
        const std::size_t old_size = heap_.size();
        heap_.reserve(old_size + items.size());
        for (const EventBatchItem<Kind>& item : items) {
            EngineEvent<Kind> event;
            event.time_us = item.time_us;
            event.lane = lane;
            event.seq = next_seq_++;
            event.kind = item.kind;
            event.payload = item.payload;
            event.payload2 = item.payload2;
            heap_.push_back(event);
        }
        if (items.size() < old_size / 4) {
            for (std::size_t i = old_size; i < heap_.size(); ++i)
                siftUp(i);
        } else {
            rebuildHeap();
        }
    }

    /** Shorthand for scheduling into the Failure lane (fault hook). */
    EventHandle scheduleFailure(TimeUs time_us, Kind kind,
                                std::uint64_t payload = 0,
                                std::uint64_t payload2 = 0)
    {
        return schedule(time_us, kind, payload, payload2,
                        EventLane::Failure);
    }

    /**
     * Cancel a scheduled event. O(pending) — cancellation is expected
     * to be rare; delivery stays O(log n).
     * @return True when the event was pending and is now dead; false
     *         when the handle is invalid, already delivered, or already
     *         cancelled.
     */
    bool cancel(EventHandle handle)
    {
        if (!handle.valid() || handle.seq >= next_seq_)
            return false;
        if (cancelled_.count(handle.seq) != 0)
            return false;
        const bool pending = std::any_of(
            heap_.begin(), heap_.end(),
            [&](const EngineEvent<Kind>& e) { return e.seq == handle.seq; });
        if (!pending)
            return false;
        cancelled_.insert(handle.seq);
        pruneCancelled();
        return true;
    }

    /**
     * Bind a cooperative cancellation token (non-owning; null unbinds).
     * Checked on every pop(): a cancelled token throws CancelledError
     * out of the event loop before the next event is delivered.
     */
    void bindCancellation(const CancellationToken* token)
    {
        cancel_token_ = token;
    }

    /**
     * Bind a runtime invariant auditor (non-owning; null or Off
     * unbinds). With an auditor bound, every pop() verifies the
     * delivered (time, lane, seq) strictly follows the previous one —
     * the engine's total-order delivery guarantee, checked live.
     */
    void bindAuditor(Auditor* auditor)
    {
        audit_ =
            auditor != nullptr && auditor->enabled() ? auditor : nullptr;
    }

    /** Pre-size the heap (e.g. from the trace size at setup) so the
     *  run never reallocates mid-flight. */
    void reserve(std::size_t events) { heap_.reserve(events); }

    /** Drop all pending events and reset sequence numbering, so the
     *  next run never observes a stale heap. Keeps capacity. */
    void clear()
    {
        heap_.clear();
        cancelled_.clear();
        next_seq_ = 0;
        delivered_any_ = false;
    }

    bool empty() const { return heap_.empty(); }

    /** Pending (non-cancelled) events. */
    std::size_t size() const { return heap_.size() - cancelled_.size(); }

    /** Heap slots currently allocated. */
    std::size_t capacity() const { return heap_.capacity(); }

    /** Timestamp of the next event. @pre !empty(). */
    TimeUs nextTime() const
    {
        assert(!heap_.empty());
        return heap_.front().time_us;
    }

    /**
     * Any pending event strictly before `horizon_us`? The sharded
     * cluster's windowed loop asks this at every barrier to decide
     * whether the next window can be skipped ahead. Counts a
     * cancelled-but-unpruned root the same way nextTime() would.
     */
    bool hasEventBefore(TimeUs horizon_us) const
    {
        return !heap_.empty() && heap_.front().time_us < horizon_us;
    }

    /**
     * Remove and return the next event. @pre !empty().
     * @throws CancelledError when a bound token is cancelled.
     */
    EngineEvent<Kind> pop()
    {
        assert(!heap_.empty());
        if (cancel_token_ != nullptr)
            cancel_token_->throwIfCancelled();
        const EngineEvent<Kind> event = popRoot();
        pruneCancelled();
        if (audit_ != nullptr)
            auditDelivery(event);
        return event;
    }

  private:
    /** Heap order: `a` delivers after `b` (min by time, lane, seq). */
    static bool later(const EngineEvent<Kind>& a, const EngineEvent<Kind>& b)
    {
        if (a.time_us != b.time_us)
            return a.time_us > b.time_us;
        if (a.lane != b.lane)
            return a.lane > b.lane;
        return a.seq > b.seq;
    }

    /** 4-ary sift toward the root: the hole at `i` bubbles up until its
     *  parent is not later than the inserted event. */
    void siftUp(std::size_t i)
    {
        const EngineEvent<Kind> event = heap_[i];
        while (i > 0) {
            const std::size_t parent = (i - 1) >> 2;
            if (!later(heap_[parent], event))
                break;
            heap_[i] = heap_[parent];
            i = parent;
        }
        heap_[i] = event;
    }

    /** 4-ary sift toward the leaves: the hole at `i` sinks, pulling the
     *  earliest of up to four children per level. */
    void siftDown(std::size_t i)
    {
        const std::size_t n = heap_.size();
        const EngineEvent<Kind> event = heap_[i];
        for (;;) {
            const std::size_t first = (i << 2) + 1;
            if (first >= n)
                break;
            std::size_t best = first;
            const std::size_t last = std::min(first + 4, n);
            for (std::size_t child = first + 1; child < last; ++child) {
                if (later(heap_[best], heap_[child]))
                    best = child;
            }
            if (!later(event, heap_[best]))
                break;
            heap_[i] = heap_[best];
            i = best;
        }
        heap_[i] = event;
    }

    /** Bottom-up (Floyd) heap construction over the whole vector:
     *  sift every internal node down, deepest parents first. */
    void rebuildHeap()
    {
        const std::size_t n = heap_.size();
        if (n < 2)
            return;
        for (std::size_t i = ((n - 2) >> 2) + 1; i-- > 0;)
            siftDown(i);
    }

    /** Remove and return the root. @pre !heap_.empty(). */
    EngineEvent<Kind> popRoot()
    {
        const EngineEvent<Kind> event = heap_.front();
        heap_.front() = heap_.back();
        heap_.pop_back();
        if (!heap_.empty())
            siftDown(0);
        return event;
    }

    /** Discard cancelled events from the head, restoring the invariant
     *  that the head of the queue is live (or the queue is empty). */
    void pruneCancelled()
    {
        while (!heap_.empty() && !cancelled_.empty() &&
               cancelled_.count(heap_.front().seq) != 0) {
            cancelled_.erase(heap_.front().seq);
            (void)popRoot();
        }
    }

    /**
     * Per-thread buffer stash. One retired heap buffer is kept per
     * thread (per Kind instantiation) and handed to the next EventCore
     * constructed on that thread, so back-to-back sweep cells reuse
     * reserved capacity instead of growing a fresh vector each run.
     * Thread-local, so sweep workers never contend or share buffers.
     */
    static std::vector<EngineEvent<Kind>>& stash()
    {
        static thread_local std::vector<EngineEvent<Kind>> stashed;
        return stashed;
    }

    static std::vector<EngineEvent<Kind>> acquireStash()
    {
        std::vector<EngineEvent<Kind>> buffer;
        buffer.swap(stash());
        buffer.clear();
        return buffer;
    }

    static void releaseStash(std::vector<EngineEvent<Kind>>&& buffer)
    {
        if (buffer.capacity() > stash().capacity()) {
            stash() = std::move(buffer);
            stash().clear();
        }
    }

    /** Audit: delivery must strictly follow (time, lane, seq) order. */
    void auditDelivery(const EngineEvent<Kind>& event)
    {
        if (delivered_any_) {
            const bool ordered =
                event.time_us > last_time_ ||
                (event.time_us == last_time_ &&
                 (event.lane > last_lane_ ||
                  (event.lane == last_lane_ && event.seq > last_seq_)));
            if (!ordered) {
                audit_->fail(
                    "event-order", event.time_us,
                    static_cast<std::int64_t>(event.seq),
                    "delivered (t=" + std::to_string(event.time_us) +
                        ", lane=" +
                        std::to_string(static_cast<int>(event.lane)) +
                        ", seq=" + std::to_string(event.seq) +
                        ") not after (t=" + std::to_string(last_time_) +
                        ", lane=" +
                        std::to_string(static_cast<int>(last_lane_)) +
                        ", seq=" + std::to_string(last_seq_) + ")");
            }
        }
        delivered_any_ = true;
        last_time_ = event.time_us;
        last_lane_ = event.lane;
        last_seq_ = event.seq;
    }

    std::vector<EngineEvent<Kind>> heap_;

    /** Seqs cancelled but still buried in the heap (lazy deletion). */
    std::unordered_set<std::uint64_t> cancelled_;

    std::uint64_t next_seq_ = 0;
    const CancellationToken* cancel_token_ = nullptr;

    /** Audit state: the last delivered (time, lane, seq). */
    Auditor* audit_ = nullptr;
    bool delivered_any_ = false;
    TimeUs last_time_ = 0;
    EventLane last_lane_ = EventLane::Normal;
    std::uint64_t last_seq_ = 0;
};

/**
 * The simulation clock: current simulated time, advanced monotonically
 * as events are delivered (event queues deliver in time order, so the
 * clock never runs backwards within a run).
 */
class SimClock
{
  public:
    TimeUs now() const { return now_; }

    /** Advance to `t`. @pre t >= now() (time is monotonic). */
    void advanceTo(TimeUs t)
    {
        assert(t >= now_);
        now_ = t;
    }

    /** Rewind for a fresh run. */
    void reset(TimeUs t = 0) { now_ = t; }

  private:
    TimeUs now_ = 0;
};

}  // namespace faascache

#endif  // FAASCACHE_ENGINE_EVENT_ENGINE_H_

/**
 * @file
 * Registered periodic tasks for the shared discrete-event engine
 * (DESIGN.md §4c): maintenance ticks, memory sampling, background
 * reclaim, controller periods, HRC refresh.
 *
 * A PeriodicSchedule replaces a layer's hand-rolled
 * `while (next_due <= t) { next_due += interval; ... }` advancement
 * loop. catchUp() is deliberately *phase-ordered*, not time-interleaved
 * across schedules: a layer catches up one schedule fully (all its due
 * ticks <= t) before the next, which is exactly what the historical
 * while-loops did — so porting a layer onto PeriodicSchedule is
 * mechanical and byte-identical. Layers that need strict cross-task
 * time interleaving should schedule EventCore events instead.
 */
#ifndef FAASCACHE_ENGINE_PERIODIC_SCHEDULE_H_
#define FAASCACHE_ENGINE_PERIODIC_SCHEDULE_H_

#include <utility>

#include "util/types.h"

namespace faascache {

/** One periodic task's due-time state. */
class PeriodicSchedule
{
  public:
    /** A disabled schedule (never due). */
    PeriodicSchedule() = default;

    /**
     * @param first_due_us First tick's due time.
     * @param interval_us  Period between ticks; <= 0 disables the
     *                     schedule entirely (catchUp() is a no-op).
     */
    PeriodicSchedule(TimeUs first_due_us, TimeUs interval_us)
        : next_due_us_(first_due_us), interval_us_(interval_us)
    {
    }

    bool enabled() const { return interval_us_ > 0; }

    TimeUs interval() const { return interval_us_; }

    /** Due time of the next tick (meaningful only when enabled). */
    TimeUs nextDue() const { return next_due_us_; }

    /** Whether at least one tick is due at or before `t`. */
    bool due(TimeUs t) const { return enabled() && next_due_us_ <= t; }

    /** Consume one tick: return its due time and arm the next. */
    TimeUs tick()
    {
        const TimeUs due_us = next_due_us_;
        next_due_us_ += interval_us_;
        return due_us;
    }

    /**
     * Fire every tick due at or before `t`, in due-time order, passing
     * each tick's own due time to `fn(TimeUs due)`. The next tick is
     * armed *before* fn runs, so fn may consult nextDue() safely.
     */
    template <typename Fn>
    void catchUp(TimeUs t, Fn&& fn)
    {
        if (!enabled())
            return;
        while (next_due_us_ <= t)
            std::forward<Fn>(fn)(tick());
    }

  private:
    TimeUs next_due_us_ = 0;
    TimeUs interval_us_ = 0;
};

}  // namespace faascache

#endif  // FAASCACHE_ENGINE_PERIODIC_SCHEDULE_H_

#include "analysis/fenwick.h"

#include <cassert>

namespace faascache {

FenwickTree::FenwickTree(std::size_t size)
    : tree_(size + 1, 0.0), values_(size, 0.0)
{
}

void
FenwickTree::add(std::size_t i, double delta)
{
    assert(i < values_.size());
    values_[i] += delta;
    for (std::size_t j = i + 1; j < tree_.size(); j += j & (~j + 1))
        tree_[j] += delta;
}

void
FenwickTree::set(std::size_t i, double value)
{
    add(i, value - values_.at(i));
}

double
FenwickTree::prefixSum(std::size_t i) const
{
    assert(i < values_.size());
    double sum = 0.0;
    for (std::size_t j = i + 1; j > 0; j -= j & (~j + 1))
        sum += tree_[j];
    return sum;
}

double
FenwickTree::rangeSum(std::size_t lo, std::size_t hi) const
{
    if (lo > hi)
        return 0.0;
    const double upper = prefixSum(hi);
    const double lower = lo == 0 ? 0.0 : prefixSum(lo - 1);
    return upper - lower;
}

double
FenwickTree::totalSum() const
{
    return values_.empty() ? 0.0 : prefixSum(values_.size() - 1);
}

}  // namespace faascache

/**
 * @file
 * Online hit-ratio-curve construction (paper §5.2 "Online adjustments":
 * the provisioning policies have an offline preparation phase; a drift
 * in function characteristics is fixed by periodically re-deriving the
 * hit-ratio curve — the paper lists streaming curve construction as
 * future work, implemented here).
 *
 * The analyzer consumes the invocation stream one access at a time,
 * samples functions SHARDS-style (hash threshold, rate R), maintains
 * their size-weighted reuse distances with an incrementally grown
 * Fenwick tree, and can snapshot a HitRatioCurve at any moment. Fed the
 * same stream, it produces exactly the distances of the offline
 * shardsSample() pass with the same rate and seed.
 */
#ifndef FAASCACHE_ANALYSIS_ONLINE_HRC_H_
#define FAASCACHE_ANALYSIS_ONLINE_HRC_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "analysis/fenwick.h"
#include "analysis/hit_ratio_curve.h"
#include "util/types.h"

namespace faascache {

/** Streaming size-weighted reuse-distance / hit-ratio estimator. */
class OnlineReuseAnalyzer
{
  public:
    /**
     * @param sample_rate SHARDS sampling rate in (0, 1].
     * @param seed        Salt for the sampling hash.
     */
    explicit OnlineReuseAnalyzer(double sample_rate = 0.25,
                                 std::uint64_t seed = 0);

    /** Feed one invocation of `function` with the given memory size. */
    void observe(FunctionId function, MemMb size_mb);

    /** Invocations observed (sampled or not). */
    std::size_t observedCount() const { return observed_; }

    /** Invocations that fell into the sample. */
    std::size_t sampledCount() const { return sampled_; }

    /** Snapshot the current hit-ratio curve estimate. */
    HitRatioCurve curve() const;

    /** Scaled reuse distances collected so far (1/R weighted). */
    const std::vector<double>& scaledDistances() const
    {
        return distances_;
    }

    double sampleRate() const { return sample_rate_; }

    /** Forget everything (e.g. to window the estimate). */
    void reset();

  private:
    /** Whether a function falls into the hash sample. */
    bool isSampled(FunctionId function) const;

    /** Ensure the position tree can hold `pos`. */
    void growTo(std::size_t pos);

    double sample_rate_;
    std::uint64_t seed_;
    std::uint64_t threshold_;

    FenwickTree tree_;
    std::unordered_map<FunctionId, std::size_t> last_pos_;
    std::vector<double> distances_;
    std::size_t next_pos_ = 0;
    std::size_t observed_ = 0;
    std::size_t sampled_ = 0;
};

}  // namespace faascache

#endif  // FAASCACHE_ANALYSIS_ONLINE_HRC_H_

/**
 * @file
 * Fenwick (binary indexed) tree over doubles, the engine behind the
 * O(N log N) size-weighted reuse-distance computation (paper §5.1).
 */
#ifndef FAASCACHE_ANALYSIS_FENWICK_H_
#define FAASCACHE_ANALYSIS_FENWICK_H_

#include <cstddef>
#include <vector>

namespace faascache {

/** Point-update / prefix-sum tree over a fixed-size array of doubles. */
class FenwickTree
{
  public:
    /** @param size Number of slots, indexed [0, size). */
    explicit FenwickTree(std::size_t size);

    std::size_t size() const { return values_.size(); }

    /** Add `delta` to slot i. */
    void add(std::size_t i, double delta);

    /** Set slot i to `value` (tracked via a shadow array). */
    void set(std::size_t i, double value);

    /** Current value of slot i. */
    double get(std::size_t i) const { return values_.at(i); }

    /** Sum of slots [0, i] (0 when i is npos-like large is invalid). */
    double prefixSum(std::size_t i) const;

    /** Sum of slots [lo, hi]; empty ranges (lo > hi) sum to zero. */
    double rangeSum(std::size_t lo, std::size_t hi) const;

    /** Sum over all slots. */
    double totalSum() const;

  private:
    std::vector<double> tree_;
    std::vector<double> values_;
};

}  // namespace faascache

#endif  // FAASCACHE_ANALYSIS_FENWICK_H_

/**
 * @file
 * Size-weighted reuse distances (paper §5.1).
 *
 * A function's reuse distance is the total memory size of the *unique*
 * functions invoked between successive invocations of that function:
 * in the sequence ABCBCA, the reuse distance of the second A is
 * size(B) + size(C). First touches have infinite distance (compulsory
 * misses), encoded here as kInfiniteReuseDistance.
 */
#ifndef FAASCACHE_ANALYSIS_REUSE_DISTANCE_H_
#define FAASCACHE_ANALYSIS_REUSE_DISTANCE_H_

#include <vector>

#include "trace/invocation_source.h"
#include "trace/trace.h"
#include "util/types.h"

namespace faascache {

/** Marker for a first touch (compulsory miss). */
inline constexpr double kInfiniteReuseDistance = -1.0;

/** True for finite (non-first-touch) distances. */
constexpr bool isFiniteReuseDistance(double d) { return d >= 0.0; }

/**
 * Reuse distance of every invocation in trace order, in MB.
 * O(N log N) via a Fenwick tree over invocation positions.
 */
std::vector<double> computeReuseDistances(const Trace& trace);

/**
 * Streaming overload: one pass over the source (reset before and
 * after). Identical output to the Trace overload on the materialized
 * equivalent. Note the result is still O(N) doubles — reuse-distance
 * *storage* is inherently per-invocation; only the trace itself stays
 * out of memory.
 */
std::vector<double> computeReuseDistances(InvocationSource& source);

/**
 * Reference implementation scanning all intermediate invocations per
 * access, O(N^2); used to verify the fast version in tests.
 */
std::vector<double> computeReuseDistancesNaive(const Trace& trace);

/**
 * Reuse distances of a specific invocation subsequence given by
 * (function, order) pairs; sizes are looked up in `sizes` indexed by
 * function id. Building block for SHARDS sampling.
 */
std::vector<double> computeReuseDistancesOf(
    const std::vector<FunctionId>& accesses,
    const std::vector<MemMb>& sizes);

}  // namespace faascache

#endif  // FAASCACHE_ANALYSIS_REUSE_DISTANCE_H_

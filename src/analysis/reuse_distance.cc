#include "analysis/reuse_distance.h"

#include <unordered_map>
#include <unordered_set>

#include "analysis/fenwick.h"

namespace faascache {

std::vector<double>
computeReuseDistancesOf(const std::vector<FunctionId>& accesses,
                        const std::vector<MemMb>& sizes)
{
    std::vector<double> distances;
    distances.reserve(accesses.size());

    // tree[pos] holds the size of the function whose most recent access
    // is at position pos; summing the open interval between a function's
    // previous access and now yields the unique-size reuse distance.
    FenwickTree tree(accesses.size());
    std::unordered_map<FunctionId, std::size_t> last_pos;
    last_pos.reserve(sizes.size());

    for (std::size_t i = 0; i < accesses.size(); ++i) {
        const FunctionId fn = accesses[i];
        const MemMb size = sizes.at(fn);
        auto it = last_pos.find(fn);
        if (it == last_pos.end()) {
            distances.push_back(kInfiniteReuseDistance);
        } else {
            const std::size_t prev = it->second;
            // Sum of unique sizes strictly between prev and i.
            distances.push_back(tree.rangeSum(prev + 1, i));
            tree.set(prev, 0.0);
        }
        tree.set(i, size);
        last_pos[fn] = i;
    }
    return distances;
}

std::vector<double>
computeReuseDistances(const Trace& trace)
{
    std::vector<FunctionId> accesses;
    accesses.reserve(trace.invocations().size());
    for (const auto& inv : trace.invocations())
        accesses.push_back(inv.function);
    std::vector<MemMb> sizes;
    sizes.reserve(trace.functions().size());
    for (const auto& fn : trace.functions())
        sizes.push_back(fn.mem_mb);
    return computeReuseDistancesOf(accesses, sizes);
}

std::vector<double>
computeReuseDistances(InvocationSource& source)
{
    source.reset();
    std::vector<FunctionId> accesses;
    const SourceCountHint hint = source.countHint();
    accesses.reserve(hint.count);
    Invocation inv;
    while (source.next(inv))
        accesses.push_back(inv.function);
    source.reset();
    std::vector<MemMb> sizes;
    sizes.reserve(source.functions().size());
    for (const auto& fn : source.functions())
        sizes.push_back(fn.mem_mb);
    return computeReuseDistancesOf(accesses, sizes);
}

std::vector<double>
computeReuseDistancesNaive(const Trace& trace)
{
    const auto& invocations = trace.invocations();
    std::vector<double> distances;
    distances.reserve(invocations.size());
    std::unordered_map<FunctionId, std::size_t> last_pos;

    for (std::size_t i = 0; i < invocations.size(); ++i) {
        const FunctionId fn = invocations[i].function;
        auto it = last_pos.find(fn);
        if (it == last_pos.end()) {
            distances.push_back(kInfiniteReuseDistance);
        } else {
            std::unordered_set<FunctionId> unique;
            double total = 0.0;
            for (std::size_t j = it->second + 1; j < i; ++j) {
                const FunctionId other = invocations[j].function;
                if (other != fn && unique.insert(other).second)
                    total += trace.function(other).mem_mb;
            }
            distances.push_back(total);
        }
        last_pos[fn] = i;
    }
    return distances;
}

}  // namespace faascache

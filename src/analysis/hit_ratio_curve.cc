#include "analysis/hit_ratio_curve.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "analysis/reuse_distance.h"

namespace faascache {

HitRatioCurve
HitRatioCurve::fromReuseDistances(const std::vector<double>& reuse_distances,
                                  double weight)
{
    assert(weight > 0);
    HitRatioCurve curve;
    curve.weight_per_entry_ = weight;
    for (double d : reuse_distances) {
        curve.total_weight_ += weight;
        if (isFiniteReuseDistance(d)) {
            curve.sorted_.push_back(d);
            curve.finite_weight_ += weight;
        }
    }
    std::sort(curve.sorted_.begin(), curve.sorted_.end());
    return curve;
}

double
HitRatioCurve::hitRatio(MemMb size_mb) const
{
    if (total_weight_ <= 0.0)
        return 0.0;
    const auto it =
        std::upper_bound(sorted_.begin(), sorted_.end(), size_mb);
    const double covered =
        static_cast<double>(it - sorted_.begin()) * weight_per_entry_;
    return covered / total_weight_;
}

double
HitRatioCurve::maxHitRatio() const
{
    if (total_weight_ <= 0.0)
        return 0.0;
    return finite_weight_ / total_weight_;
}

MemMb
HitRatioCurve::sizeForHitRatio(double target) const
{
    if (sorted_.empty())
        return 0.0;
    target = std::clamp(target, 0.0, maxHitRatio());
    // Need the smallest size s with (#finite <= s) * w >= target * total.
    const double needed_entries =
        target * total_weight_ / weight_per_entry_;
    auto index = static_cast<std::size_t>(std::ceil(needed_entries));
    if (index == 0)
        return 0.0;
    index = std::min(index, sorted_.size());
    return sorted_[index - 1];
}

}  // namespace faascache

#include "analysis/shards.h"

#include <cassert>
#include <limits>

#include "analysis/reuse_distance.h"
#include "util/rng.h"

namespace faascache {

ShardsResult
shardsSample(const Trace& trace, double sample_rate, std::uint64_t seed)
{
    assert(sample_rate > 0.0 && sample_rate <= 1.0);
    ShardsResult result;
    result.sample_rate = sample_rate;
    result.total_invocations = trace.invocations().size();

    // A function is sampled iff hash(id ^ salt) <= R * 2^64. Computing
    // the threshold in double space overflows uint64 at R = 1, so treat
    // full rate explicitly.
    const std::uint64_t threshold = sample_rate >= 1.0
        ? std::numeric_limits<std::uint64_t>::max()
        : static_cast<std::uint64_t>(
              sample_rate *
              static_cast<double>(std::numeric_limits<std::uint64_t>::max()));

    std::vector<bool> sampled(trace.functions().size(), false);
    for (const auto& fn : trace.functions()) {
        const std::uint64_t h = Rng::hashMix(fn.id ^ seed);
        if (h <= threshold) {
            sampled[fn.id] = true;
            ++result.sampled_functions;
        }
    }

    std::vector<FunctionId> accesses;
    for (const auto& inv : trace.invocations()) {
        if (sampled[inv.function])
            accesses.push_back(inv.function);
    }
    result.sampled_invocations = accesses.size();

    std::vector<MemMb> sizes;
    sizes.reserve(trace.functions().size());
    for (const auto& fn : trace.functions())
        sizes.push_back(fn.mem_mb);

    result.scaled_distances = computeReuseDistancesOf(accesses, sizes);
    for (double& d : result.scaled_distances) {
        if (isFiniteReuseDistance(d))
            d /= sample_rate;
    }
    return result;
}

HitRatioCurve
curveFromShards(const ShardsResult& shards)
{
    return HitRatioCurve::fromReuseDistances(shards.scaled_distances,
                                             1.0 / shards.sample_rate);
}

}  // namespace faascache

/**
 * @file
 * Cache sizing from hit-ratio curves (paper §5.1): target-hit-ratio
 * sizing and inflection-point ("knee") detection, the two provisioning
 * rules the paper proposes for picking server memory.
 */
#ifndef FAASCACHE_ANALYSIS_SIZING_H_
#define FAASCACHE_ANALYSIS_SIZING_H_

#include "analysis/hit_ratio_curve.h"
#include "util/types.h"

namespace faascache {

/**
 * Knee of the hit-ratio curve: the size in [min_mb, max_mb] maximizing
 * the distance between the curve and the chord connecting its endpoints
 * (the Kneedle criterion). Past this point the marginal utility of
 * additional cache diminishes.
 *
 * @param curve       Curve to analyze (non-empty).
 * @param min_mb      Lower end of the search range (> 0).
 * @param max_mb      Upper end of the search range (> min_mb).
 * @param grid_points Sampling resolution (>= 2).
 */
MemMb kneeSize(const HitRatioCurve& curve, MemMb min_mb, MemMb max_mb,
               int grid_points = 256);

}  // namespace faascache

#endif  // FAASCACHE_ANALYSIS_SIZING_H_

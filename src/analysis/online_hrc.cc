#include "analysis/online_hrc.h"

#include <cassert>
#include <limits>

#include "analysis/reuse_distance.h"
#include "util/rng.h"

namespace faascache {

OnlineReuseAnalyzer::OnlineReuseAnalyzer(double sample_rate,
                                         std::uint64_t seed)
    : sample_rate_(sample_rate), seed_(seed), tree_(1024)
{
    assert(sample_rate > 0.0 && sample_rate <= 1.0);
    threshold_ = sample_rate >= 1.0
        ? std::numeric_limits<std::uint64_t>::max()
        : static_cast<std::uint64_t>(
              sample_rate *
              static_cast<double>(std::numeric_limits<std::uint64_t>::max()));
}

bool
OnlineReuseAnalyzer::isSampled(FunctionId function) const
{
    return Rng::hashMix(function ^ seed_) <= threshold_;
}

void
OnlineReuseAnalyzer::growTo(std::size_t pos)
{
    if (pos < tree_.size())
        return;
    std::size_t capacity = tree_.size();
    while (capacity <= pos)
        capacity *= 2;
    FenwickTree grown(capacity);
    for (std::size_t i = 0; i < tree_.size(); ++i) {
        const double v = tree_.get(i);
        if (v != 0.0)
            grown.add(i, v);
    }
    tree_ = std::move(grown);
}

void
OnlineReuseAnalyzer::observe(FunctionId function, MemMb size_mb)
{
    ++observed_;
    if (!isSampled(function))
        return;
    ++sampled_;

    const std::size_t pos = next_pos_++;
    growTo(pos);
    auto it = last_pos_.find(function);
    if (it == last_pos_.end()) {
        distances_.push_back(kInfiniteReuseDistance);
    } else {
        const std::size_t prev = it->second;
        distances_.push_back(tree_.rangeSum(prev + 1, pos) / sample_rate_);
        tree_.set(prev, 0.0);
    }
    tree_.set(pos, size_mb);
    last_pos_[function] = pos;
}

HitRatioCurve
OnlineReuseAnalyzer::curve() const
{
    return HitRatioCurve::fromReuseDistances(distances_,
                                             1.0 / sample_rate_);
}

void
OnlineReuseAnalyzer::reset()
{
    tree_ = FenwickTree(1024);
    last_pos_.clear();
    distances_.clear();
    next_pos_ = 0;
    observed_ = 0;
    sampled_ = 0;
}

}  // namespace faascache

/**
 * @file
 * SHARDS (Spatially Hashed Approximate Reuse Distance Sampling,
 * Waldspurger et al., FAST'15) applied to function keep-alive.
 *
 * The paper (§5.1) notes that computing reuse distances over an entire
 * trace is expensive and that SHARDS "can be applied to drastically
 * reduce the overhead". Fixed-rate SHARDS samples the functions whose
 * hashed id falls under a threshold (rate R), computes reuse distances
 * on the sampled sub-trace only, and scales each distance by 1/R.
 */
#ifndef FAASCACHE_ANALYSIS_SHARDS_H_
#define FAASCACHE_ANALYSIS_SHARDS_H_

#include <cstdint>
#include <vector>

#include "analysis/hit_ratio_curve.h"
#include "trace/trace.h"

namespace faascache {

/** Output of a SHARDS sampling pass. */
struct ShardsResult
{
    /** Reuse distances of sampled invocations, scaled by 1/R (MB);
     *  first touches remain kInfiniteReuseDistance. */
    std::vector<double> scaled_distances;

    /** Configured sampling rate R in (0, 1]. */
    double sample_rate = 1.0;

    /** Invocations that fell in the sample. */
    std::size_t sampled_invocations = 0;

    /** Invocations in the full trace. */
    std::size_t total_invocations = 0;

    /** Functions that fell in the sample. */
    std::size_t sampled_functions = 0;
};

/**
 * Run fixed-rate SHARDS over a trace.
 *
 * @param trace       Workload (sorted).
 * @param sample_rate R in (0, 1]; 1 degenerates to the exact analysis.
 * @param seed        Salt for the sampling hash.
 */
ShardsResult shardsSample(const Trace& trace, double sample_rate,
                          std::uint64_t seed = 0);

/** Build an (approximate) hit-ratio curve from a SHARDS pass: each
 *  sampled invocation carries weight 1/R. */
HitRatioCurve curveFromShards(const ShardsResult& shards);

}  // namespace faascache

#endif  // FAASCACHE_ANALYSIS_SHARDS_H_

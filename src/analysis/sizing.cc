#include "analysis/sizing.h"

#include <cassert>

namespace faascache {

MemMb
kneeSize(const HitRatioCurve& curve, MemMb min_mb, MemMb max_mb,
         int grid_points)
{
    assert(min_mb > 0);
    assert(max_mb > min_mb);
    assert(grid_points >= 2);

    const double h_min = curve.hitRatio(min_mb);
    const double h_max = curve.hitRatio(max_mb);
    if (h_max <= h_min)
        return min_mb;  // flat curve: the smallest size is optimal

    MemMb best_size = min_mb;
    double best_gap = 0.0;
    for (int i = 0; i < grid_points; ++i) {
        const double frac =
            static_cast<double>(i) / static_cast<double>(grid_points - 1);
        const MemMb size = min_mb + frac * (max_mb - min_mb);
        // Chord value at this size, after normalizing both axes to [0,1].
        const double chord = h_min + frac * (h_max - h_min);
        const double gap = curve.hitRatio(size) - chord;
        if (gap > best_gap) {
            best_gap = gap;
            best_size = size;
        }
    }
    return best_size;
}

}  // namespace faascache

#include "analysis/che_approximation.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace faascache {

CheApproximation::CheApproximation(std::vector<FunctionRate> functions)
    : functions_(std::move(functions))
{
    for (const FunctionRate& fn : functions_) {
        if (fn.rate_per_sec > 0) {
            total_size_mb_ += fn.size_mb;
            total_rate_ += fn.rate_per_sec;
        }
    }
}

CheApproximation
CheApproximation::fromTrace(const Trace& trace)
{
    const TraceStats stats = trace.stats();
    const double duration_sec =
        std::max(1e-9, toSeconds(stats.duration_us));
    const auto counts = trace.invocationCounts();
    std::vector<FunctionRate> rates;
    rates.reserve(trace.functions().size());
    for (const auto& fn : trace.functions()) {
        FunctionRate rate;
        rate.rate_per_sec =
            static_cast<double>(counts[fn.id]) / duration_sec;
        rate.size_mb = fn.mem_mb;
        rates.push_back(rate);
    }
    return CheApproximation(std::move(rates));
}

double
CheApproximation::residentMb(double t_sec) const
{
    double resident = 0.0;
    for (const FunctionRate& fn : functions_) {
        if (fn.rate_per_sec > 0)
            resident += fn.size_mb * -std::expm1(-fn.rate_per_sec * t_sec);
    }
    return resident;
}

double
CheApproximation::characteristicTime(MemMb size_mb) const
{
    if (size_mb <= 0 || total_rate_ <= 0)
        return 0.0;
    if (size_mb >= total_size_mb_)
        return std::numeric_limits<double>::infinity();

    // residentMb is increasing in t: bisect. Find an upper bracket
    // first (resident approaches total_size from below, and size_mb is
    // strictly smaller, so a finite bracket exists).
    double lo = 0.0;
    double hi = 1.0;
    while (residentMb(hi) < size_mb && hi < 1e12)
        hi *= 2.0;
    for (int iter = 0; iter < 200; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (residentMb(mid) < size_mb)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

double
CheApproximation::hitRatio(MemMb size_mb) const
{
    if (total_rate_ <= 0)
        return 0.0;
    const double t_c = characteristicTime(size_mb);
    if (std::isinf(t_c))
        return 1.0;
    double hits = 0.0;
    for (const FunctionRate& fn : functions_) {
        if (fn.rate_per_sec > 0)
            hits += fn.rate_per_sec * -std::expm1(-fn.rate_per_sec * t_c);
    }
    return std::clamp(hits / total_rate_, 0.0, 1.0);
}

}  // namespace faascache

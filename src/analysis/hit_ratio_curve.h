/**
 * @file
 * Hit-ratio curves from reuse distances (paper §5.1, Equation 2).
 *
 * The hit ratio at cache size c is the fraction of invocations whose
 * reuse distance is at most c — the CDF of the reuse-distance
 * distribution. First touches (infinite distance) are always misses, so
 * the curve saturates below 1 at (1 - compulsory-miss fraction).
 */
#ifndef FAASCACHE_ANALYSIS_HIT_RATIO_CURVE_H_
#define FAASCACHE_ANALYSIS_HIT_RATIO_CURVE_H_

#include <vector>

#include "util/types.h"

namespace faascache {

/** Empirical hit-ratio curve. */
class HitRatioCurve
{
  public:
    HitRatioCurve() = default;

    /**
     * Build from per-invocation reuse distances (finite values in MB;
     * kInfiniteReuseDistance entries count as compulsory misses).
     *
     * @param reuse_distances One entry per invocation.
     * @param weight          Weight of each invocation (SHARDS scales
     *                        sampled invocations by 1/R); default 1.
     */
    static HitRatioCurve fromReuseDistances(
        const std::vector<double>& reuse_distances, double weight = 1.0);

    /** Hit ratio at cache size `size_mb`, in [0, maxHitRatio()]. */
    double hitRatio(MemMb size_mb) const;

    /** Miss ratio at cache size `size_mb`. */
    double missRatio(MemMb size_mb) const { return 1.0 - hitRatio(size_mb); }

    /** Largest achievable hit ratio (1 - compulsory miss fraction). */
    double maxHitRatio() const;

    /**
     * Smallest cache size achieving at least `target` hit ratio.
     * Targets above maxHitRatio() are clamped to it, returning the size
     * where the curve saturates.
     */
    MemMb sizeForHitRatio(double target) const;

    /** Total weighted invocations behind the curve. */
    double totalWeight() const { return total_weight_; }

    /** Weighted finite (reusable) invocations. */
    double finiteWeight() const { return finite_weight_; }

    /** Sorted finite reuse distances (MB) for inspection/plotting. */
    const std::vector<double>& sortedDistances() const { return sorted_; }

    /** Whether the curve holds any data. */
    bool empty() const { return total_weight_ <= 0.0; }

  private:
    std::vector<double> sorted_;
    double weight_per_entry_ = 1.0;
    double total_weight_ = 0.0;
    double finite_weight_ = 0.0;
};

}  // namespace faascache

#endif  // FAASCACHE_ANALYSIS_HIT_RATIO_CURVE_H_

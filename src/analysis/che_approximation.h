/**
 * @file
 * Che's approximation for hit-ratio curves (paper §2.2 cites it among
 * the analytical HRC construction techniques).
 *
 * For an LRU-like cache under independent Poisson arrivals, Che's
 * approximation says an object is resident iff it is re-referenced
 * within a "characteristic time" T_c common to all objects, where T_c
 * solves
 *
 *     c = sum_i s_i * (1 - exp(-lambda_i * T_c))
 *
 * (the expected resident bytes equal the cache size). The hit ratio is
 * then the request-weighted resident probability
 *
 *     HR(c) = sum_i lambda_i * (1 - exp(-lambda_i * T_c)) /
 *             sum_i lambda_i.
 *
 * Adapted to keep-alive: objects are functions, s_i their container
 * memory, lambda_i their invocation rate. This gives a closed-form
 * counterpart to the empirical reuse-distance curve that needs only
 * per-function rates — no trace scan at all.
 */
#ifndef FAASCACHE_ANALYSIS_CHE_APPROXIMATION_H_
#define FAASCACHE_ANALYSIS_CHE_APPROXIMATION_H_

#include <vector>

#include "trace/trace.h"
#include "util/types.h"

namespace faascache {

/** Per-function inputs to the approximation. */
struct FunctionRate
{
    /** Invocation rate, per second (> 0 to contribute). */
    double rate_per_sec = 0.0;

    /** Container memory, MB. */
    MemMb size_mb = 0.0;
};

/** Che's-approximation hit-ratio model. */
class CheApproximation
{
  public:
    /** Build from explicit per-function rates. */
    explicit CheApproximation(std::vector<FunctionRate> functions);

    /** Derive the rates from a trace (count / duration per function). */
    static CheApproximation fromTrace(const Trace& trace);

    /**
     * Characteristic time T_c (seconds) for a cache of `size_mb` MB:
     * the unique root of the resident-bytes fixed point. Returns 0 for
     * an empty/zero cache and +infinity when everything fits.
     */
    double characteristicTime(MemMb size_mb) const;

    /** Hit ratio at cache size `size_mb`, in [0, 1]. */
    double hitRatio(MemMb size_mb) const;

    /** Total memory of all modeled functions, MB. */
    MemMb totalSizeMb() const { return total_size_mb_; }

  private:
    /** Expected resident memory at characteristic time t. */
    double residentMb(double t_sec) const;

    std::vector<FunctionRate> functions_;
    MemMb total_size_mb_ = 0.0;
    double total_rate_ = 0.0;
};

}  // namespace faascache

#endif  // FAASCACHE_ANALYSIS_CHE_APPROXIMATION_H_

#include "provisioning/static_provisioner.h"

#include <algorithm>

#include "analysis/reuse_distance.h"
#include "analysis/sizing.h"

namespace faascache {

StaticProvisioner::StaticProvisioner(HitRatioCurve curve)
    : curve_(std::move(curve))
{
}

StaticProvisioner
StaticProvisioner::fromTrace(const Trace& trace)
{
    return StaticProvisioner(
        HitRatioCurve::fromReuseDistances(computeReuseDistances(trace)));
}

ProvisioningPlan
StaticProvisioner::plan(double target_hit_ratio, MemMb max_size_mb) const
{
    ProvisioningPlan out;
    out.max_hit_ratio = curve_.maxHitRatio();
    out.target_size_mb = curve_.sizeForHitRatio(target_hit_ratio);
    out.achieved_hit_ratio = curve_.hitRatio(out.target_size_mb);
    const MemMb min_mb = std::max(1.0, max_size_mb / 1024.0);
    out.knee_size_mb = kneeSize(curve_, min_mb, max_size_mb);
    out.knee_hit_ratio = curve_.hitRatio(out.knee_size_mb);
    return out;
}

}  // namespace faascache

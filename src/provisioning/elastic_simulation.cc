#include "provisioning/elastic_simulation.h"

#include <algorithm>

#include "analysis/online_hrc.h"
#include "analysis/reuse_distance.h"
#include "engine/periodic_schedule.h"

namespace faascache {

MemMb
ElasticResult::averageSizeMb() const
{
    if (timeline.empty())
        return 0.0;
    if (timeline.size() == 1)
        return timeline.front().cache_size_mb;
    double weighted = 0.0;
    double span = 0.0;
    for (std::size_t i = 0; i + 1 < timeline.size(); ++i) {
        const double dt = static_cast<double>(timeline[i + 1].time_us -
                                              timeline[i].time_us);
        weighted += timeline[i].cache_size_mb * dt;
        span += dt;
    }
    return span > 0 ? weighted / span : timeline.front().cache_size_mb;
}

MemMb
ElasticResult::peakSizeMb() const
{
    MemMb peak = 0.0;
    for (const auto& s : timeline)
        peak = std::max(peak, s.cache_size_mb);
    return peak;
}

ElasticResult
runElasticSimulation(const Trace& trace,
                     std::unique_ptr<KeepAlivePolicy> policy,
                     const ControllerConfig& controller_config,
                     const ElasticConfig& elastic_config)
{
    // Preserve the Trace path's eager validation (the streaming core
    // enforces the same contract, but only as invocations are consumed).
    if (!trace.validate())
        throw std::invalid_argument("Simulator: invalid trace");
    if (!trace.isSorted())
        throw std::invalid_argument("Simulator: trace not sorted");
    TraceSource source(trace);
    return runElasticSimulation(source, std::move(policy),
                                controller_config, elastic_config);
}

ElasticResult
runElasticSimulation(InvocationSource& source,
                     std::unique_ptr<KeepAlivePolicy> policy,
                     const ControllerConfig& controller_config,
                     const ElasticConfig& elastic_config)
{
    // Preparation phase (paper §5.2 "Online adjustments"): build the
    // hit-ratio curve from the workload's reuse distances (first pass
    // over the source).
    HitRatioCurve curve =
        HitRatioCurve::fromReuseDistances(computeReuseDistances(source));
    ProportionalController controller(std::move(curve), controller_config,
                                      elastic_config.initial_size_mb);

    ElasticResult result;
    const double period_sec = toSeconds(elastic_config.control_period_us);

    // Engine periodic tasks: the controller fires at the end of every
    // control period, the online HRC refresh (when enabled) at the end
    // of every refresh period.
    PeriodicSchedule control(elastic_config.control_period_us,
                             elastic_config.control_period_us);
    PeriodicSchedule refresh(elastic_config.curve_refresh_period_us,
                             elastic_config.curve_refresh_period_us);

    std::int64_t arrivals_at_period_start = 0;
    std::int64_t cold_at_period_start = 0;
    std::int64_t dropped_at_period_start = 0;

    // Optional online curve refresh (drift handling). The analyzer used
    // to re-scan the materialized invocation vector each period; it now
    // rides the simulator's single pass via a tee on consumption, which
    // observes exactly the same invocations in the same order: at every
    // period boundary `at`, the set consumed so far is precisely the
    // arrivals < `at`.
    const bool online = refresh.enabled();
    OnlineReuseAnalyzer analyzer(
        online ? elastic_config.online_sample_rate : 1.0);
    const std::vector<FunctionSpec>& catalog = source.functions();
    TeeSource teed(source,
                   online ? TeeSource::Observer([&](const Invocation& inv) {
                       analyzer.observe(inv.function,
                                        catalog[inv.function].mem_mb);
                   })
                          : TeeSource::Observer());

    SimulatorConfig sim_config;
    sim_config.memory_mb = elastic_config.initial_size_mb;
    sim_config.cancel = elastic_config.cancel;
    Simulator sim(teed, std::move(policy), sim_config);

    auto feed_analyzer = [&](TimeUs up_to) {
        if (!online)
            return;
        refresh.catchUp(up_to, [&](TimeUs /*due*/) {
            const HitRatioCurve fresh = analyzer.curve();
            if (!fresh.empty())
                controller.setCurve(fresh);
        });
    };

    // Capacity fraction in effect at time t: the most constrained of the
    // configured loss windows covering t (crashes overlap pessimally).
    auto available_fraction_at = [&](TimeUs t) {
        double fraction = 1.0;
        for (const auto& window : elastic_config.capacity_loss) {
            if (window.from_us <= t && t < window.until_us)
                fraction = std::min(fraction, window.available_fraction);
        }
        return fraction;
    };

    auto close_period = [&](TimeUs at) {
        feed_analyzer(at);
        const std::int64_t arrivals =
            sim.result().total() - arrivals_at_period_start;
        const std::int64_t cold =
            sim.result().cold_starts - cold_at_period_start;
        const std::int64_t dropped =
            sim.result().dropped - dropped_at_period_start;
        arrivals_at_period_start = sim.result().total();
        cold_at_period_start = sim.result().cold_starts;
        dropped_at_period_start = sim.result().dropped;

        ElasticSample sample;
        sample.time_us = at;
        sample.arrival_rate = static_cast<double>(arrivals) / period_sec;
        sample.miss_speed = static_cast<double>(cold) / period_sec;
        sample.available_fraction = available_fraction_at(at);
        sample.overload_pressure = arrivals > 0
            ? static_cast<double>(dropped) / static_cast<double>(arrivals)
            : 0.0;
        if (!elastic_config.capacity_loss.empty())
            controller.setAvailableFraction(sample.available_fraction);
        if (controller_config.overload_grow_frac > 0.0)
            controller.noteOverloadPressure(sample.overload_pressure);
        const MemMb next =
            controller.update(sample.arrival_rate, sample.miss_speed);
        sample.smoothed_arrival = controller.smoothedArrivalRate();
        sim.resize(next);
        sample.cache_size_mb = next;
        result.timeline.push_back(sample);
    };

    while (!sim.done()) {
        while (!sim.done() && sim.nextArrival() < control.nextDue())
            sim.step();
        if (sim.done())
            break;
        close_period(control.tick());
    }
    // Close the final partial period so the timeline covers the trace.
    close_period(control.nextDue());

    result.sim = sim.result();
    return result;
}

}  // namespace faascache

/**
 * @file
 * Static server provisioning (paper §5.1): pick a server memory size for
 * a workload from its hit-ratio curve, either by a target hit ratio or
 * by the curve's inflection point.
 */
#ifndef FAASCACHE_PROVISIONING_STATIC_PROVISIONER_H_
#define FAASCACHE_PROVISIONING_STATIC_PROVISIONER_H_

#include "analysis/hit_ratio_curve.h"
#include "trace/trace.h"
#include "util/types.h"

namespace faascache {

/** Sizing recommendation. */
struct ProvisioningPlan
{
    /** Smallest memory achieving the target hit ratio, MB. */
    MemMb target_size_mb = 0;

    /** Hit ratio actually achieved at target_size_mb. */
    double achieved_hit_ratio = 0.0;

    /** Knee (inflection point) of the hit-ratio curve, MB. */
    MemMb knee_size_mb = 0;

    /** Hit ratio at the knee. */
    double knee_hit_ratio = 0.0;

    /** Largest achievable (compulsory-miss-limited) hit ratio. */
    double max_hit_ratio = 0.0;
};

/** Hit-ratio-curve based static sizing. */
class StaticProvisioner
{
  public:
    /** @param curve Workload hit-ratio curve (copied). */
    explicit StaticProvisioner(HitRatioCurve curve);

    /** Build the curve from a trace's reuse distances, then provision. */
    static StaticProvisioner fromTrace(const Trace& trace);

    /**
     * Produce a plan.
     * @param target_hit_ratio Desired warm-start fraction (e.g. 0.90).
     * @param max_size_mb      Upper bound for the knee search.
     */
    ProvisioningPlan plan(double target_hit_ratio, MemMb max_size_mb) const;

    const HitRatioCurve& curve() const { return curve_; }

  private:
    HitRatioCurve curve_;
};

}  // namespace faascache

#endif  // FAASCACHE_PROVISIONING_STATIC_PROVISIONER_H_

/**
 * @file
 * Harnessed sweep over elastic-scaling experiments (Figure 9), giving
 * runElasticSimulation() the same crash-safety contract the sim,
 * platform, and cluster sweeps have: watchdog deadlines, bounded
 * retry, checkpoint/resume (an ElasticResult journal flavour that
 * embeds the SimResult codec), and cooperative cancellation, with
 * submission-order results that are byte-identical for any worker
 * count.
 */
#ifndef FAASCACHE_PROVISIONING_ELASTIC_SWEEP_H_
#define FAASCACHE_PROVISIONING_ELASTIC_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/policy_factory.h"
#include "provisioning/elastic_simulation.h"
#include "sim/sweep_runner.h"
#include "util/cell_harness.h"

namespace faascache {

/** One independent elastic-scaling run of a sweep. */
struct ElasticCell
{
    /** Workload to replay (non-owning; must outlive the sweep). */
    const Trace* trace = nullptr;
    PolicyKind kind = PolicyKind::GreedyDual;
    PolicyConfig policy;
    ControllerConfig controller;
    ElasticConfig elastic;

    /**
     * Stable cell identity for checkpointing and error reports. Leave
     * empty to have the runner derive "<trace>/<policy>/elastic" (with
     * a "#n" suffix on duplicates).
     */
    std::string key;
};

/**
 * Effective per-cell keys of an elastic sweep (cell.key or the derived
 * default, deduplicated with "#n"). Requires non-null traces.
 */
std::vector<std::string> elasticCellKeys(
    const std::vector<ElasticCell>& cells);

/**
 * Fingerprint of an elastic sweep grid: trace contents, effective cell
 * keys, policy kinds, and every controller/elastic knob (the --resume
 * safety check).
 */
std::uint64_t elasticSweepFingerprint(
    const std::vector<ElasticCell>& cells);

/**
 * @name ElasticResult payload codec
 * The payload is `<key> <timeline...>` followed by the cell's embedded
 * SimResult payload (sim/sweep_checkpoint.h codec, same key); doubles
 * are hexfloat, so a restored result is bit-for-bit equal to the
 * computed one.
 * @{
 */
std::string encodeElasticCheckpointPayload(const std::string& key,
                                           const ElasticResult& result);

/** @return false when the payload is malformed. */
bool decodeElasticCheckpointPayload(const std::string& payload,
                                    std::string* key,
                                    ElasticResult* result);
/** @} */

/** Everything a harnessed elastic sweep produced. */
struct ElasticSweepReport
{
    /** Per-cell outcomes, indexed like the input grid. */
    std::vector<CellOutcome<ElasticResult>> cells;

    /** False when external cancellation stopped the sweep early. */
    bool completed = true;

    /** Cells restored from the checkpoint instead of re-run. */
    std::size_t restored = 0;

    /** The resumed checkpoint had a torn tail (truncated, re-run). */
    bool torn_tail = false;

    std::size_t countWithStatus(CellStatus status) const;
    bool allOk() const;

    /** results()[i] is cells[i].result. @pre allOk(). */
    std::vector<ElasticResult> results() const;
};

/**
 * Elastic flavour of runSweepReport(): fan independent
 * runElasticSimulation() cells across a worker pool under the
 * crash-safety harness. Reuses SweepOptions (sim/sweep_runner.h) for
 * the deadline/retry/checkpoint/cancellation knobs.
 *
 * @throws std::invalid_argument for a malformed cell (null trace),
 *         naming the offending cell index.
 * @throws std::runtime_error when options.resume is set and the
 *         checkpoint cannot be read or belongs to a different grid.
 */
ElasticSweepReport runElasticSweepReport(
    const std::vector<ElasticCell>& cells, std::size_t jobs = 0,
    const SweepOptions& options = {});

}  // namespace faascache

#endif  // FAASCACHE_PROVISIONING_ELASTIC_SWEEP_H_

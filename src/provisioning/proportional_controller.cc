#include "provisioning/proportional_controller.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace faascache {

ProportionalController::ProportionalController(HitRatioCurve curve,
                                               ControllerConfig config,
                                               MemMb initial_size_mb)
    : curve_(std::move(curve)), config_(config),
      current_size_mb_(initial_size_mb),
      arrival_ema_(config.arrival_smoothing_alpha)
{
    if (config_.target_miss_speed <= 0)
        throw std::invalid_argument("controller: target miss speed <= 0");
    if (config_.min_size_mb <= 0 ||
        config_.max_size_mb <= config_.min_size_mb) {
        throw std::invalid_argument("controller: bad size clamp");
    }
    if (config_.overload_grow_frac < 0) {
        throw std::invalid_argument(
            "controller: overload_grow_frac must be >= 0");
    }
    current_size_mb_ = std::clamp(current_size_mb_, config_.min_size_mb,
                                  config_.max_size_mb);
}

void
ProportionalController::setAvailableFraction(double fraction)
{
    if (!(fraction > 0.0) || fraction > 1.0) {
        throw std::invalid_argument(
            "controller: available fraction must be in (0, 1]");
    }
    available_fraction_ = fraction;
}

void
ProportionalController::noteOverloadPressure(double dropped_fraction)
{
    if (config_.overload_grow_frac <= 0.0)
        return;
    pending_pressure_ = std::clamp(dropped_fraction, 0.0, 1.0);
}

MemMb
ProportionalController::update(double arrival_rate, double miss_speed)
{
    const double lambda_hat = arrival_ema_.update(std::max(0.0, arrival_rate));
    const double pressure = pending_pressure_;
    pending_pressure_ = 0.0;

    // Deadband: tolerate up to `deadband` relative error around the
    // target miss speed before resizing (paper: only capture coarse
    // diurnal effects, avoid memory fragmentation from small changes).
    // Overload pressure overrides the deadband: drops are a stronger
    // signal than miss-speed error.
    const double error = (miss_speed - config_.target_miss_speed) /
        config_.target_miss_speed;
    if (std::fabs(error) <= config_.deadband && pressure <= 0.0)
        return current_size_mb_;

    if (lambda_hat <= 0.0) {
        // Nothing arriving: fall to the floor size.
        current_size_mb_ = config_.min_size_mb;
        return current_size_mb_;
    }

    // Equation 3: the miss ratio that yields the target miss speed at
    // the smoothed arrival rate, HR(c') = 1 - target / lambda_hat.
    const double desired_miss_ratio =
        std::clamp(config_.target_miss_speed / lambda_hat, 0.0, 1.0);
    const double desired_hit_ratio = 1.0 - desired_miss_ratio;
    MemMb next = curve_.sizeForHitRatio(desired_hit_ratio);
    // Lost-capacity compensation: the surviving fraction of the fleet
    // must absorb the whole working set, so its share is scaled up.
    if (available_fraction_ < 1.0)
        next /= available_fraction_;
    // Overload response: a shedding fleet must not shrink, and grows in
    // proportion to the drop fraction.
    if (pressure > 0.0) {
        next = std::max(next, current_size_mb_) *
            (1.0 + config_.overload_grow_frac * pressure);
    }
    next = std::clamp(next, config_.min_size_mb, config_.max_size_mb);
    current_size_mb_ = next;
    return current_size_mb_;
}

}  // namespace faascache

/**
 * @file
 * Elastic vertical-scaling experiment harness (paper §5.2, §7.3,
 * Figure 9): runs the keep-alive simulator period by period, feeding
 * observed arrival and cold-start rates to the proportional controller
 * and applying the returned cache size via VM deflation/inflation.
 */
#ifndef FAASCACHE_PROVISIONING_ELASTIC_SIMULATION_H_
#define FAASCACHE_PROVISIONING_ELASTIC_SIMULATION_H_

#include <memory>
#include <vector>

#include "core/keepalive_policy.h"
#include "platform/fault_injection.h"
#include "provisioning/proportional_controller.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace faascache {

/** Elastic scaling knobs. */
struct ElasticConfig
{
    /** Controller invocation period (paper: every 10 minutes). */
    TimeUs control_period_us = 10 * kMinute;

    /** Starting (and static-baseline) cache size, MB. */
    MemMb initial_size_mb = 10'000.0;

    /**
     * Periodically rebuild the controller's hit-ratio curve from the
     * invocations observed so far (drift handling, §5.2). 0 keeps the
     * curve from the offline preparation phase for the whole run.
     */
    TimeUs curve_refresh_period_us = 0;

    /** SHARDS rate of the online curve estimator. */
    double online_sample_rate = 0.25;

    /**
     * Known windows of reduced fleet capacity (server crash + restart
     * schedules; see FaultPlan::capacityLossWindows). While a window is
     * active, the controller compensates by scaling its size request so
     * the surviving capacity covers the fleet-wide working set. Empty
     * (the default) leaves the controller untouched.
     */
    std::vector<CapacityLossWindow> capacity_loss;

    /**
     * Cooperative cancellation (non-owning; may be null), forwarded to
     * the inner Simulator so each step checks it; a cancelled run
     * throws CancelledError out of runElasticSimulation().
     */
    const CancellationToken* cancel = nullptr;
};

/** One controller period's observations. */
struct ElasticSample
{
    TimeUs time_us = 0;
    MemMb cache_size_mb = 0;
    double arrival_rate = 0.0;      ///< arrivals per second this period
    double miss_speed = 0.0;        ///< cold starts per second this period
    double smoothed_arrival = 0.0;  ///< controller's EMA after update
    double available_fraction = 1.0;  ///< capacity fraction this period
    double overload_pressure = 0.0;   ///< dropped/arrivals this period
};

/** Full elastic-scaling run outcome. */
struct ElasticResult
{
    std::vector<ElasticSample> timeline;
    SimResult sim;

    /** Time-weighted average cache size across the run, MB. */
    MemMb averageSizeMb() const;

    /** Peak cache size, MB. */
    MemMb peakSizeMb() const;
};

/**
 * Run the full experiment: replay `trace` under `policy` while the
 * proportional controller resizes the pool every control period.
 */
ElasticResult runElasticSimulation(const Trace& trace,
                                   std::unique_ptr<KeepAlivePolicy> policy,
                                   const ControllerConfig& controller_config,
                                   const ElasticConfig& elastic_config);

/**
 * Streaming variant (the real implementation; the Trace overload wraps
 * it). The offline preparation pass streams the source once for the
 * hit-ratio curve, then the replay pass streams it again with the
 * online reuse analyzer riding the simulator's consumption — the trace
 * is never materialized. Note the reuse-distance vector is still O(N)
 * doubles (see computeReuseDistances).
 */
ElasticResult runElasticSimulation(InvocationSource& source,
                                   std::unique_ptr<KeepAlivePolicy> policy,
                                   const ControllerConfig& controller_config,
                                   const ElasticConfig& elastic_config);

}  // namespace faascache

#endif  // FAASCACHE_PROVISIONING_ELASTIC_SIMULATION_H_

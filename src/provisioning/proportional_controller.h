/**
 * @file
 * Proportional controller for elastic vertical scaling (paper §5.2,
 * Equation 3).
 *
 * The controller tracks a target *miss speed* (cold starts per second).
 * Periodically, given the exponentially smoothed arrival rate and the
 * observed miss speed, it computes the miss ratio that would produce the
 * target miss speed at the current arrival rate, and inverts the
 * hit-ratio curve to find the corresponding cache size. A large error
 * deadband (30% by default) avoids thrashing the VM size; only coarse
 * diurnal effects are captured.
 */
#ifndef FAASCACHE_PROVISIONING_PROPORTIONAL_CONTROLLER_H_
#define FAASCACHE_PROVISIONING_PROPORTIONAL_CONTROLLER_H_

#include "analysis/hit_ratio_curve.h"
#include "util/stats.h"
#include "util/types.h"

namespace faascache {

/** Controller tunables. */
struct ControllerConfig
{
    /** Target cold starts per second. */
    double target_miss_speed = 0.0015;

    /** Relative error deadband; no resize below this (paper: 30%). */
    double deadband = 0.30;

    /** Smoothing weight for the arrival rate EMA. */
    double arrival_smoothing_alpha = 0.3;

    /** Cache size clamp, MB. */
    MemMb min_size_mb = 512.0;
    MemMb max_size_mb = 256.0 * 1024.0;

    /**
     * Scale-out response to overload pressure reported via
     * noteOverloadPressure(): with pressure p (fraction of arrivals
     * shed or denied last period), the next size request bypasses the
     * deadband, never shrinks, and is inflated by (1 + frac * p).
     * 0 (the default) ignores overload pressure entirely.
     */
    double overload_grow_frac = 0.0;
};

/** Hit-ratio-curve driven proportional controller. */
class ProportionalController
{
  public:
    /**
     * @param curve  Workload hit-ratio curve used for size inversion.
     * @param config Controller tunables.
     * @param initial_size_mb Starting cache size, MB.
     */
    ProportionalController(HitRatioCurve curve, ControllerConfig config,
                           MemMb initial_size_mb);

    /**
     * One control period.
     *
     * @param arrival_rate Observed arrivals per second this period.
     * @param miss_speed   Observed cold starts per second this period.
     * @return The (possibly unchanged) cache size to use next, MB.
     */
    MemMb update(double arrival_rate, double miss_speed);

    /** Current recommended size, MB. */
    MemMb currentSize() const { return current_size_mb_; }

    /**
     * Replace the hit-ratio curve (periodic refresh when the workload
     * drifts; the paper re-derives the curve weekly, §5.2).
     */
    void setCurve(HitRatioCurve curve) { curve_ = std::move(curve); }

    /**
     * Inform the controller that only `fraction` of the fleet's keep-alive
     * capacity is currently available (e.g. a server crashed and its pool
     * was lost). The controller compensates by inflating the size it asks
     * of the surviving capacity, so the fleet-wide working set stays
     * cached through the outage. 1.0 (the default) disables compensation.
     *
     * @throws std::invalid_argument unless 0 < fraction <= 1.
     */
    void setAvailableFraction(double fraction);

    /** Currently assumed available capacity fraction. */
    double availableFraction() const { return available_fraction_; }

    /**
     * Report overload pressure observed since the last update(): the
     * fraction of arrivals shed or denied (clamped to [0, 1]). Consumed
     * by the next update(); a no-op unless overload_grow_frac > 0.
     */
    void noteOverloadPressure(double dropped_fraction);

    /** Smoothed arrival rate, per second. */
    double smoothedArrivalRate() const { return arrival_ema_.value(); }

    const ControllerConfig& config() const { return config_; }

  private:
    HitRatioCurve curve_;
    ControllerConfig config_;
    MemMb current_size_mb_;
    ExponentialSmoother arrival_ema_;
    double available_fraction_ = 1.0;
    double pending_pressure_ = 0.0;
};

}  // namespace faascache

#endif  // FAASCACHE_PROVISIONING_PROPORTIONAL_CONTROLLER_H_

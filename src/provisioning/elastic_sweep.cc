#include "provisioning/elastic_sweep.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "sim/sweep_checkpoint.h"
#include "util/sweep_journal.h"
#include "util/thread_pool.h"

namespace faascache {

namespace {

/** Bounds the timeline count read from a payload (corruption guard). */
constexpr std::int64_t kMaxTimeline = 100'000'000;

/** @throws std::invalid_argument naming the first malformed cell. */
void
validateElasticCells(const std::vector<ElasticCell>& cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (cells[i].trace == nullptr)
            throw std::invalid_argument(
                "runElasticSweepReport: cell without a trace (cell "
                "index " +
                std::to_string(i) + ")");
    }
}

bool
nextI64(std::istringstream& in, std::int64_t* out)
{
    std::string token;
    return static_cast<bool>(in >> token) && parseI64Token(token, out);
}

bool
nextDouble(std::istringstream& in, double* out)
{
    std::string token;
    return static_cast<bool>(in >> token) && parseDoubleToken(token, out);
}

void
hashHexDouble(std::ostringstream& out, double value)
{
    out << hexDoubleToken(value) << ';';
}

}  // namespace

std::vector<std::string>
elasticCellKeys(const std::vector<ElasticCell>& cells)
{
    validateElasticCells(cells);
    std::vector<std::string> keys;
    keys.reserve(cells.size());
    std::unordered_set<std::string> used;
    for (const ElasticCell& cell : cells) {
        std::string key = cell.key;
        if (key.empty())
            key = cell.trace->name() + "/" + policyKindName(cell.kind) +
                "/elastic";
        if (!used.insert(key).second) {
            for (int n = 2;; ++n) {
                std::string candidate = key + "#" + std::to_string(n);
                if (used.insert(candidate).second) {
                    key = std::move(candidate);
                    break;
                }
            }
        }
        keys.push_back(std::move(key));
    }
    return keys;
}

std::uint64_t
elasticSweepFingerprint(const std::vector<ElasticCell>& cells)
{
    const std::vector<std::string> keys = elasticCellKeys(cells);
    std::unordered_map<const Trace*, std::uint64_t> trace_hashes;
    std::ostringstream out;
    out << "faascache-elastic-grid-v1;" << cells.size() << ';';
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const ElasticCell& cell = cells[i];
        auto it = trace_hashes.find(cell.trace);
        if (it == trace_hashes.end())
            it = trace_hashes
                     .emplace(cell.trace, traceFingerprint(*cell.trace))
                     .first;
        char trace_hash[24];
        std::snprintf(trace_hash, sizeof trace_hash, "%016llx",
                      static_cast<unsigned long long>(it->second));
        out << keys[i] << ';' << trace_hash << ';'
            << policyKindName(cell.kind) << ';';
        const ControllerConfig& ctl = cell.controller;
        hashHexDouble(out, ctl.target_miss_speed);
        hashHexDouble(out, ctl.deadband);
        hashHexDouble(out, ctl.arrival_smoothing_alpha);
        hashHexDouble(out, ctl.min_size_mb);
        hashHexDouble(out, ctl.max_size_mb);
        const ElasticConfig& ela = cell.elastic;
        out << ela.control_period_us << ';';
        hashHexDouble(out, ela.initial_size_mb);
        out << ela.curve_refresh_period_us << ';';
        hashHexDouble(out, ela.online_sample_rate);
        out << ela.capacity_loss.size() << ';';
        for (const CapacityLossWindow& window : ela.capacity_loss) {
            out << window.from_us << ',' << window.until_us << ',';
            hashHexDouble(out, window.available_fraction);
        }
    }
    return fnv1a64(out.str());
}

std::string
encodeElasticCheckpointPayload(const std::string& key,
                               const ElasticResult& result)
{
    std::ostringstream out;
    out << escapeJournalToken(key) << ' ' << result.timeline.size();
    for (const ElasticSample& sample : result.timeline) {
        out << ' ' << sample.time_us << ' '
            << hexDoubleToken(sample.cache_size_mb) << ' '
            << hexDoubleToken(sample.arrival_rate) << ' '
            << hexDoubleToken(sample.miss_speed) << ' '
            << hexDoubleToken(sample.smoothed_arrival) << ' '
            << hexDoubleToken(sample.available_fraction);
    }
    // The SimResult block rides along as a suffix via its own codec
    // (keyed identically; the decoder checks the keys match).
    out << ' ' << encodeCheckpointPayload(key, result.sim);
    return out.str();
}

bool
decodeElasticCheckpointPayload(const std::string& payload,
                               std::string* key, ElasticResult* result)
{
    std::istringstream in(payload);
    std::string escaped;
    if (!(in >> escaped) || !unescapeJournalToken(escaped, key))
        return false;

    ElasticResult r;
    std::int64_t count = 0;
    if (!nextI64(in, &count) || count < 0 || count > kMaxTimeline)
        return false;
    r.timeline.resize(static_cast<std::size_t>(count));
    for (ElasticSample& sample : r.timeline) {
        if (!nextI64(in, &sample.time_us) ||
            !nextDouble(in, &sample.cache_size_mb) ||
            !nextDouble(in, &sample.arrival_rate) ||
            !nextDouble(in, &sample.miss_speed) ||
            !nextDouble(in, &sample.smoothed_arrival) ||
            !nextDouble(in, &sample.available_fraction))
            return false;
    }

    // The rest of the payload is the embedded SimResult block; its
    // codec rejects trailing garbage, so this consumes exactly the
    // remainder.
    std::string sim_payload;
    if (!std::getline(in, sim_payload))
        return false;
    std::string sim_key;
    if (!decodeCheckpointPayload(sim_payload, &sim_key, &r.sim) ||
        sim_key != *key)
        return false;

    *result = std::move(r);
    return true;
}

std::size_t
ElasticSweepReport::countWithStatus(CellStatus status) const
{
    std::size_t count = 0;
    for (const CellOutcome<ElasticResult>& cell : cells)
        count += cell.status == status ? 1 : 0;
    return count;
}

bool
ElasticSweepReport::allOk() const
{
    return countWithStatus(CellStatus::Ok) == cells.size();
}

std::vector<ElasticResult>
ElasticSweepReport::results() const
{
    std::vector<ElasticResult> out;
    out.reserve(cells.size());
    for (const CellOutcome<ElasticResult>& cell : cells)
        out.push_back(cell.result);
    return out;
}

ElasticSweepReport
runElasticSweepReport(const std::vector<ElasticCell>& cells,
                      std::size_t jobs, const SweepOptions& options)
{
    validateElasticCells(cells);
    const std::vector<std::string> keys = elasticCellKeys(cells);

    ElasticSweepReport report;
    report.cells.resize(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
        report.cells[i].key = keys[i];

    const std::uint64_t fingerprint = options.checkpoint_path.empty()
        ? 0
        : elasticSweepFingerprint(cells);
    std::unique_ptr<CheckpointJournalWriter> writer = openSweepJournal(
        options.checkpoint_path, options.resume, "runElasticSweepReport",
        fingerprint, keys, report.cells, &report.restored,
        &report.torn_tail, decodeElasticCheckpointPayload);

    CellHarnessOptions harness;
    harness.deadline_s = options.deadline_s;
    harness.max_retries = options.max_retries;
    harness.cancel = options.cancel;

    ThreadPool pool(jobs);
    report.completed = runHarnessedCells(
        pool, report.cells,
        [&cells](std::size_t index, int /*attempt*/,
                 const CancellationToken& token) {
            const ElasticCell& cell = cells[index];
            ElasticConfig elastic = cell.elastic;
            elastic.cancel = &token;
            return runElasticSimulation(*cell.trace,
                                        makePolicy(cell.kind, cell.policy),
                                        cell.controller, elastic);
        },
        [&writer](std::size_t /*index*/,
                  const CellOutcome<ElasticResult>& outcome) {
            if (writer)
                writer->append(encodeElasticCheckpointPayload(
                    outcome.key, outcome.result));
        },
        harness);

    if (options.strict) {
        for (const CellOutcome<ElasticResult>& cell : report.cells) {
            if (cell.ok())
                continue;
            if (cell.exception)
                std::rethrow_exception(cell.exception);
            throw std::runtime_error("runElasticSweepReport: cell " +
                                     cell.key + " " +
                                     cellStatusName(cell.status) + ": " +
                                     cell.error);
        }
    }
    return report;
}

}  // namespace faascache

#include "sim/sweep_checkpoint.h"

#include <sstream>
#include <utility>

namespace faascache {

std::string
encodeCheckpointPayload(const std::string& key, const SimResult& r)
{
    std::ostringstream out;
    out << escapeJournalToken(key) << ' '
        << escapeJournalToken(r.policy_name) << ' '
        << hexDoubleToken(r.memory_mb) << ' ' << r.warm_starts << ' '
        << r.cold_starts << ' ' << r.dropped << ' ' << r.evictions << ' '
        << r.expirations << ' ' << r.prewarms << ' ' << r.eviction_rounds
        << ' ' << r.background_reclaims << ' ' << r.actual_exec_us << ' '
        << r.baseline_exec_us;
    out << ' ' << r.per_function.size();
    for (const FunctionOutcome& f : r.per_function)
        out << ' ' << f.warm << ' ' << f.cold << ' ' << f.dropped;
    out << ' ' << r.memory_usage.size();
    for (const MemorySample& s : r.memory_usage)
        out << ' ' << s.time_us << ' ' << hexDoubleToken(s.used_mb);
    return out.str();
}

bool
decodeCheckpointPayload(const std::string& payload, std::string* key,
                        SimResult* result)
{
    std::istringstream in(payload);
    std::string token;

    const auto next = [&](std::string* out) {
        if (!(in >> *out))
            return false;
        return true;
    };
    const auto next_i64 = [&](std::int64_t* out) {
        std::string t;
        return next(&t) && parseI64Token(t, out);
    };
    const auto next_double = [&](double* out) {
        std::string t;
        return next(&t) && parseDoubleToken(t, out);
    };

    SimResult r;
    std::string escaped;
    if (!next(&escaped) || !unescapeJournalToken(escaped, key))
        return false;
    if (!next(&escaped) || !unescapeJournalToken(escaped, &r.policy_name))
        return false;
    if (!next_double(&r.memory_mb))
        return false;
    if (!next_i64(&r.warm_starts) || !next_i64(&r.cold_starts) ||
        !next_i64(&r.dropped) || !next_i64(&r.evictions) ||
        !next_i64(&r.expirations) || !next_i64(&r.prewarms) ||
        !next_i64(&r.eviction_rounds) || !next_i64(&r.background_reclaims) ||
        !next_i64(&r.actual_exec_us) || !next_i64(&r.baseline_exec_us))
        return false;

    std::int64_t count = 0;
    if (!next_i64(&count) || count < 0 || count > 100'000'000)
        return false;
    r.per_function.resize(static_cast<std::size_t>(count));
    for (FunctionOutcome& f : r.per_function) {
        if (!next_i64(&f.warm) || !next_i64(&f.cold) ||
            !next_i64(&f.dropped))
            return false;
    }
    if (!next_i64(&count) || count < 0 || count > 100'000'000)
        return false;
    r.memory_usage.resize(static_cast<std::size_t>(count));
    for (MemorySample& s : r.memory_usage) {
        if (!next_i64(&s.time_us) || !next_double(&s.used_mb))
            return false;
    }
    if (in >> token)
        return false;  // trailing garbage
    *result = std::move(r);
    return true;
}

SweepCheckpointLoad
loadSweepCheckpoint(const std::string& path)
{
    const CheckpointJournalLoad journal = loadCheckpointJournal(path);

    SweepCheckpointLoad load;
    load.fingerprint = journal.fingerprint;
    load.valid_bytes = journal.valid_bytes;
    load.torn_tail = journal.torn_tail;

    // A checksum-valid record that is not a SimResult payload ends the
    // valid prefix, exactly as a structurally torn record would.
    std::size_t prefix = journal.header_bytes;
    for (const CheckpointJournalRecord& record : journal.records) {
        SweepCheckpointRecord decoded;
        if (!decodeCheckpointPayload(record.payload, &decoded.key,
                                     &decoded.result)) {
            load.valid_bytes = prefix;
            load.torn_tail = true;
            return load;
        }
        prefix = record.end_offset;
        load.records.push_back(std::move(decoded));
    }
    return load;
}

SweepCheckpointWriter::SweepCheckpointWriter(CheckpointJournalWriter writer)
    : writer_(std::make_unique<CheckpointJournalWriter>(std::move(writer)))
{
}

SweepCheckpointWriter::SweepCheckpointWriter(
    SweepCheckpointWriter&&) noexcept = default;
SweepCheckpointWriter&
SweepCheckpointWriter::operator=(SweepCheckpointWriter&&) noexcept = default;
SweepCheckpointWriter::~SweepCheckpointWriter() = default;

SweepCheckpointWriter
SweepCheckpointWriter::beginFresh(const std::string& path,
                                  std::uint64_t fingerprint)
{
    return SweepCheckpointWriter(
        CheckpointJournalWriter::beginFresh(path, fingerprint));
}

SweepCheckpointWriter
SweepCheckpointWriter::continueAt(const std::string& path,
                                  std::size_t valid_bytes)
{
    return SweepCheckpointWriter(
        CheckpointJournalWriter::continueAt(path, valid_bytes));
}

void
SweepCheckpointWriter::append(const std::string& key,
                              const SimResult& result)
{
    writer_->append(encodeCheckpointPayload(key, result));
}

const std::string&
SweepCheckpointWriter::path() const
{
    return writer_->path();
}

}  // namespace faascache

#include "sim/sweep_runner.h"

#include <stdexcept>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace faascache {

SweepCell
makeCell(const Trace& trace, PolicyKind kind, MemMb memory_mb,
         const PolicyConfig& policy_config)
{
    SweepCell cell;
    cell.trace = &trace;
    cell.make_policy = [kind, policy_config]() {
        return makePolicy(kind, policy_config);
    };
    cell.sim.memory_mb = memory_mb;
    return cell;
}

std::uint64_t
deriveCellSeed(std::uint64_t base_seed, std::uint64_t cell_key)
{
    // Two SplitMix64 finalizer rounds decorrelate sequential keys and
    // sequential base seeds; the asymmetric constant keeps
    // deriveCellSeed(a, b) != deriveCellSeed(b, a).
    return Rng::hashMix(Rng::hashMix(base_seed ^ 0x9e3779b97f4a7c15ULL) +
                        Rng::hashMix(cell_key));
}

struct SweepRunner::Impl
{
    explicit Impl(std::size_t jobs) : pool(jobs) {}

    ThreadPool pool;
};

SweepRunner::SweepRunner(std::size_t jobs)
    : impl_(std::make_unique<Impl>(jobs))
{
}

SweepRunner::~SweepRunner() = default;

std::size_t
SweepRunner::jobs() const
{
    return impl_->pool.size();
}

std::vector<SimResult>
SweepRunner::run(const std::vector<SweepCell>& cells)
{
    for (const SweepCell& cell : cells) {
        if (cell.trace == nullptr)
            throw std::invalid_argument("SweepRunner: cell without a trace");
        if (!cell.make_policy)
            throw std::invalid_argument("SweepRunner: cell without a policy");
    }
    return parallelMap(impl_->pool, cells, [](const SweepCell& cell) {
        return simulateTrace(*cell.trace, cell.make_policy(), cell.sim);
    });
}

std::vector<SimResult>
runSweep(const std::vector<SweepCell>& cells, std::size_t jobs)
{
    SweepRunner runner(jobs);
    return runner.run(cells);
}

}  // namespace faascache

#include "sim/sweep_runner.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "sim/sweep_checkpoint.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace faascache {

namespace {

/** @throws std::invalid_argument naming the first malformed cell. */
void
validateCells(const std::vector<SweepCell>& cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (cells[i].trace == nullptr && !cells[i].make_source)
            throw std::invalid_argument(
                "SweepRunner: cell without a workload — set trace or "
                "make_source (cell index " +
                std::to_string(i) + ")");
        if (cells[i].trace != nullptr && cells[i].make_source)
            throw std::invalid_argument(
                "SweepRunner: cell with both trace and make_source set "
                "(cell index " +
                std::to_string(i) + ")");
        if (!cells[i].make_policy)
            throw std::invalid_argument(
                "SweepRunner: cell without a policy (cell index " +
                std::to_string(i) + ")");
    }
}

std::string
defaultCellKey(const SweepCell& cell)
{
    // The policy and source factories must be pure, so building one
    // instance just to read its name is side-effect free.
    const std::string policy_name = cell.make_policy()->name();
    const std::string trace_name = cell.trace != nullptr
        ? cell.trace->name()
        : cell.make_source()->name();
    char mem[32];
    std::snprintf(mem, sizeof mem, "%g", cell.sim.memory_mb);
    return trace_name + "/" + policy_name + "/" + mem + "MB";
}

void
hashHexDouble(std::ostringstream& out, double value)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%a", value);
    out << buf << ';';
}

/**
 * Workload-header bytes shared by both fingerprint flavours; the
 * invocation stream is folded incrementally afterwards (FNV-1a is
 * byte-sequential, so chaining fnv1a64 over pieces equals hashing the
 * concatenation).
 */
std::string
workloadHeaderBytes(const std::string& name,
                    const std::vector<FunctionSpec>& functions)
{
    std::ostringstream out;
    out << name << ';';
    for (const FunctionSpec& spec : functions) {
        out << spec.id << ';' << spec.name << ';';
        hashHexDouble(out, spec.mem_mb);
        hashHexDouble(out, spec.cpu_units);
        hashHexDouble(out, spec.io_units);
        out << spec.warm_us << ';' << spec.cold_us << ';';
    }
    return out.str();
}

std::uint64_t
foldInvocation(std::uint64_t hash, const Invocation& inv)
{
    char buf[64];
    const int len =
        std::snprintf(buf, sizeof buf, "%" PRIu32 ",%" PRId64 ";",
                      inv.function, inv.arrival_us);
    return fnv1a64(std::string_view(buf, static_cast<std::size_t>(len)),
                   hash);
}

}  // namespace

std::uint64_t
traceFingerprint(const Trace& trace)
{
    std::uint64_t hash =
        fnv1a64(workloadHeaderBytes(trace.name(), trace.functions()));
    for (const Invocation& inv : trace.invocations())
        hash = foldInvocation(hash, inv);
    return hash;
}

std::uint64_t
sourceFingerprint(InvocationSource& source)
{
    std::uint64_t hash =
        fnv1a64(workloadHeaderBytes(source.name(), source.functions()));
    source.reset();
    Invocation inv;
    while (source.next(inv))
        hash = foldInvocation(hash, inv);
    source.reset();
    return hash;
}

SweepCell
makeCell(const Trace& trace, PolicyKind kind, MemMb memory_mb,
         const PolicyConfig& policy_config)
{
    SweepCell cell;
    cell.trace = &trace;
    cell.make_policy = [kind, policy_config]() {
        return makePolicy(kind, policy_config);
    };
    cell.sim.memory_mb = memory_mb;
    return cell;
}

SweepCell
makeStreamCell(std::function<std::unique_ptr<InvocationSource>()> make_source,
               PolicyKind kind, MemMb memory_mb,
               const PolicyConfig& policy_config)
{
    SweepCell cell;
    cell.make_source = std::move(make_source);
    cell.make_policy = [kind, policy_config]() {
        return makePolicy(kind, policy_config);
    };
    cell.sim.memory_mb = memory_mb;
    return cell;
}

std::uint64_t
deriveCellSeed(std::uint64_t base_seed, std::uint64_t cell_key)
{
    // Two SplitMix64 finalizer rounds decorrelate sequential keys and
    // sequential base seeds; the asymmetric constant keeps
    // deriveCellSeed(a, b) != deriveCellSeed(b, a).
    return Rng::hashMix(Rng::hashMix(base_seed ^ 0x9e3779b97f4a7c15ULL) +
                        Rng::hashMix(cell_key));
}

std::vector<std::string>
sweepCellKeys(const std::vector<SweepCell>& cells)
{
    validateCells(cells);
    std::vector<std::string> keys;
    keys.reserve(cells.size());
    std::unordered_set<std::string> used;
    for (const SweepCell& cell : cells) {
        std::string key =
            cell.key.empty() ? defaultCellKey(cell) : cell.key;
        if (!used.insert(key).second) {
            // Later duplicates get "#2", "#3", ... so every cell has a
            // distinct checkpoint identity.
            for (int n = 2;; ++n) {
                std::string candidate =
                    key + "#" + std::to_string(n);
                if (used.insert(candidate).second) {
                    key = std::move(candidate);
                    break;
                }
            }
        }
        keys.push_back(std::move(key));
    }
    return keys;
}

std::uint64_t
sweepGridFingerprint(const std::vector<SweepCell>& cells)
{
    const std::vector<std::string> keys = sweepCellKeys(cells);
    // Traces are shared across the grid; hash each distinct one once.
    std::unordered_map<const Trace*, std::uint64_t> trace_hashes;
    std::ostringstream out;
    out << "faascache-sweep-grid-v1;" << cells.size() << ';';
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const SweepCell& cell = cells[i];
        std::uint64_t workload_hash = 0;
        if (cell.trace != nullptr) {
            auto it = trace_hashes.find(cell.trace);
            if (it == trace_hashes.end())
                it = trace_hashes
                         .emplace(cell.trace,
                                  traceFingerprint(*cell.trace))
                         .first;
            workload_hash = it->second;
        } else {
            // Caller-provided identity, or one streaming pass when the
            // caller left it unset. Equals traceFingerprint() of the
            // equivalent trace, so a checkpoint is portable between
            // the materialized and streamed shapes of one workload.
            workload_hash = cell.source_fingerprint != 0
                ? cell.source_fingerprint
                : sourceFingerprint(*cell.make_source());
        }
        out << keys[i] << ';';
        char trace_hash[24];
        std::snprintf(trace_hash, sizeof trace_hash, "%016" PRIx64,
                      workload_hash);
        out << trace_hash << ';';
        hashHexDouble(out, cell.sim.memory_mb);
        out << cell.sim.memory_sample_interval_us << ';'
            << (cell.sim.enable_prewarm ? 1 : 0) << ';'
            << cell.sim.background_reclaim_interval_us << ';';
        hashHexDouble(out, cell.sim.background_free_target_mb);
        // Mixed in for completeness only: both backends are observably
        // identical, but a resumed sweep should still notice the knob
        // changed under it.
        out << poolBackendName(cell.sim.pool_backend) << ';';
        out << cell.rng_seed << ';';
    }
    return fnv1a64(out.str());
}

std::size_t
SweepReport::countWithStatus(CellStatus status) const
{
    std::size_t count = 0;
    for (const CellOutcome<SimResult>& cell : cells)
        count += cell.status == status ? 1 : 0;
    return count;
}

bool
SweepReport::allOk() const
{
    return countWithStatus(CellStatus::Ok) == cells.size();
}

std::vector<SimResult>
SweepReport::results() const
{
    std::vector<SimResult> out;
    out.reserve(cells.size());
    for (const CellOutcome<SimResult>& cell : cells)
        out.push_back(cell.result);
    return out;
}

struct SweepRunner::Impl
{
    explicit Impl(std::size_t jobs) : pool(jobs) {}

    ThreadPool pool;
};

SweepRunner::SweepRunner(std::size_t jobs)
    : impl_(std::make_unique<Impl>(jobs))
{
}

SweepRunner::~SweepRunner() = default;

std::size_t
SweepRunner::jobs() const
{
    return impl_->pool.size();
}

std::vector<SimResult>
SweepRunner::run(const std::vector<SweepCell>& cells)
{
    SweepOptions options;
    options.strict = true;
    return runReport(cells, options).results();
}

SweepReport
SweepRunner::runReport(const std::vector<SweepCell>& cells,
                       const SweepOptions& options)
{
    validateCells(cells);
    if (options.resume && options.checkpoint_path.empty())
        throw std::invalid_argument(
            "SweepRunner: resume requested without a checkpoint path");

    const std::vector<std::string> keys = sweepCellKeys(cells);

    SweepReport report;
    report.cells.resize(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
        report.cells[i].key = keys[i];

    const bool journaling = !options.checkpoint_path.empty();
    std::uint64_t fingerprint = 0;
    if (journaling)
        fingerprint = sweepGridFingerprint(cells);

    // Restore journaled cells before anything runs.
    std::unique_ptr<SweepCheckpointWriter> writer;
    if (options.resume) {
        SweepCheckpointLoad load =
            loadSweepCheckpoint(options.checkpoint_path);
        if (load.fingerprint != fingerprint) {
            char want[24], got[24];
            std::snprintf(want, sizeof want, "%016" PRIx64, fingerprint);
            std::snprintf(got, sizeof got, "%016" PRIx64,
                          load.fingerprint);
            throw std::runtime_error(
                "SweepRunner: checkpoint " + options.checkpoint_path +
                " belongs to a different sweep grid (fingerprint " +
                got + ", this grid is " + want +
                "); refusing to resume");
        }
        if (load.torn_tail) {
            report.torn_tail = true;
            std::fprintf(stderr,
                         "sweep: checkpoint %s has a torn tail (record "
                         "cut mid-write); truncating to %zu valid bytes "
                         "and re-running the affected cell\n",
                         options.checkpoint_path.c_str(),
                         load.valid_bytes);
        }
        std::unordered_map<std::string, const SimResult*> restored;
        for (const SweepCheckpointRecord& record : load.records)
            restored[record.key] = &record.result;  // last record wins
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const auto it = restored.find(keys[i]);
            if (it == restored.end())
                continue;
            report.cells[i].status = CellStatus::Ok;
            report.cells[i].result = *it->second;
            report.cells[i].restored = true;
            ++report.restored;
        }
        writer = std::make_unique<SweepCheckpointWriter>(
            SweepCheckpointWriter::continueAt(options.checkpoint_path,
                                              load.valid_bytes));
    } else if (journaling) {
        writer = std::make_unique<SweepCheckpointWriter>(
            SweepCheckpointWriter::beginFresh(options.checkpoint_path,
                                              fingerprint));
    }

    CellHarnessOptions harness;
    harness.deadline_s = options.deadline_s;
    harness.max_retries = options.max_retries;
    harness.cancel = options.cancel;

    report.completed = runHarnessedCells(
        impl_->pool, report.cells,
        [&cells](std::size_t index, int /*attempt*/,
                 const CancellationToken& token) {
            const SweepCell& cell = cells[index];
            SimulatorConfig config = cell.sim;
            config.cancel = &token;
            if (cell.make_source) {
                const std::unique_ptr<InvocationSource> source =
                    cell.make_source();
                return simulateSource(*source, cell.make_policy(),
                                      config);
            }
            return simulateTrace(*cell.trace, cell.make_policy(), config);
        },
        [&writer](std::size_t /*index*/,
                  const CellOutcome<SimResult>& outcome) {
            if (writer)
                writer->append(outcome.key, outcome.result);
        },
        harness);

    if (options.strict) {
        for (const CellOutcome<SimResult>& cell : report.cells) {
            if (cell.ok())
                continue;
            if (cell.exception)
                std::rethrow_exception(cell.exception);
            throw std::runtime_error("SweepRunner: cell " + cell.key +
                                     " " + cellStatusName(cell.status) +
                                     ": " + cell.error);
        }
    }
    return report;
}

std::vector<SimResult>
runSweep(const std::vector<SweepCell>& cells, std::size_t jobs)
{
    SweepRunner runner(jobs);
    return runner.run(cells);
}

SweepReport
runSweepReport(const std::vector<SweepCell>& cells, std::size_t jobs,
               const SweepOptions& options)
{
    SweepRunner runner(jobs);
    return runner.runReport(cells, options);
}

}  // namespace faascache

/**
 * @file
 * The trace-driven keep-alive simulator (paper §6, "Keep-alive
 * Simulator"), a C++ reimplementation of the paper's Python
 * discrete-event simulator.
 *
 * For each invocation, in arrival order:
 *  1. running containers whose invocations completed become idle;
 *  2. prewarms requested by the policy (HIST) are performed if memory
 *     allows and no idle warm container already exists;
 *  3. containers whose keep-alive lease expired are terminated;
 *  4. the policy is notified of the arrival;
 *  5. a warm idle container, if any, serves the invocation (warm start);
 *     otherwise the policy selects idle victims to free memory and a new
 *     container cold-starts; if even evicting every idle container
 *     cannot make room, the request is dropped.
 *
 * The simulator exposes a step API plus capacity resizing so the elastic
 * provisioning controller (§5.2) can drive it period by period.
 */
#ifndef FAASCACHE_SIM_SIMULATOR_H_
#define FAASCACHE_SIM_SIMULATOR_H_

#include <memory>

#include "core/container_pool.h"
#include "core/keepalive_policy.h"
#include "engine/event_engine.h"
#include "engine/periodic_schedule.h"
#include "sim/sim_result.h"
#include "trace/invocation_source.h"
#include "trace/trace.h"
#include "util/cancellation.h"

namespace faascache {

/** Simulator knobs. */
struct SimulatorConfig
{
    /** Keep-alive cache (container pool) capacity, MB. */
    MemMb memory_mb = 32 * 1024.0;

    /**
     * Container-pool storage backend. Slab (default) is the dense
     * allocation-free arena; ReferenceMap is the original hash-map pool
     * kept as a differential-testing oracle. Observably identical.
     */
    PoolBackend pool_backend = PoolBackend::Slab;

    /** Interval between memory-usage samples; 0 disables sampling. */
    TimeUs memory_sample_interval_us = kMinute;

    /** Honor policy prewarm requests (HIST). */
    bool enable_prewarm = true;

    /**
     * Background reclamation (paper §6 future work: a kswapd-like
     * thread that keeps free memory above a threshold so eviction moves
     * off the invocation critical path). 0 disables it.
     */
    TimeUs background_reclaim_interval_us = 0;

    /** Free-memory target the background reclaimer maintains, MB. */
    MemMb background_free_target_mb = 1000.0;

    /**
     * Cooperative cancellation (non-owning; may be null). Checked at
     * every step() so a watchdog or signal handler can unwind a
     * long-running replay promptly; a cancelled simulation throws
     * CancelledError out of step()/run(). Does not perturb results:
     * a run that is never cancelled is byte-identical with or without
     * a token installed.
     */
    const CancellationToken* cancel = nullptr;

    /**
     * Check invariants (positive capacity, non-negative intervals).
     * @throws std::invalid_argument with a descriptive message.
     */
    void validate() const;
};

/** Trace-driven keep-alive simulator. */
class Simulator
{
  public:
    /**
     * @param trace  Workload to replay; must be sorted and valid.
     * @param policy Keep-alive policy under test (owned).
     * @param config Simulator knobs.
     */
    Simulator(const Trace& trace, std::unique_ptr<KeepAlivePolicy> policy,
              SimulatorConfig config);

    /**
     * Streaming variant: replay from a cursor instead of a materialized
     * trace. The source must outlive the simulator; it is reset() at
     * construction and the cursor contract (sorted arrivals, valid
     * function ids) is enforced online as invocations are consumed.
     */
    Simulator(InvocationSource& source,
              std::unique_ptr<KeepAlivePolicy> policy,
              SimulatorConfig config);

    /** Replay the remaining trace to completion and return the result. */
    SimResult run();

    /** Process the next invocation. @pre !done(). */
    void step();

    /** Whether the whole trace has been replayed. */
    bool done()
    {
        Invocation tmp;
        return !source_->peek(tmp);
    }

    /** Arrival time of the last processed invocation (0 initially). */
    TimeUs now() const { return clock_.now(); }

    /** Arrival time of the next invocation. @pre !done(). */
    TimeUs nextArrival();

    /**
     * Elastic vertical scaling: change the pool capacity. Shrinking
     * first evicts idle containers (cascade deflation); busy containers
     * may keep the pool transiently over capacity.
     */
    void resize(MemMb new_capacity_mb);

    /** Results accumulated so far (running totals). */
    const SimResult& result() const { return result_; }

    const ContainerPool& pool() const { return pool_; }
    const KeepAlivePolicy& policy() const { return *policy_; }

  private:
    /** Advance housekeeping (release, prewarm, expire) to time t. */
    void advanceTo(TimeUs t);

    /** Terminate a container and notify the policy. */
    void evict(ContainerId id, TimeUs t, bool expired);

    /** Record memory-usage samples up to time t. */
    void sampleMemory(TimeUs t);

    /** Shared tail of both constructors (result/policy/pool sizing). */
    void initCommon();

    /** Set only by the Trace convenience constructor. */
    std::unique_ptr<TraceSource> owned_source_;
    InvocationSource* source_;
    const std::vector<FunctionSpec>* functions_;
    std::unique_ptr<KeepAlivePolicy> policy_;
    SimulatorConfig config_;
    ContainerPool pool_;
    SimResult result_;

    /** Arrival of the last consumed invocation (online sorted check). */
    TimeUs last_arrival_ = 0;

    /** Engine clock: the arrival instant being processed. */
    SimClock clock_;

    /** Registered periodic tasks (engine/periodic_schedule.h). */
    PeriodicSchedule sampling_;
    PeriodicSchedule reclaim_;
};

/** Convenience: construct, run, and return the result. */
SimResult simulateTrace(const Trace& trace,
                        std::unique_ptr<KeepAlivePolicy> policy,
                        const SimulatorConfig& config);

/** Convenience: replay a streaming source to completion. */
SimResult simulateSource(InvocationSource& source,
                         std::unique_ptr<KeepAlivePolicy> policy,
                         const SimulatorConfig& config);

}  // namespace faascache

#endif  // FAASCACHE_SIM_SIMULATOR_H_

/**
 * @file
 * Append-only checkpoint journal for sweep results (checkpoint/resume).
 *
 * A sweep over an Azure-scale trace replays days of simulated time per
 * cell; a killed process must not discard every completed cell. The
 * journal makes completed work durable:
 *
 *   faascache-sweep-ckpt v1 fp=<grid fingerprint, 16 hex digits>
 *   cell <fnv1a64 checksum> <payload>
 *   cell <fnv1a64 checksum> <payload>
 *   ...
 *
 * One record per completed cell, appended and flushed as cells finish
 * (completion order — the journal is unordered; final output order
 * comes from the sweep grid). The payload is a full-fidelity text
 * encoding of the cell's stable key plus its SimResult: integers in
 * decimal, doubles in C hexfloat (`%a`), so a restored result is
 * field-for-field — bit-for-bit for doubles — equal to the simulated
 * one. That exactness is what makes a `--resume` run byte-identical to
 * an uninterrupted one.
 *
 * Robustness rules on load:
 *  - the header's grid fingerprint identifies the sweep (trace
 *    contents, cell keys, memory axis, simulator knobs, seeds); the
 *    runner refuses to resume under a different fingerprint;
 *  - records are validated line by line (structure + checksum); the
 *    first invalid or unterminated line ends the valid prefix — a torn
 *    tail from a mid-write SIGKILL is truncated with a warning and its
 *    cells are simply re-run;
 *  - duplicate keys keep the last record (idempotent re-appends).
 */
#ifndef FAASCACHE_SIM_SWEEP_CHECKPOINT_H_
#define FAASCACHE_SIM_SWEEP_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/sim_result.h"

namespace faascache {

/** FNV-1a 64-bit hash (the journal's record checksum). */
std::uint64_t fnv1a64(std::string_view data,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

/** One journaled cell. */
struct SweepCheckpointRecord
{
    std::string key;
    SimResult result;
};

/** What loadSweepCheckpoint() recovered from a journal file. */
struct SweepCheckpointLoad
{
    /** Grid fingerprint the journal was written for. */
    std::uint64_t fingerprint = 0;

    /** Validated records, file order (duplicates not yet collapsed). */
    std::vector<SweepCheckpointRecord> records;

    /** Byte length of the valid prefix (header + intact records). */
    std::size_t valid_bytes = 0;

    /** Data past the valid prefix existed (torn tail — a record cut by
     *  a crash mid-write) and was discarded. */
    bool torn_tail = false;
};

/**
 * Read and validate a checkpoint journal.
 * @throws std::runtime_error when the file cannot be read or its
 *         header is not a faascache sweep checkpoint.
 */
SweepCheckpointLoad loadSweepCheckpoint(const std::string& path);

/** Appends completed-cell records to a journal file. Thread-safe. */
class SweepCheckpointWriter
{
  public:
    /**
     * Start a fresh journal at `path` (truncating any previous file)
     * with the sweep's grid fingerprint in the header.
     * @throws std::runtime_error when the file cannot be created.
     */
    static SweepCheckpointWriter beginFresh(const std::string& path,
                                            std::uint64_t fingerprint);

    /**
     * Reopen an existing journal for appending after a resume:
     * truncates the file to `valid_bytes` (discarding any torn tail)
     * and appends after it.
     * @throws std::runtime_error when the file cannot be opened.
     */
    static SweepCheckpointWriter continueAt(const std::string& path,
                                            std::size_t valid_bytes);

    SweepCheckpointWriter(SweepCheckpointWriter&&) noexcept;
    SweepCheckpointWriter& operator=(SweepCheckpointWriter&&) noexcept;
    ~SweepCheckpointWriter();

    /** Append one completed cell and flush it to the OS. Thread-safe. */
    void append(const std::string& key, const SimResult& result);

    const std::string& path() const;

  private:
    struct Impl;
    explicit SweepCheckpointWriter(std::unique_ptr<Impl> impl);
    std::unique_ptr<Impl> impl_;
};

/**
 * @name Record codec (exposed for tests)
 * The payload is `<key> <policy> <fields...>` with keys/names
 * percent-escaped and doubles in hexfloat; see the file comment.
 * @{
 */
std::string encodeCheckpointPayload(const std::string& key,
                                    const SimResult& result);

/** @return false when the payload is malformed. */
bool decodeCheckpointPayload(const std::string& payload, std::string* key,
                             SimResult* result);
/** @} */

}  // namespace faascache

#endif  // FAASCACHE_SIM_SWEEP_CHECKPOINT_H_

/**
 * @file
 * SimResult flavour of the checkpoint journal (checkpoint/resume for
 * trace-driven sweeps).
 *
 * The journal mechanics — header/fingerprint validation, checksummed
 * records, torn-tail truncation, record-at-a-time flushing — live in
 * util/checkpoint_journal.h and are shared with the platform and
 * elastic flavours; this file contributes the SimResult payload codec:
 * a full-fidelity text encoding of the cell's stable key plus its
 * SimResult, integers in decimal and doubles in C hexfloat (`%a`), so
 * a restored result is field-for-field — bit-for-bit for doubles —
 * equal to the simulated one. That exactness is what makes a
 * `--resume` run byte-identical to an uninterrupted one.
 *
 * On load, a checksum-valid record whose payload fails to decode as a
 * SimResult ends the valid prefix exactly like a torn record would:
 * the journal is truncated there on resume and the cells re-run.
 */
#ifndef FAASCACHE_SIM_SWEEP_CHECKPOINT_H_
#define FAASCACHE_SIM_SWEEP_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/sim_result.h"
#include "util/checkpoint_journal.h"

namespace faascache {

/** One journaled cell. */
struct SweepCheckpointRecord
{
    std::string key;
    SimResult result;
};

/** What loadSweepCheckpoint() recovered from a journal file. */
struct SweepCheckpointLoad
{
    /** Grid fingerprint the journal was written for. */
    std::uint64_t fingerprint = 0;

    /** Validated records, file order (duplicates not yet collapsed). */
    std::vector<SweepCheckpointRecord> records;

    /** Byte length of the valid prefix (header + intact records). */
    std::size_t valid_bytes = 0;

    /** Data past the valid prefix existed (torn tail — a record cut by
     *  a crash mid-write) and was discarded. */
    bool torn_tail = false;
};

/**
 * Read and validate a checkpoint journal.
 * @throws std::runtime_error when the file cannot be read or its
 *         header is not a faascache sweep checkpoint.
 */
SweepCheckpointLoad loadSweepCheckpoint(const std::string& path);

/** Appends completed-cell records to a journal file. Thread-safe. */
class SweepCheckpointWriter
{
  public:
    /**
     * Start a fresh journal at `path` (truncating any previous file)
     * with the sweep's grid fingerprint in the header.
     * @throws std::runtime_error when the file cannot be created.
     */
    static SweepCheckpointWriter beginFresh(const std::string& path,
                                            std::uint64_t fingerprint);

    /**
     * Reopen an existing journal for appending after a resume:
     * truncates the file to `valid_bytes` (discarding any torn tail)
     * and appends after it.
     * @throws std::runtime_error when the file cannot be opened.
     */
    static SweepCheckpointWriter continueAt(const std::string& path,
                                            std::size_t valid_bytes);

    SweepCheckpointWriter(SweepCheckpointWriter&&) noexcept;
    SweepCheckpointWriter& operator=(SweepCheckpointWriter&&) noexcept;
    ~SweepCheckpointWriter();

    /** Append one completed cell and flush it to the OS. Thread-safe. */
    void append(const std::string& key, const SimResult& result);

    const std::string& path() const;

  private:
    explicit SweepCheckpointWriter(CheckpointJournalWriter writer);
    std::unique_ptr<CheckpointJournalWriter> writer_;
};

/**
 * @name Record codec (exposed for tests)
 * The payload is `<key> <policy> <fields...>` with keys/names
 * percent-escaped and doubles in hexfloat; see the file comment.
 * @{
 */
std::string encodeCheckpointPayload(const std::string& key,
                                    const SimResult& result);

/** @return false when the payload is malformed. */
bool decodeCheckpointPayload(const std::string& payload, std::string* key,
                             SimResult* result);
/** @} */

}  // namespace faascache

#endif  // FAASCACHE_SIM_SWEEP_CHECKPOINT_H_

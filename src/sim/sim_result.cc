#include "sim/sim_result.h"

namespace faascache {

RobustnessCounters&
RobustnessCounters::operator+=(const RobustnessCounters& other)
{
    spawn_failures += other.spawn_failures;
    straggler_cold_starts += other.straggler_cold_starts;
    reclaim_stalls += other.reclaim_stalls;
    crashes += other.crashes;
    restarts += other.restarts;
    crash_aborted += other.crash_aborted;
    crash_flushed_containers += other.crash_flushed_containers;
    dropped_unavailable += other.dropped_unavailable;
    redispatch_cold_starts += other.redispatch_cold_starts;
    oom_kills += other.oom_kills;
    downtime_us += other.downtime_us;
    return *this;
}

double
SimResult::coldStartFraction() const
{
    const std::int64_t n = served();
    if (n == 0)
        return 0.0;
    return static_cast<double>(cold_starts) / static_cast<double>(n);
}

double
SimResult::execTimeIncreasePercent() const
{
    if (baseline_exec_us <= 0)
        return 0.0;
    return 100.0 *
        static_cast<double>(actual_exec_us - baseline_exec_us) /
        static_cast<double>(baseline_exec_us);
}

double
SimResult::dropFraction() const
{
    const std::int64_t n = total();
    if (n == 0)
        return 0.0;
    return static_cast<double>(dropped) / static_cast<double>(n);
}

MemMb
SimResult::meanMemoryUsage() const
{
    if (memory_usage.empty())
        return 0.0;
    if (memory_usage.size() == 1)
        return memory_usage.front().used_mb;
    double weighted = 0.0;
    double span = 0.0;
    for (std::size_t i = 0; i + 1 < memory_usage.size(); ++i) {
        const double dt = static_cast<double>(memory_usage[i + 1].time_us -
                                              memory_usage[i].time_us);
        weighted += memory_usage[i].used_mb * dt;
        span += dt;
    }
    return span > 0 ? weighted / span : memory_usage.front().used_mb;
}

}  // namespace faascache

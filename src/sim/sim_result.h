/**
 * @file
 * Accounting produced by the keep-alive simulator: warm/cold/dropped
 * counts, execution-time inflation, and a memory-usage timeline. These
 * are the metrics behind the paper's Figures 3, 5, 6, and 9.
 */
#ifndef FAASCACHE_SIM_SIM_RESULT_H_
#define FAASCACHE_SIM_SIM_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"

namespace faascache {

/** How one invocation was served. */
enum class Outcome
{
    Warm,     ///< served by an existing warm container (cache hit)
    Cold,     ///< a new container had to be created and initialized
    Dropped,  ///< no memory could be freed; the request was rejected
};

/** Per-function outcome counts. */
struct FunctionOutcome
{
    std::int64_t warm = 0;
    std::int64_t cold = 0;
    std::int64_t dropped = 0;

    std::int64_t served() const { return warm + cold; }
};

/** One sample of the pool's memory consumption. */
struct MemorySample
{
    TimeUs time_us = 0;
    MemMb used_mb = 0;
};

/** Full simulation outcome. */
struct SimResult
{
    std::string policy_name;
    MemMb memory_mb = 0;

    std::int64_t warm_starts = 0;
    std::int64_t cold_starts = 0;
    std::int64_t dropped = 0;
    std::int64_t evictions = 0;
    std::int64_t expirations = 0;
    std::int64_t prewarms = 0;

    /** Times the policy's victim-selection slow path ran on the
     *  invocation critical path (demand evictions). */
    std::int64_t eviction_rounds = 0;

    /** Containers terminated by the background reclaimer (also counted
     *  in `evictions`). */
    std::int64_t background_reclaims = 0;

    /** Sum of actual execution times of served invocations. */
    TimeUs actual_exec_us = 0;

    /** Sum of warm execution times of served invocations (the ideal). */
    TimeUs baseline_exec_us = 0;

    /** Per-function breakdown, indexed by FunctionId. */
    std::vector<FunctionOutcome> per_function;

    /** Sampled pool memory usage over time. */
    std::vector<MemorySample> memory_usage;

    std::int64_t served() const { return warm_starts + cold_starts; }
    std::int64_t total() const { return served() + dropped; }

    /** Fraction of served invocations that cold-started, in [0, 1]. */
    double coldStartFraction() const;

    /** Percent of served invocations that cold-started (Figure 6). */
    double coldStartPercent() const { return coldStartFraction() * 100.0; }

    /**
     * Percent increase in total execution time caused by cold starts,
     * relative to an all-warm execution (Figure 5).
     */
    double execTimeIncreasePercent() const;

    /** Fraction of all requests that were dropped. */
    double dropFraction() const;

    /** Time-weighted mean of the sampled memory usage, MB. */
    MemMb meanMemoryUsage() const;
};

}  // namespace faascache

#endif  // FAASCACHE_SIM_SIM_RESULT_H_

/**
 * @file
 * Accounting produced by the keep-alive simulator: warm/cold/dropped
 * counts, execution-time inflation, and a memory-usage timeline. These
 * are the metrics behind the paper's Figures 3, 5, 6, and 9.
 */
#ifndef FAASCACHE_SIM_SIM_RESULT_H_
#define FAASCACHE_SIM_SIM_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.h"

namespace faascache {

/** How one invocation was served. */
enum class Outcome
{
    Warm,     ///< served by an existing warm container (cache hit)
    Cold,     ///< a new container had to be created and initialized
    Dropped,  ///< no memory could be freed; the request was rejected
};

/** Per-function outcome counts. */
struct FunctionOutcome
{
    std::int64_t warm = 0;
    std::int64_t cold = 0;
    std::int64_t dropped = 0;

    std::int64_t served() const { return warm + cold; }

    friend bool operator==(const FunctionOutcome&,
                           const FunctionOutcome&) = default;
};

/** One sample of the pool's memory consumption. */
struct MemorySample
{
    TimeUs time_us = 0;
    MemMb used_mb = 0;

    friend bool operator==(const MemorySample&,
                           const MemorySample&) = default;
};

/**
 * Fault-injection accounting shared by the platform-server and cluster
 * results. All counters stay zero when no FaultPlan is active, so the
 * fault machinery is observably free when disabled.
 */
struct RobustnessCounters
{
    /** Transient container-spawn failures (each retried in place). */
    std::int64_t spawn_failures = 0;

    /** Cold starts whose initialization straggled. */
    std::int64_t straggler_cold_starts = 0;

    /** Demand evictions that stalled on memory reclaim. */
    std::int64_t reclaim_stalls = 0;

    /** Server crashes suffered. */
    std::int64_t crashes = 0;

    /** Crash recoveries (restarts that rejoined the fleet). */
    std::int64_t restarts = 0;

    /** Running invocations killed mid-flight by a crash. In a cluster
     *  run these are re-dispatched elsewhere; in a single-server run
     *  they are lost. */
    std::int64_t crash_aborted = 0;

    /** Containers (busy, warm, and prewarmed) flushed by crashes. */
    std::int64_t crash_flushed_containers = 0;

    /** Requests lost because the server was down (queued work flushed
     *  by a crash with no cluster to fail over to, plus arrivals during
     *  downtime). Zero in cluster runs, which re-dispatch instead. */
    std::int64_t dropped_unavailable = 0;

    /** Crash-induced cold starts: cold starts served for invocations
     *  the cluster re-dispatched after a crash. */
    std::int64_t redispatch_cold_starts = 0;

    /** Busy containers killed by injected memory-pressure OOM events
     *  (their invocations are also counted in crash_aborted). */
    std::int64_t oom_kills = 0;

    /** Total time spent unavailable (crash to restart, or to the end
     *  of the run for servers that never came back). */
    TimeUs downtime_us = 0;

    RobustnessCounters& operator+=(const RobustnessCounters& other);

    friend bool operator==(const RobustnessCounters&,
                           const RobustnessCounters&) = default;
};

/** Full simulation outcome. */
struct SimResult
{
    std::string policy_name;
    MemMb memory_mb = 0;

    std::int64_t warm_starts = 0;
    std::int64_t cold_starts = 0;
    std::int64_t dropped = 0;
    std::int64_t evictions = 0;
    std::int64_t expirations = 0;
    std::int64_t prewarms = 0;

    /** Times the policy's victim-selection slow path ran on the
     *  invocation critical path (demand evictions). */
    std::int64_t eviction_rounds = 0;

    /** Containers terminated by the background reclaimer (also counted
     *  in `evictions`). */
    std::int64_t background_reclaims = 0;

    /** Sum of actual execution times of served invocations. */
    TimeUs actual_exec_us = 0;

    /** Sum of warm execution times of served invocations (the ideal). */
    TimeUs baseline_exec_us = 0;

    /** Per-function breakdown, indexed by FunctionId. */
    std::vector<FunctionOutcome> per_function;

    /** Sampled pool memory usage over time. */
    std::vector<MemorySample> memory_usage;

    std::int64_t served() const { return warm_starts + cold_starts; }
    std::int64_t total() const { return served() + dropped; }

    /** Fraction of served invocations that cold-started, in [0, 1]. */
    double coldStartFraction() const;

    /** Percent of served invocations that cold-started (Figure 6). */
    double coldStartPercent() const { return coldStartFraction() * 100.0; }

    /**
     * Percent increase in total execution time caused by cold starts,
     * relative to an all-warm execution (Figure 5).
     */
    double execTimeIncreasePercent() const;

    /** Fraction of all requests that were dropped. */
    double dropFraction() const;

    /** Time-weighted mean of the sampled memory usage, MB. */
    MemMb meanMemoryUsage() const;

    /**
     * Exact field-by-field equality (doubles compared bitwise-equal) —
     * the relation behind the "parallel sweeps are byte-identical to
     * serial runs" determinism guarantee and its differential tests.
     */
    friend bool operator==(const SimResult&, const SimResult&) = default;
};

}  // namespace faascache

#endif  // FAASCACHE_SIM_SIM_RESULT_H_

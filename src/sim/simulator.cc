#include "sim/simulator.h"

#include <cassert>
#include <stdexcept>
#include <string>

namespace faascache {

void
SimulatorConfig::validate() const
{
    if (!(memory_mb > 0)) {
        throw std::invalid_argument(
            "SimulatorConfig: memory_mb must be > 0, got " +
            std::to_string(memory_mb));
    }
    if (memory_sample_interval_us < 0) {
        throw std::invalid_argument(
            "SimulatorConfig: memory_sample_interval_us must be >= 0, "
            "got " +
            std::to_string(memory_sample_interval_us));
    }
    if (background_reclaim_interval_us < 0) {
        throw std::invalid_argument(
            "SimulatorConfig: background_reclaim_interval_us must be "
            ">= 0, got " +
            std::to_string(background_reclaim_interval_us));
    }
    if (background_reclaim_interval_us > 0 &&
        !(background_free_target_mb > 0)) {
        throw std::invalid_argument(
            "SimulatorConfig: background_free_target_mb must be > 0 "
            "when background reclamation is enabled, got " +
            std::to_string(background_free_target_mb));
    }
}

Simulator::Simulator(const Trace& trace,
                     std::unique_ptr<KeepAlivePolicy> policy,
                     SimulatorConfig config)
    : owned_source_(std::make_unique<TraceSource>(trace)),
      source_(owned_source_.get()), functions_(&trace.functions()),
      policy_(std::move(policy)), config_(config),
      // Validate before the pool captures the capacity (its
      // constructor asserts on non-positive memory).
      pool_((config_.validate(), config_.memory_mb), config_.pool_backend)
{
    if (!policy_)
        throw std::invalid_argument("Simulator: null policy");
    if (!trace.validate())
        throw std::invalid_argument("Simulator: invalid trace");
    if (!trace.isSorted())
        throw std::invalid_argument("Simulator: trace not sorted");
    initCommon();
}

Simulator::Simulator(InvocationSource& source,
                     std::unique_ptr<KeepAlivePolicy> policy,
                     SimulatorConfig config)
    : source_(&source), functions_(&source.functions()),
      policy_(std::move(policy)), config_(config),
      pool_((config_.validate(), config_.memory_mb), config_.pool_backend)
{
    if (!policy_)
        throw std::invalid_argument("Simulator: null policy");
    initCommon();
}

void
Simulator::initCommon()
{
    source_->reset();
    result_.policy_name = policy_->name();
    result_.memory_mb = config_.memory_mb;
    result_.per_function.resize(functions_->size());
    // Allocation hints: size dense per-function tables from the catalog.
    policy_->reserveFunctions(functions_->size());
    pool_.reserve(/*containers=*/256, functions_->size());
    // Registered periodic tasks: both start due at t=0 (a sample of the
    // empty pool, a reclaim pass over it) and re-arm every interval; a
    // non-positive interval disables the schedule entirely.
    sampling_ = PeriodicSchedule(0, config_.memory_sample_interval_us);
    reclaim_ = PeriodicSchedule(0, config_.background_reclaim_interval_us);
}

TimeUs
Simulator::nextArrival()
{
    Invocation inv;
    const bool have = source_->peek(inv);
    assert(have);
    (void)have;
    return inv.arrival_us;
}

void
Simulator::sampleMemory(TimeUs t)
{
    sampling_.catchUp(t, [this](TimeUs due) {
        result_.memory_usage.push_back(MemorySample{due, pool_.usedMb()});
    });
}

void
Simulator::evict(ContainerId id, TimeUs t, bool expired)
{
    Container* c = pool_.get(id);
    assert(c != nullptr);
    assert(c->idle());
    const bool last = pool_.countOf(c->function()) == 1;
    policy_->onEviction(*c, last, t);
    pool_.remove(id);
    if (expired)
        ++result_.expirations;
    else
        ++result_.evictions;
}

void
Simulator::advanceTo(TimeUs t)
{
    sampleMemory(t);
    pool_.releaseFinished(t);

    // Expire leases before performing prewarms: a container released at
    // its expiry must not satisfy the skip-if-already-warm check of a
    // prewarm scheduled for a later instant.
    for (ContainerId id : policy_->expiredContainers(pool_, t))
        evict(id, t, /*expired=*/true);

    // Background reclamation keeps a free-memory reserve so demand
    // evictions stay off the invocation fast path (§6 future work).
    reclaim_.catchUp(t, [this](TimeUs when) {
        const MemMb deficit =
            config_.background_free_target_mb - pool_.freeMb();
        if (deficit <= 0)
            return;
        for (ContainerId id : policy_->selectVictims(pool_, deficit, when)) {
            evict(id, when, /*expired=*/false);
            ++result_.background_reclaims;
        }
    });

    if (config_.enable_prewarm) {
        for (FunctionId fn : policy_->duePrewarms(t)) {
            const FunctionSpec& spec = (*functions_)[fn];
            // Skip speculative prewarms when a warm container already
            // exists or memory is unavailable; prewarming never evicts.
            if (pool_.findIdleWarm(fn) != nullptr)
                continue;
            if (!pool_.fits(spec.mem_mb))
                continue;
            Container& c = pool_.add(spec, t, /*prewarmed=*/true);
            policy_->onPrewarm(c, spec, t);
            ++result_.prewarms;
        }
    } else {
        policy_->duePrewarms(t);  // drain the schedule regardless
    }
}

void
Simulator::step()
{
    if (config_.cancel != nullptr)
        config_.cancel->throwIfCancelled();
    Invocation inv;
    if (!source_->next(inv))
        throw std::logic_error("Simulator::step: past end of stream");
    // Online cursor-contract enforcement — the streaming analogue of the
    // Trace constructor's validate()/isSorted() pre-checks. last_arrival_
    // starts at 0, which also rejects negative arrivals.
    if (inv.function >= functions_->size())
        throw std::runtime_error(
            "Simulator: source function id " +
            std::to_string(inv.function) + " out of range");
    if (inv.arrival_us < last_arrival_)
        throw std::runtime_error("Simulator: source arrivals out of order");
    last_arrival_ = inv.arrival_us;
    const FunctionSpec& spec = (*functions_)[inv.function];
    clock_.advanceTo(inv.arrival_us);
    const TimeUs now_us = clock_.now();
    advanceTo(now_us);

    policy_->onInvocationArrival(spec, now_us);
    FunctionOutcome& outcome = result_.per_function[spec.id];

    if (Container* warm = pool_.findIdleWarm(spec.id)) {
        warm->startInvocation(now_us, now_us + spec.warm_us);
        policy_->onWarmStart(*warm, spec, now_us);
        ++result_.warm_starts;
        ++outcome.warm;
        result_.actual_exec_us += spec.warm_us;
        result_.baseline_exec_us += spec.warm_us;
        return;
    }

    // Cold path: make room if needed.
    if (!pool_.fits(spec.mem_mb)) {
        const MemMb needed = spec.mem_mb - pool_.freeMb();
        ++result_.eviction_rounds;
        const auto victims = policy_->selectVictims(pool_, needed, now_us);
        MemMb freed = 0;
        for (ContainerId id : victims) {
            const Container* c = pool_.get(id);
            assert(c != nullptr && c->idle());
            freed += c->memMb();
        }
        if (pool_.freeMb() + freed < spec.mem_mb) {
            // Even the policy's best effort cannot make room: the pool
            // is dominated by running containers. Drop the request and
            // spare the victims.
            ++result_.dropped;
            ++outcome.dropped;
            return;
        }
        for (ContainerId id : victims)
            evict(id, now_us, /*expired=*/false);
    }

    Container& fresh = pool_.add(spec, now_us);
    fresh.startInvocation(now_us, now_us + spec.cold_us);
    policy_->onColdStart(fresh, spec, now_us);
    ++result_.cold_starts;
    ++outcome.cold;
    result_.actual_exec_us += spec.cold_us;
    result_.baseline_exec_us += spec.warm_us;
}

SimResult
Simulator::run()
{
    while (!done())
        step();
    sampleMemory(clock_.now());
    return result_;
}

void
Simulator::resize(MemMb new_capacity_mb)
{
    if (new_capacity_mb <= 0)
        throw std::invalid_argument("Simulator::resize: capacity must be > 0");
    pool_.setCapacityMb(new_capacity_mb);
    result_.memory_mb = new_capacity_mb;
    if (pool_.usedMb() <= new_capacity_mb)
        return;
    // Cascade deflation: shrink the keep-alive pool first by evicting
    // idle containers; busy containers are allowed to linger over
    // capacity until they finish.
    const MemMb excess = pool_.usedMb() - new_capacity_mb;
    const auto victims = policy_->selectVictims(pool_, excess, clock_.now());
    for (ContainerId id : victims) {
        if (pool_.usedMb() <= new_capacity_mb)
            break;
        evict(id, clock_.now(), /*expired=*/false);
    }
}

SimResult
simulateTrace(const Trace& trace, std::unique_ptr<KeepAlivePolicy> policy,
              const SimulatorConfig& config)
{
    Simulator sim(trace, std::move(policy), config);
    return sim.run();
}

SimResult
simulateSource(InvocationSource& source,
               std::unique_ptr<KeepAlivePolicy> policy,
               const SimulatorConfig& config)
{
    Simulator sim(source, std::move(policy), config);
    return sim.run();
}

}  // namespace faascache

/**
 * @file
 * The deterministic parallel experiment engine.
 *
 * Every figure/table bench replays a grid of independent simulation
 * cells — (trace sample, policy spec, memory_mb) tuples. The SweepRunner
 * fans those cells across a fixed-size thread pool and merges the
 * SimResults back in submission order, so the output of a sweep is
 * byte-identical regardless of the worker count (jobs=1 and jobs=64
 * produce the same bytes).
 *
 * Determinism contract:
 *  - a cell owns everything mutable it touches: the policy is built
 *    inside the worker via the cell's factory, the Simulator is local,
 *    and the result is written only to the cell's own output slot;
 *  - traces are shared read-only (const Trace*) and must outlive run();
 *  - any stochastic behaviour a cell needs must flow through the cell's
 *    `rng_seed`, which callers derive per cell via deriveCellSeed() so
 *    adding, removing, or reordering other cells never perturbs it.
 */
#ifndef FAASCACHE_SIM_SWEEP_RUNNER_H_
#define FAASCACHE_SIM_SWEEP_RUNNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/policy_factory.h"
#include "sim/sim_result.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace faascache {

/** One independent simulation: (trace, policy spec, simulator knobs). */
struct SweepCell
{
    /** Workload to replay (non-owning; must outlive the sweep). */
    const Trace* trace = nullptr;

    /**
     * Builds the cell's policy inside the worker thread. Must be pure
     * (no shared mutable state) so cells stay independent.
     */
    std::function<std::unique_ptr<KeepAlivePolicy>()> make_policy;

    /** Simulator knobs (memory_mb is the grid's memory axis). */
    SimulatorConfig sim;

    /**
     * Per-cell RNG stream seed for stochastic cell extensions. Not read
     * by the (deterministic) simulator itself; carried so stochastic
     * cells have a collision-free stream. Fill via deriveCellSeed().
     */
    std::uint64_t rng_seed = 0;
};

/** Convenience: a cell for one of the paper's named policies. */
SweepCell makeCell(const Trace& trace, PolicyKind kind, MemMb memory_mb,
                   const PolicyConfig& policy_config = {});

/**
 * Derive the seed of cell `cell_key` from the sweep's base seed,
 * SplitMix64-style (util/rng hashMix chain). Distinct keys give
 * statistically independent streams, and a cell's seed depends only on
 * (base, its own key) — never on how many other cells exist. Callers
 * should key cells by stable coordinates (e.g. trace-id × policy-id ×
 * memory index), not by running position in the grid.
 */
std::uint64_t deriveCellSeed(std::uint64_t base_seed, std::uint64_t cell_key);

/** Fans sweep cells across a worker pool; results in submission order. */
class SweepRunner
{
  public:
    /**
     * @param jobs Worker threads; 0 selects hardware_concurrency().
     *             jobs=1 still runs through the pool (one worker) and is
     *             bit-identical to a direct serial loop.
     */
    explicit SweepRunner(std::size_t jobs = 0);
    ~SweepRunner();

    SweepRunner(const SweepRunner&) = delete;
    SweepRunner& operator=(const SweepRunner&) = delete;

    /** Worker count actually in use. */
    std::size_t jobs() const;

    /**
     * Run every cell and return results indexed like `cells`. Each
     * result's policy_name/memory_mb come from the cell's own policy
     * and config, exactly as a serial simulateTrace() loop would
     * produce. Rethrows the first cell failure, if any.
     */
    std::vector<SimResult> run(const std::vector<SweepCell>& cells);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** One-shot convenience: construct a runner, run the cells. */
std::vector<SimResult> runSweep(const std::vector<SweepCell>& cells,
                                std::size_t jobs = 0);

}  // namespace faascache

#endif  // FAASCACHE_SIM_SWEEP_RUNNER_H_

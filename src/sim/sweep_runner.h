/**
 * @file
 * The deterministic, crash-safe parallel experiment engine.
 *
 * Every figure/table bench replays a grid of independent simulation
 * cells — (trace sample, policy spec, memory_mb) tuples. The SweepRunner
 * fans those cells across a fixed-size thread pool and merges the
 * SimResults back in submission order, so the output of a sweep is
 * byte-identical regardless of the worker count (jobs=1 and jobs=64
 * produce the same bytes).
 *
 * Determinism contract:
 *  - a cell owns everything mutable it touches: the policy is built
 *    inside the worker via the cell's factory, the Simulator is local,
 *    and the result is written only to the cell's own output slot;
 *  - traces are shared read-only (const Trace*) and must outlive run();
 *  - any stochastic behaviour a cell needs must flow through the cell's
 *    `rng_seed`, which callers derive per cell via deriveCellSeed() so
 *    adding, removing, or reordering other cells never perturbs it.
 *
 * Crash-safety (this layer's robustness contract, DESIGN.md §4b):
 *  - **Failure isolation** — runReport() resolves every cell to a
 *    CellOutcome (ok | failed | timed_out | skipped) instead of letting
 *    one poisoned cell abort the sweep; run() keeps the historical
 *    strict throw-on-first-failure semantics.
 *  - **Watchdog deadlines** — SweepOptions::deadline_s bounds each
 *    attempt's wall-clock time; a monitor thread cancels stragglers
 *    through the simulator's cooperative CancellationToken.
 *  - **Bounded retry** — failed/timed-out cells are re-run up to
 *    `max_retries` times; each attempt derives a fresh seed from the
 *    cell's own rng_seed (deriveCellSeed(cell.rng_seed, attempt)), so
 *    the attempt stream is deterministic and cell-local.
 *  - **Checkpoint/resume** — with a checkpoint_path, every completed
 *    cell is journaled (sim/sweep_checkpoint.h) as it finishes; a
 *    resumed sweep restores journaled cells, validates the grid
 *    fingerprint, and re-runs only what is missing, producing output
 *    byte-identical to an uninterrupted run.
 *  - **Clean cancellation** — an external token (typically bound to
 *    SIGINT/SIGTERM via ScopedSignalCancellation) stops the sweep:
 *    running cells unwind, pending ones are marked skipped, completed
 *    outcomes (and their journal records) are preserved.
 */
#ifndef FAASCACHE_SIM_SWEEP_RUNNER_H_
#define FAASCACHE_SIM_SWEEP_RUNNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/policy_factory.h"
#include "sim/sim_result.h"
#include "sim/simulator.h"
#include "trace/invocation_source.h"
#include "trace/trace.h"
#include "util/cancellation.h"
#include "util/cell_harness.h"

namespace faascache {

/** One independent simulation: (workload, policy spec, simulator knobs).
 *  The workload is either a materialized `trace` or a streaming
 *  `make_source` factory — exactly one must be set. */
struct SweepCell
{
    /** Workload to replay (non-owning; must outlive the sweep). */
    const Trace* trace = nullptr;

    /**
     * Streaming workload (DESIGN.md §4h), the alternative to `trace`:
     * builds a fresh InvocationSource inside the worker thread for
     * every attempt, so oversized workloads sweep without ever being
     * materialized. Must be pure — each call returns an independent
     * cursor over the same stream (e.g. a fresh FtraceSource over one
     * shared FtraceFile, or a re-seeded generator).
     */
    std::function<std::unique_ptr<InvocationSource>()> make_source;

    /**
     * Workload identity for `make_source` cells, mixed into the sweep
     * grid fingerprint in place of the trace hash. Fill with
     * sourceFingerprint() (one extra streaming pass, identical to
     * traceFingerprint() of the equivalent trace) or any stable hash
     * of the underlying artifact (e.g. the .ftrace header checksum).
     * Left 0, the runner computes sourceFingerprint() itself when a
     * grid fingerprint is needed (checkpointing / runReport).
     */
    std::uint64_t source_fingerprint = 0;

    /**
     * Builds the cell's policy inside the worker thread. Must be pure
     * (no shared mutable state) so cells stay independent.
     */
    std::function<std::unique_ptr<KeepAlivePolicy>()> make_policy;

    /** Simulator knobs (memory_mb is the grid's memory axis). */
    SimulatorConfig sim;

    /**
     * Per-cell RNG stream seed for stochastic cell extensions. Not read
     * by the (deterministic) simulator itself; carried so stochastic
     * cells have a collision-free stream. Fill via deriveCellSeed().
     */
    std::uint64_t rng_seed = 0;

    /**
     * Stable cell identity for checkpointing and error reports. Leave
     * empty to have the runner derive "<trace>/<policy>/<memory>" (with
     * a "#n" suffix when that collides); set it explicitly when the
     * grid varies knobs that derivation cannot see.
     */
    std::string key;
};

/** Convenience: a cell for one of the paper's named policies. */
SweepCell makeCell(const Trace& trace, PolicyKind kind, MemMb memory_mb,
                   const PolicyConfig& policy_config = {});

/** Streaming convenience: a cell replaying `make_source` (see
 *  SweepCell::make_source; factory must be pure). */
SweepCell makeStreamCell(
    std::function<std::unique_ptr<InvocationSource>()> make_source,
    PolicyKind kind, MemMb memory_mb,
    const PolicyConfig& policy_config = {});

/**
 * Derive the seed of cell `cell_key` from the sweep's base seed,
 * SplitMix64-style (util/rng hashMix chain). Distinct keys give
 * statistically independent streams, and a cell's seed depends only on
 * (base, its own key) — never on how many other cells exist. Callers
 * should key cells by stable coordinates (e.g. trace-id × policy-id ×
 * memory index), not by running position in the grid.
 */
std::uint64_t deriveCellSeed(std::uint64_t base_seed, std::uint64_t cell_key);

/**
 * Effective per-cell keys: cell.key where set, otherwise
 * "<trace>/<policy>/<memory_mb MB>", with "#n" appended to later
 * duplicates so every key is unique. Requires validated cells
 * (non-null trace and policy factory).
 */
std::vector<std::string> sweepCellKeys(const std::vector<SweepCell>& cells);

/**
 * Fingerprint of the whole sweep grid: trace contents (names, specs,
 * invocations), effective cell keys, the memory axis and simulator
 * knobs, and rng seeds. Two sweeps share a fingerprint iff they would
 * replay the same cells, which is the safety check behind --resume.
 */
std::uint64_t sweepGridFingerprint(const std::vector<SweepCell>& cells);

/**
 * Fingerprint of one trace's contents (name, function specs,
 * invocation stream). The building block every sweep-grid fingerprint
 * — sim, platform, cluster, elastic — mixes per distinct trace.
 */
std::uint64_t traceFingerprint(const Trace& trace);

/**
 * Streaming twin of traceFingerprint(): hashes name, function specs,
 * and the full invocation stream in one O(1)-memory pass, producing
 * the exact value traceFingerprint() gives for the equivalent
 * materialized trace (so a sweep checkpoint taken against a Trace
 * resumes against the streamed same workload and vice versa). Leaves
 * the source reset to the beginning.
 */
std::uint64_t sourceFingerprint(InvocationSource& source);

/** Crash-safety knobs for SweepRunner::runReport(). */
struct SweepOptions
{
    /** Per-attempt wall-clock deadline, seconds; 0 disables it. */
    double deadline_s = 0.0;

    /** Extra attempts after a failed or timed-out first attempt. */
    int max_retries = 0;

    /**
     * Rethrow the first (submission-order) cell failure after the sweep
     * settles, like the legacy run() API, instead of reporting it.
     */
    bool strict = false;

    /** Journal completed cells here; empty disables checkpointing. */
    std::string checkpoint_path;

    /**
     * Restore completed cells from checkpoint_path before running.
     * The file must exist and carry this grid's fingerprint.
     */
    bool resume = false;

    /** External cancellation (non-owning; may be null). */
    const CancellationToken* cancel = nullptr;
};

/** Everything a harnessed sweep produced. */
struct SweepReport
{
    /** Per-cell outcomes, indexed like the input grid. */
    std::vector<CellOutcome<SimResult>> cells;

    /** False when external cancellation stopped the sweep early. */
    bool completed = true;

    /** Cells restored from the checkpoint instead of re-simulated. */
    std::size_t restored = 0;

    /** The resumed checkpoint had a torn tail (truncated, re-run). */
    bool torn_tail = false;

    std::size_t countWithStatus(CellStatus status) const;
    bool allOk() const;

    /**
     * results()[i] is cells[i].result; usable as a drop-in for the
     * legacy run() return value. @pre allOk().
     */
    std::vector<SimResult> results() const;
};

/** Fans sweep cells across a worker pool; results in submission order. */
class SweepRunner
{
  public:
    /**
     * @param jobs Worker threads; 0 selects hardware_concurrency().
     *             jobs=1 still runs through the pool (one worker) and is
     *             bit-identical to a direct serial loop.
     */
    explicit SweepRunner(std::size_t jobs = 0);
    ~SweepRunner();

    SweepRunner(const SweepRunner&) = delete;
    SweepRunner& operator=(const SweepRunner&) = delete;

    /** Worker count actually in use. */
    std::size_t jobs() const;

    /**
     * Run every cell and return results indexed like `cells`. Each
     * result's policy_name/memory_mb come from the cell's own policy
     * and config, exactly as a serial simulateTrace() loop would
     * produce. Rethrows the first cell failure, if any (strict mode).
     */
    std::vector<SimResult> run(const std::vector<SweepCell>& cells);

    /**
     * Run every cell under the crash-safety harness and return per-cell
     * outcomes indexed like `cells`. Never throws for a cell's own
     * failure unless options.strict is set.
     *
     * @throws std::invalid_argument when a cell is malformed (null
     *         trace or missing policy factory), naming the offending
     *         cell index — malformed grids are caller bugs, detected
     *         up front before any cell runs.
     * @throws std::runtime_error when options.resume is set and the
     *         checkpoint cannot be read or belongs to a different grid.
     */
    SweepReport runReport(const std::vector<SweepCell>& cells,
                          const SweepOptions& options = {});

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** One-shot convenience: construct a runner, run the cells. */
std::vector<SimResult> runSweep(const std::vector<SweepCell>& cells,
                                std::size_t jobs = 0);

/** One-shot convenience for the harnessed flavour. */
SweepReport runSweepReport(const std::vector<SweepCell>& cells,
                           std::size_t jobs = 0,
                           const SweepOptions& options = {});

}  // namespace faascache

#endif  // FAASCACHE_SIM_SWEEP_RUNNER_H_

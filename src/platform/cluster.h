/**
 * @file
 * Cluster-level experiments (paper §9 "Cluster-level analysis"): a
 * front-end load balancer dispatching function invocations to a fleet
 * of invoker servers, each running its own keep-alive policy instance.
 *
 * The paper deliberately evaluates single servers but discusses how
 * load-balancing affects keep-alive: a stateful policy that pins a
 * function to a subset of servers concentrates its temporal locality
 * (better keep-alive), while randomized balancing spreads each
 * function's invocations thin. This module makes that trade-off
 * measurable.
 */
#ifndef FAASCACHE_PLATFORM_CLUSTER_H_
#define FAASCACHE_PLATFORM_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/policy_factory.h"
#include "platform/server.h"
#include "trace/trace.h"

namespace faascache {

/** How the front end picks a server for each invocation. */
enum class LoadBalancing
{
    /** Uniformly random server per invocation (seeded). */
    Random,

    /** Strict rotation across servers per invocation. */
    RoundRobin,

    /** Function-affine: hash the function id to one server, keeping
     *  each function's temporal locality on a single invoker. */
    FunctionHash,
};

/** Cluster parameters. */
struct ClusterConfig
{
    /** Number of identical invoker servers. */
    std::size_t num_servers = 4;

    /** Per-server configuration. */
    ServerConfig server;

    /** Dispatch policy. */
    LoadBalancing balancing = LoadBalancing::FunctionHash;

    /** Seed for randomized balancing. */
    std::uint64_t seed = 1;
};

/** Aggregated cluster outcome. */
struct ClusterResult
{
    /** Per-server results, index = server id. */
    std::vector<PlatformResult> servers;

    std::int64_t warmStarts() const;
    std::int64_t coldStarts() const;
    std::int64_t dropped() const;

    /** Warm starts / served across the cluster, in percent. */
    double warmPercent() const;

    /** Mean user-visible latency across all served invocations, s. */
    double meanLatencySec() const;
};

/**
 * Replay `trace` through a cluster: the balancer splits the invocation
 * stream into per-server sub-traces (all servers see the full function
 * catalog), then every server runs its share under a fresh policy of
 * `kind`.
 */
ClusterResult runCluster(const Trace& trace, PolicyKind kind,
                         const ClusterConfig& config,
                         const PolicyConfig& policy_config = {});

}  // namespace faascache

#endif  // FAASCACHE_PLATFORM_CLUSTER_H_

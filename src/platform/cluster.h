/**
 * @file
 * Cluster-level experiments (paper §9 "Cluster-level analysis"): a
 * front-end load balancer dispatching function invocations to a fleet
 * of invoker servers, each running its own keep-alive policy instance.
 *
 * The paper deliberately evaluates single servers but discusses how
 * load-balancing affects keep-alive: a stateful policy that pins a
 * function to a subset of servers concentrates its temporal locality
 * (better keep-alive), while randomized balancing spreads each
 * function's invocations thin. This module makes that trade-off
 * measurable.
 *
 * Beyond the paper, the front end is health-aware: a ClusterConfig may
 * carry a FaultPlan (fault_injection.h) of crashes and stochastic
 * faults. Under a non-empty plan the cluster runs an interleaved
 * event simulation — tracking per-server health, failing invocations
 * over to healthy servers, re-dispatching the work a crash spills with
 * bounded retries and exponential backoff under a per-request timeout
 * budget, and shedding load when every healthy server's queue crosses
 * a high-water mark. With an empty plan (and no admission control) the
 * original independent-server replay runs unchanged, so the fault
 * machinery costs nothing when disabled.
 */
#ifndef FAASCACHE_PLATFORM_CLUSTER_H_
#define FAASCACHE_PLATFORM_CLUSTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/policy_factory.h"
#include "platform/fault_injection.h"
#include "platform/overload/circuit_breaker.h"
#include "platform/overload/retry_budget.h"
#include "platform/server.h"
#include "trace/trace.h"

namespace faascache {

/** How the front end picks a server for each invocation. */
enum class LoadBalancing
{
    /** Uniformly random server per invocation (seeded). */
    Random,

    /** Strict rotation across servers per invocation. */
    RoundRobin,

    /** Function-affine: hash the function id to one server, keeping
     *  each function's temporal locality on a single invoker. */
    FunctionHash,
};

/** Failure-handling knobs of the health-aware front end. */
struct FailoverConfig
{
    /** Re-dispatch attempts per invocation after its work is lost to a
     *  crash or no server can accept it. */
    int max_retries = 2;

    /** First re-dispatch delay; doubles per attempt (exponential
     *  backoff). */
    TimeUs base_backoff_us = 100 * kMillisecond;

    /** Per-request budget from original arrival; a re-dispatch that
     *  would land beyond it fails the request instead. */
    TimeUs request_timeout_us = 60 * kSecond;

    /**
     * Admission-control high-water mark: when every healthy server's
     * queue is at least this deep, new arrivals are shed instead of
     * buffered (graceful degradation instead of queue collapse).
     * 0 disables admission control. Must not exceed the per-server
     * queue_capacity (a deeper mark could never trigger).
     */
    std::size_t shed_queue_depth = 0;

    /**
     * Jitter fraction on the retry backoff: each re-dispatch delay is
     * stretched by a seeded, per-(request, attempt) uniform amount in
     * [0, backoff * frac]. Decorrelates the retry herd a crash spills —
     * without it every flushed request re-dispatches at the same
     * instant. In [0, 1]; 0 restores the synchronized backoff.
     */
    double backoff_jitter_frac = 0.5;

    /** Per-server retry token bucket (ratio 0 = unlimited retries). */
    RetryBudgetConfig retry_budget;

    /** Per-server circuit breaker (threshold 0 = disabled). */
    CircuitBreakerConfig breaker;

    /** Check invariants. @throws std::invalid_argument. */
    void validate() const;
};

/** Cluster parameters. */
struct ClusterConfig
{
    /** Number of identical invoker servers. */
    std::size_t num_servers = 4;

    /** Per-server configuration. */
    ServerConfig server;

    /** Dispatch policy. */
    LoadBalancing balancing = LoadBalancing::FunctionHash;

    /** Seed for randomized balancing. */
    std::uint64_t seed = 1;

    /** Injected faults; an empty plan (the default) disables the
     *  fault-aware path entirely. */
    FaultPlan faults;

    /** Failure handling (only consulted on the fault-aware path). */
    FailoverConfig failover;

    /**
     * Worker-thread shards the invoker fleet is partitioned into
     * (DESIGN.md §4i). 0 (the default) keeps the single-threaded
     * legacy paths, byte-for-byte. Any N >= 1 runs the sharded engine:
     * contiguous server ranges per shard, conservative time-windowed
     * synchronization with the lookahead horizon set to
     * failover.base_backoff_us, and a deterministic merge — results
     * are byte-identical for every N >= 1 (including N = 1 and
     * N > num_servers), but the windowed machinery quantizes
     * cross-shard forwarding to window boundaries, so fault/overload
     * runs with N >= 1 are a deliberately distinct (still fully
     * deterministic) semantic from the legacy N = 0 event interleave.
     * Fault-free runs match N = 0 exactly. The Reference backend
     * ignores the knob and stays the single-threaded oracle.
     */
    std::size_t shards = 0;

    /** Check invariants of the whole tree (servers, faults,
     *  failover). @throws std::invalid_argument. */
    void validate() const;
};

/** Aggregated cluster outcome. */
struct ClusterResult
{
    /** Per-server results, index = server id. */
    std::vector<PlatformResult> servers;

    /**
     * @name Front-end robustness accounting
     * All zero on the fault-free path.
     * @{
     */

    /** Re-dispatch attempts scheduled after crashes or full outages. */
    std::int64_t retries = 0;

    /** Invocations served by a server other than the balancer's
     *  primary choice (health-aware re-routing). */
    std::int64_t failovers = 0;

    /** Arrivals shed by admission control (every healthy server over
     *  the high-water mark). */
    std::int64_t shed_requests = 0;

    /** Invocations abandoned after exhausting the retry attempts or
     *  the per-request timeout. */
    std::int64_t failed_requests = 0;

    /** Retries abandoned because the provoking server's retry token
     *  bucket was empty (also counted in failed_requests). */
    std::int64_t retry_budget_exhausted = 0;

    /** Dispatch probes skipped because a network partition made the
     *  server unreachable from the front end. */
    std::int64_t partition_unreachable = 0;

    /** Circuit-breaker transitions across the fleet. */
    std::int64_t breaker_opens = 0;
    std::int64_t breaker_closes = 0;
    std::int64_t breaker_probes = 0;
    /** @} */

    std::int64_t warmStarts() const;
    std::int64_t coldStarts() const;
    std::int64_t dropped() const;

    /** Fleet-wide fault accounting summed over servers. */
    RobustnessCounters robustness() const;

    /** Fleet-wide overload accounting summed over servers. */
    OverloadCounters overload() const;

    /** Total server downtime across the fleet. */
    TimeUs unavailabilityUs() const { return robustness().downtime_us; }

    /** Warm starts / served across the cluster, in percent. */
    double warmPercent() const;

    /** Mean user-visible latency across all served invocations, s. */
    double meanLatencySec() const;
};

/**
 * Replay `trace` through a cluster. With an empty fault plan and no
 * admission control, the balancer splits the invocation stream into
 * per-server sub-traces (all servers see the full function catalog)
 * and every server runs its share under a fresh policy of `kind` —
 * byte-identical to the pre-fault-injection behaviour. Otherwise the
 * interleaved health-aware simulation described in the file comment
 * runs; every invocation then ends in exactly one of: served on some
 * server, dropped by a server, shed by admission control, or failed
 * after retries.
 */
ClusterResult runCluster(const Trace& trace, PolicyKind kind,
                         const ClusterConfig& config,
                         const PolicyConfig& policy_config = {});

/**
 * Streaming overload (DESIGN.md §4h): replay an arbitrary invocation
 * stream through the cluster. With the Dense backend nothing is ever
 * materialized — the fault-free path runs each server over a
 * balancer-filter view of the stream (one pass per server, replaying
 * the balancer's draws identically per pass), and the health-aware
 * path merges the arrival cursor against the front-end heap exactly
 * like Server::run(InvocationSource&). Peak memory stays
 * O(catalog + pending work), except Random balancing, which records
 * one 4-byte draw per arrival so crash fallout can recall a request's
 * primary server. The Reference backend materializes the source and
 * delegates to the trace overload. Byte-identical to runCluster(Trace)
 * over the equivalent trace.
 */
ClusterResult runCluster(InvocationSource& source, PolicyKind kind,
                         const ClusterConfig& config,
                         const PolicyConfig& policy_config = {});

/**
 * Factory producing a fresh, independent cursor over the same
 * invocation stream. Every cursor must yield the identical sequence
 * (same catalog object contents, same arrivals); the sharded engine
 * hands one to each worker thread so shards never contend on a shared
 * cursor position. FtraceRegion::makeCursor() and the generated-source
 * builders are the canonical factories.
 */
using SourceFactory =
    std::function<std::unique_ptr<InvocationSource>()>;

/**
 * A workload the sharded cluster can fan out. `make_full` is required.
 * `make_server_stream`, when set, produces the exact sub-stream the
 * balancer would route to one server (global function ids, full
 * catalog) — the sharded fault-free split then skips the per-server
 * filter passes over the full stream. Only valid for
 * LoadBalancing::FunctionHash, the one balancer whose routing is a
 * pure per-function property; it is ignored (with the filter fallback)
 * for the index- and draw-based balancers.
 */
struct ShardedWorkload
{
    SourceFactory make_full;
    std::function<std::unique_ptr<InvocationSource>(std::size_t server)>
        make_server_stream;
};

/**
 * Sharded overload: replay a re-openable stream through the cluster
 * with config.shards worker threads (config.shards == 0 is promoted to
 * 1). Results are byte-identical for every shard count; see
 * ClusterConfig::shards for the semantic relationship to the legacy
 * single-threaded paths. Peak memory is O(catalog + pending work) per
 * shard — the sharded engine never records balancer draws, even under
 * Random balancing.
 */
ClusterResult runCluster(const ShardedWorkload& workload, PolicyKind kind,
                         const ClusterConfig& config,
                         const PolicyConfig& policy_config = {});

}  // namespace faascache

#endif  // FAASCACHE_PLATFORM_CLUSTER_H_

#include "platform/event_queue.h"

#include <cassert>

namespace faascache {

void
EventQueue::push(TimeUs time_us, EventKind kind, std::uint64_t payload)
{
    heap_.push(Event{time_us, next_seq_++, kind, payload});
}

Event
EventQueue::pop()
{
    assert(!heap_.empty());
    Event e = heap_.top();
    heap_.pop();
    return e;
}

}  // namespace faascache

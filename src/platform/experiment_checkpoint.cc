#include "platform/experiment_checkpoint.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "sim/sweep_runner.h"
#include "util/checkpoint_journal.h"

namespace faascache {

namespace {

/** Bounds vector counts read from a payload (corruption guard). */
constexpr std::int64_t kMaxCount = 100'000'000;

/** Token-stream reader shared by the decode paths. */
struct TokenReader
{
    std::istringstream in;

    explicit TokenReader(const std::string& payload) : in(payload) {}

    bool next(std::string* out) { return static_cast<bool>(in >> *out); }

    bool nextString(std::string* out)
    {
        std::string escaped;
        return next(&escaped) && unescapeJournalToken(escaped, out);
    }

    bool nextI64(std::int64_t* out)
    {
        std::string t;
        return next(&t) && parseI64Token(t, out);
    }

    bool nextDouble(double* out)
    {
        std::string t;
        return next(&t) && parseDoubleToken(t, out);
    }

    bool nextInt(int* out)
    {
        std::int64_t wide = 0;
        if (!nextI64(&wide))
            return false;
        *out = static_cast<int>(wide);
        return true;
    }

    bool nextSize(std::size_t* out)
    {
        std::int64_t wide = 0;
        if (!nextI64(&wide) || wide < 0)
            return false;
        *out = static_cast<std::size_t>(wide);
        return true;
    }

    bool nextBool(bool* out)
    {
        std::int64_t wide = 0;
        if (!nextI64(&wide) || (wide != 0 && wide != 1))
            return false;
        *out = wide == 1;
        return true;
    }

    bool nextCount(std::size_t* out)
    {
        std::int64_t wide = 0;
        if (!nextI64(&wide) || wide < 0 || wide > kMaxCount)
            return false;
        *out = static_cast<std::size_t>(wide);
        return true;
    }

    bool atEnd()
    {
        std::string t;
        return !(in >> t);
    }
};

void
encodeServerConfigFields(std::ostringstream& out, const ServerConfig& c)
{
    out << c.cores << ' ' << hexDoubleToken(c.memory_mb) << ' '
        << c.queue_capacity << ' ' << c.queue_timeout_us << ' '
        << c.maintenance_interval_us << ' ' << (c.enable_prewarm ? 1 : 0)
        << ' ' << c.cold_start_cpu_slots << ' '
        << (c.overload.admission.enabled ? 1 : 0) << ' '
        << c.overload.admission.target_delay_us << ' '
        << c.overload.admission.interval_us << ' '
        << (c.overload.brownout.enabled ? 1 : 0) << ' '
        << c.overload.brownout.min_duration_us << ' '
        << (c.overload.brownout.on_admission_violation ? 1 : 0) << ' '
        << (c.overload.brownout.on_memory_pressure ? 1 : 0);
}

bool
decodeServerConfigFields(TokenReader& in, ServerConfig* c)
{
    return in.nextInt(&c->cores) && in.nextDouble(&c->memory_mb) &&
        in.nextSize(&c->queue_capacity) &&
        in.nextI64(&c->queue_timeout_us) &&
        in.nextI64(&c->maintenance_interval_us) &&
        in.nextBool(&c->enable_prewarm) &&
        in.nextInt(&c->cold_start_cpu_slots) &&
        in.nextBool(&c->overload.admission.enabled) &&
        in.nextI64(&c->overload.admission.target_delay_us) &&
        in.nextI64(&c->overload.admission.interval_us) &&
        in.nextBool(&c->overload.brownout.enabled) &&
        in.nextI64(&c->overload.brownout.min_duration_us) &&
        in.nextBool(&c->overload.brownout.on_admission_violation) &&
        in.nextBool(&c->overload.brownout.on_memory_pressure);
}

void
encodeRobustnessFields(std::ostringstream& out,
                       const RobustnessCounters& r)
{
    out << r.spawn_failures << ' ' << r.straggler_cold_starts << ' '
        << r.reclaim_stalls << ' ' << r.crashes << ' ' << r.restarts << ' '
        << r.crash_aborted << ' ' << r.crash_flushed_containers << ' '
        << r.dropped_unavailable << ' ' << r.redispatch_cold_starts << ' '
        << r.oom_kills << ' ' << r.downtime_us;
}

bool
decodeRobustnessFields(TokenReader& in, RobustnessCounters* r)
{
    return in.nextI64(&r->spawn_failures) &&
        in.nextI64(&r->straggler_cold_starts) &&
        in.nextI64(&r->reclaim_stalls) && in.nextI64(&r->crashes) &&
        in.nextI64(&r->restarts) && in.nextI64(&r->crash_aborted) &&
        in.nextI64(&r->crash_flushed_containers) &&
        in.nextI64(&r->dropped_unavailable) &&
        in.nextI64(&r->redispatch_cold_starts) &&
        in.nextI64(&r->oom_kills) && in.nextI64(&r->downtime_us);
}

void
encodeOverloadFields(std::ostringstream& out, const OverloadCounters& o)
{
    out << o.admission_shed << ' ' << o.admission_violations << ' '
        << o.brownout_denied_cold << ' ' << o.brownout_windows << ' '
        << o.brownout_us;
}

bool
decodeOverloadFields(TokenReader& in, OverloadCounters* o)
{
    return in.nextI64(&o->admission_shed) &&
        in.nextI64(&o->admission_violations) &&
        in.nextI64(&o->brownout_denied_cold) &&
        in.nextI64(&o->brownout_windows) && in.nextI64(&o->brownout_us);
}

void
encodePlatformFields(std::ostringstream& out, const PlatformResult& r)
{
    out << escapeJournalToken(r.policy_name) << ' ';
    encodeServerConfigFields(out, r.config);
    out << ' ' << r.warm_starts << ' ' << r.cold_starts << ' '
        << r.dropped_queue_full << ' ' << r.dropped_timeout << ' '
        << r.dropped_oversize << ' ' << r.evictions << ' '
        << r.expirations << ' ' << r.prewarms << ' ';
    encodeRobustnessFields(out, r.robustness);
    out << ' ';
    encodeOverloadFields(out, r.overload);
    out << ' ' << r.last_congested_us;
    out << ' ' << r.per_function.size();
    for (const FunctionOutcome& f : r.per_function)
        out << ' ' << f.warm << ' ' << f.cold << ' ' << f.dropped;
    out << ' ' << r.latencies_sec.size();
    for (double latency : r.latencies_sec)
        out << ' ' << hexDoubleToken(latency);
    out << ' ' << r.latency_sum_sec.size();
    for (double sum : r.latency_sum_sec)
        out << ' ' << hexDoubleToken(sum);
}

bool
decodePlatformFields(TokenReader& in, PlatformResult* result)
{
    PlatformResult r;
    if (!in.nextString(&r.policy_name))
        return false;
    if (!decodeServerConfigFields(in, &r.config))
        return false;
    if (!in.nextI64(&r.warm_starts) || !in.nextI64(&r.cold_starts) ||
        !in.nextI64(&r.dropped_queue_full) ||
        !in.nextI64(&r.dropped_timeout) ||
        !in.nextI64(&r.dropped_oversize) || !in.nextI64(&r.evictions) ||
        !in.nextI64(&r.expirations) || !in.nextI64(&r.prewarms))
        return false;
    if (!decodeRobustnessFields(in, &r.robustness))
        return false;
    if (!decodeOverloadFields(in, &r.overload) ||
        !in.nextI64(&r.last_congested_us))
        return false;

    std::size_t count = 0;
    if (!in.nextCount(&count))
        return false;
    r.per_function.resize(count);
    for (FunctionOutcome& f : r.per_function) {
        if (!in.nextI64(&f.warm) || !in.nextI64(&f.cold) ||
            !in.nextI64(&f.dropped))
            return false;
    }
    if (!in.nextCount(&count))
        return false;
    r.latencies_sec.resize(count);
    for (double& latency : r.latencies_sec) {
        if (!in.nextDouble(&latency))
            return false;
    }
    if (!in.nextCount(&count))
        return false;
    r.latency_sum_sec.resize(count);
    for (double& sum : r.latency_sum_sec) {
        if (!in.nextDouble(&sum))
            return false;
    }
    *result = std::move(r);
    return true;
}

void
hashHexDouble(std::ostringstream& out, double value)
{
    out << hexDoubleToken(value) << ';';
}

void
hashServerConfig(std::ostringstream& out, const ServerConfig& c)
{
    out << c.cores << ';';
    hashHexDouble(out, c.memory_mb);
    out << c.queue_capacity << ';' << c.queue_timeout_us << ';'
        << c.maintenance_interval_us << ';' << (c.enable_prewarm ? 1 : 0)
        << ';' << c.cold_start_cpu_slots << ';'
        << poolBackendName(c.pool_backend) << ';'
        << platformBackendName(c.platform_backend) << ';'
        << (c.overload.admission.enabled ? 1 : 0) << ';'
        << c.overload.admission.target_delay_us << ';'
        << c.overload.admission.interval_us << ';'
        << (c.overload.brownout.enabled ? 1 : 0) << ';'
        << c.overload.brownout.min_duration_us << ';'
        << (c.overload.brownout.on_admission_violation ? 1 : 0) << ';'
        << (c.overload.brownout.on_memory_pressure ? 1 : 0) << ';';
}

void
hashTrace(std::ostringstream& out,
          std::unordered_map<const Trace*, std::uint64_t>& cache,
          const Trace* trace)
{
    auto it = cache.find(trace);
    if (it == cache.end())
        it = cache.emplace(trace, traceFingerprint(*trace)).first;
    char hash[24];
    std::snprintf(hash, sizeof hash, "%016" PRIx64, it->second);
    out << hash << ';';
}

}  // namespace

std::string
encodePlatformCheckpointPayload(const std::string& key,
                                const PlatformResult& result)
{
    std::ostringstream out;
    out << escapeJournalToken(key) << ' ';
    encodePlatformFields(out, result);
    return out.str();
}

bool
decodePlatformCheckpointPayload(const std::string& payload,
                                std::string* key, PlatformResult* result)
{
    TokenReader in(payload);
    if (!in.nextString(key))
        return false;
    PlatformResult r;
    if (!decodePlatformFields(in, &r) || !in.atEnd())
        return false;
    *result = std::move(r);
    return true;
}

std::string
encodeClusterCheckpointPayload(const std::string& key,
                               const ClusterResult& result)
{
    std::ostringstream out;
    out << escapeJournalToken(key) << ' ' << result.retries << ' '
        << result.failovers << ' ' << result.shed_requests << ' '
        << result.failed_requests << ' '
        << result.retry_budget_exhausted << ' '
        << result.partition_unreachable << ' ' << result.breaker_opens
        << ' ' << result.breaker_closes << ' ' << result.breaker_probes
        << ' ' << result.servers.size();
    for (const PlatformResult& server : result.servers) {
        out << ' ';
        encodePlatformFields(out, server);
    }
    return out.str();
}

bool
decodeClusterCheckpointPayload(const std::string& payload,
                               std::string* key, ClusterResult* result)
{
    TokenReader in(payload);
    if (!in.nextString(key))
        return false;
    ClusterResult r;
    if (!in.nextI64(&r.retries) || !in.nextI64(&r.failovers) ||
        !in.nextI64(&r.shed_requests) || !in.nextI64(&r.failed_requests) ||
        !in.nextI64(&r.retry_budget_exhausted) ||
        !in.nextI64(&r.partition_unreachable) ||
        !in.nextI64(&r.breaker_opens) || !in.nextI64(&r.breaker_closes) ||
        !in.nextI64(&r.breaker_probes))
        return false;
    std::size_t count = 0;
    if (!in.nextCount(&count))
        return false;
    r.servers.resize(count);
    for (PlatformResult& server : r.servers) {
        if (!decodePlatformFields(in, &server))
            return false;
    }
    if (!in.atEnd())
        return false;
    *result = std::move(r);
    return true;
}

std::uint64_t
platformSweepFingerprint(const std::vector<PlatformCell>& cells)
{
    // Mirrors sweepGridFingerprint()'s depth: trace contents, keys, and
    // the knobs the runner itself consumes. Policy tunables beyond the
    // kind are compiled into the bench, like the sim grid's policy
    // factories.
    const std::vector<std::string> keys = platformCellKeys(cells);
    std::unordered_map<const Trace*, std::uint64_t> trace_hashes;
    std::ostringstream out;
    // v5: lockstep bump with the cluster grid (sharded execution), so a
    // mixed-grid journal from either era is rejected as a whole.
    out << "faascache-platform-grid-v5;" << cells.size() << ';';
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const PlatformCell& cell = cells[i];
        out << keys[i] << ';';
        hashTrace(out, trace_hashes, cell.trace);
        out << policyKindName(cell.kind) << ';';
        hashServerConfig(out, cell.server);
    }
    return fnv1a64(out.str());
}

std::uint64_t
clusterSweepFingerprint(const std::vector<ClusterCell>& cells)
{
    const std::vector<std::string> keys = clusterCellKeys(cells);
    std::unordered_map<const Trace*, std::uint64_t> trace_hashes;
    std::ostringstream out;
    // v5: cells gained the shards knob (sharded windowed execution is a
    // distinct deterministic semantic from the legacy interleave when
    // front-end machinery is armed, so it must key resumes).
    out << "faascache-cluster-grid-v5;" << cells.size() << ';';
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const ClusterCell& cell = cells[i];
        const ClusterConfig& config = cell.config;
        out << keys[i] << ';';
        hashTrace(out, trace_hashes, cell.trace);
        out << policyKindName(cell.kind) << ';' << config.num_servers
            << ';' << static_cast<int>(config.balancing) << ';'
            << config.seed << ';' << config.shards << ';';
        hashServerConfig(out, config.server);
        out << config.failover.max_retries << ';'
            << config.failover.base_backoff_us << ';'
            << config.failover.request_timeout_us << ';'
            << config.failover.shed_queue_depth << ';';
        hashHexDouble(out, config.failover.backoff_jitter_frac);
        hashHexDouble(out, config.failover.retry_budget.ratio);
        hashHexDouble(out, config.failover.retry_budget.burst);
        out << config.failover.breaker.failure_threshold << ';'
            << config.failover.breaker.open_duration_us << ';';
        const FaultPlan& faults = config.faults;
        out << faults.crashes.size() << ';';
        for (const CrashEvent& crash : faults.crashes)
            out << crash.server << ',' << crash.at_us << ','
                << crash.restart_after_us << ';';
        out << faults.crash_bursts.size() << ';';
        for (const CrashBurst& burst : faults.crash_bursts)
            out << burst.at_us << ',' << burst.window_us << ','
                << burst.servers << ',' << burst.restart_after_us << ','
                << burst.seed << ';';
        out << faults.partitions.size() << ';';
        for (const PartitionWindow& p : faults.partitions)
            out << p.server << ',' << p.from_us << ',' << p.until_us
                << ';';
        out << faults.oom_kills.size() << ';';
        for (const OomKillEvent& o : faults.oom_kills)
            out << o.server << ',' << o.at_us << ';';
        hashHexDouble(out, faults.spawn_failure_prob);
        out << faults.spawn_retry_delay_us << ';';
        hashHexDouble(out, faults.straggler_prob);
        hashHexDouble(out, faults.straggler_multiplier);
        hashHexDouble(out, faults.reclaim_stall_prob);
        out << faults.reclaim_stall_us << ';' << faults.seed << ';';
    }
    return fnv1a64(out.str());
}

}  // namespace faascache

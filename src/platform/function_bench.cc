#include "platform/function_bench.h"

#include <cassert>

namespace faascache {

namespace {

FunctionSpec
tableRow(FunctionId id, const char* name, MemMb mem_mb, double run_sec,
         double init_sec)
{
    // Table 1 reports the total (cold) running time and the init time;
    // the warm time is their difference, computed in integer microseconds
    // to avoid floating-point dust (6.5 - 4.5 != 2.0 in binary).
    FunctionSpec spec;
    spec.id = id;
    spec.name = name;
    spec.mem_mb = mem_mb;
    spec.cold_us = fromSeconds(run_sec);
    spec.warm_us = spec.cold_us - fromSeconds(init_sec);
    assert(spec.valid());
    return spec;
}

}  // namespace

const std::vector<FunctionSpec>&
functionBenchCatalog()
{
    static const std::vector<FunctionSpec> kCatalog = {
        tableRow(0, "ml-inference-cnn", 512, 6.5, 4.5),
        tableRow(1, "video-encoding", 500, 56.0, 3.0),
        tableRow(2, "matrix-multiply", 256, 2.5, 2.2),
        tableRow(3, "disk-bench-dd", 256, 2.2, 1.8),
        tableRow(4, "web-serving", 64, 2.4, 2.0),
        tableRow(5, "floating-point", 128, 2.0, 1.7),
    };
    return kCatalog;
}

const FunctionSpec&
functionBenchSpec(FunctionBenchApp app)
{
    return functionBenchCatalog().at(static_cast<std::size_t>(app));
}

std::vector<FunctionSpec>
functionBenchSubset(const std::vector<FunctionBenchApp>& apps)
{
    std::vector<FunctionSpec> out;
    out.reserve(apps.size());
    for (std::size_t i = 0; i < apps.size(); ++i) {
        FunctionSpec spec = functionBenchSpec(apps[i]);
        spec.id = static_cast<FunctionId>(i);
        out.push_back(std::move(spec));
    }
    return out;
}

}  // namespace faascache

#include "platform/server.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace faascache {

double
PlatformResult::coldStartPercent() const
{
    const std::int64_t n = served();
    return n > 0 ? 100.0 * static_cast<double>(cold_starts) /
                   static_cast<double>(n)
                 : 0.0;
}

double
PlatformResult::dropPercent() const
{
    const std::int64_t n = total();
    return n > 0 ? 100.0 * static_cast<double>(dropped()) /
                   static_cast<double>(n)
                 : 0.0;
}

double
PlatformResult::meanLatencySec() const
{
    if (latencies_sec.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : latencies_sec)
        sum += v;
    return sum / static_cast<double>(latencies_sec.size());
}

double
PlatformResult::meanLatencySecOf(FunctionId function) const
{
    const auto& outcome = per_function.at(function);
    const std::int64_t n = outcome.served();
    if (n == 0)
        return 0.0;
    return latency_sum_sec.at(function) / static_cast<double>(n);
}

Server::Server(std::unique_ptr<KeepAlivePolicy> policy, ServerConfig config)
    : policy_(std::move(policy)), config_(config), pool_(config.memory_mb)
{
    if (!policy_)
        throw std::invalid_argument("Server: null policy");
    if (config_.cores <= 0)
        throw std::invalid_argument("Server: cores must be > 0");
}

void
Server::evict(ContainerId id, TimeUs now, bool expired)
{
    Container* c = pool_.get(id);
    assert(c != nullptr && c->idle());
    const bool last = pool_.countOf(c->function()) == 1;
    policy_->onEviction(*c, last, now);
    pool_.remove(id);
    if (expired)
        ++result_.expirations;
    else
        ++result_.evictions;
}

bool
Server::tryDispatch(std::size_t invocation_index, TimeUs arrival_us,
                    TimeUs now)
{
    if (running_ >= config_.cores)
        return false;

    const Invocation& inv = trace_->invocations()[invocation_index];
    const FunctionSpec& spec = trace_->function(inv.function);
    FunctionOutcome& outcome = result_.per_function[spec.id];

    if (Container* warm = pool_.findIdleWarm(spec.id)) {
        warm->startInvocation(now, now + spec.warm_us);
        policy_->onWarmStart(*warm, spec, now);
        ++running_;
        ++result_.warm_starts;
        ++outcome.warm;
        inflight_arrival_[warm->id()] = arrival_us;
        events_.push(warm->busyUntil(), EventKind::Finish, warm->id());
        return true;
    }

    // Cold path: initialization burns extra platform CPU.
    const int cold_slots = std::max(1, config_.cold_start_cpu_slots);
    if (running_ + cold_slots > config_.cores)
        return false;

    if (!pool_.fits(spec.mem_mb)) {
        const MemMb needed = spec.mem_mb - pool_.freeMb();
        const auto victims = policy_->selectVictims(pool_, needed, now);
        MemMb freed = 0;
        for (ContainerId id : victims)
            freed += pool_.get(id)->memMb();
        if (pool_.freeMb() + freed < spec.mem_mb)
            return false;  // busy containers hold the memory: wait
        for (ContainerId id : victims)
            evict(id, now, /*expired=*/false);
    }

    Container& fresh = pool_.add(spec, now);
    fresh.startInvocation(now, now + spec.cold_us);
    policy_->onColdStart(fresh, spec, now);
    running_ += cold_slots;
    ++result_.cold_starts;
    ++outcome.cold;
    inflight_arrival_[fresh.id()] = arrival_us;
    if (cold_slots > 1) {
        events_.push(now + spec.initTime(), EventKind::InitDone,
                     fresh.id());
    }
    events_.push(fresh.busyUntil(), EventKind::Finish, fresh.id());
    return true;
}

void
Server::drainQueue(TimeUs now)
{
    // Scan in arrival order but skip entries that cannot start yet:
    // OpenWhisk schedules per activation, so a large function waiting
    // for memory does not block small warm functions behind it. Once a
    // core is unavailable nothing can start, so stop scanning.
    std::deque<PendingRequest> still_waiting;
    while (!queue_.empty()) {
        const PendingRequest head = queue_.front();
        queue_.pop_front();
        if (now - head.enqueued_us > config_.queue_timeout_us) {
            const FunctionId fn =
                trace_->invocations()[head.invocation_index].function;
            ++result_.dropped_timeout;
            ++result_.per_function[fn].dropped;
            continue;
        }
        if (running_ >= config_.cores) {
            still_waiting.push_back(head);
            break;
        }
        if (!tryDispatch(head.invocation_index, head.enqueued_us, now))
            still_waiting.push_back(head);
    }
    // Preserve arrival order of everything not dispatched.
    while (!queue_.empty()) {
        still_waiting.push_back(queue_.front());
        queue_.pop_front();
    }
    queue_ = std::move(still_waiting);
}

void
Server::maintenance(TimeUs now)
{
    // Expire first so a lease ending now cannot block a prewarm via the
    // skip-if-already-warm check.
    for (ContainerId id : policy_->expiredContainers(pool_, now))
        evict(id, now, /*expired=*/true);
    if (config_.enable_prewarm) {
        for (FunctionId fn : policy_->duePrewarms(now)) {
            const FunctionSpec& spec = trace_->function(fn);
            if (pool_.findIdleWarm(fn) != nullptr)
                continue;
            if (!pool_.fits(spec.mem_mb))
                continue;
            Container& c = pool_.add(spec, now, /*prewarmed=*/true);
            policy_->onPrewarm(c, spec, now);
            ++result_.prewarms;
        }
    } else {
        policy_->duePrewarms(now);
    }
    drainQueue(now);
}

PlatformResult
Server::run(const Trace& trace)
{
    if (!trace.validate() || !trace.isSorted())
        throw std::invalid_argument("Server::run: invalid trace");
    trace_ = &trace;
    result_ = PlatformResult{};
    result_.policy_name = policy_->name();
    result_.config = config_;
    result_.per_function.resize(trace.functions().size());
    result_.latency_sum_sec.resize(trace.functions().size(), 0.0);

    for (std::size_t i = 0; i < trace.invocations().size(); ++i) {
        events_.push(trace.invocations()[i].arrival_us, EventKind::Arrival,
                     i);
    }
    if (!trace.invocations().empty()) {
        const TimeUs horizon = trace.invocations().back().arrival_us +
            config_.queue_timeout_us;
        for (TimeUs t = 0; t <= horizon;
             t += config_.maintenance_interval_us) {
            events_.push(t, EventKind::Maintenance);
        }
    }

    while (!events_.empty()) {
        const Event event = events_.pop();
        const TimeUs now = event.time_us;
        switch (event.kind) {
          case EventKind::Arrival: {
            const std::size_t index = event.payload;
            const Invocation& inv = trace.invocations()[index];
            const FunctionSpec& spec = trace.function(inv.function);
            policy_->onInvocationArrival(spec, now);
            if (spec.mem_mb > pool_.capacityMb()) {
                ++result_.dropped_oversize;
                ++result_.per_function[spec.id].dropped;
                break;
            }
            // Preserve FIFO ordering: join the queue and drain.
            if (queue_.size() >= config_.queue_capacity) {
                ++result_.dropped_queue_full;
                ++result_.per_function[spec.id].dropped;
                break;
            }
            queue_.push_back(PendingRequest{index, now});
            drainQueue(now);
            break;
          }
          case EventKind::Finish: {
            const auto id = static_cast<ContainerId>(event.payload);
            Container* c = pool_.get(id);
            assert(c != nullptr && c->busy());
            c->finishInvocation();
            --running_;
            auto it = inflight_arrival_.find(id);
            assert(it != inflight_arrival_.end());
            const double latency_sec = toSeconds(now - it->second);
            result_.latencies_sec.push_back(latency_sec);
            result_.latency_sum_sec[c->function()] += latency_sec;
            inflight_arrival_.erase(it);
            drainQueue(now);
            break;
          }
          case EventKind::InitDone:
            // The init phase's extra CPU slots are released; the
            // function itself keeps executing on one core.
            running_ -= std::max(1, config_.cold_start_cpu_slots) - 1;
            drainQueue(now);
            break;
          case EventKind::Maintenance:
            maintenance(now);
            break;
        }
    }

    // Anything still buffered can never be served (no more events).
    for (const PendingRequest& pending : queue_) {
        const FunctionId fn =
            trace.invocations()[pending.invocation_index].function;
        ++result_.dropped_timeout;
        ++result_.per_function[fn].dropped;
    }
    queue_.clear();
    trace_ = nullptr;
    return result_;
}

}  // namespace faascache

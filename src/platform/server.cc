#include "platform/server.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <string>

namespace faascache {

const char*
platformBackendName(PlatformBackend backend)
{
    switch (backend) {
      case PlatformBackend::Dense:
        return "dense";
      case PlatformBackend::Reference:
        return "reference";
    }
    return "unknown";
}

void
ServerConfig::validate() const
{
    if (cores <= 0) {
        throw std::invalid_argument("ServerConfig: cores must be > 0, got " +
                                    std::to_string(cores));
    }
    if (!(memory_mb > 0)) {
        throw std::invalid_argument(
            "ServerConfig: memory_mb must be > 0, got " +
            std::to_string(memory_mb));
    }
    if (queue_capacity == 0) {
        throw std::invalid_argument(
            "ServerConfig: queue_capacity must be > 0 (a zero-length "
            "buffer would drop every request)");
    }
    if (queue_timeout_us <= 0) {
        throw std::invalid_argument(
            "ServerConfig: queue_timeout_us must be > 0, got " +
            std::to_string(queue_timeout_us));
    }
    if (maintenance_interval_us <= 0) {
        throw std::invalid_argument(
            "ServerConfig: maintenance_interval_us must be > 0, got " +
            std::to_string(maintenance_interval_us));
    }
    if (cold_start_cpu_slots < 1 || cold_start_cpu_slots > cores) {
        throw std::invalid_argument(
            "ServerConfig: cold_start_cpu_slots must be in [1, cores], "
            "got " +
            std::to_string(cold_start_cpu_slots) + " with " +
            std::to_string(cores) + " cores");
    }
    overload.validate();
}

double
PlatformResult::coldStartPercent() const
{
    const std::int64_t n = served();
    return n > 0 ? 100.0 * static_cast<double>(cold_starts) /
                   static_cast<double>(n)
                 : 0.0;
}

double
PlatformResult::dropPercent() const
{
    const std::int64_t n = total();
    return n > 0 ? 100.0 * static_cast<double>(dropped()) /
                   static_cast<double>(n)
                 : 0.0;
}

double
PlatformResult::meanLatencySec() const
{
    if (latencies_sec.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : latencies_sec)
        sum += v;
    return sum / static_cast<double>(latencies_sec.size());
}

double
PlatformResult::meanLatencySecOf(FunctionId function) const
{
    const auto& outcome = per_function.at(function);
    const std::int64_t n = outcome.served();
    if (n == 0)
        return 0.0;
    return latency_sum_sec.at(function) / static_cast<double>(n);
}

Server::Server(std::unique_ptr<KeepAlivePolicy> policy, ServerConfig config)
    : policy_(std::move(policy)), config_(config),
      // Validate before the pool captures the capacity (its
      // constructor asserts on non-positive memory).
      pool_((config_.validate(), config_.memory_mb), config_.pool_backend),
      admission_(config_.overload.admission),
      brownout_(config_.overload.brownout)
{
    if (!policy_)
        throw std::invalid_argument("Server: null policy");
    events_.bindCancellation(config_.cancel);
    audit_ = config_.audit != nullptr && config_.audit->enabled()
        ? config_.audit
        : nullptr;
    events_.bindAuditor(audit_);
    pool_.setAuditor(audit_);
}

void
Server::auditConservation(TimeUs now)
{
    if (audit_ == nullptr)
        return;
    const std::int64_t open = static_cast<std::int64_t>(queueDepth()) +
        static_cast<std::int64_t>(inflight_count_);
    if (audit_arrivals_ != audit_resolved_ + open) {
        audit_->fail("request-conservation", now, -1,
                     "arrivals " + std::to_string(audit_arrivals_) +
                         " != resolved " + std::to_string(audit_resolved_) +
                         " + queued " + std::to_string(queueDepth()) +
                         " + inflight " + std::to_string(inflight_count_));
    }
}

void
Server::setInflight(const Container& c, const Inflight& data)
{
    const std::uint32_t slot = c.poolSlot();
    if (slot >= inflight_.size())
        inflight_.resize(std::max<std::size_t>(2 * inflight_.size(),
                                               slot + 1));
    assert(inflight_[slot].id == kInvalidContainer);
    inflight_[slot] = InflightEntry{c.id(), data};
    ++inflight_count_;
}

Server::Inflight
Server::takeInflight(const Container& c)
{
    const std::uint32_t slot = c.poolSlot();
    assert(slot < inflight_.size() && inflight_[slot].id == c.id());
    const Inflight data = inflight_[slot].data;
    inflight_[slot].id = kInvalidContainer;
    --inflight_count_;
    return data;
}

void
Server::clearInflight()
{
    inflight_.clear();
    inflight_count_ = 0;
}

void
Server::evict(ContainerId id, TimeUs now, bool expired)
{
    Container* c = pool_.get(id);
    assert(c != nullptr && c->idle());
    const bool last = pool_.countOf(c->function()) == 1;
    policy_->onEviction(*c, last, now);
    pool_.remove(id);
    if (expired)
        ++result_.expirations;
    else
        ++result_.evictions;
}

Server::Dispatch
Server::tryDispatch(const PendingRequest& request, TimeUs now)
{
    if (running_ >= config_.cores)
        return Dispatch::Blocked;

    const Invocation& inv = request.inv;
    const FunctionSpec& spec = (*catalog_)[inv.function];
    FunctionOutcome& outcome = result_.per_function[spec.id];

    if (Container* warm = pool_.findIdleWarm(spec.id)) {
        // Warm hits are served even while browned out: that is the
        // whole point of the brownout mode.
        warm->startInvocation(now, now + spec.warm_us);
        policy_->onWarmStart(*warm, spec, now);
        ++running_;
        ++result_.warm_starts;
        ++outcome.warm;
        setInflight(*warm,
                    Inflight{request.invocation_index, request.inv,
                             request.latency_anchor_us,
                             /*cold=*/false, request.redispatched});
        events_.schedule(warm->busyUntil(), EventKind::Finish, warm->id());
        return Dispatch::Started;
    }

    // Cold path: initialization burns extra platform CPU. A browned-out
    // server denies cold work outright — before any victim selection,
    // so the warm Greedy-Dual cache is never evicted to feed a cold
    // start the overload will starve anyway.
    if (brownout_.active())
        return Dispatch::BrownoutDenied;
    const int cold_slots = std::max(1, config_.cold_start_cpu_slots);
    if (running_ + cold_slots > config_.cores)
        return Dispatch::Blocked;

    TimeUs stall_us = 0;
    if (!pool_.fits(spec.mem_mb)) {
        const MemMb needed = spec.mem_mb - pool_.freeMb();
        const auto victims = policy_->selectVictims(pool_, needed, now);
        MemMb freed = 0;
        for (ContainerId id : victims)
            freed += pool_.get(id)->memMb();
        if (pool_.freeMb() + freed < spec.mem_mb) {
            // Busy containers hold the memory: the §7.2 feedback loop's
            // signature state and the brownout memory-pressure trigger.
            brownout_.noteMemoryPressure(now);
            return Dispatch::Blocked;
        }
        for (ContainerId id : victims)
            evict(id, now, /*expired=*/false);
        if (injector_ != nullptr) {
            stall_us = injector_->reclaimStall();
            if (stall_us > 0)
                ++result_.robustness.reclaim_stalls;
        }
    }

    if (injector_ != nullptr && injector_->spawnFails())
        return Dispatch::SpawnFailed;

    TimeUs init_us = spec.initTime();
    if (injector_ != nullptr && injector_->coldStartStraggles()) {
        init_us = injector_->straggleInit(init_us);
        ++result_.robustness.straggler_cold_starts;
    }

    Container& fresh = pool_.add(spec, now);
    ++spawn_successes_;
    fresh.startInvocation(now, now + stall_us + init_us + spec.warm_us);
    policy_->onColdStart(fresh, spec, now);
    running_ += cold_slots;
    ++result_.cold_starts;
    ++outcome.cold;
    if (request.redispatched)
        ++result_.robustness.redispatch_cold_starts;
    setInflight(fresh,
                Inflight{request.invocation_index, request.inv,
                         request.latency_anchor_us,
                         /*cold=*/true, request.redispatched,
                         /*extra_slots=*/cold_slots - 1});
    if (cold_slots > 1) {
        events_.schedule(now + stall_us + init_us, EventKind::InitDone,
                         fresh.id());
    }
    events_.schedule(fresh.busyUntil(), EventKind::Finish, fresh.id());
    return Dispatch::Started;
}

void
Server::pushRequestDense(const PendingRequest& request)
{
    std::uint32_t i;
    if (request_free_ != kNilRequest) {
        i = request_free_;
        request_free_ = request_nodes_[i].next;
    } else {
        i = static_cast<std::uint32_t>(request_nodes_.size());
        request_nodes_.emplace_back();
    }
    RequestNode& node = request_nodes_[i];
    node.req = request;
    node.prev = queue_tail_;
    node.next = kNilRequest;
    if (queue_tail_ != kNilRequest)
        request_nodes_[queue_tail_].next = i;
    else
        queue_head_ = i;
    queue_tail_ = i;
    ++queue_size_;
}

void
Server::eraseRequestDense(std::uint32_t i)
{
    RequestNode& node = request_nodes_[i];
    if (node.prev != kNilRequest)
        request_nodes_[node.prev].next = node.next;
    else
        queue_head_ = node.next;
    if (node.next != kNilRequest)
        request_nodes_[node.next].prev = node.prev;
    else
        queue_tail_ = node.prev;
    node.prev = kNilRequest;
    node.next = request_free_;
    request_free_ = i;
    --queue_size_;
}

void
Server::clearRequestQueueDense()
{
    request_nodes_.clear();
    queue_head_ = kNilRequest;
    queue_tail_ = kNilRequest;
    request_free_ = kNilRequest;
    queue_size_ = 0;
}

void
Server::drainQueue(TimeUs now)
{
    if (config_.platform_backend == PlatformBackend::Reference)
        drainQueueReference(now);
    else
        drainQueueDense(now);
}

void
Server::drainQueueReference(TimeUs now)
{
    // Re-evaluate brownout before dispatch decisions so this drain sees
    // the current admission/memory-pressure state.
    if (config_.overload.brownout.enabled)
        brownout_.update(admission_.violating(), now);
    // Scan in arrival order but skip entries that cannot start yet:
    // OpenWhisk schedules per activation, so a large function waiting
    // for memory does not block small warm functions behind it. Once a
    // core is unavailable nothing can start, so stop scanning.
    std::deque<PendingRequest> still_waiting;
    while (!queue_.empty()) {
        PendingRequest head = queue_.front();
        queue_.pop_front();
        if (now - head.enqueued_us > config_.queue_timeout_us) {
            ++result_.dropped_timeout;
            ++result_.per_function[head.inv.function].dropped;
            if (audit_ != nullptr)
                ++audit_resolved_;
            continue;
        }
        if (now < head.not_before_us) {
            // Spawn-failure holdoff; entries behind it may still start.
            still_waiting.push_back(head);
            continue;
        }
        if (running_ >= config_.cores) {
            if (!brownout_.active()) {
                still_waiting.push_back(head);
                break;
            }
            // Brownout queue purge: deny cold-path entries even while
            // every core is busy — otherwise the scan would stop here
            // and the cold backlog would stand through the brownout,
            // keeping the sojourn target violated forever. Entries that
            // could be served warm keep their place in line.
            const FunctionId fn = head.inv.function;
            if (pool_.findIdleWarm(fn) == nullptr) {
                ++result_.overload.brownout_denied_cold;
                ++result_.per_function[fn].dropped;
                if (audit_ != nullptr)
                    ++audit_resolved_;
            } else {
                still_waiting.push_back(head);
            }
            continue;
        }
        const Dispatch outcome = tryDispatch(head, now);
        if (outcome == Dispatch::Started) {
            // Sojourn feedback: how long this request waited for a core
            // is the admission controller's control signal.
            admission_.onDequeue(now - head.enqueued_us, now);
            continue;
        }
        if (outcome == Dispatch::BrownoutDenied) {
            ++result_.overload.brownout_denied_cold;
            ++result_.per_function[head.inv.function].dropped;
            if (audit_ != nullptr)
                ++audit_resolved_;
            continue;
        }
        if (outcome == Dispatch::SpawnFailed) {
            ++result_.robustness.spawn_failures;
            head.not_before_us =
                now + injector_->plan().spawn_retry_delay_us;
            events_.schedule(head.not_before_us, EventKind::Retry);
            still_waiting.push_back(head);
            continue;
        }
        still_waiting.push_back(head);
    }
    // Preserve arrival order of everything not dispatched.
    while (!queue_.empty()) {
        still_waiting.push_back(queue_.front());
        queue_.pop_front();
    }
    queue_ = std::move(still_waiting);
    // Congestion watermark: a core's worth of backlog whose head has
    // stood for several service times (5 s). The age requirement keeps
    // the synchronized minute-bucket arrival spikes of the Azure replay
    // rule — which drain as fast as running containers finish — from
    // reading as congestion. Feeds the time-to-recovery metric of
    // bench/fig_overload.
    if (queue_.size() >= static_cast<std::size_t>(config_.cores) &&
        now - queue_.front().enqueued_us >= 5 * kSecond) {
        result_.last_congested_us = now;
    }
    auditConservation(now);
}

void
Server::drainQueueDense(TimeUs now)
{
    // Mirrors drainQueueReference() decision for decision — same scan
    // order, same injector draws, same counter updates — but walks the
    // intrusive FIFO in place: dispatched and dropped nodes are
    // unlinked mid-walk, survivors are never touched, and stopping at
    // a full core bank leaves the tail exactly where it stood. The
    // reference path instead pops every entry into a freshly
    // constructed deque per drain, which the fig8 profile shows is the
    // platform's dominant cost at scale.
    if (config_.overload.brownout.enabled)
        brownout_.update(admission_.violating(), now);
    std::uint32_t i = queue_head_;
    while (i != kNilRequest) {
        const std::uint32_t next = request_nodes_[i].next;
        PendingRequest& head = request_nodes_[i].req;
        if (now - head.enqueued_us > config_.queue_timeout_us) {
            ++result_.dropped_timeout;
            ++result_.per_function[head.inv.function].dropped;
            if (audit_ != nullptr)
                ++audit_resolved_;
            eraseRequestDense(i);
            i = next;
            continue;
        }
        if (now < head.not_before_us) {
            // Spawn-failure holdoff; entries behind it may still start.
            i = next;
            continue;
        }
        if (running_ >= config_.cores) {
            if (!brownout_.active())
                break;
            // Brownout queue purge (see drainQueueReference): deny
            // cold-path entries even with every core busy; entries
            // servable warm keep their place in line.
            const FunctionId fn = head.inv.function;
            if (pool_.findIdleWarm(fn) == nullptr) {
                ++result_.overload.brownout_denied_cold;
                ++result_.per_function[fn].dropped;
                if (audit_ != nullptr)
                    ++audit_resolved_;
                eraseRequestDense(i);
            }
            i = next;
            continue;
        }
        const Dispatch outcome = tryDispatch(head, now);
        if (outcome == Dispatch::Started) {
            admission_.onDequeue(now - head.enqueued_us, now);
            eraseRequestDense(i);
            i = next;
            continue;
        }
        if (outcome == Dispatch::BrownoutDenied) {
            ++result_.overload.brownout_denied_cold;
            ++result_.per_function[head.inv.function].dropped;
            if (audit_ != nullptr)
                ++audit_resolved_;
            eraseRequestDense(i);
            i = next;
            continue;
        }
        if (outcome == Dispatch::SpawnFailed) {
            ++result_.robustness.spawn_failures;
            head.not_before_us =
                now + injector_->plan().spawn_retry_delay_us;
            events_.schedule(head.not_before_us, EventKind::Retry);
        }
        // SpawnFailed and Blocked both keep the node queued in place.
        i = next;
    }
    // Congestion watermark — same rule as the reference drain.
    if (queue_size_ >= static_cast<std::size_t>(config_.cores) &&
        now - request_nodes_[queue_head_].req.enqueued_us >= 5 * kSecond) {
        result_.last_congested_us = now;
    }
    auditConservation(now);
}

void
Server::maintenance(TimeUs now)
{
    // Expire first so a lease ending now cannot block a prewarm via the
    // skip-if-already-warm check.
    for (ContainerId id : policy_->expiredContainers(pool_, now))
        evict(id, now, /*expired=*/true);
    if (config_.enable_prewarm) {
        for (FunctionId fn : policy_->duePrewarms(now)) {
            const FunctionSpec& spec = (*catalog_)[fn];
            if (pool_.findIdleWarm(fn) != nullptr)
                continue;
            if (!pool_.fits(spec.mem_mb))
                continue;
            Container& c = pool_.add(spec, now, /*prewarmed=*/true);
            policy_->onPrewarm(c, spec, now);
            ++result_.prewarms;
        }
    } else {
        policy_->duePrewarms(now);
    }
    drainQueue(now);
    // Deep structural pool audit: O(slots), so it rides the periodic
    // maintenance tick rather than the per-event fast path.
    if (audit_ != nullptr)
        pool_.auditInvariants(*audit_, now);
}

bool
Server::acceptArrival(std::size_t invocation_index, const Invocation& inv,
                      TimeUs now, bool redispatched)
{
    const FunctionSpec& spec = (*catalog_)[inv.function];
    if (audit_ != nullptr)
        ++audit_arrivals_;
    if (down_) {
        ++result_.robustness.dropped_unavailable;
        ++result_.per_function[spec.id].dropped;
        if (audit_ != nullptr)
            ++audit_resolved_;
        return false;
    }
    policy_->onInvocationArrival(spec, now);
    if (spec.mem_mb > pool_.capacityMb()) {
        ++result_.dropped_oversize;
        ++result_.per_function[spec.id].dropped;
        if (audit_ != nullptr)
            ++audit_resolved_;
        return false;
    }
    // Adaptive admission: shed at the arrival edge while the queue
    // delay target stays violated (deterministic CoDel schedule).
    if (config_.overload.admission.enabled && admission_.shouldShed(now)) {
        ++result_.overload.admission_shed;
        ++result_.per_function[spec.id].dropped;
        if (audit_ != nullptr)
            ++audit_resolved_;
        return false;
    }
    // Preserve FIFO ordering: join the queue and drain.
    if (queueDepth() >= config_.queue_capacity) {
        ++result_.dropped_queue_full;
        ++result_.per_function[spec.id].dropped;
        if (audit_ != nullptr)
            ++audit_resolved_;
        return false;
    }
    PendingRequest request;
    request.invocation_index = invocation_index;
    request.inv = inv;
    request.enqueued_us = now;
    request.latency_anchor_us = redispatched ? inv.arrival_us : now;
    request.redispatched = redispatched;
    if (config_.platform_backend == PlatformBackend::Reference)
        queue_.push_back(request);
    else
        pushRequestDense(request);
    drainQueue(now);
    return true;
}

void
Server::handleEvent(const ServerEvent& event)
{
    const TimeUs now = event.time_us;
    clock_.advanceTo(now);
    switch (event.kind) {
      case EventKind::Arrival: {
        // Prescheduled arrivals exist only on the Reference replay,
        // which always runs against a bound trace.
        const auto index = static_cast<std::size_t>(event.payload);
        acceptArrival(index, trace_->invocations()[index], now,
                      /*redispatched=*/false);
        break;
      }
      case EventKind::Finish: {
        const auto id = static_cast<ContainerId>(event.payload);
        Container* c = pool_.get(id);
        if (c == nullptr)
            break;  // stale: the container died with a crash
        assert(c->busy());
        c->finishInvocation();
        --running_;
        const Inflight inflight = takeInflight(*c);
        if (audit_ != nullptr)
            ++audit_resolved_;
        const double latency_sec =
            toSeconds(now - inflight.latency_anchor_us);
        result_.latencies_sec.push_back(latency_sec);
        result_.latency_sum_sec[c->function()] += latency_sec;
        drainQueue(now);
        break;
      }
      case EventKind::InitDone: {
        // The init phase's extra CPU slots are released; the
        // function itself keeps executing on one core.
        Container* c = pool_.get(static_cast<ContainerId>(event.payload));
        if (c == nullptr)
            break;  // stale after a crash
        running_ -= std::max(1, config_.cold_start_cpu_slots) - 1;
        // The in-flight record now holds only its base core, so an
        // abort after this point releases exactly one slot.
        assert(c->poolSlot() < inflight_.size() &&
               inflight_[c->poolSlot()].id == c->id());
        inflight_[c->poolSlot()].data.extra_slots = 0;
        drainQueue(now);
        break;
      }
      case EventKind::Maintenance:
        if (!down_)
            maintenance(now);
        if (incremental_) {
            const TimeUs next = now + config_.maintenance_interval_us;
            if (next <= horizon_us_)
                events_.schedule(next, EventKind::Maintenance);
        }
        break;
      case EventKind::Retry:
        if (!down_)
            drainQueue(now);
        break;
      case EventKind::Crash: {
        // Self-scheduled (standalone run()) crash: there is no front
        // end to fail the spilled work over to, so it is lost here.
        // Crashes ride the Failure lane, so a restart due at this very
        // instant has already run; finding the server still down means
        // this crash sits inside a wider outage and is absorbed by it.
        if (down_)
            break;
        assert(injector_ != nullptr);
        const CrashEvent& ce =
            injector_->crashes()[static_cast<std::size_t>(event.payload)];
        const CrashFallout fallout = crash(now);
        for (const SpilledRequest& spilled : fallout.aborted)
            ++result_.per_function[spilled.inv.function].dropped;
        for (const SpilledRequest& spilled : fallout.flushed_queue) {
            ++result_.robustness.dropped_unavailable;
            ++result_.per_function[spilled.inv.function].dropped;
        }
        if (ce.restart_after_us > 0)
            events_.schedule(now + ce.restart_after_us, EventKind::Restart);
        break;
      }
      case EventKind::Restart:
        restart(now);
        break;
      case EventKind::OomKill: {
        // Self-scheduled (standalone run()) OOM kill: no front end to
        // re-dispatch the aborted invocation, so it is lost here.
        if (down_)
            break;
        const auto aborted = oomKill(now);
        if (aborted.has_value())
            ++result_.per_function[aborted->inv.function].dropped;
        break;
      }
    }
}

Server::CrashFallout
Server::crash(TimeUs now)
{
    CrashFallout fallout;
    if (down_)
        return fallout;
    ++result_.robustness.crashes;

    // Roll back the start accounting of aborted invocations: they did
    // not complete here, and a cluster may re-dispatch them.
    for (const InflightEntry& entry : inflight_) {
        if (entry.id == kInvalidContainer)
            continue;
        const Inflight& inflight = entry.data;
        FunctionOutcome& outcome =
            result_.per_function[inflight.inv.function];
        if (inflight.cold) {
            --result_.cold_starts;
            --outcome.cold;
            if (inflight.redispatched)
                --result_.robustness.redispatch_cold_starts;
        } else {
            --result_.warm_starts;
            --outcome.warm;
        }
        ++result_.robustness.crash_aborted;
        fallout.aborted.push_back(
            SpilledRequest{inflight.invocation_index, inflight.inv});
        if (audit_ != nullptr)
            ++audit_resolved_;
    }
    std::sort(fallout.aborted.begin(), fallout.aborted.end(),
              [](const SpilledRequest& a, const SpilledRequest& b) {
                  return a.invocation_index < b.invocation_index;
              });
    clearInflight();
    running_ = 0;

    // Flush the container pool: every container (busy, warm, and
    // prewarmed) dies with the server. Policies observe the flush as
    // evictions so their per-function bookkeeping stays consistent.
    std::vector<ContainerId> ids;
    ids.reserve(pool_.size());
    pool_.forEach([&ids](Container& c) { ids.push_back(c.id()); });
    std::sort(ids.begin(), ids.end());
    for (ContainerId id : ids) {
        Container* c = pool_.get(id);
        if (c->busy())
            c->finishInvocation();
        const bool last = pool_.countOf(c->function()) == 1;
        policy_->onEviction(*c, last, now);
        pool_.remove(id);
        ++result_.robustness.crash_flushed_containers;
    }

    if (config_.platform_backend == PlatformBackend::Reference) {
        for (const PendingRequest& pending : queue_) {
            fallout.flushed_queue.push_back(
                SpilledRequest{pending.invocation_index, pending.inv});
        }
        queue_.clear();
    } else {
        for (std::uint32_t i = queue_head_; i != kNilRequest;
             i = request_nodes_[i].next) {
            const PendingRequest& pending = request_nodes_[i].req;
            fallout.flushed_queue.push_back(
                SpilledRequest{pending.invocation_index, pending.inv});
        }
        clearRequestQueueDense();
    }
    if (audit_ != nullptr) {
        // Flushed entries leave this server's books: the standalone
        // crash handler counts them dropped_unavailable; under
        // incremental driving the front end re-dispatches them, so
        // they resolve externally.
        audit_resolved_ +=
            static_cast<std::int64_t>(fallout.flushed_queue.size());
        if (incremental_) {
            audit_external_returns_ +=
                static_cast<std::int64_t>(fallout.flushed_queue.size());
        }
    }

    down_ = true;
    down_since_ = now;
    return fallout;
}

void
Server::restart(TimeUs now)
{
    if (!down_)
        return;
    down_ = false;
    ++result_.robustness.restarts;
    result_.robustness.downtime_us += now - down_since_;
}

std::optional<Server::SpilledRequest>
Server::oomKill(TimeUs now)
{
    if (down_)
        return std::nullopt;
    // Victim: the fattest busy container, ties to the lowest id. The
    // comparison is order-independent, so the backend-specific forEach
    // order cannot change the choice.
    Container* victim = nullptr;
    pool_.forEach([&victim](Container& c) {
        if (!c.busy())
            return;
        if (victim == nullptr || c.memMb() > victim->memMb() ||
            (c.memMb() == victim->memMb() && c.id() < victim->id())) {
            victim = &c;
        }
    });
    if (victim == nullptr)
        return std::nullopt;

    ++result_.robustness.oom_kills;
    const Inflight inflight = takeInflight(*victim);
    // Roll back the start accounting exactly like a crash abort: the
    // invocation did not complete here, and a cluster may re-dispatch
    // it.
    FunctionOutcome& outcome = result_.per_function[inflight.inv.function];
    if (inflight.cold) {
        --result_.cold_starts;
        --outcome.cold;
        if (inflight.redispatched)
            --result_.robustness.redispatch_cold_starts;
    } else {
        --result_.warm_starts;
        --outcome.warm;
    }
    ++result_.robustness.crash_aborted;
    running_ -= 1 + inflight.extra_slots;

    // The container dies with its invocation. The policy observes an
    // eviction so its per-function bookkeeping stays consistent; the
    // pending Finish (and InitDone) events go stale and are absorbed
    // by the id checks, since pool ids are never reused.
    victim->finishInvocation();
    const bool last = pool_.countOf(victim->function()) == 1;
    policy_->onEviction(*victim, last, now);
    pool_.remove(victim->id());
    if (audit_ != nullptr)
        ++audit_resolved_;

    // The freed core and memory may unblock queued work immediately.
    drainQueue(now);
    return SpilledRequest{inflight.invocation_index, inflight.inv};
}

void
Server::beginRun(const Trace& trace)
{
    if (!trace.validate() || !trace.isSorted())
        throw std::invalid_argument("Server: invalid or unsorted trace");
    trace_ = &trace;
    beginRunCommon(trace.functions(), trace.invocations().size());
}

void
Server::beginRunCommon(const std::vector<FunctionSpec>& functions,
                       std::size_t invocation_hint)
{
    catalog_ = &functions;
    // A cancelled or abandoned previous run may have left events
    // pending or requests buffered; a fresh run must never observe a
    // stale heap or queue.
    events_.clear();
    queue_.clear();
    clearRequestQueueDense();
    clock_.reset();
    result_ = PlatformResult{};
    result_.policy_name = policy_->name();
    result_.config = config_;
    result_.per_function.resize(functions.size());
    result_.latency_sum_sec.resize(functions.size(), 0.0);
    // At most one latency sample per invocation; one up-front grow
    // instead of doubling through the run.
    result_.latencies_sec.reserve(invocation_hint);
    clearInflight();
    admission_.reset();
    brownout_.reset();
    spawn_successes_ = 0;
    audit_arrivals_ = 0;
    audit_resolved_ = 0;
    audit_external_returns_ = 0;
    // Allocation hints: size dense per-function tables from the catalog.
    policy_->reserveFunctions(functions.size());
    pool_.reserve(/*containers=*/256, functions.size());
}

PlatformResult
Server::run(const Trace& trace)
{
    if (config_.platform_backend == PlatformBackend::Reference) {
        beginRun(trace);
        incremental_ = false;

        TimeUs horizon = 0;
        std::size_t maintenance_ticks = 0;
        if (!trace.invocations().empty()) {
            horizon = trace.invocations().back().arrival_us +
                config_.queue_timeout_us;
            maintenance_ticks = static_cast<std::size_t>(
                horizon / config_.maintenance_interval_us) + 1;
        }
        const std::size_t crashes_count =
            injector_ != nullptr ? injector_->crashes().size() : 0;
        const std::size_t ooms_count =
            injector_ != nullptr ? injector_->oomKills().size() : 0;

        // Reserve the whole setup load (arrivals + maintenance ticks +
        // crashes) up front so the heap never reallocates mid-run;
        // runtime events (finishes, retries, restarts) only replace
        // delivered setup events, so the high-water mark is the setup
        // count.
        events_.reserve(trace.invocations().size() + maintenance_ticks +
                        crashes_count + ooms_count);

        for (std::size_t i = 0; i < trace.invocations().size(); ++i) {
            events_.schedule(trace.invocations()[i].arrival_us,
                             EventKind::Arrival, i);
        }
        for (std::size_t k = 0; k < maintenance_ticks; ++k) {
            events_.schedule(
                static_cast<TimeUs>(k) * config_.maintenance_interval_us,
                EventKind::Maintenance);
        }
        if (injector_ != nullptr) {
            const auto& crashes = injector_->crashes();
            for (std::size_t k = 0; k < crashes.size(); ++k) {
                events_.scheduleFailure(crashes[k].at_us,
                                        EventKind::Crash, k);
            }
            const auto& ooms = injector_->oomKills();
            for (std::size_t k = 0; k < ooms.size(); ++k) {
                events_.scheduleFailure(ooms[k].at_us,
                                        EventKind::OomKill, k);
            }
        }

        while (!events_.empty())
            handleEvent(events_.pop());

        return closeRun(horizon);
    }

    // Dense: stream the trace through the arrival-cursor merge. The
    // eager validation here preserves run()'s historical contract (the
    // streamed core only detects violations as it consumes them).
    if (!trace.validate() || !trace.isSorted())
        throw std::invalid_argument("Server: invalid or unsorted trace");
    TraceSource source(trace);
    return run(source);
}

PlatformResult
Server::run(InvocationSource& source)
{
    if (config_.platform_backend == PlatformBackend::Reference) {
        // The reference oracle preschedules every arrival by index,
        // which needs random access; materialize once and replay.
        const Trace trace = materializeSource(source);
        return run(trace);
    }

    source.reset();
    trace_ = nullptr;
    beginRunCommon(source.functions(), source.countHint().count);
    incremental_ = false;

    const std::size_t crashes_count =
        injector_ != nullptr ? injector_->crashes().size() : 0;
    const std::size_t ooms_count =
        injector_ != nullptr ? injector_->oomKills().size() : 0;
    // Only failure-plan and runtime traffic ever enters the heap; the
    // arrival and maintenance schedules live in cursors. Keeping the
    // heap O(pending work) is what makes peak memory independent of
    // stream length.
    events_.reserve(crashes_count + ooms_count + 64);
    std::vector<EventBatchItem<EventKind>> setup;
    setup.reserve(std::max(crashes_count, ooms_count));
    if (injector_ != nullptr) {
        const auto& crashes = injector_->crashes();
        for (std::size_t k = 0; k < crashes.size(); ++k) {
            EventBatchItem<EventKind> item;
            item.time_us = crashes[k].at_us;
            item.kind = EventKind::Crash;
            item.payload = k;
            setup.push_back(item);
        }
        events_.scheduleBatch(setup, EventLane::Failure);
        const auto& ooms = injector_->oomKills();
        setup.clear();
        for (std::size_t k = 0; k < ooms.size(); ++k) {
            EventBatchItem<EventKind> item;
            item.time_us = ooms[k].at_us;
            item.kind = EventKind::OomKill;
            item.payload = k;
            setup.push_back(item);
        }
        events_.scheduleBatch(setup, EventLane::Failure);
    }

    // Three-way merge, ordered exactly like the trace replay: the
    // arrival cursor wins every timestamp tie (the reference schedules
    // arrivals with the lowest sequence numbers), the maintenance-tick
    // cursor wins ties against the heap (setup ticks precede runtime
    // events there, and the Normal lane precedes Failure regardless of
    // sequence), and the heap settles the rest. The tick budget is
    // fixed the moment the source runs dry: the trace replay schedules
    // horizon / interval + 1 ticks with horizon = last arrival + queue
    // timeout, and every tick emitted while arrivals remain is earlier
    // than the next arrival, hence within that budget.
    const TimeUs interval = config_.maintenance_interval_us;
    constexpr std::size_t kUnbounded =
        std::numeric_limits<std::size_t>::max();
    std::size_t tick_budget = kUnbounded;
    std::size_t ticks_emitted = 0;
    std::size_t index = 0;
    TimeUs last_arrival = 0;
    Invocation inv;
    for (;;) {
        const bool have_arrival = source.peek(inv);
        if (!have_arrival && tick_budget == kUnbounded) {
            tick_budget = index == 0
                ? 0
                : static_cast<std::size_t>(
                      (last_arrival + config_.queue_timeout_us) /
                      interval) + 1;
        }
        const bool have_tick = ticks_emitted < tick_budget;
        const TimeUs tick_time =
            static_cast<TimeUs>(ticks_emitted) * interval;
        if (!have_arrival && !have_tick && events_.empty())
            break;
        if (have_arrival && (!have_tick || inv.arrival_us <= tick_time) &&
            (events_.empty() || inv.arrival_us <= events_.nextTime())) {
            if (config_.cancel != nullptr)
                config_.cancel->throwIfCancelled();
            if (inv.arrival_us < last_arrival) {
                throw std::runtime_error(
                    "Server: source arrivals out of order (" +
                    std::to_string(inv.arrival_us) + " after " +
                    std::to_string(last_arrival) + ")");
            }
            const TimeUs now = inv.arrival_us;
            clock_.advanceTo(now);
            // Same-instant arrivals (the Azure replay's minute buckets)
            // are admitted as one batch without re-consulting the heap:
            // nothing scheduled while admitting them can precede a
            // remaining same-time arrival.
            do {
                Invocation consumed;
                source.next(consumed);
                if (consumed.function >= catalog_->size()) {
                    throw std::runtime_error(
                        "Server: source function id " +
                        std::to_string(consumed.function) +
                        " out of range (catalog " +
                        std::to_string(catalog_->size()) + ")");
                }
                acceptArrival(index, consumed, now,
                              /*redispatched=*/false);
                ++index;
            } while (source.peek(inv) && inv.arrival_us == now);
            last_arrival = now;
            continue;
        }
        if (have_tick &&
            (events_.empty() || tick_time <= events_.nextTime())) {
            ServerEvent tick;
            tick.time_us = tick_time;
            tick.kind = EventKind::Maintenance;
            handleEvent(tick);
            ++ticks_emitted;
            continue;
        }
        handleEvent(events_.pop());
    }

    const TimeUs horizon =
        index == 0 ? 0 : last_arrival + config_.queue_timeout_us;
    return closeRun(horizon);
}

void
Server::begin(const Trace& trace)
{
    beginRun(trace);
    incremental_ = true;
    horizon_us_ = std::numeric_limits<TimeUs>::max();
    events_.reserve(trace.invocations().size());
    events_.schedule(0, EventKind::Maintenance);
}

void
Server::begin(const std::vector<FunctionSpec>& functions,
              std::size_t invocation_hint)
{
    trace_ = nullptr;
    beginRunCommon(functions, invocation_hint);
    incremental_ = true;
    horizon_us_ = std::numeric_limits<TimeUs>::max();
    // Unlike the trace begin(), the heap only ever holds runtime
    // traffic here (the dispatcher streams arrivals through offer()),
    // so a modest reservation keeps peak memory stream-length-free.
    events_.reserve(256);
    events_.schedule(0, EventKind::Maintenance);
}

bool
Server::offer(std::size_t invocation_index, TimeUs now, bool redispatched)
{
    assert(trace_ != nullptr);
    return acceptArrival(invocation_index,
                         trace_->invocations()[invocation_index], now,
                         redispatched);
}

bool
Server::offer(std::size_t invocation_index, const Invocation& inv,
              TimeUs now, bool redispatched)
{
    return acceptArrival(invocation_index, inv, now, redispatched);
}

void
Server::advanceTo(TimeUs now)
{
    while (!events_.empty() && events_.nextTime() < now)
        handleEvent(events_.pop());
}

PlatformResult
Server::finish(TimeUs horizon_us)
{
    horizon_us_ = horizon_us;
    while (!events_.empty())
        handleEvent(events_.pop());
    return closeRun(horizon_us);
}

PlatformResult
Server::closeRun(TimeUs horizon_us)
{
    // Anything still buffered can never be served (no more events).
    if (config_.platform_backend == PlatformBackend::Reference) {
        for (const PendingRequest& pending : queue_) {
            ++result_.dropped_timeout;
            ++result_.per_function[pending.inv.function].dropped;
            if (audit_ != nullptr)
                ++audit_resolved_;
        }
        queue_.clear();
    } else {
        for (std::uint32_t i = queue_head_; i != kNilRequest;
             i = request_nodes_[i].next) {
            ++result_.dropped_timeout;
            ++result_.per_function[request_nodes_[i].req.inv.function]
                  .dropped;
            if (audit_ != nullptr)
                ++audit_resolved_;
        }
        clearRequestQueueDense();
    }
    // A server that never came back is unavailable to the end of the
    // observation window.
    if (down_ && horizon_us > down_since_)
        result_.robustness.downtime_us += horizon_us - down_since_;
    result_.overload.admission_violations = admission_.violations();
    result_.overload.brownout_windows = brownout_.windows();
    result_.overload.brownout_us = brownout_.activeUs(horizon_us);
    if (audit_ != nullptr) {
        const TimeUs now = clock_.now();
        if (inflight_count_ != 0) {
            audit_->fail("inflight-drained", now, -1,
                         std::to_string(inflight_count_) +
                             " invocation(s) still in flight at close");
        }
        if (audit_arrivals_ != audit_resolved_) {
            audit_->fail("request-conservation", now, -1,
                         "at close: arrivals " +
                             std::to_string(audit_arrivals_) +
                             " != resolved " +
                             std::to_string(audit_resolved_));
        }
        const auto completions =
            static_cast<std::int64_t>(result_.latencies_sec.size());
        if (result_.served() != completions) {
            audit_->fail("start-accounting", now, -1,
                         "warm+cold " + std::to_string(result_.served()) +
                             " != completions " +
                             std::to_string(completions));
        }
        // Every arrival must land in exactly one terminal counter.
        const std::int64_t ledger = completions +
            result_.dropped_queue_full + result_.dropped_timeout +
            result_.dropped_oversize +
            result_.robustness.dropped_unavailable +
            result_.overload.admission_shed +
            result_.overload.brownout_denied_cold +
            result_.robustness.crash_aborted + audit_external_returns_;
        if (audit_arrivals_ != ledger) {
            audit_->fail("request-ledger", now, -1,
                         "arrivals " + std::to_string(audit_arrivals_) +
                             " != terminal-counter sum " +
                             std::to_string(ledger));
        }
        pool_.auditInvariants(*audit_, now);
    }
    incremental_ = false;
    trace_ = nullptr;
    catalog_ = nullptr;
    return result_;
}

}  // namespace faascache

#include "platform/load_generator.h"

#include "platform/function_bench.h"
#include "trace/patterns.h"

namespace faascache {

Trace
skewedFrequencyWorkload(TimeUs duration_us, std::uint64_t seed)
{
    const auto specs = functionBenchSubset({
        FunctionBenchApp::MlInference,
        FunctionBenchApp::DiskBench,
        FunctionBenchApp::WebServing,
        FunctionBenchApp::FloatingPoint,
    });
    const std::vector<TimeUs> iats = {
        1500 * kMillisecond,  // CNN
        1500 * kMillisecond,  // disk-bench
        1500 * kMillisecond,  // web-serving
        400 * kMillisecond,   // floating-point: the heavy hitter
    };
    return makePoissonTrace(specs, iats, duration_us, seed,
                            "skewed-frequency");
}

Trace
cyclicWorkload(TimeUs duration_us, TimeUs gap_us)
{
    // Video encoding is excluded: its 53 s warm run time at cyclic
    // inter-arrival would demand ~30 permanently busy containers,
    // drowning the keep-alive behaviour this workload targets.
    const auto specs = functionBenchSubset({
        FunctionBenchApp::MlInference,
        FunctionBenchApp::MatrixMultiply,
        FunctionBenchApp::DiskBench,
        FunctionBenchApp::WebServing,
        FunctionBenchApp::FloatingPoint,
    });
    return makeCyclicTrace(specs, gap_us, duration_us, "cyclic");
}

Trace
skewedSizeWorkload(TimeUs duration_us, std::uint64_t seed)
{
    const auto specs = functionBenchSubset({
        FunctionBenchApp::MlInference,     // 512 MB (large)
        FunctionBenchApp::MatrixMultiply,  // 256 MB (large-ish)
        FunctionBenchApp::WebServing,      // 64 MB (small)
        FunctionBenchApp::FloatingPoint,   // 128 MB (small)
    });
    const std::vector<TimeUs> iats = {
        4 * kSecond,           // large
        3 * kSecond,           // large-ish
        800 * kMillisecond,    // small
        800 * kMillisecond,    // small
    };
    return makePoissonTrace(specs, iats, duration_us, seed, "skewed-size");
}

}  // namespace faascache

/**
 * @file
 * Streaming load-balancer helpers shared by the cluster front ends.
 *
 * The balancer's primary assignment is a pure function of the arrival
 * stream: RoundRobin and FunctionHash depend only on (index, function),
 * and Random is a sequential draw stream seeded by the cluster seed.
 * Every consumer that replays the stream in order therefore assigns
 * identical primaries — the invariant both the single-threaded cluster
 * paths and the sharded engine (cluster_shard.cc) are built on. This
 * header is internal to src/platform; it exists so the sharded engine
 * can reuse the exact tracker/filter the legacy paths use instead of
 * re-deriving the draw discipline.
 */
#ifndef FAASCACHE_PLATFORM_BALANCER_STREAM_H_
#define FAASCACHE_PLATFORM_BALANCER_STREAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "platform/cluster.h"
#include "trace/invocation_source.h"
#include "util/rng.h"

namespace faascache {

/**
 * The balancer's primary for each arrival, computed in stream order
 * with the exact draw sequence of the materialized path. RoundRobin
 * and FunctionHash primaries are pure functions of (index, function)
 * and cost nothing to recall later; Random primaries are sequential
 * RNG draws, so when `record` is set each draw is kept (4
 * bytes/arrival) for the crash fallout's recall — the one deliberate
 * O(stream) allowance of the streamed cluster (documented on
 * runCluster). The sharded engine never records: attempt counts and
 * primaries travel with cross-shard messages instead.
 */
class PrimaryTracker
{
  public:
    PrimaryTracker(const ClusterConfig& config, bool record)
        : config_(&config), rng_(config.seed), record_(record)
    {
    }

    /** Primary of the next arrival; call once per arrival, in order. */
    std::size_t onArrival(std::size_t index, const Invocation& inv)
    {
        switch (config_->balancing) {
          case LoadBalancing::Random: {
            const auto draw = static_cast<std::size_t>(
                rng_.uniformInt(config_->num_servers));
            if (record_)
                draws_.push_back(static_cast<std::uint32_t>(draw));
            return draw;
          }
          case LoadBalancing::RoundRobin:
            return index % config_->num_servers;
          case LoadBalancing::FunctionHash:
            break;
        }
        return static_cast<std::size_t>(
            Rng::hashMix(inv.function ^ config_->seed) %
            config_->num_servers);
    }

    /** Primary of an already-seen arrival. @pre record was set for
     *  Random balancing. */
    std::size_t recall(std::size_t index, const Invocation& inv) const
    {
        switch (config_->balancing) {
          case LoadBalancing::Random:
            return draws_.at(index);
          case LoadBalancing::RoundRobin:
            return index % config_->num_servers;
          case LoadBalancing::FunctionHash:
            break;
        }
        return static_cast<std::size_t>(
            Rng::hashMix(inv.function ^ config_->seed) %
            config_->num_servers);
    }

  private:
    const ClusterConfig* config_;
    Rng rng_;
    bool record_;
    std::vector<std::uint32_t> draws_;
};

/**
 * The sub-stream server `server` would receive from the balancer: a
 * filter view over the shared source that consumes one balancer draw
 * per inner invocation (in stream order, so every pass replays the
 * identical draw sequence) and emits only the invocations routed to
 * this server. Streaming analogue of runClusterSplit()'s shards —
 * function ids pass through untouched, every shard keeps the full
 * catalog. Non-owning; reset() rewinds the shared source.
 *
 * The count hint is caller-provided: the legacy streamed split runs a
 * counting pass for exact hints, the sharded split passes an inexact
 * estimate instead (hints are allocation-only by the InvocationSource
 * contract, so results cannot differ).
 */
class BalancerFilterSource final : public InvocationSource
{
  public:
    BalancerFilterSource(InvocationSource& inner,
                         const ClusterConfig& config, std::size_t server,
                         SourceCountHint hint)
        : inner_(&inner), config_(&config), server_(server), hint_(hint),
          name_(inner.name() + "-server" + std::to_string(server)),
          tracker_(config, /*record=*/false)
    {
    }

    const std::string& name() const override { return name_; }

    const std::vector<FunctionSpec>& functions() const override
    {
        return inner_->functions();
    }

    bool peek(Invocation& out) override
    {
        if (!settle())
            return false;
        out = pending_;
        return true;
    }

    bool next(Invocation& out) override
    {
        if (!settle())
            return false;
        out = pending_;
        has_pending_ = false;
        return true;
    }

    void reset() override
    {
        inner_->reset();
        tracker_ = PrimaryTracker(*config_, /*record=*/false);
        index_ = 0;
        has_pending_ = false;
    }

    SourceCountHint countHint() const override { return hint_; }

  private:
    /** Consume inner arrivals (and their draws) until one is ours. */
    bool settle()
    {
        while (!has_pending_) {
            Invocation inv;
            if (!inner_->next(inv))
                return false;
            if (tracker_.onArrival(index_++, inv) == server_) {
                pending_ = inv;
                has_pending_ = true;
            }
        }
        return true;
    }

    InvocationSource* inner_;
    const ClusterConfig* config_;
    std::size_t server_;
    SourceCountHint hint_;
    std::string name_;
    PrimaryTracker tracker_;
    std::size_t index_ = 0;
    Invocation pending_;
    bool has_pending_ = false;
};

}  // namespace faascache

#endif  // FAASCACHE_PLATFORM_BALANCER_STREAM_H_

#include "platform/fault_injection.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>

namespace faascache {

namespace {

void
checkProbability(double p, const char* what)
{
    if (!(p >= 0.0 && p <= 1.0)) {
        throw std::invalid_argument(std::string("FaultPlan: ") + what +
                                    " must be in [0, 1], got " +
                                    std::to_string(p));
    }
}

}  // namespace

bool
FaultPlan::empty() const
{
    return crashes.empty() && crash_bursts.empty() &&
        partitions.empty() && oom_kills.empty() &&
        spawn_failure_prob == 0.0 && straggler_prob == 0.0 &&
        reclaim_stall_prob == 0.0;
}

void
FaultPlan::validate(std::size_t num_servers) const
{
    checkProbability(spawn_failure_prob, "spawn_failure_prob");
    checkProbability(straggler_prob, "straggler_prob");
    checkProbability(reclaim_stall_prob, "reclaim_stall_prob");
    if (straggler_prob > 0.0 && straggler_multiplier < 1.0) {
        throw std::invalid_argument(
            "FaultPlan: straggler_multiplier must be >= 1, got " +
            std::to_string(straggler_multiplier));
    }
    if (spawn_failure_prob > 0.0 && spawn_retry_delay_us <= 0) {
        throw std::invalid_argument(
            "FaultPlan: spawn_retry_delay_us must be > 0");
    }
    if (reclaim_stall_prob > 0.0 && reclaim_stall_us <= 0) {
        throw std::invalid_argument(
            "FaultPlan: reclaim_stall_us must be > 0");
    }
    for (std::size_t i = 0; i < crashes.size(); ++i) {
        const CrashEvent& c = crashes[i];
        if (c.at_us < 0) {
            throw std::invalid_argument(
                "FaultPlan: crash " + std::to_string(i) +
                " has negative at_us");
        }
        if (c.restart_after_us < 0) {
            throw std::invalid_argument(
                "FaultPlan: crash " + std::to_string(i) +
                " has negative restart_after_us");
        }
        if (num_servers > 0 && c.server >= num_servers) {
            throw std::invalid_argument(
                "FaultPlan: crash " + std::to_string(i) +
                " targets server " + std::to_string(c.server) +
                " but the cluster has " + std::to_string(num_servers) +
                " servers");
        }
    }
    for (std::size_t i = 0; i < crash_bursts.size(); ++i) {
        const CrashBurst& b = crash_bursts[i];
        if (b.at_us < 0) {
            throw std::invalid_argument(
                "FaultPlan: crash_burst " + std::to_string(i) +
                " has negative at_us");
        }
        if (b.window_us < 0) {
            throw std::invalid_argument(
                "FaultPlan: crash_burst " + std::to_string(i) +
                " has negative window_us");
        }
        if (b.restart_after_us < 0) {
            throw std::invalid_argument(
                "FaultPlan: crash_burst " + std::to_string(i) +
                " has negative restart_after_us");
        }
        if (b.servers == 0) {
            throw std::invalid_argument(
                "FaultPlan: crash_burst " + std::to_string(i) +
                " must take down at least one server (servers == 0)");
        }
    }
    for (std::size_t i = 0; i < partitions.size(); ++i) {
        const PartitionWindow& p = partitions[i];
        if (p.from_us < 0) {
            throw std::invalid_argument(
                "FaultPlan: partition " + std::to_string(i) +
                " has negative from_us");
        }
        if (p.until_us <= p.from_us) {
            throw std::invalid_argument(
                "FaultPlan: partition " + std::to_string(i) +
                " is empty or inverted (until_us " +
                std::to_string(p.until_us) + " <= from_us " +
                std::to_string(p.from_us) + ")");
        }
        if (num_servers > 0 && p.server >= num_servers) {
            throw std::invalid_argument(
                "FaultPlan: partition " + std::to_string(i) +
                " targets server " + std::to_string(p.server) +
                " but the cluster has " + std::to_string(num_servers) +
                " servers");
        }
    }
    for (std::size_t i = 0; i < oom_kills.size(); ++i) {
        const OomKillEvent& o = oom_kills[i];
        if (o.at_us < 0) {
            throw std::invalid_argument(
                "FaultPlan: oom_kill " + std::to_string(i) +
                " has negative at_us");
        }
        if (num_servers > 0 && o.server >= num_servers) {
            throw std::invalid_argument(
                "FaultPlan: oom_kill " + std::to_string(i) +
                " targets server " + std::to_string(o.server) +
                " but the cluster has " + std::to_string(num_servers) +
                " servers");
        }
    }

    // Overlapping crash windows on one server: a crash landing while
    // the server is already down is silently absorbed by the wider
    // outage — near-certainly a plan-authoring mistake, so reject it.
    // Equality at the restart boundary is legal: the Failure lane
    // delivers the restart first, so the second crash applies.
    std::vector<CrashEvent> schedule =
        num_servers > 0 ? expandedCrashes(num_servers) : crashes;
    std::stable_sort(schedule.begin(), schedule.end(),
                     [](const CrashEvent& a, const CrashEvent& b) {
                         if (a.server != b.server)
                             return a.server < b.server;
                         return a.at_us < b.at_us;
                     });
    for (std::size_t i = 1; i < schedule.size(); ++i) {
        const CrashEvent& prev = schedule[i - 1];
        const CrashEvent& cur = schedule[i];
        if (prev.server != cur.server)
            continue;
        if (prev.restart_after_us == 0) {
            throw std::invalid_argument(
                "FaultPlan: server " + std::to_string(cur.server) +
                " crashes at t=" + std::to_string(cur.at_us) +
                " but its earlier crash at t=" +
                std::to_string(prev.at_us) +
                " never restarts (restart_after_us == 0); the later "
                "crash would be silently absorbed");
        }
        if (cur.at_us < prev.at_us + prev.restart_after_us) {
            throw std::invalid_argument(
                "FaultPlan: overlapping crash windows on server " +
                std::to_string(cur.server) + ": crash at t=" +
                std::to_string(cur.at_us) +
                " lands inside the downtime [" +
                std::to_string(prev.at_us) + ", " +
                std::to_string(prev.at_us + prev.restart_after_us) +
                ") of the crash at t=" + std::to_string(prev.at_us));
        }
    }
}

std::vector<CrashEvent>
FaultPlan::crashesFor(std::size_t server) const
{
    std::vector<CrashEvent> mine;
    for (const CrashEvent& c : crashes) {
        if (c.server == server)
            mine.push_back(c);
    }
    std::stable_sort(mine.begin(), mine.end(),
                     [](const CrashEvent& a, const CrashEvent& b) {
                         return a.at_us < b.at_us;
                     });
    return mine;
}

std::vector<CrashEvent>
FaultPlan::expandedCrashes(std::size_t num_servers) const
{
    std::vector<CrashEvent> schedule = crashes;
    if (crash_bursts.empty())
        return schedule;

    const std::size_t fleet = num_servers > 0 ? num_servers : 1;
    for (std::size_t b = 0; b < crash_bursts.size(); ++b) {
        const CrashBurst& burst = crash_bursts[b];
        Rng rng(Rng::hashMix(seed ^ burst.seed ^
                             (0xB125700000000000ULL +
                              b * 0x9e3779b97f4a7c15ULL)));
        const std::size_t k = std::min(burst.servers, fleet);
        // Victims without replacement: partial Fisher-Yates over the
        // fleet ids.
        std::vector<std::size_t> ids(fleet);
        std::iota(ids.begin(), ids.end(), std::size_t{0});
        std::vector<CrashEvent> victims;
        victims.reserve(k);
        for (std::size_t i = 0; i < k; ++i) {
            const std::size_t j =
                i + static_cast<std::size_t>(rng.uniformInt(
                        static_cast<std::uint64_t>(fleet - i)));
            std::swap(ids[i], ids[j]);
            CrashEvent c;
            c.server = ids[i];
            c.at_us = burst.at_us;
            if (burst.window_us > 0) {
                c.at_us += static_cast<TimeUs>(rng.uniformInt(
                    static_cast<std::uint64_t>(burst.window_us) + 1));
            }
            c.restart_after_us = burst.restart_after_us;
            victims.push_back(c);
        }
        std::sort(victims.begin(), victims.end(),
                  [](const CrashEvent& a, const CrashEvent& b2) {
                      if (a.at_us != b2.at_us)
                          return a.at_us < b2.at_us;
                      return a.server < b2.server;
                  });
        schedule.insert(schedule.end(), victims.begin(), victims.end());
    }
    return schedule;
}

std::vector<CrashEvent>
FaultPlan::expandedCrashesFor(std::size_t server,
                              std::size_t num_servers) const
{
    std::vector<CrashEvent> mine;
    for (const CrashEvent& c : expandedCrashes(num_servers)) {
        if (c.server == server)
            mine.push_back(c);
    }
    std::stable_sort(mine.begin(), mine.end(),
                     [](const CrashEvent& a, const CrashEvent& b) {
                         return a.at_us < b.at_us;
                     });
    return mine;
}

std::vector<PartitionWindow>
FaultPlan::partitionsFor(std::size_t server) const
{
    std::vector<PartitionWindow> mine;
    for (const PartitionWindow& p : partitions) {
        if (p.server == server)
            mine.push_back(p);
    }
    std::stable_sort(mine.begin(), mine.end(),
                     [](const PartitionWindow& a, const PartitionWindow& b) {
                         return a.from_us < b.from_us;
                     });
    return mine;
}

std::vector<OomKillEvent>
FaultPlan::oomKillsFor(std::size_t server) const
{
    std::vector<OomKillEvent> mine;
    for (const OomKillEvent& o : oom_kills) {
        if (o.server == server)
            mine.push_back(o);
    }
    std::stable_sort(mine.begin(), mine.end(),
                     [](const OomKillEvent& a, const OomKillEvent& b) {
                         return a.at_us < b.at_us;
                     });
    return mine;
}

std::vector<CapacityLossWindow>
FaultPlan::capacityLossWindows(std::size_t num_servers) const
{
    std::vector<CapacityLossWindow> windows;
    if (num_servers == 0)
        return windows;
    const std::vector<CrashEvent> schedule = expandedCrashes(num_servers);
    if (schedule.empty())
        return windows;

    constexpr TimeUs kForever = std::numeric_limits<TimeUs>::max();
    // Sweep the crash/restart boundaries, tracking how many servers
    // are down between consecutive boundaries.
    struct Edge
    {
        TimeUs at;
        int delta;  // +1 = one more server down, -1 = one restarted
    };
    std::vector<Edge> edges;
    for (const CrashEvent& c : schedule) {
        edges.push_back({c.at_us, +1});
        if (c.restart_after_us > 0 &&
            c.at_us <= kForever - c.restart_after_us) {
            edges.push_back({c.at_us + c.restart_after_us, -1});
        }
    }
    std::stable_sort(edges.begin(), edges.end(),
                     [](const Edge& a, const Edge& b) {
                         return a.at < b.at;
                     });

    std::size_t down = 0;
    std::size_t i = 0;
    while (i < edges.size()) {
        const TimeUs at = edges[i].at;
        while (i < edges.size() && edges[i].at == at) {
            if (edges[i].delta > 0)
                ++down;
            else if (down > 0)
                --down;
            ++i;
        }
        const TimeUs until = i < edges.size() ? edges[i].at : kForever;
        if (down > 0 && until > at) {
            CapacityLossWindow w;
            w.from_us = at;
            w.until_us = until;
            const std::size_t lost = std::min(down, num_servers);
            w.available_fraction =
                static_cast<double>(num_servers - lost) /
                static_cast<double>(num_servers);
            windows.push_back(w);
        }
    }
    return windows;
}

FaultInjector::FaultInjector(const FaultPlan& plan, std::size_t server,
                             std::size_t num_servers)
    : plan_(&plan),
      rng_(Rng::hashMix(plan.seed ^
                        (0x9e3779b97f4a7c15ULL +
                         static_cast<std::uint64_t>(server)))),
      crashes_(plan.expandedCrashesFor(
          server, num_servers > 0 ? num_servers : server + 1)),
      ooms_(plan.oomKillsFor(server))
{
}

bool
FaultInjector::spawnFails()
{
    return plan_->spawn_failure_prob > 0.0 &&
        rng_.uniform() < plan_->spawn_failure_prob;
}

bool
FaultInjector::coldStartStraggles()
{
    return plan_->straggler_prob > 0.0 &&
        rng_.uniform() < plan_->straggler_prob;
}

TimeUs
FaultInjector::straggleInit(TimeUs init_us) const
{
    return static_cast<TimeUs>(static_cast<double>(init_us) *
                               plan_->straggler_multiplier);
}

TimeUs
FaultInjector::reclaimStall()
{
    if (plan_->reclaim_stall_prob > 0.0 &&
        rng_.uniform() < plan_->reclaim_stall_prob) {
        return plan_->reclaim_stall_us;
    }
    return 0;
}

}  // namespace faascache

#include "platform/fault_injection.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace faascache {

namespace {

void
checkProbability(double p, const char* what)
{
    if (!(p >= 0.0 && p <= 1.0)) {
        throw std::invalid_argument(std::string("FaultPlan: ") + what +
                                    " must be in [0, 1], got " +
                                    std::to_string(p));
    }
}

}  // namespace

bool
FaultPlan::empty() const
{
    return crashes.empty() && spawn_failure_prob == 0.0 &&
        straggler_prob == 0.0 && reclaim_stall_prob == 0.0;
}

void
FaultPlan::validate(std::size_t num_servers) const
{
    checkProbability(spawn_failure_prob, "spawn_failure_prob");
    checkProbability(straggler_prob, "straggler_prob");
    checkProbability(reclaim_stall_prob, "reclaim_stall_prob");
    if (straggler_prob > 0.0 && straggler_multiplier < 1.0) {
        throw std::invalid_argument(
            "FaultPlan: straggler_multiplier must be >= 1, got " +
            std::to_string(straggler_multiplier));
    }
    if (spawn_failure_prob > 0.0 && spawn_retry_delay_us <= 0) {
        throw std::invalid_argument(
            "FaultPlan: spawn_retry_delay_us must be > 0");
    }
    if (reclaim_stall_prob > 0.0 && reclaim_stall_us <= 0) {
        throw std::invalid_argument(
            "FaultPlan: reclaim_stall_us must be > 0");
    }
    for (std::size_t i = 0; i < crashes.size(); ++i) {
        const CrashEvent& c = crashes[i];
        if (c.at_us < 0) {
            throw std::invalid_argument(
                "FaultPlan: crash " + std::to_string(i) +
                " has negative at_us");
        }
        if (c.restart_after_us < 0) {
            throw std::invalid_argument(
                "FaultPlan: crash " + std::to_string(i) +
                " has negative restart_after_us");
        }
        if (num_servers > 0 && c.server >= num_servers) {
            throw std::invalid_argument(
                "FaultPlan: crash " + std::to_string(i) +
                " targets server " + std::to_string(c.server) +
                " but the cluster has " + std::to_string(num_servers) +
                " servers");
        }
    }
}

std::vector<CrashEvent>
FaultPlan::crashesFor(std::size_t server) const
{
    std::vector<CrashEvent> mine;
    for (const CrashEvent& c : crashes) {
        if (c.server == server)
            mine.push_back(c);
    }
    std::stable_sort(mine.begin(), mine.end(),
                     [](const CrashEvent& a, const CrashEvent& b) {
                         return a.at_us < b.at_us;
                     });
    return mine;
}

std::vector<CapacityLossWindow>
FaultPlan::capacityLossWindows(std::size_t num_servers) const
{
    std::vector<CapacityLossWindow> windows;
    if (num_servers == 0 || crashes.empty())
        return windows;

    constexpr TimeUs kForever = std::numeric_limits<TimeUs>::max();
    // Sweep the crash/restart boundaries, tracking how many servers
    // are down between consecutive boundaries.
    struct Edge
    {
        TimeUs at;
        int delta;  // +1 = one more server down, -1 = one restarted
    };
    std::vector<Edge> edges;
    for (const CrashEvent& c : crashes) {
        edges.push_back({c.at_us, +1});
        if (c.restart_after_us > 0 &&
            c.at_us <= kForever - c.restart_after_us) {
            edges.push_back({c.at_us + c.restart_after_us, -1});
        }
    }
    std::stable_sort(edges.begin(), edges.end(),
                     [](const Edge& a, const Edge& b) {
                         return a.at < b.at;
                     });

    std::size_t down = 0;
    std::size_t i = 0;
    while (i < edges.size()) {
        const TimeUs at = edges[i].at;
        while (i < edges.size() && edges[i].at == at) {
            if (edges[i].delta > 0)
                ++down;
            else if (down > 0)
                --down;
            ++i;
        }
        const TimeUs until = i < edges.size() ? edges[i].at : kForever;
        if (down > 0 && until > at) {
            CapacityLossWindow w;
            w.from_us = at;
            w.until_us = until;
            const std::size_t lost = std::min(down, num_servers);
            w.available_fraction =
                static_cast<double>(num_servers - lost) /
                static_cast<double>(num_servers);
            windows.push_back(w);
        }
    }
    return windows;
}

FaultInjector::FaultInjector(const FaultPlan& plan, std::size_t server)
    : plan_(&plan),
      rng_(Rng::hashMix(plan.seed ^
                        (0x9e3779b97f4a7c15ULL +
                         static_cast<std::uint64_t>(server)))),
      crashes_(plan.crashesFor(server))
{
}

bool
FaultInjector::spawnFails()
{
    return plan_->spawn_failure_prob > 0.0 &&
        rng_.uniform() < plan_->spawn_failure_prob;
}

bool
FaultInjector::coldStartStraggles()
{
    return plan_->straggler_prob > 0.0 &&
        rng_.uniform() < plan_->straggler_prob;
}

TimeUs
FaultInjector::straggleInit(TimeUs init_us) const
{
    return static_cast<TimeUs>(static_cast<double>(init_us) *
                               plan_->straggler_multiplier);
}

TimeUs
FaultInjector::reclaimStall()
{
    if (plan_->reclaim_stall_prob > 0.0 &&
        rng_.uniform() < plan_->reclaim_stall_prob) {
        return plan_->reclaim_stall_us;
    }
    return 0;
}

}  // namespace faascache

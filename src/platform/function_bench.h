/**
 * @file
 * The FunctionBench-derived application catalog of the paper's Table 1.
 *
 * Each application is characterized by its container memory size, its
 * total (cold) running time, and its initialization time; the warm run
 * time is the difference. These six applications drive the OpenWhisk
 * experiments (§7.2, Figures 7 and 8).
 */
#ifndef FAASCACHE_PLATFORM_FUNCTION_BENCH_H_
#define FAASCACHE_PLATFORM_FUNCTION_BENCH_H_

#include <vector>

#include "trace/function_spec.h"

namespace faascache {

/** The applications of Table 1, in table order. */
enum class FunctionBenchApp
{
    MlInference,     ///< CNN inference: 512 MB, 6.5 s run, 4.5 s init
    VideoEncoding,   ///< 500 MB, 56 s run, 3 s init
    MatrixMultiply,  ///< 256 MB, 2.5 s run, 2.2 s init
    DiskBench,       ///< dd: 256 MB, 2.2 s run, 1.8 s init
    WebServing,      ///< 64 MB, 2.4 s run, 2 s init
    FloatingPoint,   ///< 128 MB, 2 s run, 1.7 s init
};

/** Number of catalog applications. */
inline constexpr std::size_t kNumFunctionBenchApps = 6;

/**
 * The full Table 1 catalog with dense function ids (0..5) matching the
 * FunctionBenchApp enumeration order.
 */
const std::vector<FunctionSpec>& functionBenchCatalog();

/** Spec of one application (id as in the full catalog). */
const FunctionSpec& functionBenchSpec(FunctionBenchApp app);

/**
 * A catalog restricted to `apps`, with ids remapped densely in the
 * given order (for building workload traces over a subset).
 */
std::vector<FunctionSpec> functionBenchSubset(
    const std::vector<FunctionBenchApp>& apps);

}  // namespace faascache

#endif  // FAASCACHE_PLATFORM_FUNCTION_BENCH_H_

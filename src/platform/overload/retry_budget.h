/**
 * @file
 * Token-bucket retry budget for the cluster front end.
 *
 * Unbounded retries turn an outage into a self-inflicted burst: every
 * crash spills its queue into re-dispatches that land on the survivors
 * at the same instant. A retry budget caps re-dispatches as a fraction
 * of fresh arrivals — each fresh arrival dispatched toward a server
 * credits its bucket by `ratio` tokens (capped at `burst`), each retry
 * provoked by that server debits one token, and an empty bucket fails
 * the request immediately instead of amplifying the storm. The
 * arithmetic is plain double addition on exact binary fractions of
 * typical ratios, deterministic across platforms.
 */
#ifndef FAASCACHE_PLATFORM_OVERLOAD_RETRY_BUDGET_H_
#define FAASCACHE_PLATFORM_OVERLOAD_RETRY_BUDGET_H_

#include "platform/overload/overload.h"

namespace faascache {

/** One server's retry token bucket. */
class RetryBudget
{
  public:
    RetryBudget() = default;
    explicit RetryBudget(const RetryBudgetConfig& config)
        : config_(config), tokens_(config.enabled() ? config.burst : 0.0)
    {
    }

    /** A fresh arrival was dispatched toward this server. */
    void onFreshArrival()
    {
        if (!config_.enabled())
            return;
        tokens_ = tokens_ + config_.ratio > config_.burst
            ? config_.burst
            : tokens_ + config_.ratio;
    }

    /**
     * Spend one token for a retry. Always succeeds when the budget is
     * disabled. @return false when the bucket is empty (the retry must
     * be abandoned).
     */
    bool trySpend()
    {
        if (!config_.enabled())
            return true;
        if (tokens_ < 1.0)
            return false;
        tokens_ -= 1.0;
        return true;
    }

    /** Remaining tokens (diagnostics/tests). */
    double tokens() const { return tokens_; }

  private:
    RetryBudgetConfig config_;
    double tokens_ = 0.0;
};

}  // namespace faascache

#endif  // FAASCACHE_PLATFORM_OVERLOAD_RETRY_BUDGET_H_

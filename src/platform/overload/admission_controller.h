/**
 * @file
 * CoDel-style adaptive admission control for one invoker server.
 *
 * Classic tail-drop (a fixed queue capacity or high-water depth) only
 * reacts once the buffer is full — by then every queued request is
 * already doomed to a timeout, the paper's queue-collapse regime. CoDel
 * ("Controlling Queue Delay", Nichols & Jacobson 2012) instead watches
 * *how long* work sits in the queue: if the sojourn time of dequeued
 * requests stays above a target for a full control interval the queue
 * is standing, not bursting, and load must be shed.
 *
 * This adaptation sheds at the *arrival* edge (a FaaS front end cannot
 * drop work it already accepted without breaking request semantics):
 * while the target is violated, arrivals are shed on the CoDel control
 * law — the k-th shed of an episode happens interval/sqrt(k) after the
 * previous one, so the shed rate escalates the longer the violation
 * lasts and relaxes the moment sojourns recover. Everything is
 * deterministic: no randomness, integer time, and std::sqrt (exactly
 * rounded per IEEE-754) on small integer counts.
 */
#ifndef FAASCACHE_PLATFORM_OVERLOAD_ADMISSION_CONTROLLER_H_
#define FAASCACHE_PLATFORM_OVERLOAD_ADMISSION_CONTROLLER_H_

#include <cstdint>

#include "platform/overload/overload.h"
#include "util/types.h"

namespace faascache {

/** Deterministic CoDel-style arrival-shedding controller. */
class AdmissionController
{
  public:
    AdmissionController() = default;
    explicit AdmissionController(const AdmissionConfig& config)
        : config_(config)
    {
    }

    /** Forget all state (fresh run). */
    void reset();

    /**
     * Record the sojourn time of a request leaving the queue for a
     * core. Drives the violation detector: a sojourn below target
     * clears it instantly; sojourns above target arm it after one full
     * interval.
     */
    void onDequeue(TimeUs sojourn_us, TimeUs now);

    /**
     * Should this arrival be shed? Mutates the shed schedule: while in
     * violation, sheds escalate on the interval/sqrt(count) law.
     * Returns false always when the controller is disabled.
     */
    bool shouldShed(TimeUs now);

    /** In the violation (shedding) state? */
    bool violating() const { return violating_; }

    /** Times the violation state was entered since reset(). */
    std::int64_t violations() const { return violations_; }

  private:
    AdmissionConfig config_;

    /** Deadline by which sojourns must recover (0 = not armed). */
    TimeUs first_above_us_ = 0;

    bool violating_ = false;

    /** Sheds in the current violation episode. */
    std::int64_t shed_count_ = 0;

    /** Next time an arrival gets shed while violating. */
    TimeUs next_shed_us_ = 0;

    std::int64_t violations_ = 0;
};

}  // namespace faascache

#endif  // FAASCACHE_PLATFORM_OVERLOAD_ADMISSION_CONTROLLER_H_

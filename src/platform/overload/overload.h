/**
 * @file
 * Overload-control subsystem for the platform layer: graceful
 * degradation when the paper's §7.2 feedback loop — cold starts hold
 * cores and memory longer, the queue grows, requests drop — turns a
 * burst into a collapse.
 *
 * Four cooperating mechanisms, all deterministic and all default-off so
 * the undefended platform model is byte-identical to the pre-overload
 * behaviour:
 *
 *  - **Adaptive admission** (admission_controller.h): a CoDel-style
 *    controller per server tracks the sojourn time of dequeued requests
 *    against a target queueing delay and sheds arrivals at an
 *    increasing deterministic rate while the target stays violated —
 *    replacing the blunt fixed-depth queue gate with a latency-based
 *    one.
 *  - **Cold-start brownout** (BrownoutGovernor below): under memory
 *    pressure or admission violation the server denies only cold-path
 *    invocations while continuing to serve warm hits, preserving the
 *    Greedy-Dual cache value the paper argues for instead of evicting
 *    it to feed doomed cold starts.
 *  - **Retry budgets** (retry_budget.h): cluster-level token buckets —
 *    one per server — cap crash/outage re-dispatches as a fraction of
 *    fresh arrivals so retry storms cannot multiply a burst.
 *  - **Circuit breakers** (circuit_breaker.h): a per-server breaker
 *    opens on consecutive spawn failures/timeouts, half-open probes
 *    after a cool-down, and closes on success, composing with the
 *    health-aware failover of the cluster front end.
 *
 * This header holds the configuration tree (OverloadConfig rides
 * ServerConfig; the cluster-level knobs ride FailoverConfig) and the
 * OverloadCounters accounting block that rides PlatformResult and the
 * checkpoint codecs.
 */
#ifndef FAASCACHE_PLATFORM_OVERLOAD_OVERLOAD_H_
#define FAASCACHE_PLATFORM_OVERLOAD_OVERLOAD_H_

#include <cstdint>

#include "util/types.h"

namespace faascache {

/** CoDel-style adaptive admission control (per server). */
struct AdmissionConfig
{
    /** Master switch; disabled costs one branch per arrival. */
    bool enabled = false;

    /**
     * Target queueing delay: the sojourn time (enqueue to dispatch) the
     * controller tries to keep the queue under.
     */
    TimeUs target_delay_us = 500 * kMillisecond;

    /**
     * Control interval: sojourn must stay above target for a full
     * interval before shedding starts, and the shed rate escalates on
     * the CoDel interval/sqrt(count) schedule.
     */
    TimeUs interval_us = 10 * kSecond;

    /** Check invariants. @throws std::invalid_argument. */
    void validate() const;
};

/** Cold-start brownout: deny cold-path work, keep serving warm hits. */
struct BrownoutConfig
{
    /** Master switch; disabled costs one branch per dispatch. */
    bool enabled = false;

    /**
     * Minimum time a brownout window stays engaged once entered
     * (hysteresis), and the hold time after a memory-starved cold
     * dispatch before the memory-pressure trigger clears.
     */
    TimeUs min_duration_us = 5 * kSecond;

    /**
     * Also engage while the server's admission controller is in
     * violation (requires admission.enabled to have any effect).
     */
    bool on_admission_violation = true;

    /**
     * Also engage when a cold dispatch was blocked because busy
     * containers hold the memory it needs (the §7.2 feedback loop's
     * signature state).
     */
    bool on_memory_pressure = true;

    /** Check invariants. @throws std::invalid_argument. */
    void validate() const;
};

/** Per-server overload knobs (rides ServerConfig). */
struct OverloadConfig
{
    AdmissionConfig admission;
    BrownoutConfig brownout;

    /** Any per-server overload feature enabled? */
    bool any() const { return admission.enabled || brownout.enabled; }

    /** Check invariants of the tree. @throws std::invalid_argument. */
    void validate() const;
};

/**
 * Cluster-level retry budget: a token bucket per server. Fresh
 * arrivals dispatched toward a server credit its bucket by `ratio`
 * tokens (capped at `burst`); each re-dispatch provoked by that server
 * debits one token. An empty bucket fails the request instead of
 * retrying, so retries stay a bounded fraction of real load.
 */
struct RetryBudgetConfig
{
    /** Tokens earned per fresh arrival; 0 disables the budget. */
    double ratio = 0.0;

    /** Bucket capacity (maximum banked retries). */
    double burst = 16.0;

    bool enabled() const { return ratio > 0.0; }

    /** Check invariants. @throws std::invalid_argument. */
    void validate() const;
};

/**
 * Per-server circuit breaker driven by the server's failure signals
 * (consecutive spawn failures and queue timeouts from the FaultPlan
 * machinery). Closed -> Open at `failure_threshold` consecutive
 * failures; Open -> HalfOpen after `open_duration_us`; a half-open
 * probe closes the breaker on success and reopens it on failure.
 */
struct CircuitBreakerConfig
{
    /** Consecutive failures that trip the breaker; 0 disables it. */
    int failure_threshold = 0;

    /** Cool-down before a half-open probe is allowed. */
    TimeUs open_duration_us = 5 * kSecond;

    bool enabled() const { return failure_threshold > 0; }

    /** Check invariants. @throws std::invalid_argument. */
    void validate() const;
};

/**
 * Per-server overload accounting (rides PlatformResult and the
 * checkpoint codecs). All zero when the overload features are off.
 */
struct OverloadCounters
{
    /** Arrivals shed by the admission controller. */
    std::int64_t admission_shed = 0;

    /** Times the admission controller entered the violation state. */
    std::int64_t admission_violations = 0;

    /** Cold-path invocations denied while browned out. */
    std::int64_t brownout_denied_cold = 0;

    /** Brownout windows entered. */
    std::int64_t brownout_windows = 0;

    /** Total time spent browned out. */
    TimeUs brownout_us = 0;

    OverloadCounters& operator+=(const OverloadCounters& other);

    friend bool operator==(const OverloadCounters&,
                           const OverloadCounters&) = default;
};

}  // namespace faascache

#endif  // FAASCACHE_PLATFORM_OVERLOAD_OVERLOAD_H_

/**
 * @file
 * Cold-start brownout governor for one invoker server.
 *
 * The paper's §7.2 destabilizing loop is cold-start-powered: cold
 * starts hold extra cores and memory for their full initialization, so
 * a burst of them starves the warm path that could still be serving
 * cheaply. Brownout is the targeted countermeasure — while engaged, the
 * server denies only cold-path invocations (no warm container
 * available) and keeps serving warm hits untouched. Crucially this also
 * stops demand evictions: a denied cold start never evicts warm
 * Greedy-Dual cache to make room, so the cache value the paper argues
 * for survives the overload instead of being churned into it.
 *
 * Engagement is event-driven and deterministic:
 *  - memory pressure: a cold dispatch was blocked because busy
 *    containers hold the memory it needs (noteMemoryPressure); the
 *    trigger holds for min_duration_us past the last such event;
 *  - admission violation: the server's AdmissionController is in the
 *    shedding state (passed into update()).
 *
 * A window stays engaged at least min_duration_us (hysteresis), and
 * total browned-out time is accounted for the result counters.
 */
#ifndef FAASCACHE_PLATFORM_OVERLOAD_BROWNOUT_H_
#define FAASCACHE_PLATFORM_OVERLOAD_BROWNOUT_H_

#include <cstdint>

#include "platform/overload/overload.h"
#include "util/types.h"

namespace faascache {

/** Hysteretic brownout state machine. */
class BrownoutGovernor
{
  public:
    BrownoutGovernor() = default;
    explicit BrownoutGovernor(const BrownoutConfig& config)
        : config_(config)
    {
    }

    /** Forget all state (fresh run). */
    void reset();

    /**
     * A cold dispatch was blocked on memory held by busy containers.
     * Arms the memory-pressure trigger for min_duration_us.
     */
    void noteMemoryPressure(TimeUs now);

    /**
     * Re-evaluate engagement. Call before dispatch decisions.
     * @param admission_violating The server's admission controller is
     *        currently in its violation state.
     */
    void update(bool admission_violating, TimeUs now);

    /** Deny cold-path invocations right now? */
    bool active() const { return active_; }

    /** Windows entered since reset(). */
    std::int64_t windows() const { return windows_; }

    /**
     * Total browned-out time: closed windows plus the still-open tail
     * charged up to `now` (pass the run horizon at close). */
    TimeUs activeUs(TimeUs now) const;

  private:
    BrownoutConfig config_;
    bool active_ = false;
    TimeUs since_us_ = 0;

    /** Memory-pressure trigger holds until this time. */
    TimeUs pressure_until_us_ = 0;

    std::int64_t windows_ = 0;
    TimeUs total_us_ = 0;
};

}  // namespace faascache

#endif  // FAASCACHE_PLATFORM_OVERLOAD_BROWNOUT_H_

#include "platform/overload/admission_controller.h"

#include <cmath>

namespace faascache {

void
AdmissionController::reset()
{
    first_above_us_ = 0;
    violating_ = false;
    shed_count_ = 0;
    next_shed_us_ = 0;
    violations_ = 0;
}

void
AdmissionController::onDequeue(TimeUs sojourn_us, TimeUs now)
{
    if (!config_.enabled)
        return;
    if (sojourn_us < config_.target_delay_us) {
        // Queue delay recovered: disarm and leave violation.
        first_above_us_ = 0;
        violating_ = false;
        shed_count_ = 0;
        return;
    }
    if (first_above_us_ == 0) {
        // First above-target sojourn: give the queue one interval to
        // recover before declaring a standing queue.
        first_above_us_ = now + config_.interval_us;
        return;
    }
    if (!violating_ && now >= first_above_us_) {
        violating_ = true;
        ++violations_;
        shed_count_ = 0;
        next_shed_us_ = now;  // first shed fires immediately
    }
}

bool
AdmissionController::shouldShed(TimeUs now)
{
    if (!config_.enabled || !violating_)
        return false;
    if (now < next_shed_us_)
        return false;
    ++shed_count_;
    // CoDel control law: successive sheds come interval/sqrt(count)
    // apart, escalating the shed rate while the violation persists.
    const auto gap = static_cast<TimeUs>(
        static_cast<double>(config_.interval_us) /
        std::sqrt(static_cast<double>(shed_count_)));
    next_shed_us_ = now + (gap > 0 ? gap : 1);
    return true;
}

}  // namespace faascache

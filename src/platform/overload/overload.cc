#include "platform/overload/overload.h"

#include <stdexcept>
#include <string>

namespace faascache {

void
AdmissionConfig::validate() const
{
    if (!enabled)
        return;
    if (target_delay_us <= 0) {
        throw std::invalid_argument(
            "AdmissionConfig: target_delay_us must be > 0, got " +
            std::to_string(target_delay_us));
    }
    if (interval_us <= 0) {
        throw std::invalid_argument(
            "AdmissionConfig: interval_us must be > 0, got " +
            std::to_string(interval_us));
    }
}

void
BrownoutConfig::validate() const
{
    if (!enabled)
        return;
    if (min_duration_us <= 0) {
        throw std::invalid_argument(
            "BrownoutConfig: min_duration_us must be > 0, got " +
            std::to_string(min_duration_us));
    }
    if (!on_admission_violation && !on_memory_pressure) {
        throw std::invalid_argument(
            "BrownoutConfig: enabled but both triggers "
            "(on_admission_violation, on_memory_pressure) are off");
    }
}

void
OverloadConfig::validate() const
{
    admission.validate();
    brownout.validate();
}

void
RetryBudgetConfig::validate() const
{
    if (ratio < 0.0) {
        throw std::invalid_argument(
            "RetryBudgetConfig: ratio must be >= 0, got " +
            std::to_string(ratio));
    }
    if (enabled() && burst < 1.0) {
        throw std::invalid_argument(
            "RetryBudgetConfig: burst must be >= 1 when the budget is "
            "enabled, got " +
            std::to_string(burst));
    }
}

void
CircuitBreakerConfig::validate() const
{
    if (failure_threshold < 0) {
        throw std::invalid_argument(
            "CircuitBreakerConfig: failure_threshold must be >= 0, got " +
            std::to_string(failure_threshold));
    }
    if (enabled() && open_duration_us <= 0) {
        throw std::invalid_argument(
            "CircuitBreakerConfig: open_duration_us must be > 0 when the "
            "breaker is enabled, got " +
            std::to_string(open_duration_us));
    }
}

OverloadCounters&
OverloadCounters::operator+=(const OverloadCounters& other)
{
    admission_shed += other.admission_shed;
    admission_violations += other.admission_violations;
    brownout_denied_cold += other.brownout_denied_cold;
    brownout_windows += other.brownout_windows;
    brownout_us += other.brownout_us;
    return *this;
}

}  // namespace faascache

/**
 * @file
 * Per-server circuit breaker for the cluster front end.
 *
 * A server suffering a spawn-failure storm (flaky dockerd, image-pull
 * outage — the FaultPlan's transient faults) keeps accepting requests
 * it cannot start, turning each into a queue-timeout or a retry. The
 * breaker converts that slow failure into fast failover: after
 * `failure_threshold` consecutive failures the breaker opens and the
 * front end routes around the server; after `open_duration_us` it goes
 * half-open and admits a single probe; a success closes it, a failure
 * reopens it. While half-open, at most one probe per cool-down is
 * admitted so an unresponsive server cannot soak up traffic.
 *
 * The state machine is time-driven off the simulation clock and fully
 * deterministic. Transition counts are exposed for the result
 * accounting and the checkpoint codecs.
 */
#ifndef FAASCACHE_PLATFORM_OVERLOAD_CIRCUIT_BREAKER_H_
#define FAASCACHE_PLATFORM_OVERLOAD_CIRCUIT_BREAKER_H_

#include <cstdint>

#include "platform/overload/overload.h"
#include "util/types.h"

namespace faascache {

/** Breaker position. */
enum class BreakerState
{
    Closed,    ///< normal dispatch
    Open,      ///< failing fast; no dispatch until cool-down elapses
    HalfOpen,  ///< cool-down elapsed; one probe admitted per cool-down
};

/** Deterministic circuit-breaker state machine. */
class CircuitBreaker
{
  public:
    CircuitBreaker() = default;
    explicit CircuitBreaker(const CircuitBreakerConfig& config)
        : config_(config)
    {
    }

    /** Forget all state (fresh run). */
    void reset();

    /** Current position (Open lazily becomes HalfOpen as time passes). */
    BreakerState state(TimeUs now) const;

    /**
     * May a request be dispatched to this server now? Closed: always.
     * Open: no. HalfOpen: admits one probe per cool-down period
     * (claiming the probe slot). Disabled breakers always allow.
     */
    bool allowRequest(TimeUs now);

    /**
     * Would allowRequest() admit at `now`? Pure observation: never
     * claims the half-open probe slot. The sharded cluster front end
     * evaluates remote servers off barrier snapshots, so admission
     * checks there must not mutate breaker state; the probe slot is
     * claimed by the owning shard when a forwarded offer is delivered.
     */
    bool peekAllow(TimeUs now) const;

    /** A success signal (warm start or successful container spawn). */
    void recordSuccess(TimeUs now);

    /** A failure signal (spawn failure or queue-timeout drop). */
    void recordFailure(TimeUs now);

    /**
     * @name Transition accounting since reset()
     * @{
     */
    std::int64_t opens() const { return opens_; }
    std::int64_t closes() const { return closes_; }
    std::int64_t probes() const { return probes_; }
    /** @} */

  private:
    void open(TimeUs now);

    CircuitBreakerConfig config_;
    BreakerState state_ = BreakerState::Closed;
    int consecutive_failures_ = 0;
    TimeUs opened_at_us_ = 0;

    /** Next half-open probe admission time. */
    TimeUs next_probe_us_ = 0;

    std::int64_t opens_ = 0;
    std::int64_t closes_ = 0;
    std::int64_t probes_ = 0;
};

}  // namespace faascache

#endif  // FAASCACHE_PLATFORM_OVERLOAD_CIRCUIT_BREAKER_H_

#include "platform/overload/circuit_breaker.h"

namespace faascache {

void
CircuitBreaker::reset()
{
    state_ = BreakerState::Closed;
    consecutive_failures_ = 0;
    opened_at_us_ = 0;
    next_probe_us_ = 0;
    opens_ = 0;
    closes_ = 0;
    probes_ = 0;
}

BreakerState
CircuitBreaker::state(TimeUs now) const
{
    if (state_ == BreakerState::Open &&
        now >= opened_at_us_ + config_.open_duration_us)
        return BreakerState::HalfOpen;
    return state_;
}

void
CircuitBreaker::open(TimeUs now)
{
    state_ = BreakerState::Open;
    opened_at_us_ = now;
    next_probe_us_ = now + config_.open_duration_us;
    consecutive_failures_ = 0;
    ++opens_;
}

bool
CircuitBreaker::allowRequest(TimeUs now)
{
    if (!config_.enabled())
        return true;
    switch (state(now)) {
      case BreakerState::Closed:
        return true;
      case BreakerState::Open:
        return false;
      case BreakerState::HalfOpen:
        state_ = BreakerState::HalfOpen;
        if (now < next_probe_us_)
            return false;
        // Claim the probe slot; the next one needs another cool-down
        // unless a success closes the breaker first.
        next_probe_us_ = now + config_.open_duration_us;
        ++probes_;
        return true;
    }
    return true;
}

bool
CircuitBreaker::peekAllow(TimeUs now) const
{
    if (!config_.enabled())
        return true;
    switch (state(now)) {
      case BreakerState::Closed:
        return true;
      case BreakerState::Open:
        return false;
      case BreakerState::HalfOpen:
        return now >= next_probe_us_;
    }
    return true;
}

void
CircuitBreaker::recordSuccess(TimeUs now)
{
    if (!config_.enabled())
        return;
    consecutive_failures_ = 0;
    if (state(now) != BreakerState::Closed) {
        state_ = BreakerState::Closed;
        ++closes_;
    }
}

void
CircuitBreaker::recordFailure(TimeUs now)
{
    if (!config_.enabled())
        return;
    switch (state(now)) {
      case BreakerState::HalfOpen:
        // The probe failed: straight back to Open.
        open(now);
        break;
      case BreakerState::Open:
        break;  // already failing fast
      case BreakerState::Closed:
        if (++consecutive_failures_ >= config_.failure_threshold)
            open(now);
        break;
    }
}

}  // namespace faascache

#include "platform/overload/brownout.h"

namespace faascache {

void
BrownoutGovernor::reset()
{
    active_ = false;
    since_us_ = 0;
    pressure_until_us_ = 0;
    windows_ = 0;
    total_us_ = 0;
}

void
BrownoutGovernor::noteMemoryPressure(TimeUs now)
{
    if (!config_.enabled || !config_.on_memory_pressure)
        return;
    pressure_until_us_ = now + config_.min_duration_us;
    if (!active_) {
        active_ = true;
        since_us_ = now;
        ++windows_;
    }
}

void
BrownoutGovernor::update(bool admission_violating, TimeUs now)
{
    if (!config_.enabled)
        return;
    const bool triggered =
        (config_.on_admission_violation && admission_violating) ||
        (config_.on_memory_pressure && now < pressure_until_us_);
    if (!active_) {
        if (triggered) {
            active_ = true;
            since_us_ = now;
            ++windows_;
        }
        return;
    }
    // Engaged: hold at least min_duration_us, then release once every
    // trigger has cleared.
    if (!triggered && now >= since_us_ + config_.min_duration_us) {
        active_ = false;
        total_us_ += now - since_us_;
    }
}

TimeUs
BrownoutGovernor::activeUs(TimeUs now) const
{
    TimeUs total = total_us_;
    if (active_ && now > since_us_)
        total += now - since_us_;
    return total;
}

}  // namespace faascache

/**
 * @file
 * Model of the cold-start pipeline observed in OpenWhisk (paper §3,
 * Figure 1): container-pool check, Akka/Docker container startup,
 * OpenWhisk+language runtime initialization, explicit (user) function
 * initialization, and finally the function execution itself.
 */
#ifndef FAASCACHE_PLATFORM_COLD_START_MODEL_H_
#define FAASCACHE_PLATFORM_COLD_START_MODEL_H_

#include "trace/function_spec.h"
#include "util/types.h"

namespace faascache {

/** Platform-fixed stage durations (Figure 1 measurements). */
struct ColdStartModelConfig
{
    /** Checking the warm container pool for a match. */
    TimeUs pool_check_us = fromSeconds(0.04);

    /** Akka scheduling plus Docker container launch. */
    TimeUs docker_startup_us = fromSeconds(0.45);

    /** OpenWhisk action-runtime initialization. */
    TimeUs ow_runtime_init_us = fromSeconds(1.50);

    /** Language runtime (e.g. Python interpreter + stdlib) startup. */
    TimeUs language_init_us = fromSeconds(0.76);
};

/** Per-stage breakdown of one cold invocation. */
struct ColdStartBreakdown
{
    TimeUs pool_check_us = 0;
    TimeUs docker_startup_us = 0;
    TimeUs ow_runtime_init_us = 0;
    TimeUs language_init_us = 0;
    TimeUs explicit_init_us = 0;
    TimeUs execution_us = 0;

    /** Everything before the user's handler runs. */
    TimeUs overheadUs() const
    {
        return pool_check_us + docker_startup_us + ow_runtime_init_us +
            language_init_us + explicit_init_us;
    }

    /** Total user-visible latency of the cold invocation. */
    TimeUs totalUs() const { return overheadUs() + execution_us; }
};

/**
 * Decompose a function's cold start into pipeline stages. The platform
 * stages are fixed; the remainder of the function's initialization time
 * is attributed to explicit (user) initialization, e.g. model downloads.
 * If the function's total init time is smaller than the fixed platform
 * stages (lightweight runtimes), the platform stages are scaled down
 * proportionally and explicit init is zero.
 */
ColdStartBreakdown coldStartBreakdown(const FunctionSpec& function,
                                      const ColdStartModelConfig& config = {});

}  // namespace faascache

#endif  // FAASCACHE_PLATFORM_COLD_START_MODEL_H_

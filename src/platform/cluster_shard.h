/**
 * @file
 * Sharded cluster simulation (DESIGN.md §4i): the invoker fleet is
 * partitioned into contiguous server ranges, one worker thread + one
 * EventCore + one arrival cursor per shard, synchronized by a
 * conservative time-windowed barrier protocol.
 *
 * The lookahead horizon H is the minimum cross-shard latency,
 * FailoverConfig::base_backoff_us: every cross-shard effect is either
 * a retry (which fires at now + backoff, and backoff >= H) or a
 * forwarded offer (which the protocol quantizes to the next window
 * boundary), so no message produced inside a window [T, T + H) can
 * require delivery before T + H — shards may simulate a whole window
 * without hearing from each other.
 *
 * Determinism discipline: every decision is a function of (the event's
 * own server's live state, per-server snapshots frozen at the last
 * barrier, mail delivered at barriers in a canonically sorted order).
 * Nothing depends on which shard hosts a server, so results are
 * byte-identical for every shard count N >= 1. The shard count is an
 * execution grouping, not a semantic parameter.
 *
 * This header exposes the partition/mailbox/barrier building blocks
 * for tests; the entry point is runCluster(const ShardedWorkload&)
 * declared in cluster.h.
 */
#ifndef FAASCACHE_PLATFORM_CLUSTER_SHARD_H_
#define FAASCACHE_PLATFORM_CLUSTER_SHARD_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "platform/cluster.h"
#include "trace/trace.h"
#include "util/types.h"

namespace faascache {

/**
 * Shards actually used for a fleet of `num_servers`: at least one, at
 * most one per server (an empty shard would have nothing to own).
 */
std::size_t effectiveShards(std::size_t shards, std::size_t num_servers);

/**
 * Contiguous balanced partition: shard `shard` owns servers
 * [first, first + count). The first `num_servers % num_shards` shards
 * own one extra server. @pre shard < num_shards <= num_servers.
 */
std::pair<std::size_t, std::size_t> shardServerRange(
    std::size_t shard, std::size_t num_shards, std::size_t num_servers);

/** Owning shard of `server` under the same partition. */
std::size_t shardOfServer(std::size_t server, std::size_t num_shards,
                          std::size_t num_servers);

/**
 * The synchronization window H in microseconds (the conservative
 * lookahead horizon; see the file comment).
 */
TimeUs shardWindowUs(const ClusterConfig& config);

/** One message crossing shards at a window boundary. */
struct ShardMail
{
    enum class Kind : std::uint8_t
    {
        /** A dispatch chose a server on another shard: the offer is
         *  delivered at the next barrier time (window-quantized
         *  forwarding latency). */
        ForwardOffer,

        /** A scheduled retry of a request whose primary lives on the
         *  destination shard; fires at its exact at_us (>= the next
         *  barrier by the backoff >= H argument). */
        RetryFire,
    };

    Kind kind = Kind::ForwardOffer;
    std::size_t index = 0;    ///< global stream index of the request
    Invocation inv;           ///< the request itself (catalog-global id)
    int attempt = 0;          ///< attempt the delivery/dispatch runs under
    std::size_t target = 0;   ///< destination server (routes the mail)
    std::size_t primary = 0;  ///< balancer primary of the request
    TimeUs at_us = 0;         ///< RetryFire only: dispatch time
};

/**
 * Per-window exchange queues. During a window each shard appends to
 * its own outbox (no locking — one writer per slot). At the barrier
 * the leader routes every posted message to the destination server's
 * owning shard and sorts each inbox into a canonical order (kind,
 * then RetryFire time, then index, attempt, target) — deterministic
 * regardless of which shard posted what, and regardless of how posts
 * from different servers interleaved inside the window. Windows never
 * mix: exchange() consumes exactly the messages posted since the
 * previous exchange (FIFO across windows by construction).
 */
class ShardMailbox
{
  public:
    explicit ShardMailbox(std::size_t num_shards)
        : outboxes_(num_shards), inboxes_(num_shards)
    {
    }

    /** The posting queue of `shard`; touched only by its own thread. */
    std::vector<ShardMail>& outbox(std::size_t shard)
    {
        return outboxes_[shard];
    }

    /** Any message posted since the last exchange? (leader-only). */
    bool anyPosted() const;

    /** Route + sort all posted messages into inboxes (leader-only). */
    void exchange(
        const std::function<std::size_t(std::size_t server)>& owner);

    /** Messages delivered to `shard` by the last exchange(). */
    const std::vector<ShardMail>& inbox(std::size_t shard) const
    {
        return inboxes_[shard];
    }

  private:
    std::vector<std::vector<ShardMail>> outboxes_;
    std::vector<std::vector<ShardMail>> inboxes_;
};

/** Thrown to waiters when a ShardBarrier is aborted (a peer failed). */
class ShardAborted : public std::runtime_error
{
  public:
    ShardAborted() : std::runtime_error("shard barrier aborted") {}
};

/**
 * Reusable barrier with a leader section: the last thread to arrive
 * runs `leader` (mail exchange, window advance) while the others wait,
 * then all release together. abort() wakes every waiter with
 * ShardAborted so one shard's failure cannot deadlock the rest.
 */
class ShardBarrier
{
  public:
    explicit ShardBarrier(std::size_t parties) : parties_(parties) {}

    /** @throws ShardAborted when the barrier was aborted; rethrows the
     *  leader's exception on the arriving thread that ran it. */
    void arriveAndWait(const std::function<void()>& leader = {});

    void abort();

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    std::size_t parties_;
    std::size_t arrived_ = 0;
    std::uint64_t generation_ = 0;
    bool aborted_ = false;
};

/**
 * Sharded fault-free split replay: per-server independent runs
 * executed by shard worker threads. Byte-identical to the legacy
 * split paths (hints aside, which are allocation-only).
 */
ClusterResult runClusterSplitSharded(const ShardedWorkload& workload,
                                     PolicyKind kind,
                                     const ClusterConfig& config,
                                     const PolicyConfig& policy_config);

/**
 * Windowed sharded engine for runs with front-end machinery (faults,
 * admission, budgets, breakers). Byte-identical across every shard
 * count N >= 1; see ClusterConfig::shards for the relationship to the
 * legacy single-threaded interleave.
 */
ClusterResult runClusterShardedWindowed(const SourceFactory& make_source,
                                        PolicyKind kind,
                                        const ClusterConfig& config,
                                        const PolicyConfig& policy_config);

}  // namespace faascache

#endif  // FAASCACHE_PLATFORM_CLUSTER_SHARD_H_

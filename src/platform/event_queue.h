/**
 * @file
 * Deterministic discrete-event queue for the platform model. Events at
 * equal timestamps are delivered in insertion (FIFO) order via a
 * monotonically increasing sequence number.
 */
#ifndef FAASCACHE_PLATFORM_EVENT_QUEUE_H_
#define FAASCACHE_PLATFORM_EVENT_QUEUE_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "util/types.h"

namespace faascache {

/** What a scheduled event represents. */
enum class EventKind
{
    Arrival,      ///< a request arrived (payload: invocation index)
    Finish,       ///< an invocation completed (payload: container id)
    InitDone,     ///< a cold start finished initializing (payload: id)
    Maintenance,  ///< periodic expiry/prewarm/queue housekeeping
    Retry,        ///< re-drain the queue after a spawn-failure holdoff
    Crash,        ///< injected server crash (payload: crash-list index)
    Restart,      ///< crashed server rejoins, cold
};

/** One scheduled event. */
struct Event
{
    TimeUs time_us = 0;
    std::uint64_t seq = 0;  ///< assigned by the queue; breaks time ties
    EventKind kind = EventKind::Maintenance;
    std::uint64_t payload = 0;
};

/** Min-heap of events ordered by (time, seq). */
class EventQueue
{
  public:
    /** Schedule an event; its sequence number is assigned here. */
    void push(TimeUs time_us, EventKind kind, std::uint64_t payload = 0);

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Timestamp of the next event. @pre !empty(). */
    TimeUs nextTime() const { return heap_.top().time_us; }

    /** Remove and return the next event. @pre !empty(). */
    Event pop();

  private:
    struct Later
    {
        bool operator()(const Event& a, const Event& b) const
        {
            if (a.time_us != b.time_us)
                return a.time_us > b.time_us;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    std::uint64_t next_seq_ = 0;
};

}  // namespace faascache

#endif  // FAASCACHE_PLATFORM_EVENT_QUEUE_H_

#include "platform/cluster_shard.h"

#include <algorithm>
#include <cassert>
#include <exception>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "engine/event_engine.h"
#include "platform/balancer_stream.h"
#include "sim/sweep_runner.h"
#include "util/audit.h"

namespace faascache {

std::size_t
effectiveShards(std::size_t shards, std::size_t num_servers)
{
    return std::min(std::max<std::size_t>(shards, 1), num_servers);
}

std::pair<std::size_t, std::size_t>
shardServerRange(std::size_t shard, std::size_t num_shards,
                 std::size_t num_servers)
{
    assert(shard < num_shards && num_shards <= num_servers);
    const std::size_t base = num_servers / num_shards;
    const std::size_t extra = num_servers % num_shards;
    const std::size_t first =
        shard * base + std::min(shard, extra);
    const std::size_t count = base + (shard < extra ? 1 : 0);
    return {first, count};
}

std::size_t
shardOfServer(std::size_t server, std::size_t num_shards,
              std::size_t num_servers)
{
    assert(server < num_servers && num_shards <= num_servers);
    const std::size_t base = num_servers / num_shards;
    const std::size_t extra = num_servers % num_shards;
    const std::size_t wide = extra * (base + 1);
    if (server < wide)
        return server / (base + 1);
    return extra + (server - wide) / base;
}

TimeUs
shardWindowUs(const ClusterConfig& config)
{
    // The minimum cross-shard latency: a retry backs off by at least
    // base_backoff_us (jitter only adds), and forwarded offers are
    // quantized to window boundaries by the protocol itself, so H =
    // base_backoff_us is a safe conservative lookahead.
    return config.failover.base_backoff_us;
}

bool
ShardMailbox::anyPosted() const
{
    for (const auto& box : outboxes_) {
        if (!box.empty())
            return true;
    }
    return false;
}

void
ShardMailbox::exchange(
    const std::function<std::size_t(std::size_t server)>& owner)
{
    for (auto& box : inboxes_)
        box.clear();
    for (auto& box : outboxes_) {
        for (const ShardMail& mail : box)
            inboxes_[owner(mail.target)].push_back(mail);
        box.clear();
    }
    // Canonical delivery order, independent of the posting shard and
    // of how posts interleaved inside the window: offers (delivered at
    // the barrier instant) first by (index, attempt); retries (heap
    // insertions) by their fire time. A request is in exactly one
    // place at a time, so (kind, index, attempt) never collides;
    // target is a pure safety tiebreak.
    auto less = [](const ShardMail& a, const ShardMail& b) {
        if (a.kind != b.kind)
            return a.kind < b.kind;
        if (a.kind == ShardMail::Kind::RetryFire && a.at_us != b.at_us)
            return a.at_us < b.at_us;
        if (a.index != b.index)
            return a.index < b.index;
        if (a.attempt != b.attempt)
            return a.attempt < b.attempt;
        return a.target < b.target;
    };
    for (auto& box : inboxes_)
        std::sort(box.begin(), box.end(), less);
}

void
ShardBarrier::arriveAndWait(const std::function<void()>& leader)
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (aborted_)
        throw ShardAborted();
    const std::uint64_t generation = generation_;
    if (++arrived_ == parties_) {
        arrived_ = 0;
        if (leader) {
            try {
                leader();
            } catch (...) {
                aborted_ = true;
                ++generation_;
                cv_.notify_all();
                throw;
            }
        }
        ++generation_;
        cv_.notify_all();
        return;
    }
    cv_.wait(lock,
             [&] { return generation_ != generation || aborted_; });
    if (aborted_)
        throw ShardAborted();
}

void
ShardBarrier::abort()
{
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
    cv_.notify_all();
}

namespace {

constexpr TimeUs kNoEvent = std::numeric_limits<TimeUs>::max();

/** Front-end events local to one shard's heap. */
enum class ShardEvent
{
    RetryFire,  ///< re-dispatch a request whose primary we own
    Crash,      ///< a crash of an owned server (Failure lane)
    Restart,    ///< an owned crashed server rejoins
    OomKill,    ///< a memory-pressure kill on an owned server
};

/** Remote view of a server, frozen at the last barrier. */
struct ShardSnapshot
{
    bool down = false;
    bool admit = true;  ///< CircuitBreaker::peekAllow at the barrier
    std::size_t queue_depth = 0;
};

/** Per-shard front-end counters, summed by the coordinator. */
struct ShardCounters
{
    std::int64_t retries = 0;
    std::int64_t failovers = 0;
    std::int64_t shed_requests = 0;
    std::int64_t failed_requests = 0;
    std::int64_t retry_budget_exhausted = 0;
    std::int64_t partition_unreachable = 0;
    std::int64_t breaker_opens = 0;
    std::int64_t breaker_closes = 0;
    std::int64_t breaker_probes = 0;
};

/** State shared by all shard workers of one windowed run. */
struct WindowedRun
{
    const ClusterConfig* config = nullptr;
    PolicyKind kind{};
    const PolicyConfig* policy_config = nullptr;
    const SourceFactory* make_source = nullptr;
    std::size_t num_shards = 0;
    TimeUs window_us = 0;
    std::vector<CrashEvent> crashes;  ///< shared expanded schedule

    ShardBarrier barrier;
    ShardMailbox mailbox;
    std::function<std::size_t(std::size_t)> owner;

    /** Written by each server's owner in phase A, read by everyone in
     *  phases B/C of the same round; the two barriers order the
     *  accesses. */
    std::vector<ShardSnapshot> snapshots;

    /** Reduction slots, one per shard, read by the barrier leader. */
    std::vector<TimeUs> local_min;
    std::vector<TimeUs> shard_last_event;
    std::vector<std::size_t> shard_stream_length;

    /** Leader-owned round state, read by all after the barrier. */
    TimeUs window_start = 0;
    bool done = false;
    TimeUs global_last_event = 0;

    std::vector<PlatformResult> server_results;
    std::vector<ShardCounters> counters;
    std::vector<std::exception_ptr> errors;

    explicit WindowedRun(std::size_t shards, std::size_t servers)
        : barrier(shards), mailbox(shards), snapshots(servers),
          local_min(shards, kNoEvent), shard_last_event(shards, 0),
          shard_stream_length(shards, 0), server_results(servers),
          counters(shards), errors(shards)
    {
    }
};

/**
 * One shard's worker: owns servers [first, first + count), replays the
 * full arrival stream through its own cursor + PrimaryTracker (so
 * balancer draws stay in global order), processes owned events window
 * by window, and exchanges cross-shard effects at barriers. See the
 * header comment for the invariance argument.
 */
void
runShardWorker(WindowedRun& run, std::size_t shard)
{
    const ClusterConfig& config = *run.config;
    const FailoverConfig& failover = config.failover;
    const std::size_t n = config.num_servers;
    const auto [first_server, owned_count] =
        shardServerRange(shard, run.num_shards, n);
    const std::size_t end_server = first_server + owned_count;
    auto owned = [&](std::size_t s) {
        return s >= first_server && s < end_server;
    };

    Auditor* audit =
        config.server.audit != nullptr && config.server.audit->enabled()
        ? config.server.audit
        : nullptr;

    const std::unique_ptr<InvocationSource> source = (*run.make_source)();
    source->reset();
    const std::vector<FunctionSpec>& catalog = source->functions();
    const SourceCountHint hint = source->countHint();

    std::vector<FaultInjector> injectors;
    injectors.reserve(owned_count);
    std::vector<std::unique_ptr<Server>> servers(n);
    for (std::size_t s = first_server; s < end_server; ++s) {
        injectors.emplace_back(config.faults, s, n);
        servers[s] = std::make_unique<Server>(
            makePolicy(run.kind, *run.policy_config), config.server);
        servers[s]->setFaultInjector(&injectors.back());
        // Sizing hint only: each server sees roughly 1/n of the stream.
        servers[s]->begin(catalog, hint.count / n + 16);
    }

    EventCore<ShardEvent> events;
    events.bindCancellation(config.server.cancel);
    events.bindAuditor(audit);
    const std::vector<OomKillEvent>& ooms = config.faults.oom_kills;
    events.reserve(run.crashes.size() + ooms.size() + 64);
    std::vector<EventBatchItem<ShardEvent>> setup;
    setup.reserve(std::max(run.crashes.size(), ooms.size()));
    for (std::size_t k = 0; k < run.crashes.size(); ++k) {
        if (!owned(run.crashes[k].server))
            continue;
        EventBatchItem<ShardEvent> item;
        item.time_us = run.crashes[k].at_us;
        item.kind = ShardEvent::Crash;
        item.payload = k;
        setup.push_back(item);
    }
    events.scheduleBatch(setup, EventLane::Failure);
    setup.clear();
    for (std::size_t k = 0; k < ooms.size(); ++k) {
        if (!owned(ooms[k].server))
            continue;
        EventBatchItem<ShardEvent> item;
        item.time_us = ooms[k].at_us;
        item.kind = ShardEvent::OomKill;
        item.payload = k;
        setup.push_back(item);
    }
    events.scheduleBatch(setup, EventLane::Failure);

    // Per-server partition windows with a monotonic cursor each: this
    // shard's queries are time-ordered (events within a window are
    // processed in time order, windows advance), and reachability is a
    // pure function of (server, time), so per-shard cursors answer
    // identically for every shard count.
    std::vector<std::vector<PartitionWindow>> partition_windows(n);
    std::vector<std::size_t> partition_cursor(n, 0);
    for (std::size_t s = 0; s < n; ++s)
        partition_windows[s] = config.faults.partitionsFor(s);
    auto partitioned = [&](std::size_t s, TimeUs now) {
        const auto& wins = partition_windows[s];
        std::size_t& cur = partition_cursor[s];
        while (cur < wins.size() && wins[cur].until_us <= now)
            ++cur;
        return cur < wins.size() && wins[cur].from_us <= now;
    };

    ShardCounters& ctr = run.counters[shard];
    std::vector<char> down(n, 0);
    TimeUs last_event_us = 0;

    std::vector<RetryBudget> budgets(n,
                                     RetryBudget(failover.retry_budget));
    std::vector<CircuitBreaker> breakers(n,
                                         CircuitBreaker(failover.breaker));
    std::vector<std::int64_t> seen_failures(n, 0);
    std::vector<std::int64_t> seen_successes(n, 0);
    const bool breaker_on = failover.breaker.enabled();
    auto observeServer = [&](std::size_t s, TimeUs now) {
        const std::int64_t failures = servers[s]->spawnFailureCount() +
            servers[s]->queueTimeoutDropCount();
        const std::int64_t successes = servers[s]->spawnSuccessCount() +
            servers[s]->warmStartCount();
        for (; seen_failures[s] < failures; ++seen_failures[s])
            breakers[s].recordFailure(now);
        for (; seen_successes[s] < successes; ++seen_successes[s])
            breakers[s].recordSuccess(now);
    };
    auto settleServer = [&](std::size_t s, TimeUs now) {
        servers[s]->advanceTo(now);
        if (breaker_on)
            observeServer(s, now);
    };

    const std::uint64_t jitter_base =
        deriveCellSeed(config.seed, 0xBACC0FFEULL);

    // A request's attempt count travels with it: the request is in
    // exactly one place at any moment, so the count riding along IS
    // the global count. `resident` records the attempt/primary of
    // requests currently sitting on an owned server whenever they
    // differ from the attempt-0/self default (forwarded or retried
    // residents); `retry_info` holds the invocation + primary of
    // retries pending on this shard (we own their primary).
    struct Resident
    {
        int attempt = 0;
        std::size_t primary = 0;
    };
    std::unordered_map<std::size_t, Resident> resident;
    struct PendingRetry
    {
        Invocation inv;
        std::size_t primary = 0;
    };
    std::unordered_map<std::size_t, PendingRetry> retry_info;

    // Identical decision sequence to the legacy scheduleRetry, made
    // local by the traveling attempt count: `provoker` (whose budget
    // is debited) is always owned by this shard. The scheduled fire
    // always crosses the mailbox — even when we own the primary — so
    // the path taken never depends on the shard layout.
    auto scheduleRetry = [&](std::size_t index, const Invocation& inv,
                             TimeUs now, std::size_t provoker,
                             int attempt, std::size_t primary) {
        if (attempt >= failover.max_retries) {
            ++ctr.failed_requests;
            return;
        }
        if (!budgets[provoker].trySpend()) {
            ++ctr.failed_requests;
            ++ctr.retry_budget_exhausted;
            return;
        }
        const int shift = std::min(attempt, 20);
        TimeUs backoff = failover.base_backoff_us << shift;
        if (failover.backoff_jitter_frac > 0.0) {
            const std::uint64_t draw = deriveCellSeed(
                jitter_base,
                (static_cast<std::uint64_t>(index) << 8) |
                    (static_cast<std::uint64_t>(attempt) & 0xff));
            const auto span = static_cast<std::uint64_t>(
                static_cast<double>(backoff) *
                failover.backoff_jitter_frac) + 1;
            backoff += static_cast<TimeUs>(draw % span);
        }
        const TimeUs at = now + backoff;
        if (at - inv.arrival_us > failover.request_timeout_us) {
            ++ctr.failed_requests;
            return;
        }
        ++ctr.retries;
        ShardMail mail;
        mail.kind = ShardMail::Kind::RetryFire;
        mail.index = index;
        mail.inv = inv;
        mail.attempt = attempt + 1;
        mail.target = primary;
        mail.primary = primary;
        mail.at_us = at;
        run.mailbox.outbox(shard).push_back(mail);
    };

    // The attempt/primary under which a request sits on an owned
    // server (attempt-0 locals never allocate an entry).
    auto residentOf = [&](std::size_t index, std::size_t host) {
        const auto it = resident.find(index);
        return it != resident.end() ? it->second : Resident{0, host};
    };

    // Route one dispatch. `primary` is owned by this shard (arrivals
    // and retries both fire on the primary's owner). Live state is
    // consulted only for the primary itself; every other server — even
    // a same-shard one — is judged by its barrier snapshot, so the
    // probe sequence is a pure function of snapshot state and shard
    // layout cannot change it.
    auto processDispatch = [&](std::size_t index, const Invocation& inv,
                               int attempt, std::size_t primary,
                               TimeUs now) {
        settleServer(primary, now);
        const std::size_t start =
            (primary + static_cast<std::size_t>(attempt)) % n;
        std::size_t chosen = n;
        bool any_healthy = false;
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t s = (start + k) % n;
            if (s == primary) {
                if (down[s] != 0)
                    continue;
                if (partitioned(s, now)) {
                    ++ctr.partition_unreachable;
                    continue;
                }
                if (!breakers[s].allowRequest(now))
                    continue;
                any_healthy = true;
                if (failover.shed_queue_depth > 0 &&
                    servers[s]->queueDepth() >=
                        failover.shed_queue_depth) {
                    continue;
                }
            } else {
                const ShardSnapshot& snap = run.snapshots[s];
                if (snap.down)
                    continue;
                if (partitioned(s, now)) {
                    ++ctr.partition_unreachable;
                    continue;
                }
                if (!snap.admit)
                    continue;
                any_healthy = true;
                if (failover.shed_queue_depth > 0 &&
                    snap.queue_depth >= failover.shed_queue_depth) {
                    continue;
                }
            }
            chosen = s;
            break;
        }
        if (chosen == n) {
            if (any_healthy) {
                ++ctr.shed_requests;
            } else {
                scheduleRetry(index, inv, now, primary, attempt,
                              primary);
            }
            return;
        }
        if (chosen != primary) {
            ++ctr.failovers;
            ShardMail mail;
            mail.kind = ShardMail::Kind::ForwardOffer;
            mail.index = index;
            mail.inv = inv;
            mail.attempt = attempt;
            mail.target = chosen;
            mail.primary = primary;
            run.mailbox.outbox(shard).push_back(mail);
            return;
        }
        if (attempt == 0)
            budgets[primary].onFreshArrival();
        else
            resident[index] = Resident{attempt, primary};
        servers[primary]->offer(index, inv, now,
                                /*redispatched=*/attempt > 0);
    };

    PrimaryTracker primaries(config, /*record=*/false);
    std::size_t cursor_index = 0;
    TimeUs last_arrival = 0;
    Invocation arr;

    for (;;) {
        const TimeUs window = run.window_start;
        const TimeUs window_end = window + run.window_us;

        // Phase A: settle owned servers to the barrier instant and
        // publish their snapshots (the frozen view every other shard
        // dispatches against for the coming window).
        for (std::size_t s = first_server; s < end_server; ++s) {
            settleServer(s, window);
            ShardSnapshot snap;
            snap.down = down[s] != 0;
            snap.admit = breakers[s].peekAllow(window);
            snap.queue_depth = servers[s]->queueDepth();
            run.snapshots[s] = snap;
            if (audit != nullptr) {
                const double tokens = budgets[s].tokens();
                audit->require(
                    tokens >= -1e-9 &&
                        tokens <= failover.retry_budget.burst + 1e-9,
                    "retry-budget-bounds", window,
                    static_cast<std::int64_t>(s),
                    "retry tokens outside [0, burst]");
                audit->require(
                    breakers[s].closes() <= breakers[s].opens(),
                    "breaker-transitions", window,
                    static_cast<std::int64_t>(s),
                    "more closes than opens");
            }
        }
        run.barrier.arriveAndWait(
            [&run] { run.mailbox.exchange(run.owner); });

        // Phase B: deliver this shard's mail at the barrier instant.
        for (const ShardMail& mail : run.mailbox.inbox(shard)) {
            last_event_us = std::max(last_event_us, window);
            if (mail.kind == ShardMail::Kind::ForwardOffer) {
                settleServer(mail.target, window);
                // The snapshot the sender trusted may have gone stale
                // inside the window: a target that crashed or whose
                // breaker refuses now bounces the offer back through
                // the retry path, debiting the refusing server.
                if (down[mail.target] != 0 ||
                    !breakers[mail.target].allowRequest(window)) {
                    scheduleRetry(mail.index, mail.inv, window,
                                  mail.target, mail.attempt,
                                  mail.primary);
                    continue;
                }
                if (mail.attempt == 0)
                    budgets[mail.target].onFreshArrival();
                resident[mail.index] =
                    Resident{mail.attempt, mail.primary};
                servers[mail.target]->offer(mail.index, mail.inv, window,
                                            /*redispatched=*/
                                            mail.attempt > 0);
            } else {
                retry_info[mail.index] =
                    PendingRetry{mail.inv, mail.primary};
                events.schedule(mail.at_us, ShardEvent::RetryFire,
                                mail.index,
                                static_cast<std::uint64_t>(mail.attempt));
            }
        }

        // Phase C: simulate the window [window, window_end) — merge
        // the arrival cursor against the shard heap, arrival wins
        // ties, exactly like the single-threaded streamed front end.
        for (;;) {
            const bool have_arrival = source->peek(arr);
            const TimeUs arrival_t =
                have_arrival ? arr.arrival_us : kNoEvent;
            const TimeUs heap_t =
                events.empty() ? kNoEvent : events.nextTime();
            if (std::min(arrival_t, heap_t) >= window_end)
                break;
            if (have_arrival && arrival_t <= heap_t) {
                if (config.server.cancel != nullptr)
                    config.server.cancel->throwIfCancelled();
                Invocation inv;
                source->next(inv);
                if (inv.arrival_us < last_arrival) {
                    throw std::runtime_error(
                        "runCluster: source arrivals out of order (" +
                        std::to_string(inv.arrival_us) + " after " +
                        std::to_string(last_arrival) + ")");
                }
                if (inv.function >= catalog.size()) {
                    throw std::runtime_error(
                        "runCluster: source function id " +
                        std::to_string(inv.function) +
                        " out of range (catalog " +
                        std::to_string(catalog.size()) + ")");
                }
                last_arrival = inv.arrival_us;
                const std::size_t index = cursor_index++;
                // Every shard replays every draw in stream order; only
                // the owner of the primary acts on the arrival.
                const std::size_t primary =
                    primaries.onArrival(index, inv);
                if (run.owner(primary) != shard)
                    continue;
                last_event_us = std::max(last_event_us, inv.arrival_us);
                processDispatch(index, inv, 0, primary, inv.arrival_us);
                continue;
            }
            const EngineEvent<ShardEvent> event = events.pop();
            const TimeUs now = event.time_us;
            last_event_us = std::max(last_event_us, now);
            switch (event.kind) {
              case ShardEvent::RetryFire: {
                const auto index =
                    static_cast<std::size_t>(event.payload);
                const int attempt = static_cast<int>(event.payload2);
                const PendingRetry info = retry_info.at(index);
                processDispatch(index, info.inv, attempt, info.primary,
                                now);
                break;
              }
              case ShardEvent::Crash: {
                const CrashEvent& ce =
                    run.crashes[static_cast<std::size_t>(event.payload)];
                if (down[ce.server] != 0)
                    break;
                settleServer(ce.server, now);
                const Server::CrashFallout fallout =
                    servers[ce.server]->crash(now);
                down[ce.server] = 1;
                if (ce.restart_after_us > 0) {
                    events.schedule(now + ce.restart_after_us,
                                    ShardEvent::Restart, ce.server);
                }
                for (const Server::SpilledRequest& spilled :
                     fallout.aborted) {
                    const Resident res =
                        residentOf(spilled.invocation_index, ce.server);
                    scheduleRetry(spilled.invocation_index, spilled.inv,
                                  now, ce.server, res.attempt,
                                  res.primary);
                }
                for (const Server::SpilledRequest& spilled :
                     fallout.flushed_queue) {
                    const Resident res =
                        residentOf(spilled.invocation_index, ce.server);
                    scheduleRetry(spilled.invocation_index, spilled.inv,
                                  now, ce.server, res.attempt,
                                  res.primary);
                }
                break;
              }
              case ShardEvent::Restart: {
                const auto server =
                    static_cast<std::size_t>(event.payload);
                settleServer(server, now);
                servers[server]->restart(now);
                down[server] = 0;
                break;
              }
              case ShardEvent::OomKill: {
                const OomKillEvent& oe =
                    ooms[static_cast<std::size_t>(event.payload)];
                if (down[oe.server] != 0)
                    break;
                settleServer(oe.server, now);
                const auto aborted = servers[oe.server]->oomKill(now);
                if (aborted.has_value()) {
                    const Resident res =
                        residentOf(aborted->invocation_index, oe.server);
                    scheduleRetry(aborted->invocation_index,
                                  aborted->inv, now, oe.server,
                                  res.attempt, res.primary);
                }
                break;
              }
            }
        }

        // Phase D: publish this shard's earliest future work and let
        // the leader advance (or finish) the window sequence. The
        // cursor peek is identical on every shard — all shards consume
        // the same stream prefix per window — so the global minimum is
        // shard-layout-invariant.
        {
            const bool have_arrival = source->peek(arr);
            TimeUs local_min = have_arrival ? arr.arrival_us : kNoEvent;
            if (!events.empty())
                local_min = std::min(local_min, events.nextTime());
            run.local_min[shard] = local_min;
            run.shard_last_event[shard] = last_event_us;
        }
        run.barrier.arriveAndWait([&run] {
            const bool any_mail = run.mailbox.anyPosted();
            TimeUs global_min = kNoEvent;
            for (const TimeUs t : run.local_min)
                global_min = std::min(global_min, t);
            if (!any_mail && global_min == kNoEvent) {
                TimeUs last = 0;
                for (const TimeUs t : run.shard_last_event)
                    last = std::max(last, t);
                run.global_last_event = last;
                run.done = true;
                return;
            }
            const TimeUs next = run.window_start + run.window_us;
            if (any_mail) {
                // Posted mail must be delivered at the very next
                // barrier; the window sequence stays contiguous.
                run.window_start = next;
            } else {
                // Nothing in flight before global_min: skip empty
                // windows, staying on the H grid so barrier times are
                // a pure function of simulation state.
                run.window_start = std::max(
                    next,
                    (global_min / run.window_us) * run.window_us);
            }
        });
        if (run.done)
            break;
    }

    const TimeUs horizon =
        run.global_last_event + config.server.queue_timeout_us;
    run.shard_stream_length[shard] = cursor_index;
    for (std::size_t s = first_server; s < end_server; ++s) {
        run.server_results[s] = servers[s]->finish(horizon);
        ctr.breaker_opens += breakers[s].opens();
        ctr.breaker_closes += breakers[s].closes();
        ctr.breaker_probes += breakers[s].probes();
    }
}

}  // namespace

ClusterResult
runClusterShardedWindowed(const SourceFactory& make_source,
                          PolicyKind kind, const ClusterConfig& config,
                          const PolicyConfig& policy_config)
{
    const std::size_t n = config.num_servers;
    const std::size_t num_shards = effectiveShards(config.shards, n);

    WindowedRun run(num_shards, n);
    run.config = &config;
    run.kind = kind;
    run.policy_config = &policy_config;
    run.make_source = &make_source;
    run.num_shards = num_shards;
    run.window_us = shardWindowUs(config);
    run.crashes = config.faults.expandedCrashes(n);
    run.owner = [num_shards, n](std::size_t server) {
        return shardOfServer(server, num_shards, n);
    };

    std::vector<std::thread> workers;
    workers.reserve(num_shards);
    for (std::size_t shard = 0; shard < num_shards; ++shard) {
        workers.emplace_back([&run, shard] {
            try {
                runShardWorker(run, shard);
            } catch (const ShardAborted&) {
                // A peer failed; its exception is the one to report.
            } catch (...) {
                run.errors[shard] = std::current_exception();
                run.barrier.abort();
            }
        });
    }
    for (auto& worker : workers)
        worker.join();
    for (const std::exception_ptr& error : run.errors) {
        if (error)
            std::rethrow_exception(error);
    }

    ClusterResult result;
    result.servers = std::move(run.server_results);
    for (const ShardCounters& ctr : run.counters) {
        result.retries += ctr.retries;
        result.failovers += ctr.failovers;
        result.shed_requests += ctr.shed_requests;
        result.failed_requests += ctr.failed_requests;
        result.retry_budget_exhausted += ctr.retry_budget_exhausted;
        result.partition_unreachable += ctr.partition_unreachable;
        result.breaker_opens += ctr.breaker_opens;
        result.breaker_closes += ctr.breaker_closes;
        result.breaker_probes += ctr.breaker_probes;
    }

    Auditor* audit =
        config.server.audit != nullptr && config.server.audit->enabled()
        ? config.server.audit
        : nullptr;
    if (audit != nullptr) {
        // Every shard consumed the identical stream; fleet-wide
        // request conservation over its length, as in the legacy paths.
        const std::size_t stream_length = run.shard_stream_length[0];
        for (const std::size_t len : run.shard_stream_length) {
            if (len != stream_length) {
                audit->fail("shard-stream-agreement", 0, -1,
                            "shard cursors consumed different stream "
                            "lengths");
            }
        }
        std::int64_t terminal =
            result.shed_requests + result.failed_requests;
        for (const PlatformResult& s : result.servers)
            terminal += s.served() + s.dropped();
        const auto expected =
            static_cast<std::int64_t>(stream_length);
        if (terminal != expected) {
            const TimeUs horizon = run.global_last_event +
                config.server.queue_timeout_us;
            audit->fail("fleet-conservation", horizon, -1,
                        "stream invocations " + std::to_string(expected) +
                            " != shed + failed + sum(served + dropped) " +
                            std::to_string(terminal));
        }
    }
    return result;
}

ClusterResult
runClusterSplitSharded(const ShardedWorkload& workload, PolicyKind kind,
                       const ClusterConfig& config,
                       const PolicyConfig& policy_config)
{
    const std::size_t n = config.num_servers;
    const std::size_t num_shards = effectiveShards(config.shards, n);
    // The per-server sub-stream shortcut is only sound for the one
    // balancer whose routing is a pure per-function property.
    const bool per_server_streams =
        workload.make_server_stream != nullptr &&
        config.balancing == LoadBalancing::FunctionHash;

    std::vector<PlatformResult> results(n);
    std::vector<std::exception_ptr> errors(num_shards);
    auto runServers = [&](std::size_t shard) {
        const auto [first_server, owned_count] =
            shardServerRange(shard, num_shards, n);
        for (std::size_t s = first_server;
             s < first_server + owned_count; ++s) {
            Server server(makePolicy(kind, policy_config),
                          config.server);
            if (per_server_streams) {
                const auto sub = workload.make_server_stream(s);
                results[s] = server.run(*sub);
            } else {
                const auto full = workload.make_full();
                full->reset();
                // Inexact sizing hint (hints are allocation-only by
                // the InvocationSource contract): roughly 1/n of the
                // stream lands on each server.
                BalancerFilterSource view(
                    *full, config, s,
                    SourceCountHint{full->countHint().count / n + 16,
                                    false});
                results[s] = server.run(view);
            }
        }
    };

    std::vector<std::thread> workers;
    workers.reserve(num_shards);
    for (std::size_t shard = 0; shard < num_shards; ++shard) {
        workers.emplace_back([&, shard] {
            try {
                runServers(shard);
            } catch (...) {
                errors[shard] = std::current_exception();
            }
        });
    }
    for (auto& worker : workers)
        worker.join();
    for (const std::exception_ptr& error : errors) {
        if (error)
            std::rethrow_exception(error);
    }

    ClusterResult result;
    result.servers = std::move(results);
    return result;
}

ClusterResult
runCluster(const ShardedWorkload& workload, PolicyKind kind,
           const ClusterConfig& config, const PolicyConfig& policy_config)
{
    config.validate();
    if (!workload.make_full) {
        throw std::invalid_argument(
            "runCluster: ShardedWorkload.make_full is required");
    }
    if (config.server.platform_backend == PlatformBackend::Reference) {
        // The single-threaded oracle ignores the shard knob.
        const auto source = workload.make_full();
        const Trace trace = materializeSource(*source);
        return runCluster(trace, kind, config, policy_config);
    }
    if (config.faults.empty() && config.failover.shed_queue_depth == 0 &&
        !config.failover.retry_budget.enabled() &&
        !config.failover.breaker.enabled()) {
        return runClusterSplitSharded(workload, kind, config,
                                      policy_config);
    }
    return runClusterShardedWindowed(workload.make_full, kind, config,
                                     policy_config);
}

}  // namespace faascache

/**
 * @file
 * Discrete-event model of a FaaS invoker server (paper §7.2).
 *
 * The model captures the mechanisms behind the paper's OpenWhisk
 * results: a finite number of cores, a finite container-pool memory, a
 * FIFO request buffer with capacity and waiting-time limits (OpenWhisk
 * "buffers and eventually drops requests if it cannot fulfill them"),
 * and a pluggable keep-alive policy governing the container pool.
 * Cold starts hold a core and memory for the full initialization plus
 * execution time, so a burst of cold starts inflates system load, grows
 * the queue, and causes drops — the feedback loop the paper observes
 * with vanilla OpenWhisk.
 *
 * Running the same trace with a TtlPolicy models vanilla OpenWhisk;
 * running it with a GreedyDualPolicy models FaasCache.
 */
#ifndef FAASCACHE_PLATFORM_SERVER_H_
#define FAASCACHE_PLATFORM_SERVER_H_

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/container_pool.h"
#include "core/keepalive_policy.h"
#include "platform/event_queue.h"
#include "sim/sim_result.h"
#include "trace/trace.h"
#include "util/stats.h"

namespace faascache {

/** Invoker server parameters. */
struct ServerConfig
{
    /** Simultaneously running invocations (CPU slots). */
    int cores = 8;

    /** Container pool memory, MB. */
    MemMb memory_mb = 4096.0;

    /** Request buffer capacity; arrivals beyond this are dropped. */
    std::size_t queue_capacity = 2048;

    /** Maximum queueing delay before a buffered request is dropped. */
    TimeUs queue_timeout_us = 30 * kSecond;

    /** Period of expiry/prewarm housekeeping. */
    TimeUs maintenance_interval_us = 10 * kSecond;

    /** Honor policy prewarm requests (HIST). */
    bool enable_prewarm = true;

    /**
     * CPU slots a cold start occupies during its initialization phase
     * (container creation and runtime init are CPU-heavy: dockerd,
     * cgroups, interpreter startup). 1 models init as ordinary
     * execution; 2 reproduces the platform-load amplification the paper
     * observes, where cold-start storms drive OpenWhisk into overload.
     */
    int cold_start_cpu_slots = 1;
};

/** Outcome of a platform run. */
struct PlatformResult
{
    std::string policy_name;
    ServerConfig config;

    std::int64_t warm_starts = 0;
    std::int64_t cold_starts = 0;
    std::int64_t dropped_queue_full = 0;
    std::int64_t dropped_timeout = 0;
    std::int64_t dropped_oversize = 0;
    std::int64_t evictions = 0;
    std::int64_t expirations = 0;
    std::int64_t prewarms = 0;

    /** Per-function warm/cold/dropped, indexed by FunctionId. */
    std::vector<FunctionOutcome> per_function;

    /** User-visible latency (queue wait + execution) per served
     *  invocation, seconds, in completion order. */
    std::vector<double> latencies_sec;

    /** Per-function sum of latencies, seconds (for means). */
    std::vector<double> latency_sum_sec;

    std::int64_t served() const { return warm_starts + cold_starts; }
    std::int64_t dropped() const
    {
        return dropped_queue_full + dropped_timeout + dropped_oversize;
    }
    std::int64_t total() const { return served() + dropped(); }

    double coldStartPercent() const;
    double dropPercent() const;

    /** Mean user-visible latency, seconds. */
    double meanLatencySec() const;

    /** Mean latency of one function, seconds (0 if never served). */
    double meanLatencySecOf(FunctionId function) const;

    /** Latency distribution summary, seconds. */
    Summary latencySummary() const { return summarize(latencies_sec); }
};

/** FaaS invoker server model. */
class Server
{
  public:
    /**
     * @param policy Keep-alive policy governing the container pool.
     * @param config Server parameters.
     */
    Server(std::unique_ptr<KeepAlivePolicy> policy, ServerConfig config);

    /**
     * Replay a trace to completion and return the accounting.
     *
     * The container pool and policy state survive across calls: running
     * a second trace models a server that is already warm (counters are
     * reset per run). Use a fresh Server for independent experiments.
     */
    PlatformResult run(const Trace& trace);

  private:
    struct PendingRequest
    {
        std::size_t invocation_index;
        TimeUs enqueued_us;
    };

    /** Attempt to start `inv` right now; true on success. */
    bool tryDispatch(std::size_t invocation_index, TimeUs arrival_us,
                     TimeUs now);

    /** Dispatch queued requests FIFO until blocked; drop timed-out
     *  entries at the head. */
    void drainQueue(TimeUs now);

    /** Expire leases and perform due prewarms. */
    void maintenance(TimeUs now);

    void evict(ContainerId id, TimeUs now, bool expired);

    std::unique_ptr<KeepAlivePolicy> policy_;
    ServerConfig config_;
    ContainerPool pool_;
    EventQueue events_;
    std::deque<PendingRequest> queue_;
    const Trace* trace_ = nullptr;
    PlatformResult result_;
    /** Occupied CPU slots (cold inits may hold extra slots). */
    int running_ = 0;

    /** Arrival time of the request a busy container is serving. */
    std::unordered_map<ContainerId, TimeUs> inflight_arrival_;
};

}  // namespace faascache

#endif  // FAASCACHE_PLATFORM_SERVER_H_

/**
 * @file
 * Discrete-event model of a FaaS invoker server (paper §7.2).
 *
 * The model captures the mechanisms behind the paper's OpenWhisk
 * results: a finite number of cores, a finite container-pool memory, a
 * FIFO request buffer with capacity and waiting-time limits (OpenWhisk
 * "buffers and eventually drops requests if it cannot fulfill them"),
 * and a pluggable keep-alive policy governing the container pool.
 * Cold starts hold a core and memory for the full initialization plus
 * execution time, so a burst of cold starts inflates system load, grows
 * the queue, and causes drops — the feedback loop the paper observes
 * with vanilla OpenWhisk.
 *
 * Running the same trace with a TtlPolicy models vanilla OpenWhisk;
 * running it with a GreedyDualPolicy models FaasCache.
 *
 * Beyond the paper, the server understands injected faults
 * (fault_injection.h): transient container-spawn failures, cold-start
 * stragglers, memory-reclaim stalls, and crashes that drain running
 * work, flush the container pool, and take the server offline until a
 * restart. Two driving modes exist:
 *  - run() replays a whole trace standalone (crashes in the attached
 *    injector's plan are self-scheduled; work lost to a crash is
 *    accounted as lost on this server);
 *  - begin()/offer()/advanceTo()/finish() let an external dispatcher —
 *    the cluster front end — feed invocations incrementally, observe
 *    health, and re-dispatch the fallout of a crash to other servers.
 */
#ifndef FAASCACHE_PLATFORM_SERVER_H_
#define FAASCACHE_PLATFORM_SERVER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/container_pool.h"
#include "core/keepalive_policy.h"
#include "engine/event_engine.h"
#include "platform/fault_injection.h"
#include "platform/overload/admission_controller.h"
#include "platform/overload/brownout.h"
#include "platform/overload/overload.h"
#include "sim/sim_result.h"
#include "trace/invocation_source.h"
#include "trace/trace.h"
#include "util/cancellation.h"
#include "util/stats.h"

namespace faascache {

/**
 * What a scheduled platform event represents. Crashes ride the engine's
 * Failure tie-break lane (engine/event_engine.h); everything else is
 * Normal-lane FIFO traffic.
 */
enum class EventKind
{
    Arrival,      ///< a request arrived (payload: invocation index)
    Finish,       ///< an invocation completed (payload: container id)
    InitDone,     ///< a cold start finished initializing (payload: id)
    Maintenance,  ///< periodic expiry/prewarm/queue housekeeping
    Retry,        ///< re-drain the queue after a spawn-failure holdoff
    Crash,        ///< injected server crash (payload: crash-list index)
    Restart,      ///< crashed server rejoins, cold
    OomKill,      ///< injected OOM kill (payload: oom-list index)
};

/** One scheduled platform event. */
using ServerEvent = EngineEvent<EventKind>;

/**
 * Platform hot-path backend (DESIGN.md §4f). Dense is the production
 * interior: queued requests live in a recycled-slot arena threaded as
 * an intrusive FIFO (the drain walks and unlinks in place instead of
 * rebuilding a deque per event), and run() merges the sorted trace
 * against the event heap with same-instant arrivals admitted as one
 * batch, so the heap never carries the O(trace) arrival load.
 * Reference is the original deque-rebuild + arrival-heap path, kept
 * alive as a differential-testing oracle exactly like
 * PoolBackend::ReferenceMap. The two are observably identical —
 * byte-identical PlatformResult/ClusterResult — which
 * tests/platform_differential_test.cc enforces.
 */
enum class PlatformBackend : std::uint8_t
{
    Dense,      ///< arena request queue + arrival-cursor merge (default)
    Reference,  ///< original per-event deque rebuild + arrival heap
};

/** Lower-case display name ("dense", "reference"). */
const char* platformBackendName(PlatformBackend backend);

/** Invoker server parameters. */
struct ServerConfig
{
    /** Simultaneously running invocations (CPU slots). */
    int cores = 8;

    /** Container pool memory, MB. */
    MemMb memory_mb = 4096.0;

    /**
     * Container-pool storage backend. Slab (default) is the dense
     * allocation-free arena; ReferenceMap is the original hash-map pool
     * kept as a differential-testing oracle. Observably identical.
     */
    PoolBackend pool_backend = PoolBackend::Slab;

    /**
     * Platform hot-path backend (see PlatformBackend). Dense (default)
     * is the arena/batched interior; Reference is the original path
     * kept as a differential-testing oracle. Observably identical.
     */
    PlatformBackend platform_backend = PlatformBackend::Dense;

    /** Request buffer capacity; arrivals beyond this are dropped. */
    std::size_t queue_capacity = 2048;

    /** Maximum queueing delay before a buffered request is dropped. */
    TimeUs queue_timeout_us = 30 * kSecond;

    /** Period of expiry/prewarm housekeeping. */
    TimeUs maintenance_interval_us = 10 * kSecond;

    /** Honor policy prewarm requests (HIST). */
    bool enable_prewarm = true;

    /**
     * CPU slots a cold start occupies during its initialization phase
     * (container creation and runtime init are CPU-heavy: dockerd,
     * cgroups, interpreter startup). 1 models init as ordinary
     * execution; 2 reproduces the platform-load amplification the paper
     * observes, where cold-start storms drive OpenWhisk into overload.
     */
    int cold_start_cpu_slots = 1;

    /**
     * Overload control: CoDel-style adaptive admission and cold-start
     * brownout (platform/overload/overload.h). Both default off, in
     * which case behaviour and results are identical to a server
     * without the subsystem.
     */
    OverloadConfig overload;

    /**
     * Cooperative cancellation (non-owning; may be null). Checked once
     * per processed event in run(), so a watchdog or signal handler can
     * unwind a long replay promptly (CancelledError propagates out of
     * run()). Never perturbs the results of a run that completes.
     */
    const CancellationToken* cancel = nullptr;

    /**
     * Runtime invariant auditor (util/audit.h; non-owning, may be
     * null). When attached and enabled, the server verifies request
     * conservation per queue drain and at end of run, container
     * state-machine legality on every busy/idle transition, event
     * delivery order, and the container pool's structural invariants at
     * every maintenance tick. Null (or AuditMode::Off) costs nothing
     * and leaves results byte-identical. Like `cancel`, never encoded
     * in checkpoint codecs.
     */
    Auditor* audit = nullptr;

    /**
     * Check invariants (positive cores/memory/capacity/periods,
     * cold_start_cpu_slots in [1, cores], overload knobs in range).
     * @throws std::invalid_argument with a descriptive message.
     */
    void validate() const;
};

/** Outcome of a platform run. */
struct PlatformResult
{
    std::string policy_name;
    ServerConfig config;

    std::int64_t warm_starts = 0;
    std::int64_t cold_starts = 0;
    std::int64_t dropped_queue_full = 0;
    std::int64_t dropped_timeout = 0;
    std::int64_t dropped_oversize = 0;
    std::int64_t evictions = 0;
    std::int64_t expirations = 0;
    std::int64_t prewarms = 0;

    /** Fault-injection accounting (all zero without a FaultPlan). */
    RobustnessCounters robustness;

    /** Overload-control accounting (all zero with overload off). */
    OverloadCounters overload;

    /**
     * Last event time at which the request queue held at least one
     * core's worth of backlog — the congestion watermark behind the
     * time-to-recovery metric of bench/fig_overload (0 = the queue
     * never backed up).
     */
    TimeUs last_congested_us = 0;

    /** Per-function warm/cold/dropped, indexed by FunctionId. */
    std::vector<FunctionOutcome> per_function;

    /** User-visible latency (queue wait + execution) per served
     *  invocation, seconds, in completion order. */
    std::vector<double> latencies_sec;

    /** Per-function sum of latencies, seconds (for means). */
    std::vector<double> latency_sum_sec;

    /** Invocations that completed on this server. */
    std::int64_t served() const { return warm_starts + cold_starts; }

    /** Requests this server rejected or lost while up or down. */
    std::int64_t dropped() const
    {
        return dropped_queue_full + dropped_timeout + dropped_oversize +
            robustness.dropped_unavailable + overload.admission_shed +
            overload.brownout_denied_cold;
    }

    /** Requests this server definitively resolved (standalone runs
     *  additionally lose robustness.crash_aborted mid-flight). */
    std::int64_t total() const
    {
        return served() + dropped() + robustness.crash_aborted;
    }

    double coldStartPercent() const;
    double dropPercent() const;

    /** Mean user-visible latency, seconds. */
    double meanLatencySec() const;

    /** Mean latency of one function, seconds (0 if never served). */
    double meanLatencySecOf(FunctionId function) const;

    /** Latency distribution summary, seconds. */
    Summary latencySummary() const { return summarize(latencies_sec); }
};

/** FaaS invoker server model. */
class Server
{
  public:
    /**
     * One request spilled by a crash or OOM kill: its position in the
     * arrival stream plus the invocation itself, so a streaming front
     * end can re-dispatch it without random access into a materialized
     * trace.
     */
    struct SpilledRequest
    {
        std::size_t invocation_index = 0;
        Invocation inv;
    };

    /** Work spilled by a crash, for the cluster to re-dispatch. */
    struct CrashFallout
    {
        /** Requests that were running (now aborted), by stream index. */
        std::vector<SpilledRequest> aborted;

        /** Requests that were queued (now flushed). */
        std::vector<SpilledRequest> flushed_queue;
    };

    /**
     * @param policy Keep-alive policy governing the container pool.
     * @param config Server parameters (validated here).
     */
    Server(std::unique_ptr<KeepAlivePolicy> policy, ServerConfig config);

    /**
     * Attach a fault injector (non-owning; must outlive the server).
     * run() self-schedules the injector's crash events; the incremental
     * API leaves crash scheduling to the external dispatcher.
     */
    void setFaultInjector(FaultInjector* injector) { injector_ = injector; }

    /**
     * Replay a trace to completion and return the accounting.
     *
     * The container pool and policy state survive across calls: running
     * a second trace models a server that is already warm (counters are
     * reset per run). Use a fresh Server for independent experiments.
     */
    PlatformResult run(const Trace& trace);

    /**
     * Replay an arbitrary invocation stream to completion (DESIGN.md
     * §4h). The Dense backend consumes the source as a cursor — peak
     * memory stays O(catalog + pending work) regardless of stream
     * length — via a three-way merge: the arrival cursor wins every
     * timestamp tie (the trace replay hands arrivals the lowest
     * sequence numbers), a maintenance-tick cursor wins ties against
     * the event heap (setup ticks precede runtime events there), and
     * the heap carries only failure-plan and runtime traffic. The
     * Reference backend preschedules every arrival and therefore
     * materializes the source first. Both produce a PlatformResult
     * byte-identical to run(Trace) over the equivalent trace.
     */
    PlatformResult run(InvocationSource& source);

    /**
     * @name Incremental driving (cluster front end)
     * begin() starts a run over `trace` without scheduling any
     * arrivals; the dispatcher then calls advanceTo(t) to settle
     * internal events strictly before t, offer()s arrivals, and
     * finally finish()es the run.
     * @{
     */

    /** Start an externally driven run. */
    void begin(const Trace& trace);

    /**
     * Start an externally driven run over an arbitrary arrival stream:
     * the dispatcher streams (index, invocation) pairs through the
     * Invocation-carrying offer() itself, so no trace is ever bound.
     * @param functions Function catalog (non-owning; must outlive the
     *        run). Dense ids, like a Trace catalog.
     * @param invocation_hint Expected stream length (allocation sizing
     *        only; an upper bound is fine and never changes results).
     */
    void begin(const std::vector<FunctionSpec>& functions,
               std::size_t invocation_hint);

    /**
     * Hand one invocation to this server at time `now` (its internal
     * events must already be advanced to `now`).
     * @param redispatched The invocation was failed over after a crash
     *        elsewhere; user-visible latency is anchored at its
     *        original trace arrival and a cold start for it counts as
     *        crash-induced.
     * @return False when the request was dropped on arrival (queue
     *         full, oversize, or server down).
     */
    bool offer(std::size_t invocation_index, TimeUs now,
               bool redispatched = false);

    /** Streaming variant: the invocation rides along instead of being
     *  looked up in a bound trace (required after the catalog begin()). */
    bool offer(std::size_t invocation_index, const Invocation& inv,
               TimeUs now, bool redispatched = false);

    /** Process internal events with time strictly before `now`. */
    void advanceTo(TimeUs now);

    /**
     * Drain all remaining events and return the accounting.
     * @param horizon_us End of the observation window: maintenance
     *        stops re-arming past it and open downtime is charged up
     *        to it.
     */
    PlatformResult finish(TimeUs horizon_us);
    /** @} */

    /**
     * @name Health and failure handling
     * @{
     */

    /**
     * Crash now: abort running invocations (their warm/cold accounting
     * is rolled back), flush the container pool, clear the queue, and
     * go offline. No-op (empty fallout) if already down.
     *
     * The caller decides the fallout's fate: the cluster re-dispatches
     * it; run() accounts it as lost on this server.
     */
    CrashFallout crash(TimeUs now);

    /** Rejoin after a crash, with a cold (empty) container pool. */
    void restart(TimeUs now);

    /**
     * Memory-pressure OOM kill: the kernel kills the fattest busy
     * container (most memory, ties to the lowest id). The victim's
     * start accounting is rolled back exactly like a crash abort and
     * the container is destroyed; queued work is untouched.
     * @return The aborted request (for the cluster to re-dispatch), or
     *         nullopt when the server is down or no container is busy.
     */
    std::optional<SpilledRequest> oomKill(TimeUs now);

    bool isDown() const { return down_; }

    /** Buffered (not yet running) requests — the load-shedding and
     *  health signal the cluster front end reads. */
    std::size_t queueDepth() const
    {
        return config_.platform_backend == PlatformBackend::Reference
            ? queue_.size()
            : queue_size_;
    }

    /** Occupied CPU slots. */
    int runningCount() const { return running_; }

    /**
     * @name Overload signals (cluster front end)
     * Monotonic within one run; the front end diffs successive reads to
     * drive the per-server circuit breaker.
     * @{
     */

    /** Transient container-spawn failures so far. */
    std::int64_t spawnFailureCount() const
    {
        return result_.robustness.spawn_failures;
    }

    /** Successful container spawns (cold starts that got a container)
     *  so far; unlike cold_starts this is never rolled back. */
    std::int64_t spawnSuccessCount() const { return spawn_successes_; }

    /** Requests dropped on queue timeout so far. */
    std::int64_t queueTimeoutDropCount() const
    {
        return result_.dropped_timeout;
    }

    /** Warm starts so far (a liveness signal: the server is making
     *  progress even if cold spawns are failing). */
    std::int64_t warmStartCount() const { return result_.warm_starts; }

    /** Cold-start brownout currently engaged? */
    bool brownedOut() const { return brownout_.active(); }
    /** @} */

    /** Engine clock: time of the last internally processed event. */
    TimeUs now() const { return clock_.now(); }
    /** @} */

  private:
    struct PendingRequest
    {
        std::size_t invocation_index = 0;

        /** The invocation itself: carried with the request so queue
         *  processing never needs random access into a trace. */
        Invocation inv;

        /** Queue-entry time; anchors the queue-timeout check. */
        TimeUs enqueued_us = 0;

        /** Latency anchor: original trace arrival for failed-over
         *  requests, enqueued_us otherwise. */
        TimeUs latency_anchor_us = 0;

        /** Spawn-failure holdoff: not dispatchable before this. */
        TimeUs not_before_us = 0;

        bool redispatched = false;
    };

    /** What the server knows about a running invocation. */
    struct Inflight
    {
        std::size_t invocation_index = 0;

        /** Carried copy (see PendingRequest::inv): crash/OOM spill and
         *  accounting rollback read it instead of a bound trace. */
        Invocation inv;

        TimeUs latency_anchor_us = 0;
        bool cold = false;
        bool redispatched = false;

        /** Extra CPU slots held beyond the base core (a cold start in
         *  its init phase holds cold_start_cpu_slots - 1 more; zeroed
         *  at InitDone). Lets an abort release exactly what it holds. */
        int extra_slots = 0;
    };

    /**
     * One slot of the dense in-flight table, indexed by the running
     * container's ContainerPool slot (Container::poolSlot()). The
     * stored container id validates the entry: slots are recycled, so
     * an entry only belongs to container `c` while `id == c.id()`.
     * kInvalidContainer marks a free slot.
     */
    struct InflightEntry
    {
        ContainerId id = kInvalidContainer;
        Inflight data;
    };

    enum class Dispatch
    {
        Started,        ///< the invocation is running
        Blocked,        ///< no core or no reclaimable memory; keep queued
        SpawnFailed,    ///< transient spawn failure; retry after holdoff
        BrownoutDenied, ///< cold path denied while browned out; dropped
    };

    /** Attempt to start `request` right now. */
    Dispatch tryDispatch(const PendingRequest& request, TimeUs now);

    /** Dispatch queued requests FIFO until blocked; drop timed-out
     *  entries at the head. Branches to the backend's drain. */
    void drainQueue(TimeUs now);

    /** Original drain: pops into a freshly built deque per call. */
    void drainQueueReference(TimeUs now);

    /** Dense drain: walks the intrusive request list in place,
     *  unlinking dispatched/dropped nodes — identical scan order and
     *  side effects to drainQueueReference, zero rebuild traffic. */
    void drainQueueDense(TimeUs now);

    /** Expire leases and perform due prewarms. */
    void maintenance(TimeUs now);

    void evict(ContainerId id, TimeUs now, bool expired);

    /** Shared arrival path of run()'s Arrival events and offer(). */
    bool acceptArrival(std::size_t invocation_index, const Invocation& inv,
                       TimeUs now, bool redispatched);

    /** Process one event from the internal queue. */
    void handleEvent(const ServerEvent& event);

    /** Reset per-run accounting and bind `trace`. */
    void beginRun(const Trace& trace);

    /** Trace-free core of beginRun(): reset accounting, bind the
     *  function catalog, and pre-size per-function state. */
    void beginRunCommon(const std::vector<FunctionSpec>& functions,
                        std::size_t invocation_hint);

    /** O(1) request-conservation check (audit-only; see audit_). */
    void auditConservation(TimeUs now);

    /** Final leftover-queue and downtime accounting; unbinds the
     *  trace and returns the result. */
    PlatformResult closeRun(TimeUs horizon_us);

    /** Nil slot/link of the dense request arena. */
    static constexpr std::uint32_t kNilRequest = 0xffffffffu;

    /**
     * One arena slot of the dense request queue: a PendingRequest
     * threaded into an intrusive doubly-linked FIFO. Free slots are
     * chained through `next` (free list), so steady state recycles
     * slots with no allocation; nodes never move once linked, so the
     * drain can unlink mid-walk without shifting neighbors.
     */
    struct RequestNode
    {
        PendingRequest req;
        std::uint32_t prev = kNilRequest;
        std::uint32_t next = kNilRequest;
    };

    /** Append a request at the tail of the dense FIFO. */
    void pushRequestDense(const PendingRequest& request);

    /** Unlink node `i` from the FIFO and recycle its slot. */
    void eraseRequestDense(std::uint32_t i);

    /** Drop all queued requests and recycle the arena (crash flush /
     *  run reset). Keeps slot capacity. */
    void clearRequestQueueDense();

    std::unique_ptr<KeepAlivePolicy> policy_;
    ServerConfig config_;
    ContainerPool pool_;
    EventCore<EventKind> events_;
    SimClock clock_;

    /** Reference-backend request buffer. */
    std::deque<PendingRequest> queue_;

    /** Dense-backend request arena + intrusive FIFO through it. */
    std::vector<RequestNode> request_nodes_;
    std::uint32_t queue_head_ = kNilRequest;
    std::uint32_t queue_tail_ = kNilRequest;
    std::uint32_t request_free_ = kNilRequest;
    std::size_t queue_size_ = 0;

    /** Bound trace for index-only offer() and the Reference replay's
     *  prescheduled arrivals; null under streaming driving. */
    const Trace* trace_ = nullptr;

    /** Function catalog of the current run (trace's or the source's);
     *  the only per-run workload state the hot path reads. */
    const std::vector<FunctionSpec>* catalog_ = nullptr;

    FaultInjector* injector_ = nullptr;
    PlatformResult result_;

    /** CoDel-style admission controller (overload.admission). */
    AdmissionController admission_;

    /** Cold-start brownout governor (overload.brownout). */
    BrownoutGovernor brownout_;

    /** Successful container spawns this run (monotonic). */
    std::int64_t spawn_successes_ = 0;
    /** Occupied CPU slots (cold inits may hold extra slots). */
    int running_ = 0;

    /** Externally driven (begin/offer/finish) run in progress. */
    bool incremental_ = false;

    /** Maintenance re-arm bound for incremental runs. */
    TimeUs horizon_us_ = 0;

    bool down_ = false;
    TimeUs down_since_ = 0;

    /** Normalized invariant auditor (null unless attached + enabled). */
    Auditor* audit_ = nullptr;

    /**
     * Request-conservation ledger, maintained only while auditing:
     * every accepted call into acceptArrival() increments arrivals;
     * every definitive disposition (drop, completion, crash abort,
     * crash flush, OOM abort, leftover at close) increments resolved.
     * Invariant: arrivals == resolved + queued + in-flight.
     */
    std::int64_t audit_arrivals_ = 0;
    std::int64_t audit_resolved_ = 0;

    /** Resolved entries handed back to an external dispatcher (crash
     *  fallout under incremental driving) rather than counted in a
     *  drop/served counter of this server's result. */
    std::int64_t audit_external_returns_ = 0;

    /** Attach the in-flight record of a running container. */
    void setInflight(const Container& c, const Inflight& data);

    /** Detach and return the record of `c`. @pre one was attached. */
    Inflight takeInflight(const Container& c);

    /** Drop every in-flight record (crash flush / run reset). */
    void clearInflight();

    /**
     * Running invocations, indexed by container pool slot (dense,
     * allocation-free steady state; see InflightEntry for validity).
     */
    std::vector<InflightEntry> inflight_;

    /** Live entries in inflight_ (crash-path fast exit). */
    std::size_t inflight_count_ = 0;
};

}  // namespace faascache

#endif  // FAASCACHE_PLATFORM_SERVER_H_

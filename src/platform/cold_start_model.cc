#include "platform/cold_start_model.h"

namespace faascache {

ColdStartBreakdown
coldStartBreakdown(const FunctionSpec& function,
                   const ColdStartModelConfig& config)
{
    ColdStartBreakdown out;
    out.execution_us = function.warm_us;

    const TimeUs init = function.initTime();
    const TimeUs fixed = config.pool_check_us + config.docker_startup_us +
        config.ow_runtime_init_us + config.language_init_us;

    if (init >= fixed) {
        out.pool_check_us = config.pool_check_us;
        out.docker_startup_us = config.docker_startup_us;
        out.ow_runtime_init_us = config.ow_runtime_init_us;
        out.language_init_us = config.language_init_us;
        out.explicit_init_us = init - fixed;
        return out;
    }

    // Lightweight function: scale the platform stages to fit.
    const double scale =
        fixed > 0 ? static_cast<double>(init) / static_cast<double>(fixed)
                  : 0.0;
    out.pool_check_us = static_cast<TimeUs>(config.pool_check_us * scale);
    out.docker_startup_us =
        static_cast<TimeUs>(config.docker_startup_us * scale);
    out.ow_runtime_init_us =
        static_cast<TimeUs>(config.ow_runtime_init_us * scale);
    // Assign the rounding remainder to the language stage so the parts
    // sum exactly to the function's init time.
    out.language_init_us = init - out.pool_check_us -
        out.docker_startup_us - out.ow_runtime_init_us;
    out.explicit_init_us = 0;
    return out;
}

}  // namespace faascache

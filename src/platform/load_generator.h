/**
 * @file
 * The Section 7.2 workloads: skewed-frequency, cyclic, and skewed-size
 * traces over the FunctionBench applications, matching the setups of
 * Figures 7 and 8.
 */
#ifndef FAASCACHE_PLATFORM_LOAD_GENERATOR_H_
#define FAASCACHE_PLATFORM_LOAD_GENERATOR_H_

#include <cstdint>

#include "trace/trace.h"

namespace faascache {

/**
 * Figure 8's workload: CNN inference, disk-bench, and web-serving at a
 * 1500 ms mean inter-arrival time, and floating-point at 400 ms — one
 * function much more frequent than the rest. Arrivals are Poisson
 * (seeded, deterministic) to match open-loop request traffic.
 */
Trace skewedFrequencyWorkload(TimeUs duration_us, std::uint64_t seed = 1);

/**
 * Cyclic access pattern over all six Table 1 applications, the classic
 * recency-adversarial sequence.
 *
 * @param gap_us Spacing between consecutive invocations.
 */
Trace cyclicWorkload(TimeUs duration_us, TimeUs gap_us = 300 * kMillisecond);

/**
 * Skewed-size workload: the small-footprint applications fire fast, the
 * large-footprint ones slowly, so the policies must weigh size against
 * recency. Poisson arrivals, deterministic in `seed`.
 */
Trace skewedSizeWorkload(TimeUs duration_us, std::uint64_t seed = 1);

}  // namespace faascache

#endif  // FAASCACHE_PLATFORM_LOAD_GENERATOR_H_

#include "platform/cluster.h"

#include "platform/balancer_stream.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "engine/event_engine.h"
#include "sim/sweep_runner.h"
#include "util/rng.h"

namespace faascache {

void
FailoverConfig::validate() const
{
    if (max_retries < 0) {
        throw std::invalid_argument(
            "FailoverConfig: max_retries must be >= 0, got " +
            std::to_string(max_retries));
    }
    if (base_backoff_us <= 0) {
        throw std::invalid_argument(
            "FailoverConfig: base_backoff_us must be > 0, got " +
            std::to_string(base_backoff_us));
    }
    if (request_timeout_us <= 0) {
        throw std::invalid_argument(
            "FailoverConfig: request_timeout_us must be > 0, got " +
            std::to_string(request_timeout_us));
    }
    if (backoff_jitter_frac < 0.0 || backoff_jitter_frac > 1.0) {
        throw std::invalid_argument(
            "FailoverConfig: backoff_jitter_frac must be in [0, 1], "
            "got " +
            std::to_string(backoff_jitter_frac));
    }
    retry_budget.validate();
    breaker.validate();
}

void
ClusterConfig::validate() const
{
    if (num_servers == 0) {
        throw std::invalid_argument(
            "ClusterConfig: num_servers must be > 0");
    }
    server.validate();
    faults.validate(num_servers);
    failover.validate();
    if (failover.shed_queue_depth > server.queue_capacity) {
        throw std::invalid_argument(
            "ClusterConfig: failover.shed_queue_depth (" +
            std::to_string(failover.shed_queue_depth) +
            ") must not exceed server.queue_capacity (" +
            std::to_string(server.queue_capacity) +
            "); a deeper mark could never trigger");
    }
}

std::int64_t
ClusterResult::warmStarts() const
{
    std::int64_t total = 0;
    for (const auto& s : servers)
        total += s.warm_starts;
    return total;
}

std::int64_t
ClusterResult::coldStarts() const
{
    std::int64_t total = 0;
    for (const auto& s : servers)
        total += s.cold_starts;
    return total;
}

std::int64_t
ClusterResult::dropped() const
{
    std::int64_t total = 0;
    for (const auto& s : servers)
        total += s.dropped();
    return total;
}

RobustnessCounters
ClusterResult::robustness() const
{
    RobustnessCounters total;
    for (const auto& s : servers)
        total += s.robustness;
    return total;
}

OverloadCounters
ClusterResult::overload() const
{
    OverloadCounters total;
    for (const auto& s : servers)
        total += s.overload;
    return total;
}

double
ClusterResult::warmPercent() const
{
    const std::int64_t served = warmStarts() + coldStarts();
    if (served == 0)
        return 0.0;
    return 100.0 * static_cast<double>(warmStarts()) /
        static_cast<double>(served);
}

double
ClusterResult::meanLatencySec() const
{
    double sum = 0.0;
    std::size_t count = 0;
    for (const auto& s : servers) {
        for (double v : s.latencies_sec)
            sum += v;
        count += s.latencies_sec.size();
    }
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

namespace {

/**
 * The balancer's primary server for every invocation, in trace order.
 * Shared by both paths so the fault-aware simulation assigns the same
 * primaries (and consumes the same random stream) as the split replay.
 */
std::vector<std::size_t>
primaryTargets(const Trace& trace, const ClusterConfig& config)
{
    std::vector<std::size_t> targets;
    targets.reserve(trace.invocations().size());
    Rng rng(config.seed);
    std::size_t next_round_robin = 0;
    for (const auto& inv : trace.invocations()) {
        std::size_t target = 0;
        switch (config.balancing) {
          case LoadBalancing::Random:
            target = static_cast<std::size_t>(
                rng.uniformInt(config.num_servers));
            break;
          case LoadBalancing::RoundRobin:
            target = next_round_robin;
            next_round_robin =
                (next_round_robin + 1) % config.num_servers;
            break;
          case LoadBalancing::FunctionHash:
            target = static_cast<std::size_t>(
                Rng::hashMix(inv.function ^ config.seed) %
                config.num_servers);
            break;
        }
        targets.push_back(target);
    }
    return targets;
}

/** Independent-server replay (the original, fault-free fast path). */
ClusterResult
runClusterSplit(const Trace& trace, PolicyKind kind,
                const ClusterConfig& config,
                const PolicyConfig& policy_config)
{
    // Split the invocation stream by the balancing policy. Every
    // sub-trace carries the full function catalog so function ids stay
    // stable across servers.
    const std::vector<std::size_t> targets = primaryTargets(trace, config);
    std::vector<std::size_t> shard_sizes(config.num_servers, 0);
    for (std::size_t target : targets)
        ++shard_sizes[target];

    std::vector<Trace> shards(config.num_servers);
    for (std::size_t s = 0; s < config.num_servers; ++s) {
        shards[s].setName(trace.name() + "-server" + std::to_string(s));
        shards[s].reserveFunctions(trace.functions().size());
        shards[s].reserveInvocations(shard_sizes[s]);
        for (const auto& fn : trace.functions())
            shards[s].addFunction(fn);
    }

    for (std::size_t i = 0; i < trace.invocations().size(); ++i) {
        const auto& inv = trace.invocations()[i];
        shards[targets[i]].addInvocation(inv.function, inv.arrival_us);
    }

    ClusterResult result;
    result.servers.reserve(config.num_servers);
    for (std::size_t s = 0; s < config.num_servers; ++s) {
        Server server(makePolicy(kind, policy_config), config.server);
        result.servers.push_back(server.run(shards[s]));
    }
    return result;
}

/**
 * Streamed independent-server replay: one counting pass replays the
 * balancer to size each shard, then every server consumes its
 * balancer-filter view of the shared source — n+1 passes over the
 * stream, zero materialization.
 */
ClusterResult
runClusterSplitStreamed(InvocationSource& source, PolicyKind kind,
                        const ClusterConfig& config,
                        const PolicyConfig& policy_config)
{
    source.reset();
    std::vector<std::size_t> shard_sizes(config.num_servers, 0);
    {
        PrimaryTracker tracker(config, /*record=*/false);
        std::size_t index = 0;
        Invocation inv;
        while (source.next(inv))
            ++shard_sizes[tracker.onArrival(index++, inv)];
    }

    ClusterResult result;
    result.servers.reserve(config.num_servers);
    for (std::size_t s = 0; s < config.num_servers; ++s) {
        BalancerFilterSource shard(source, config, s,
                                   SourceCountHint{shard_sizes[s], true});
        Server server(makePolicy(kind, policy_config), config.server);
        result.servers.push_back(server.run(shard));
    }
    return result;
}

/**
 * Front-end event of the health-aware simulation.
 * payload/payload2 carry: Dispatch — invocation index / attempt number;
 * Crash — expanded-crash-schedule index; Restart — rejoining server
 * index; OomKill — oom-plan index.
 */
enum class FrontEndEvent
{
    Dispatch,  ///< route an invocation (possibly a retry attempt)
    Crash,     ///< a crash event of the plan fires (Failure lane)
    Restart,   ///< a crashed server rejoins
    OomKill,   ///< a memory-pressure kill fires (Failure lane)
};

/**
 * Interleaved health-aware simulation, Reference backend: one global
 * front-end event loop feeding incremental servers, with every
 * attempt-0 dispatch prescheduled in the heap by trace index and crash
 * fallout re-dispatched under the failover policy. The Dense backend
 * runs runClusterFaultAwareStreamed() instead; this path is the
 * differential-testing oracle it is compared against.
 */
ClusterResult
runClusterFaultAware(const Trace& trace, PolicyKind kind,
                     const ClusterConfig& config,
                     const PolicyConfig& policy_config)
{
    const std::size_t n = config.num_servers;
    const FailoverConfig& failover = config.failover;

    // One expansion of the crash schedule (explicit crashes + burst
    // victims) shared by the front end and every injector, so a burst
    // victim's self-view matches the front end's plan.
    const std::vector<CrashEvent> crashes =
        config.faults.expandedCrashes(n);
    const std::vector<OomKillEvent>& ooms = config.faults.oom_kills;

    Auditor* audit =
        config.server.audit != nullptr && config.server.audit->enabled()
        ? config.server.audit
        : nullptr;

    std::vector<FaultInjector> injectors;
    injectors.reserve(n);
    std::vector<std::unique_ptr<Server>> servers;
    servers.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
        injectors.emplace_back(config.faults, s, n);
        servers.push_back(std::make_unique<Server>(
            makePolicy(kind, policy_config), config.server));
        servers.back()->setFaultInjector(&injectors[s]);
        servers.back()->begin(trace);
    }

    EventCore<FrontEndEvent> events;
    events.bindCancellation(config.server.cancel);
    events.bindAuditor(audit);
    const std::vector<std::size_t> primaries =
        primaryTargets(trace, config);
    events.reserve(trace.invocations().size() + crashes.size() +
                   ooms.size());
    for (std::size_t i = 0; i < trace.invocations().size(); ++i) {
        events.schedule(trace.invocations()[i].arrival_us,
                        FrontEndEvent::Dispatch, i);
    }
    for (std::size_t k = 0; k < crashes.size(); ++k) {
        events.scheduleFailure(crashes[k].at_us, FrontEndEvent::Crash, k);
    }
    for (std::size_t k = 0; k < ooms.size(); ++k) {
        events.scheduleFailure(ooms[k].at_us, FrontEndEvent::OomKill, k);
    }

    // Per-server partition windows with a monotonic cursor each:
    // front-end event times never decrease, so one forward scan per
    // server answers every "is s reachable now" query in O(1) amortized.
    std::vector<std::vector<PartitionWindow>> partition_windows(n);
    std::vector<std::size_t> partition_cursor(n, 0);
    for (std::size_t s = 0; s < n; ++s)
        partition_windows[s] = config.faults.partitionsFor(s);
    auto partitioned = [&](std::size_t s, TimeUs now) {
        const auto& wins = partition_windows[s];
        std::size_t& cur = partition_cursor[s];
        while (cur < wins.size() && wins[cur].until_us <= now)
            ++cur;
        return cur < wins.size() && wins[cur].from_us <= now;
    };

    ClusterResult result;
    std::vector<char> down(n, 0);
    std::vector<int> attempts(trace.invocations().size(), 0);
    TimeUs last_event_us = 0;

    // Per-server overload defenses: retry token buckets and circuit
    // breakers. Breakers are driven by diffing each server's monotonic
    // failure/success counters at settle points, so the signal is a
    // pure function of simulation state — deterministic for any --jobs.
    std::vector<RetryBudget> budgets(
        n, RetryBudget(failover.retry_budget));
    std::vector<CircuitBreaker> breakers(
        n, CircuitBreaker(failover.breaker));
    std::vector<std::int64_t> seen_failures(n, 0);
    std::vector<std::int64_t> seen_successes(n, 0);
    const bool breaker_on = failover.breaker.enabled();
    auto observeServer = [&](std::size_t s, TimeUs now) {
        const std::int64_t failures = servers[s]->spawnFailureCount() +
            servers[s]->queueTimeoutDropCount();
        const std::int64_t successes = servers[s]->spawnSuccessCount() +
            servers[s]->warmStartCount();
        // Failures first so a settle window containing both ends on the
        // success (the server's latest state is "making progress").
        for (; seen_failures[s] < failures; ++seen_failures[s])
            breakers[s].recordFailure(now);
        for (; seen_successes[s] < successes; ++seen_successes[s])
            breakers[s].recordSuccess(now);
    };

    // Jitter stream: one splitmix-derived draw per (request, attempt),
    // independent of the balancer's stream and of every other request.
    const std::uint64_t jitter_base =
        deriveCellSeed(config.seed, 0xBACC0FFEULL);

    // Bounded re-dispatch with jittered exponential backoff under the
    // per-request timeout budget; exhaustion fails the request. The
    // retry debits `provoker`'s token bucket — the server whose crash
    // or outage caused it — so one sick server cannot spend the whole
    // fleet's retry capacity.
    auto scheduleRetry = [&](std::size_t index, TimeUs now,
                             std::size_t provoker) {
        if (attempts[index] >= failover.max_retries) {
            ++result.failed_requests;
            return;
        }
        if (!budgets[provoker].trySpend()) {
            ++result.failed_requests;
            ++result.retry_budget_exhausted;
            return;
        }
        const int shift = std::min(attempts[index], 20);
        TimeUs backoff = failover.base_backoff_us << shift;
        if (failover.backoff_jitter_frac > 0.0) {
            const std::uint64_t draw = deriveCellSeed(
                jitter_base,
                (static_cast<std::uint64_t>(index) << 8) |
                    (static_cast<std::uint64_t>(attempts[index]) & 0xff));
            const auto span = static_cast<std::uint64_t>(
                static_cast<double>(backoff) *
                failover.backoff_jitter_frac) + 1;
            backoff += static_cast<TimeUs>(draw % span);
        }
        const TimeUs at = now + backoff;
        const TimeUs arrival = trace.invocations()[index].arrival_us;
        if (at - arrival > failover.request_timeout_us) {
            ++result.failed_requests;
            return;
        }
        ++attempts[index];
        ++result.retries;
        events.schedule(at, FrontEndEvent::Dispatch, index,
                        static_cast<std::uint64_t>(attempts[index]));
    };

    while (!events.empty()) {
        const EngineEvent<FrontEndEvent> event = events.pop();
        const TimeUs now = event.time_us;
        last_event_us = std::max(last_event_us, now);
        // Settle all servers so queue depths and health are current.
        for (std::size_t s = 0; s < n; ++s) {
            servers[s]->advanceTo(now);
            if (breaker_on)
                observeServer(s, now);
        }
        if (audit != nullptr) {
            for (std::size_t s = 0; s < n; ++s) {
                // Token bucket bounded; a breaker can only close what
                // it opened (a failed half-open probe re-opens without
                // an intervening close, so opens may run ahead of
                // closes by more than one).
                const double tokens = budgets[s].tokens();
                audit->require(
                    tokens >= -1e-9 &&
                        tokens <= failover.retry_budget.burst + 1e-9,
                    "retry-budget-bounds", now,
                    static_cast<std::int64_t>(s),
                    "retry tokens outside [0, burst]");
                audit->require(
                    breakers[s].closes() <= breakers[s].opens(),
                    "breaker-transitions", now,
                    static_cast<std::int64_t>(s),
                    "more closes than opens");
            }
        }

        switch (event.kind) {
          case FrontEndEvent::Crash: {
            const CrashEvent& ce =
                crashes[static_cast<std::size_t>(event.payload)];
            // Crashes ride the Failure lane, so a restart due at this
            // same instant has already run; a server still down here is
            // inside a wider outage that absorbs this crash.
            if (down[ce.server])
                break;
            const Server::CrashFallout fallout =
                servers[ce.server]->crash(now);
            down[ce.server] = 1;
            if (ce.restart_after_us > 0) {
                events.schedule(now + ce.restart_after_us,
                                FrontEndEvent::Restart, ce.server);
            }
            // Everything the crash spilled goes back to the front end,
            // spending the crashed server's retry budget.
            for (const Server::SpilledRequest& spilled : fallout.aborted)
                scheduleRetry(spilled.invocation_index, now, ce.server);
            for (const Server::SpilledRequest& spilled :
                 fallout.flushed_queue)
                scheduleRetry(spilled.invocation_index, now, ce.server);
            break;
          }
          case FrontEndEvent::Restart: {
            const auto server = static_cast<std::size_t>(event.payload);
            servers[server]->restart(now);
            down[server] = 0;
            break;
          }
          case FrontEndEvent::OomKill: {
            const OomKillEvent& oe =
                ooms[static_cast<std::size_t>(event.payload)];
            // A kill scheduled inside a crash outage has nothing left
            // to kill — the crash already flushed every container.
            if (down[oe.server])
                break;
            const auto aborted = servers[oe.server]->oomKill(now);
            // The aborted invocation goes back to the front end like
            // crash fallout, debiting the killing server's budget.
            if (aborted.has_value())
                scheduleRetry(aborted->invocation_index, now, oe.server);
            break;
          }
          case FrontEndEvent::Dispatch: {
            const auto index = static_cast<std::size_t>(event.payload);
            const int attempt = static_cast<int>(event.payload2);
            // Probe servers starting at the primary (retries start
            // offset by the attempt number so they prefer a different
            // server than the one that just failed).
            const std::size_t primary = primaries[index];
            const std::size_t start =
                (primary + static_cast<std::size_t>(attempt)) % n;
            std::size_t chosen = n;
            bool any_healthy = false;
            for (std::size_t k = 0; k < n; ++k) {
                const std::size_t s = (start + k) % n;
                if (down[s])
                    continue;
                // A partitioned server is unreachable, not unhealthy:
                // it keeps draining its queue, but new dispatches fail
                // fast and fall through to the next probe. Like a
                // crash, it does not count as healthy — if every
                // reachable server is gone the request backs off and
                // retries rather than being shed.
                if (partitioned(s, now)) {
                    ++result.partition_unreachable;
                    continue;
                }
                // An open breaker means "treat as down": route around
                // it, and if the whole fleet is open, back off and
                // retry instead of shedding — the breakers re-probe.
                if (!breakers[s].allowRequest(now))
                    continue;
                any_healthy = true;
                if (failover.shed_queue_depth > 0 &&
                    servers[s]->queueDepth() >=
                        failover.shed_queue_depth) {
                    continue;
                }
                chosen = s;
                break;
            }
            if (chosen == n) {
                if (any_healthy) {
                    // Overload, not outage: shed instead of buffering
                    // into a queue that would only time out.
                    ++result.shed_requests;
                } else {
                    scheduleRetry(index, now, primary);
                }
                break;
            }
            if (chosen != primary)
                ++result.failovers;
            if (attempt == 0)
                budgets[chosen].onFreshArrival();
            servers[chosen]->offer(index, now,
                                   /*redispatched=*/attempt > 0);
            break;
          }
        }
    }

    TimeUs horizon = last_event_us;
    if (!trace.invocations().empty()) {
        horizon = std::max(horizon,
                           trace.invocations().back().arrival_us);
    }
    horizon += config.server.queue_timeout_us;

    result.servers.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
        result.servers.push_back(servers[s]->finish(horizon));
        result.breaker_opens += breakers[s].opens();
        result.breaker_closes += breakers[s].closes();
        result.breaker_probes += breakers[s].probes();
    }
    if (audit != nullptr) {
        // Fleet-wide request conservation: every trace invocation ends
        // in exactly one of served-on-a-server, dropped-by-a-server,
        // shed by admission control, or failed after retries.
        std::int64_t terminal =
            result.shed_requests + result.failed_requests;
        for (const PlatformResult& s : result.servers)
            terminal += s.served() + s.dropped();
        const auto expected =
            static_cast<std::int64_t>(trace.invocations().size());
        if (terminal != expected) {
            audit->fail("fleet-conservation", horizon, -1,
                        "trace invocations " + std::to_string(expected) +
                            " != shed + failed + sum(served + dropped) " +
                            std::to_string(terminal));
        }
    }
    return result;
}

/**
 * Interleaved health-aware simulation, Dense backend: the front-end
 * loop merges the arrival cursor against its event heap with "arrival
 * wins all ties" (the reference setup hands attempt-0 dispatches the
 * lowest sequence numbers, so at any shared timestamp they deliver
 * before every retry, restart, and Failure-lane crash), servers are
 * driven through the catalog begin() and the Invocation-carrying
 * offer(), and per-request retry state lives in a sparse map keyed by
 * stream index — only requests actually spilled by a fault ever
 * allocate an entry. Decision-for-decision identical to
 * runClusterFaultAware(), which platform_differential_test enforces.
 */
ClusterResult
runClusterFaultAwareStreamed(InvocationSource& source, PolicyKind kind,
                             const ClusterConfig& config,
                             const PolicyConfig& policy_config)
{
    const std::size_t n = config.num_servers;
    const FailoverConfig& failover = config.failover;

    // One expansion of the crash schedule (explicit crashes + burst
    // victims) shared by the front end and every injector, so a burst
    // victim's self-view matches the front end's plan.
    const std::vector<CrashEvent> crashes =
        config.faults.expandedCrashes(n);
    const std::vector<OomKillEvent>& ooms = config.faults.oom_kills;

    Auditor* audit =
        config.server.audit != nullptr && config.server.audit->enabled()
        ? config.server.audit
        : nullptr;

    source.reset();
    const std::vector<FunctionSpec>& catalog = source.functions();
    const SourceCountHint hint = source.countHint();

    std::vector<FaultInjector> injectors;
    injectors.reserve(n);
    std::vector<std::unique_ptr<Server>> servers;
    servers.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
        injectors.emplace_back(config.faults, s, n);
        servers.push_back(std::make_unique<Server>(
            makePolicy(kind, policy_config), config.server));
        servers.back()->setFaultInjector(&injectors[s]);
        // Sizing hint only: each server sees roughly 1/n of the stream.
        servers.back()->begin(catalog, hint.count / n + 16);
    }

    EventCore<FrontEndEvent> events;
    events.bindCancellation(config.server.cancel);
    events.bindAuditor(audit);
    // Attempt-0 dispatches are delivered straight off the sorted stream
    // by the cursor merge below; only the fault plan is scheduled up
    // front (retries and restarts arrive at runtime).
    events.reserve(crashes.size() + ooms.size() + 64);
    std::vector<EventBatchItem<FrontEndEvent>> setup;
    setup.reserve(std::max(crashes.size(), ooms.size()));
    for (std::size_t k = 0; k < crashes.size(); ++k) {
        EventBatchItem<FrontEndEvent> item;
        item.time_us = crashes[k].at_us;
        item.kind = FrontEndEvent::Crash;
        item.payload = k;
        setup.push_back(item);
    }
    events.scheduleBatch(setup, EventLane::Failure);
    setup.clear();
    for (std::size_t k = 0; k < ooms.size(); ++k) {
        EventBatchItem<FrontEndEvent> item;
        item.time_us = ooms[k].at_us;
        item.kind = FrontEndEvent::OomKill;
        item.payload = k;
        setup.push_back(item);
    }
    events.scheduleBatch(setup, EventLane::Failure);

    // Per-server partition windows with a monotonic cursor each (see
    // runClusterFaultAware).
    std::vector<std::vector<PartitionWindow>> partition_windows(n);
    std::vector<std::size_t> partition_cursor(n, 0);
    for (std::size_t s = 0; s < n; ++s)
        partition_windows[s] = config.faults.partitionsFor(s);
    auto partitioned = [&](std::size_t s, TimeUs now) {
        const auto& wins = partition_windows[s];
        std::size_t& cur = partition_cursor[s];
        while (cur < wins.size() && wins[cur].until_us <= now)
            ++cur;
        return cur < wins.size() && wins[cur].from_us <= now;
    };

    ClusterResult result;
    std::vector<char> down(n, 0);
    TimeUs last_event_us = 0;

    // Retry state, sparse: the reference path's attempts array and
    // trace lookups collapse into one map entry per request spilled at
    // least once — everything else streams through untouched.
    struct RetryEntry
    {
        Invocation inv;
        int attempts = 0;
    };
    std::unordered_map<std::size_t, RetryEntry> retry_state;

    PrimaryTracker primaries(config, /*record=*/true);

    std::vector<RetryBudget> budgets(
        n, RetryBudget(failover.retry_budget));
    std::vector<CircuitBreaker> breakers(
        n, CircuitBreaker(failover.breaker));
    std::vector<std::int64_t> seen_failures(n, 0);
    std::vector<std::int64_t> seen_successes(n, 0);
    const bool breaker_on = failover.breaker.enabled();
    auto observeServer = [&](std::size_t s, TimeUs now) {
        const std::int64_t failures = servers[s]->spawnFailureCount() +
            servers[s]->queueTimeoutDropCount();
        const std::int64_t successes = servers[s]->spawnSuccessCount() +
            servers[s]->warmStartCount();
        for (; seen_failures[s] < failures; ++seen_failures[s])
            breakers[s].recordFailure(now);
        for (; seen_successes[s] < successes; ++seen_successes[s])
            breakers[s].recordSuccess(now);
    };

    const std::uint64_t jitter_base =
        deriveCellSeed(config.seed, 0xBACC0FFEULL);

    // Identical decision sequence to the reference scheduleRetry; the
    // invocation rides in instead of being looked up in the trace.
    auto scheduleRetry = [&](std::size_t index, const Invocation& inv,
                             TimeUs now, std::size_t provoker) {
        RetryEntry& entry = retry_state[index];
        entry.inv = inv;
        if (entry.attempts >= failover.max_retries) {
            ++result.failed_requests;
            return;
        }
        if (!budgets[provoker].trySpend()) {
            ++result.failed_requests;
            ++result.retry_budget_exhausted;
            return;
        }
        const int shift = std::min(entry.attempts, 20);
        TimeUs backoff = failover.base_backoff_us << shift;
        if (failover.backoff_jitter_frac > 0.0) {
            const std::uint64_t draw = deriveCellSeed(
                jitter_base,
                (static_cast<std::uint64_t>(index) << 8) |
                    (static_cast<std::uint64_t>(entry.attempts) & 0xff));
            const auto span = static_cast<std::uint64_t>(
                static_cast<double>(backoff) *
                failover.backoff_jitter_frac) + 1;
            backoff += static_cast<TimeUs>(draw % span);
        }
        const TimeUs at = now + backoff;
        if (at - inv.arrival_us > failover.request_timeout_us) {
            ++result.failed_requests;
            return;
        }
        ++entry.attempts;
        ++result.retries;
        events.schedule(at, FrontEndEvent::Dispatch, index,
                        static_cast<std::uint64_t>(entry.attempts));
    };

    std::size_t cursor_index = 0;
    TimeUs last_arrival = 0;
    Invocation arr;
    for (;;) {
        const bool have_arrival = source.peek(arr);
        if (!have_arrival && events.empty())
            break;
        EngineEvent<FrontEndEvent> event;
        Invocation dispatch_inv;
        bool from_cursor = false;
        if (have_arrival &&
            (events.empty() || arr.arrival_us <= events.nextTime())) {
            if (config.server.cancel != nullptr)
                config.server.cancel->throwIfCancelled();
            source.next(dispatch_inv);
            if (dispatch_inv.arrival_us < last_arrival) {
                throw std::runtime_error(
                    "runCluster: source arrivals out of order (" +
                    std::to_string(dispatch_inv.arrival_us) + " after " +
                    std::to_string(last_arrival) + ")");
            }
            if (dispatch_inv.function >= catalog.size()) {
                throw std::runtime_error(
                    "runCluster: source function id " +
                    std::to_string(dispatch_inv.function) +
                    " out of range (catalog " +
                    std::to_string(catalog.size()) + ")");
            }
            last_arrival = dispatch_inv.arrival_us;
            event.time_us = dispatch_inv.arrival_us;
            event.kind = FrontEndEvent::Dispatch;
            event.payload = cursor_index++;
            from_cursor = true;
        } else {
            event = events.pop();
        }
        const TimeUs now = event.time_us;
        last_event_us = std::max(last_event_us, now);
        // Settle all servers so queue depths and health are current.
        for (std::size_t s = 0; s < n; ++s) {
            servers[s]->advanceTo(now);
            if (breaker_on)
                observeServer(s, now);
        }
        if (audit != nullptr) {
            for (std::size_t s = 0; s < n; ++s) {
                const double tokens = budgets[s].tokens();
                audit->require(
                    tokens >= -1e-9 &&
                        tokens <= failover.retry_budget.burst + 1e-9,
                    "retry-budget-bounds", now,
                    static_cast<std::int64_t>(s),
                    "retry tokens outside [0, burst]");
                audit->require(
                    breakers[s].closes() <= breakers[s].opens(),
                    "breaker-transitions", now,
                    static_cast<std::int64_t>(s),
                    "more closes than opens");
            }
        }

        switch (event.kind) {
          case FrontEndEvent::Crash: {
            const CrashEvent& ce =
                crashes[static_cast<std::size_t>(event.payload)];
            if (down[ce.server])
                break;
            const Server::CrashFallout fallout =
                servers[ce.server]->crash(now);
            down[ce.server] = 1;
            if (ce.restart_after_us > 0) {
                events.schedule(now + ce.restart_after_us,
                                FrontEndEvent::Restart, ce.server);
            }
            for (const Server::SpilledRequest& spilled : fallout.aborted)
                scheduleRetry(spilled.invocation_index, spilled.inv, now,
                              ce.server);
            for (const Server::SpilledRequest& spilled :
                 fallout.flushed_queue)
                scheduleRetry(spilled.invocation_index, spilled.inv, now,
                              ce.server);
            break;
          }
          case FrontEndEvent::Restart: {
            const auto server = static_cast<std::size_t>(event.payload);
            servers[server]->restart(now);
            down[server] = 0;
            break;
          }
          case FrontEndEvent::OomKill: {
            const OomKillEvent& oe =
                ooms[static_cast<std::size_t>(event.payload)];
            if (down[oe.server])
                break;
            const auto aborted = servers[oe.server]->oomKill(now);
            if (aborted.has_value())
                scheduleRetry(aborted->invocation_index, aborted->inv,
                              now, oe.server);
            break;
          }
          case FrontEndEvent::Dispatch: {
            const auto index = static_cast<std::size_t>(event.payload);
            const int attempt = static_cast<int>(event.payload2);
            // Heap dispatches are always retries (attempt >= 1): the
            // cursor merge never schedules attempt 0 there.
            const Invocation inv =
                from_cursor ? dispatch_inv : retry_state.at(index).inv;
            const std::size_t primary = from_cursor
                ? primaries.onArrival(index, inv)
                : primaries.recall(index, inv);
            const std::size_t start =
                (primary + static_cast<std::size_t>(attempt)) % n;
            std::size_t chosen = n;
            bool any_healthy = false;
            for (std::size_t k = 0; k < n; ++k) {
                const std::size_t s = (start + k) % n;
                if (down[s])
                    continue;
                if (partitioned(s, now)) {
                    ++result.partition_unreachable;
                    continue;
                }
                if (!breakers[s].allowRequest(now))
                    continue;
                any_healthy = true;
                if (failover.shed_queue_depth > 0 &&
                    servers[s]->queueDepth() >=
                        failover.shed_queue_depth) {
                    continue;
                }
                chosen = s;
                break;
            }
            if (chosen == n) {
                if (any_healthy) {
                    ++result.shed_requests;
                } else {
                    scheduleRetry(index, inv, now, primary);
                }
                break;
            }
            if (chosen != primary)
                ++result.failovers;
            if (attempt == 0)
                budgets[chosen].onFreshArrival();
            servers[chosen]->offer(index, inv, now,
                                   /*redispatched=*/attempt > 0);
            break;
          }
        }
    }

    const TimeUs horizon = last_event_us + config.server.queue_timeout_us;

    result.servers.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
        result.servers.push_back(servers[s]->finish(horizon));
        result.breaker_opens += breakers[s].opens();
        result.breaker_closes += breakers[s].closes();
        result.breaker_probes += breakers[s].probes();
    }
    if (audit != nullptr) {
        // Fleet-wide request conservation over the stream length.
        std::int64_t terminal =
            result.shed_requests + result.failed_requests;
        for (const PlatformResult& s : result.servers)
            terminal += s.served() + s.dropped();
        const auto expected = static_cast<std::int64_t>(cursor_index);
        if (terminal != expected) {
            audit->fail("fleet-conservation", horizon, -1,
                        "stream invocations " + std::to_string(expected) +
                            " != shed + failed + sum(served + dropped) " +
                            std::to_string(terminal));
        }
    }
    return result;
}

}  // namespace

ClusterResult
runCluster(const Trace& trace, PolicyKind kind, const ClusterConfig& config,
           const PolicyConfig& policy_config)
{
    config.validate();
    if (config.shards > 0 &&
        config.server.platform_backend != PlatformBackend::Reference) {
        // Sharded engine (cluster_shard.cc): each shard replays the
        // trace through its own non-owning cursor.
        ShardedWorkload workload;
        workload.make_full = [&trace] {
            return std::make_unique<TraceSource>(trace);
        };
        return runCluster(workload, kind, config, policy_config);
    }
    // The independent-server fast path is only equivalent when no
    // front-end machinery can fire: no faults, no admission mark, no
    // retry budget, no breakers. Server-local overload features run
    // identically on both paths (they live inside Server).
    if (config.faults.empty() && config.failover.shed_queue_depth == 0 &&
        !config.failover.retry_budget.enabled() &&
        !config.failover.breaker.enabled())
        return runClusterSplit(trace, kind, config, policy_config);
    if (config.server.platform_backend == PlatformBackend::Reference)
        return runClusterFaultAware(trace, kind, config, policy_config);
    // Dense backend: drive the streamed front end off a trace cursor so
    // both runCluster overloads share one health-aware implementation.
    TraceSource source(trace);
    return runClusterFaultAwareStreamed(source, kind, config,
                                        policy_config);
}

ClusterResult
runCluster(InvocationSource& source, PolicyKind kind,
           const ClusterConfig& config, const PolicyConfig& policy_config)
{
    config.validate();
    if (config.server.platform_backend == PlatformBackend::Reference) {
        // The oracle path needs random access: materialize once and
        // replay through the trace overload.
        const Trace trace = materializeSource(source);
        return runCluster(trace, kind, config, policy_config);
    }
    if (config.shards > 0) {
        // A lone cursor cannot be re-opened per shard, so sharded runs
        // of this overload materialize once and fan cursors out over
        // the trace. Callers that can re-open their stream (.ftrace
        // regions, generators) should use the ShardedWorkload overload
        // to keep memory O(catalog + pending work).
        const Trace trace = materializeSource(source);
        ShardedWorkload workload;
        workload.make_full = [&trace] {
            return std::make_unique<TraceSource>(trace);
        };
        return runCluster(workload, kind, config, policy_config);
    }
    if (config.faults.empty() && config.failover.shed_queue_depth == 0 &&
        !config.failover.retry_budget.enabled() &&
        !config.failover.breaker.enabled())
        return runClusterSplitStreamed(source, kind, config,
                                       policy_config);
    return runClusterFaultAwareStreamed(source, kind, config,
                                        policy_config);
}

}  // namespace faascache

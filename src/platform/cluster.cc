#include "platform/cluster.h"

#include <stdexcept>

#include "util/rng.h"

namespace faascache {

std::int64_t
ClusterResult::warmStarts() const
{
    std::int64_t total = 0;
    for (const auto& s : servers)
        total += s.warm_starts;
    return total;
}

std::int64_t
ClusterResult::coldStarts() const
{
    std::int64_t total = 0;
    for (const auto& s : servers)
        total += s.cold_starts;
    return total;
}

std::int64_t
ClusterResult::dropped() const
{
    std::int64_t total = 0;
    for (const auto& s : servers)
        total += s.dropped();
    return total;
}

double
ClusterResult::warmPercent() const
{
    const std::int64_t served = warmStarts() + coldStarts();
    if (served == 0)
        return 0.0;
    return 100.0 * static_cast<double>(warmStarts()) /
        static_cast<double>(served);
}

double
ClusterResult::meanLatencySec() const
{
    double sum = 0.0;
    std::size_t count = 0;
    for (const auto& s : servers) {
        for (double v : s.latencies_sec)
            sum += v;
        count += s.latencies_sec.size();
    }
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

ClusterResult
runCluster(const Trace& trace, PolicyKind kind, const ClusterConfig& config,
           const PolicyConfig& policy_config)
{
    if (config.num_servers == 0)
        throw std::invalid_argument("runCluster: no servers");

    // Split the invocation stream by the balancing policy. Every
    // sub-trace carries the full function catalog so function ids stay
    // stable across servers.
    std::vector<Trace> shards(config.num_servers);
    for (std::size_t s = 0; s < config.num_servers; ++s) {
        shards[s].setName(trace.name() + "-server" + std::to_string(s));
        for (const auto& fn : trace.functions())
            shards[s].addFunction(fn);
    }

    Rng rng(config.seed);
    std::size_t next_round_robin = 0;
    for (const auto& inv : trace.invocations()) {
        std::size_t target = 0;
        switch (config.balancing) {
          case LoadBalancing::Random:
            target = static_cast<std::size_t>(
                rng.uniformInt(config.num_servers));
            break;
          case LoadBalancing::RoundRobin:
            target = next_round_robin;
            next_round_robin =
                (next_round_robin + 1) % config.num_servers;
            break;
          case LoadBalancing::FunctionHash:
            target = static_cast<std::size_t>(
                Rng::hashMix(inv.function ^ config.seed) %
                config.num_servers);
            break;
        }
        shards[target].addInvocation(inv.function, inv.arrival_us);
    }

    ClusterResult result;
    result.servers.reserve(config.num_servers);
    for (std::size_t s = 0; s < config.num_servers; ++s) {
        Server server(makePolicy(kind, policy_config), config.server);
        result.servers.push_back(server.run(shards[s]));
    }
    return result;
}

}  // namespace faascache

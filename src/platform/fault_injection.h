/**
 * @file
 * Deterministic fault injection for the platform model.
 *
 * The paper's §7.2 experiments assume a perfectly reliable invoker
 * fleet; real FaaS fleets ("Serverless in the Wild") see server
 * crashes, transient container-spawn failures, and cold-start
 * stragglers. A FaultPlan describes such events — scheduled crashes
 * with restart-after-delay plus seeded stochastic faults — and a
 * FaultInjector derives each server's deterministic fault stream from
 * it. An empty plan injects nothing and adds no cost: every draw is
 * guarded by its probability, so disabled faults consume no randomness
 * and results stay bit-identical to a run without the plan.
 */
#ifndef FAASCACHE_PLATFORM_FAULT_INJECTION_H_
#define FAASCACHE_PLATFORM_FAULT_INJECTION_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace faascache {

/** One scheduled server crash (and optional restart). */
struct CrashEvent
{
    /** Index of the server that crashes (0 for a single-server run). */
    std::size_t server = 0;

    /** Crash time. The server drains running work, flushes its
     *  container pool, and becomes unavailable. */
    TimeUs at_us = 0;

    /** Downtime before the server rejoins cold; 0 = never restarts. */
    TimeUs restart_after_us = 0;
};

/**
 * A correlated crash burst: one failure domain (rack power, a bad
 * kernel rollout) takes down `servers` distinct servers within a time
 * window. Victims and their exact crash instants are drawn
 * deterministically from the burst's seed when the plan is expanded
 * (FaultPlan::expandedCrashes()), so equal plans give equal bursts for
 * any fleet size.
 */
struct CrashBurst
{
    /** Start of the burst window. */
    TimeUs at_us = 0;

    /** Width of the window the victim crashes land in (0 = all victims
     *  crash at exactly at_us). */
    TimeUs window_us = 0;

    /** Distinct servers taken down (clamped to the fleet size). */
    std::size_t servers = 1;

    /** Downtime of each victim before it rejoins cold; 0 = none of the
     *  victims ever restart. */
    TimeUs restart_after_us = 0;

    /** Burst-local seed (mixed with the plan seed). */
    std::uint64_t seed = 0;
};

/**
 * A cluster↔server network partition: the front end cannot reach
 * `server` during [from_us, until_us). The server itself keeps running
 * (queued work drains, containers stay warm) but dispatch to it fails
 * fast — failover, retry budgets, and breakers see an unreachable
 * target, not a crash.
 */
struct PartitionWindow
{
    std::size_t server = 0;
    TimeUs from_us = 0;

    /** Exclusive end of the partition. */
    TimeUs until_us = 0;
};

/**
 * A memory-pressure OOM kill: at `at_us` the kernel on `server` kills
 * the fattest busy container (most memory, ties to the lowest id). The
 * victim invocation is aborted — a cluster re-dispatches it, a
 * standalone run loses it — and the container is destroyed.
 */
struct OomKillEvent
{
    std::size_t server = 0;
    TimeUs at_us = 0;
};

/**
 * A window during which only a fraction of fleet capacity is available
 * (derived from a FaultPlan's crash schedule; consumed by the elastic
 * provisioning controller to compensate for lost capacity).
 */
struct CapacityLossWindow
{
    TimeUs from_us = 0;

    /** Exclusive end; TimeUs max for a permanent loss. */
    TimeUs until_us = 0;

    /** Healthy servers / total servers, in (0, 1]. */
    double available_fraction = 1.0;
};

/** Declarative schedule of platform faults. Default: no faults. */
struct FaultPlan
{
    /** Scheduled crash/restart events. */
    std::vector<CrashEvent> crashes;

    /** Correlated crash bursts (expanded deterministically into
     *  per-server crash events; see expandedCrashes()). */
    std::vector<CrashBurst> crash_bursts;

    /** Cluster↔server network-partition windows. */
    std::vector<PartitionWindow> partitions;

    /** Scheduled memory-pressure OOM kills. */
    std::vector<OomKillEvent> oom_kills;

    /** Probability that a container spawn (cold start) fails
     *  transiently; the request is retried after a holdoff. */
    double spawn_failure_prob = 0.0;

    /** Holdoff before a failed spawn is attempted again. */
    TimeUs spawn_retry_delay_us = 250 * kMillisecond;

    /** Probability that a cold start straggles (slow image pull,
     *  contended dockerd): its initialization time is multiplied. */
    double straggler_prob = 0.0;

    /** Initialization-time multiplier for straggling cold starts. */
    double straggler_multiplier = 4.0;

    /** Probability that a demand eviction stalls on memory reclaim,
     *  delaying the cold start it was freeing memory for. */
    double reclaim_stall_prob = 0.0;

    /** Duration of one memory-reclaim stall. */
    TimeUs reclaim_stall_us = 500 * kMillisecond;

    /** Seed of the stochastic fault streams (one per server). */
    std::uint64_t seed = 0x5EEDFA11ULL;

    /** True when the plan injects nothing (no crashes, all
     *  probabilities zero) — the zero-cost default. */
    bool empty() const;

    /**
     * Check invariants (probabilities in [0, 1], multiplier >= 1,
     * positive delays, non-negative fault times, well-formed bursts and
     * partition windows) and reject overlapping crash windows: two
     * crashes of one server must not overlap in downtime — a second
     * crash while the server is already down would be silently
     * absorbed, which is almost always a plan-authoring mistake. A
     * crash landing exactly at the previous restart instant is legal
     * (the Failure lane delivers the restart first). When `num_servers`
     * is nonzero the check runs over the *expanded* schedule (bursts
     * included); otherwise bursts cannot be expanded and only explicit
     * crashes are checked.
     * @param num_servers When nonzero, also reject fault events whose
     *        server index is out of range.
     * @throws std::invalid_argument with a descriptive message.
     */
    void validate(std::size_t num_servers = 0) const;

    /** This server's crash events, sorted by time. */
    std::vector<CrashEvent> crashesFor(std::size_t server) const;

    /**
     * The full crash schedule: explicit `crashes` (in declaration
     * order, so plans without bursts expand to exactly `crashes` and
     * keep their event sequence numbers) followed by each burst's
     * victims. Victims are drawn without replacement via a seeded
     * partial Fisher-Yates over the fleet, each with a uniform crash
     * offset inside the burst window, then ordered by (time, server) —
     * deterministic for equal (plan, num_servers).
     */
    std::vector<CrashEvent> expandedCrashes(std::size_t num_servers) const;

    /** expandedCrashes() filtered to one server, sorted by time. */
    std::vector<CrashEvent> expandedCrashesFor(std::size_t server,
                                               std::size_t num_servers)
        const;

    /** `partitions` filtered to one server, sorted by from_us. */
    std::vector<PartitionWindow> partitionsFor(std::size_t server) const;

    /** `oom_kills` filtered to one server, sorted by time. */
    std::vector<OomKillEvent> oomKillsFor(std::size_t server) const;

    /**
     * Fleet-capacity timeline implied by the crash schedule (bursts
     * included): one window per span where fewer than `num_servers`
     * servers are up. Overlapping downtimes compound (two of four
     * servers down gives available_fraction 0.5).
     */
    std::vector<CapacityLossWindow>
    capacityLossWindows(std::size_t num_servers) const;
};

/**
 * Per-server view of a FaultPlan: owns the server's deterministic
 * random stream and answers the platform's fault queries. Two
 * injectors built from equal (plan seed, server index) produce equal
 * streams, so a run is reproducible counter-for-counter.
 */
class FaultInjector
{
  public:
    /**
     * @param plan  Fault schedule; must outlive the injector.
     * @param server Index of the server this injector serves.
     * @param num_servers Fleet size, for expanding correlated crash
     *        bursts; 0 (standalone) expands over a fleet of server+1.
     */
    FaultInjector(const FaultPlan& plan, std::size_t server,
                  std::size_t num_servers = 0);

    const FaultPlan& plan() const { return *plan_; }

    /** Draw: does this container spawn fail transiently? */
    bool spawnFails();

    /** Draw: does this cold start straggle? */
    bool coldStartStraggles();

    /** A straggler's inflated initialization time. */
    TimeUs straggleInit(TimeUs init_us) const;

    /** Draw: stall duration of a demand eviction (0 = no stall). */
    TimeUs reclaimStall();

    /** This server's crash events (bursts expanded), sorted by time. */
    const std::vector<CrashEvent>& crashes() const { return crashes_; }

    /** This server's scheduled OOM kills, sorted by time. */
    const std::vector<OomKillEvent>& oomKills() const { return ooms_; }

  private:
    const FaultPlan* plan_;
    Rng rng_;
    std::vector<CrashEvent> crashes_;
    std::vector<OomKillEvent> ooms_;
};

}  // namespace faascache

#endif  // FAASCACHE_PLATFORM_FAULT_INJECTION_H_

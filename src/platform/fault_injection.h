/**
 * @file
 * Deterministic fault injection for the platform model.
 *
 * The paper's §7.2 experiments assume a perfectly reliable invoker
 * fleet; real FaaS fleets ("Serverless in the Wild") see server
 * crashes, transient container-spawn failures, and cold-start
 * stragglers. A FaultPlan describes such events — scheduled crashes
 * with restart-after-delay plus seeded stochastic faults — and a
 * FaultInjector derives each server's deterministic fault stream from
 * it. An empty plan injects nothing and adds no cost: every draw is
 * guarded by its probability, so disabled faults consume no randomness
 * and results stay bit-identical to a run without the plan.
 */
#ifndef FAASCACHE_PLATFORM_FAULT_INJECTION_H_
#define FAASCACHE_PLATFORM_FAULT_INJECTION_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace faascache {

/** One scheduled server crash (and optional restart). */
struct CrashEvent
{
    /** Index of the server that crashes (0 for a single-server run). */
    std::size_t server = 0;

    /** Crash time. The server drains running work, flushes its
     *  container pool, and becomes unavailable. */
    TimeUs at_us = 0;

    /** Downtime before the server rejoins cold; 0 = never restarts. */
    TimeUs restart_after_us = 0;
};

/**
 * A window during which only a fraction of fleet capacity is available
 * (derived from a FaultPlan's crash schedule; consumed by the elastic
 * provisioning controller to compensate for lost capacity).
 */
struct CapacityLossWindow
{
    TimeUs from_us = 0;

    /** Exclusive end; TimeUs max for a permanent loss. */
    TimeUs until_us = 0;

    /** Healthy servers / total servers, in (0, 1]. */
    double available_fraction = 1.0;
};

/** Declarative schedule of platform faults. Default: no faults. */
struct FaultPlan
{
    /** Scheduled crash/restart events. */
    std::vector<CrashEvent> crashes;

    /** Probability that a container spawn (cold start) fails
     *  transiently; the request is retried after a holdoff. */
    double spawn_failure_prob = 0.0;

    /** Holdoff before a failed spawn is attempted again. */
    TimeUs spawn_retry_delay_us = 250 * kMillisecond;

    /** Probability that a cold start straggles (slow image pull,
     *  contended dockerd): its initialization time is multiplied. */
    double straggler_prob = 0.0;

    /** Initialization-time multiplier for straggling cold starts. */
    double straggler_multiplier = 4.0;

    /** Probability that a demand eviction stalls on memory reclaim,
     *  delaying the cold start it was freeing memory for. */
    double reclaim_stall_prob = 0.0;

    /** Duration of one memory-reclaim stall. */
    TimeUs reclaim_stall_us = 500 * kMillisecond;

    /** Seed of the stochastic fault streams (one per server). */
    std::uint64_t seed = 0x5EEDFA11ULL;

    /** True when the plan injects nothing (no crashes, all
     *  probabilities zero) — the zero-cost default. */
    bool empty() const;

    /**
     * Check invariants (probabilities in [0, 1], multiplier >= 1,
     * positive delays, non-negative crash times).
     * @param num_servers When nonzero, also reject crash events whose
     *        server index is out of range.
     * @throws std::invalid_argument with a descriptive message.
     */
    void validate(std::size_t num_servers = 0) const;

    /** This server's crash events, sorted by time. */
    std::vector<CrashEvent> crashesFor(std::size_t server) const;

    /**
     * Fleet-capacity timeline implied by the crash schedule: one window
     * per span where fewer than `num_servers` servers are up.
     * Overlapping downtimes compound (two of four servers down gives
     * available_fraction 0.5).
     */
    std::vector<CapacityLossWindow>
    capacityLossWindows(std::size_t num_servers) const;
};

/**
 * Per-server view of a FaultPlan: owns the server's deterministic
 * random stream and answers the platform's fault queries. Two
 * injectors built from equal (plan seed, server index) produce equal
 * streams, so a run is reproducible counter-for-counter.
 */
class FaultInjector
{
  public:
    /**
     * @param plan  Fault schedule; must outlive the injector.
     * @param server Index of the server this injector serves.
     */
    FaultInjector(const FaultPlan& plan, std::size_t server);

    const FaultPlan& plan() const { return *plan_; }

    /** Draw: does this container spawn fail transiently? */
    bool spawnFails();

    /** Draw: does this cold start straggle? */
    bool coldStartStraggles();

    /** A straggler's inflated initialization time. */
    TimeUs straggleInit(TimeUs init_us) const;

    /** Draw: stall duration of a demand eviction (0 = no stall). */
    TimeUs reclaimStall();

    /** This server's crash events, sorted by time. */
    const std::vector<CrashEvent>& crashes() const { return crashes_; }

  private:
    const FaultPlan* plan_;
    Rng rng_;
    std::vector<CrashEvent> crashes_;
};

}  // namespace faascache

#endif  // FAASCACHE_PLATFORM_FAULT_INJECTION_H_

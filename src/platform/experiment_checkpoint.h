/**
 * @file
 * Platform and cluster flavours of the checkpoint journal
 * (util/checkpoint_journal.h): full-fidelity payload codecs for
 * PlatformResult and ClusterResult plus the grid fingerprints that
 * guard --resume, giving the platform/cluster benches the same
 * SIGKILL-and-resume contract the SimResult sweeps have had since
 * PR 3.
 *
 * Encoding rules match the SimResult codec: integers in decimal,
 * doubles in C hexfloat (`%a`), strings percent-escaped — a restored
 * result is field-for-field (bit-for-bit for doubles) equal to the
 * computed one, so a resumed bench's output is byte-identical to an
 * uninterrupted run. A ClusterResult payload nests one PlatformResult
 * field block per server. The non-owning ServerConfig::cancel pointer
 * is deliberately not journaled (a restored result carries no token).
 */
#ifndef FAASCACHE_PLATFORM_EXPERIMENT_CHECKPOINT_H_
#define FAASCACHE_PLATFORM_EXPERIMENT_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "platform/experiment.h"

namespace faascache {

/**
 * @name PlatformResult payload codec
 * @{
 */
std::string encodePlatformCheckpointPayload(const std::string& key,
                                            const PlatformResult& result);

/** @return false when the payload is malformed. */
bool decodePlatformCheckpointPayload(const std::string& payload,
                                     std::string* key,
                                     PlatformResult* result);
/** @} */

/**
 * @name ClusterResult payload codec
 * @{
 */
std::string encodeClusterCheckpointPayload(const std::string& key,
                                           const ClusterResult& result);

/** @return false when the payload is malformed. */
bool decodeClusterCheckpointPayload(const std::string& payload,
                                    std::string* key,
                                    ClusterResult* result);
/** @} */

/**
 * Fingerprint of a platform sweep grid: trace contents, effective cell
 * keys, policy kinds, and server knobs. Two sweeps share a fingerprint
 * iff they would replay the same cells (the --resume safety check).
 */
std::uint64_t platformSweepFingerprint(
    const std::vector<PlatformCell>& cells);

/**
 * Fingerprint of a cluster sweep grid: trace contents, effective cell
 * keys, policy kinds, and the full cluster configuration (fleet shape,
 * balancing, failover knobs, fault plan).
 */
std::uint64_t clusterSweepFingerprint(
    const std::vector<ClusterCell>& cells);

}  // namespace faascache

#endif  // FAASCACHE_PLATFORM_EXPERIMENT_CHECKPOINT_H_

#include "platform/experiment.h"

#include <cstdio>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "util/thread_pool.h"

namespace faascache {

namespace {

/** @throws std::invalid_argument naming the first malformed cell. */
void
validatePlatformCells(const std::vector<PlatformCell>& cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (cells[i].trace == nullptr)
            throw std::invalid_argument(
                "runPlatformSweep: cell without a trace (cell index " +
                std::to_string(i) + ")");
    }
}

/** Effective keys: cell.key or "<trace>/<policy>/<mem>", deduplicated. */
std::vector<std::string>
platformCellKeys(const std::vector<PlatformCell>& cells)
{
    std::vector<std::string> keys;
    keys.reserve(cells.size());
    std::unordered_set<std::string> used;
    for (const PlatformCell& cell : cells) {
        std::string key = cell.key;
        if (key.empty()) {
            char mem[32];
            std::snprintf(mem, sizeof mem, "%g", cell.server.memory_mb);
            key = cell.trace->name() + "/" + policyKindName(cell.kind) +
                "/" + mem + "MB";
        }
        if (!used.insert(key).second) {
            for (int n = 2;; ++n) {
                std::string candidate = key + "#" + std::to_string(n);
                if (used.insert(candidate).second) {
                    key = std::move(candidate);
                    break;
                }
            }
        }
        keys.push_back(std::move(key));
    }
    return keys;
}

}  // namespace

double
PlatformComparison::warmStartRatio() const
{
    if (openwhisk.warm_starts == 0)
        return faascache.warm_starts > 0 ? 1e9 : 1.0;
    return static_cast<double>(faascache.warm_starts) /
        static_cast<double>(openwhisk.warm_starts);
}

double
PlatformComparison::servedRatio() const
{
    if (openwhisk.served() == 0)
        return faascache.served() > 0 ? 1e9 : 1.0;
    return static_cast<double>(faascache.served()) /
        static_cast<double>(openwhisk.served());
}

double
PlatformComparison::latencyImprovement() const
{
    const double fc = faascache.meanLatencySec();
    if (fc <= 0.0)
        return 1.0;
    return openwhisk.meanLatencySec() / fc;
}

PlatformResult
runPlatform(const Trace& trace, PolicyKind kind,
            const ServerConfig& server_config,
            const PolicyConfig& policy_config)
{
    Server server(makePolicy(kind, policy_config), server_config);
    return server.run(trace);
}

std::vector<PlatformResult>
runPlatformSweep(const std::vector<PlatformCell>& cells, std::size_t jobs)
{
    validatePlatformCells(cells);
    ThreadPool pool(jobs);
    return parallelMap(pool, cells, [](const PlatformCell& cell) {
        return runPlatform(*cell.trace, cell.kind, cell.server, cell.policy);
    });
}

std::size_t
PlatformSweepReport::countWithStatus(CellStatus status) const
{
    std::size_t count = 0;
    for (const CellOutcome<PlatformResult>& cell : cells)
        count += cell.status == status ? 1 : 0;
    return count;
}

bool
PlatformSweepReport::allOk() const
{
    return countWithStatus(CellStatus::Ok) == cells.size();
}

std::vector<PlatformResult>
PlatformSweepReport::results() const
{
    std::vector<PlatformResult> out;
    out.reserve(cells.size());
    for (const CellOutcome<PlatformResult>& cell : cells)
        out.push_back(cell.result);
    return out;
}

PlatformSweepReport
runPlatformSweepReport(const std::vector<PlatformCell>& cells,
                       std::size_t jobs,
                       const PlatformSweepOptions& options)
{
    validatePlatformCells(cells);
    const std::vector<std::string> keys = platformCellKeys(cells);

    PlatformSweepReport report;
    report.cells.resize(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
        report.cells[i].key = keys[i];

    CellHarnessOptions harness;
    harness.deadline_s = options.deadline_s;
    harness.max_retries = options.max_retries;
    harness.cancel = options.cancel;

    ThreadPool pool(jobs);
    report.completed = runHarnessedCells(
        pool, report.cells,
        [&cells](std::size_t index, int /*attempt*/,
                 const CancellationToken& token) {
            const PlatformCell& cell = cells[index];
            ServerConfig server = cell.server;
            server.cancel = &token;
            return runPlatform(*cell.trace, cell.kind, server,
                               cell.policy);
        },
        [](std::size_t, const CellOutcome<PlatformResult>&) {},
        harness);

    if (options.strict) {
        for (const CellOutcome<PlatformResult>& cell : report.cells) {
            if (cell.ok())
                continue;
            if (cell.exception)
                std::rethrow_exception(cell.exception);
            throw std::runtime_error(
                "runPlatformSweepReport: cell " + cell.key + " " +
                cellStatusName(cell.status) + ": " + cell.error);
        }
    }
    return report;
}

PlatformComparison
compareOpenWhiskVsFaasCache(const Trace& trace,
                            const ServerConfig& server_config,
                            const PolicyConfig& policy_config,
                            std::size_t jobs)
{
    // Vanilla OpenWhisk: 10-minute TTL, and under memory pressure the
    // ContainerPool removes the first free container in insertion order
    // (oldest created), blind to how hot the container is.
    PolicyConfig openwhisk_config = policy_config;
    openwhisk_config.ttl_victim_order = TtlVictimOrder::OldestCreated;

    PlatformCell openwhisk{&trace, PolicyKind::Ttl, server_config,
                           openwhisk_config, {}};
    PlatformCell faascache{&trace, PolicyKind::GreedyDual, server_config,
                           policy_config, {}};
    std::vector<PlatformResult> results =
        runPlatformSweep({openwhisk, faascache}, jobs);

    PlatformComparison out;
    out.openwhisk = std::move(results[0]);
    out.faascache = std::move(results[1]);
    return out;
}

}  // namespace faascache

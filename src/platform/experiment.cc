#include "platform/experiment.h"

#include <cstdio>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "platform/experiment_checkpoint.h"
#include "util/checkpoint_journal.h"
#include "util/sweep_journal.h"
#include "util/thread_pool.h"

namespace faascache {

namespace {

/** @throws std::invalid_argument naming the first malformed cell. */
void
validatePlatformCells(const std::vector<PlatformCell>& cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (cells[i].trace == nullptr)
            throw std::invalid_argument(
                "runPlatformSweep: cell without a trace (cell index " +
                std::to_string(i) + ")");
    }
}

/** @throws std::invalid_argument naming the first malformed cell. */
void
validateClusterCells(const std::vector<ClusterCell>& cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (cells[i].trace == nullptr)
            throw std::invalid_argument(
                "runClusterSweepReport: cell without a trace (cell "
                "index " +
                std::to_string(i) + ")");
    }
}

/** Deduplicate derived keys with "#n" suffixes, preserving order. */
std::vector<std::string>
dedupeKeys(std::vector<std::string> keys)
{
    std::unordered_set<std::string> used;
    for (std::string& key : keys) {
        if (used.insert(key).second)
            continue;
        for (int n = 2;; ++n) {
            std::string candidate = key + "#" + std::to_string(n);
            if (used.insert(candidate).second) {
                key = std::move(candidate);
                break;
            }
        }
    }
    return keys;
}

/** Strict mode: rethrow the first (submission-order) cell failure. */
template <typename Result>
void
rethrowFirstFailure(const std::vector<CellOutcome<Result>>& cells,
                    const char* who)
{
    for (const CellOutcome<Result>& cell : cells) {
        if (cell.ok())
            continue;
        if (cell.exception)
            std::rethrow_exception(cell.exception);
        throw std::runtime_error(std::string(who) + ": cell " + cell.key +
                                 " " + cellStatusName(cell.status) + ": " +
                                 cell.error);
    }
}

}  // namespace

double
PlatformComparison::warmStartRatio() const
{
    if (openwhisk.warm_starts == 0)
        return faascache.warm_starts > 0 ? 1e9 : 1.0;
    return static_cast<double>(faascache.warm_starts) /
        static_cast<double>(openwhisk.warm_starts);
}

double
PlatformComparison::servedRatio() const
{
    if (openwhisk.served() == 0)
        return faascache.served() > 0 ? 1e9 : 1.0;
    return static_cast<double>(faascache.served()) /
        static_cast<double>(openwhisk.served());
}

double
PlatformComparison::latencyImprovement() const
{
    const double fc = faascache.meanLatencySec();
    if (fc <= 0.0)
        return 1.0;
    return openwhisk.meanLatencySec() / fc;
}

PlatformResult
runPlatform(const Trace& trace, PolicyKind kind,
            const ServerConfig& server_config,
            const PolicyConfig& policy_config)
{
    Server server(makePolicy(kind, policy_config), server_config);
    return server.run(trace);
}

std::vector<std::string>
platformCellKeys(const std::vector<PlatformCell>& cells)
{
    validatePlatformCells(cells);
    std::vector<std::string> keys;
    keys.reserve(cells.size());
    for (const PlatformCell& cell : cells) {
        std::string key = cell.key;
        if (key.empty()) {
            char mem[32];
            std::snprintf(mem, sizeof mem, "%g", cell.server.memory_mb);
            key = cell.trace->name() + "/" + policyKindName(cell.kind) +
                "/" + mem + "MB";
        }
        keys.push_back(std::move(key));
    }
    return dedupeKeys(std::move(keys));
}

std::vector<std::string>
clusterCellKeys(const std::vector<ClusterCell>& cells)
{
    validateClusterCells(cells);
    std::vector<std::string> keys;
    keys.reserve(cells.size());
    for (const ClusterCell& cell : cells) {
        std::string key = cell.key;
        if (key.empty()) {
            char shape[48];
            std::snprintf(shape, sizeof shape, "%dx%g",
                          cell.config.num_servers,
                          cell.config.server.memory_mb);
            key = cell.trace->name() + "/" + policyKindName(cell.kind) +
                "/" + shape + "MB";
        }
        keys.push_back(std::move(key));
    }
    return dedupeKeys(std::move(keys));
}

std::vector<PlatformResult>
runPlatformSweep(const std::vector<PlatformCell>& cells, std::size_t jobs)
{
    validatePlatformCells(cells);
    ThreadPool pool(jobs);
    return parallelMap(pool, cells, [](const PlatformCell& cell) {
        return runPlatform(*cell.trace, cell.kind, cell.server, cell.policy);
    });
}

std::size_t
PlatformSweepReport::countWithStatus(CellStatus status) const
{
    std::size_t count = 0;
    for (const CellOutcome<PlatformResult>& cell : cells)
        count += cell.status == status ? 1 : 0;
    return count;
}

bool
PlatformSweepReport::allOk() const
{
    return countWithStatus(CellStatus::Ok) == cells.size();
}

std::vector<PlatformResult>
PlatformSweepReport::results() const
{
    std::vector<PlatformResult> out;
    out.reserve(cells.size());
    for (const CellOutcome<PlatformResult>& cell : cells)
        out.push_back(cell.result);
    return out;
}

std::size_t
ClusterSweepReport::countWithStatus(CellStatus status) const
{
    std::size_t count = 0;
    for (const CellOutcome<ClusterResult>& cell : cells)
        count += cell.status == status ? 1 : 0;
    return count;
}

bool
ClusterSweepReport::allOk() const
{
    return countWithStatus(CellStatus::Ok) == cells.size();
}

std::vector<ClusterResult>
ClusterSweepReport::results() const
{
    std::vector<ClusterResult> out;
    out.reserve(cells.size());
    for (const CellOutcome<ClusterResult>& cell : cells)
        out.push_back(cell.result);
    return out;
}

PlatformSweepReport
runPlatformSweepReport(const std::vector<PlatformCell>& cells,
                       std::size_t jobs,
                       const PlatformSweepOptions& options)
{
    validatePlatformCells(cells);
    const std::vector<std::string> keys = platformCellKeys(cells);

    PlatformSweepReport report;
    report.cells.resize(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
        report.cells[i].key = keys[i];

    const std::uint64_t fingerprint = options.checkpoint_path.empty()
        ? 0
        : platformSweepFingerprint(cells);
    std::unique_ptr<CheckpointJournalWriter> writer = openSweepJournal(
        options.checkpoint_path, options.resume,
        "runPlatformSweepReport", fingerprint, keys, report.cells,
        &report.restored, &report.torn_tail,
        decodePlatformCheckpointPayload);

    CellHarnessOptions harness;
    harness.deadline_s = options.deadline_s;
    harness.max_retries = options.max_retries;
    harness.cancel = options.cancel;

    ThreadPool pool(jobs);
    report.completed = runHarnessedCells(
        pool, report.cells,
        [&cells](std::size_t index, int /*attempt*/,
                 const CancellationToken& token) {
            const PlatformCell& cell = cells[index];
            ServerConfig server = cell.server;
            server.cancel = &token;
            return runPlatform(*cell.trace, cell.kind, server,
                               cell.policy);
        },
        [&writer](std::size_t /*index*/,
                  const CellOutcome<PlatformResult>& outcome) {
            if (writer)
                writer->append(encodePlatformCheckpointPayload(
                    outcome.key, outcome.result));
        },
        harness);

    if (options.strict)
        rethrowFirstFailure(report.cells, "runPlatformSweepReport");
    return report;
}

ClusterSweepReport
runClusterSweepReport(const std::vector<ClusterCell>& cells,
                      std::size_t jobs,
                      const PlatformSweepOptions& options)
{
    validateClusterCells(cells);
    const std::vector<std::string> keys = clusterCellKeys(cells);

    ClusterSweepReport report;
    report.cells.resize(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
        report.cells[i].key = keys[i];

    const std::uint64_t fingerprint = options.checkpoint_path.empty()
        ? 0
        : clusterSweepFingerprint(cells);
    std::unique_ptr<CheckpointJournalWriter> writer = openSweepJournal(
        options.checkpoint_path, options.resume, "runClusterSweepReport",
        fingerprint, keys, report.cells, &report.restored,
        &report.torn_tail, decodeClusterCheckpointPayload);

    CellHarnessOptions harness;
    harness.deadline_s = options.deadline_s;
    harness.max_retries = options.max_retries;
    harness.cancel = options.cancel;

    ThreadPool pool(jobs);
    report.completed = runHarnessedCells(
        pool, report.cells,
        [&cells](std::size_t index, int /*attempt*/,
                 const CancellationToken& token) {
            const ClusterCell& cell = cells[index];
            ClusterConfig config = cell.config;
            config.server.cancel = &token;
            return runCluster(*cell.trace, cell.kind, config, cell.policy);
        },
        [&writer](std::size_t /*index*/,
                  const CellOutcome<ClusterResult>& outcome) {
            if (writer)
                writer->append(encodeClusterCheckpointPayload(
                    outcome.key, outcome.result));
        },
        harness);

    if (options.strict)
        rethrowFirstFailure(report.cells, "runClusterSweepReport");
    return report;
}

PlatformComparison
compareOpenWhiskVsFaasCache(const Trace& trace,
                            const ServerConfig& server_config,
                            const PolicyConfig& policy_config,
                            std::size_t jobs)
{
    // Vanilla OpenWhisk: 10-minute TTL, and under memory pressure the
    // ContainerPool removes the first free container in insertion order
    // (oldest created), blind to how hot the container is.
    PolicyConfig openwhisk_config = policy_config;
    openwhisk_config.ttl_victim_order = TtlVictimOrder::OldestCreated;

    PlatformCell openwhisk{&trace, PolicyKind::Ttl, server_config,
                           openwhisk_config, {}};
    PlatformCell faascache{&trace, PolicyKind::GreedyDual, server_config,
                           policy_config, {}};
    std::vector<PlatformResult> results =
        runPlatformSweep({openwhisk, faascache}, jobs);

    PlatformComparison out;
    out.openwhisk = std::move(results[0]);
    out.faascache = std::move(results[1]);
    return out;
}

}  // namespace faascache

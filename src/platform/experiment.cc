#include "platform/experiment.h"

namespace faascache {

double
PlatformComparison::warmStartRatio() const
{
    if (openwhisk.warm_starts == 0)
        return faascache.warm_starts > 0 ? 1e9 : 1.0;
    return static_cast<double>(faascache.warm_starts) /
        static_cast<double>(openwhisk.warm_starts);
}

double
PlatformComparison::servedRatio() const
{
    if (openwhisk.served() == 0)
        return faascache.served() > 0 ? 1e9 : 1.0;
    return static_cast<double>(faascache.served()) /
        static_cast<double>(openwhisk.served());
}

double
PlatformComparison::latencyImprovement() const
{
    const double fc = faascache.meanLatencySec();
    if (fc <= 0.0)
        return 1.0;
    return openwhisk.meanLatencySec() / fc;
}

PlatformResult
runPlatform(const Trace& trace, PolicyKind kind,
            const ServerConfig& server_config,
            const PolicyConfig& policy_config)
{
    Server server(makePolicy(kind, policy_config), server_config);
    return server.run(trace);
}

PlatformComparison
compareOpenWhiskVsFaasCache(const Trace& trace,
                            const ServerConfig& server_config,
                            const PolicyConfig& policy_config)
{
    // Vanilla OpenWhisk: 10-minute TTL, and under memory pressure the
    // ContainerPool removes the first free container in insertion order
    // (oldest created), blind to how hot the container is.
    PolicyConfig openwhisk_config = policy_config;
    openwhisk_config.ttl_victim_order = TtlVictimOrder::OldestCreated;

    PlatformComparison out;
    out.openwhisk = runPlatform(trace, PolicyKind::Ttl, server_config,
                                openwhisk_config);
    out.faascache = runPlatform(trace, PolicyKind::GreedyDual, server_config,
                                policy_config);
    return out;
}

}  // namespace faascache

#include "platform/experiment.h"

#include <stdexcept>

#include "util/thread_pool.h"

namespace faascache {

double
PlatformComparison::warmStartRatio() const
{
    if (openwhisk.warm_starts == 0)
        return faascache.warm_starts > 0 ? 1e9 : 1.0;
    return static_cast<double>(faascache.warm_starts) /
        static_cast<double>(openwhisk.warm_starts);
}

double
PlatformComparison::servedRatio() const
{
    if (openwhisk.served() == 0)
        return faascache.served() > 0 ? 1e9 : 1.0;
    return static_cast<double>(faascache.served()) /
        static_cast<double>(openwhisk.served());
}

double
PlatformComparison::latencyImprovement() const
{
    const double fc = faascache.meanLatencySec();
    if (fc <= 0.0)
        return 1.0;
    return openwhisk.meanLatencySec() / fc;
}

PlatformResult
runPlatform(const Trace& trace, PolicyKind kind,
            const ServerConfig& server_config,
            const PolicyConfig& policy_config)
{
    Server server(makePolicy(kind, policy_config), server_config);
    return server.run(trace);
}

std::vector<PlatformResult>
runPlatformSweep(const std::vector<PlatformCell>& cells, std::size_t jobs)
{
    for (const PlatformCell& cell : cells) {
        if (cell.trace == nullptr)
            throw std::invalid_argument(
                "runPlatformSweep: cell without a trace");
    }
    ThreadPool pool(jobs);
    return parallelMap(pool, cells, [](const PlatformCell& cell) {
        return runPlatform(*cell.trace, cell.kind, cell.server, cell.policy);
    });
}

PlatformComparison
compareOpenWhiskVsFaasCache(const Trace& trace,
                            const ServerConfig& server_config,
                            const PolicyConfig& policy_config,
                            std::size_t jobs)
{
    // Vanilla OpenWhisk: 10-minute TTL, and under memory pressure the
    // ContainerPool removes the first free container in insertion order
    // (oldest created), blind to how hot the container is.
    PolicyConfig openwhisk_config = policy_config;
    openwhisk_config.ttl_victim_order = TtlVictimOrder::OldestCreated;

    PlatformCell openwhisk{&trace, PolicyKind::Ttl, server_config,
                           openwhisk_config};
    PlatformCell faascache{&trace, PolicyKind::GreedyDual, server_config,
                           policy_config};
    std::vector<PlatformResult> results =
        runPlatformSweep({openwhisk, faascache}, jobs);

    PlatformComparison out;
    out.openwhisk = std::move(results[0]);
    out.faascache = std::move(results[1]);
    return out;
}

}  // namespace faascache

/**
 * @file
 * Head-to-head platform experiments: vanilla OpenWhisk (10-minute TTL
 * keep-alive) versus FaasCache (Greedy-Dual keep-alive) on the same
 * server and workload (paper §7.2).
 *
 * Independent platform runs fan across a thread pool through
 * runPlatformSweep(); results come back in submission order, so sweep
 * output is byte-identical regardless of the worker count.
 */
#ifndef FAASCACHE_PLATFORM_EXPERIMENT_H_
#define FAASCACHE_PLATFORM_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/policy_factory.h"
#include "platform/server.h"
#include "trace/trace.h"
#include "util/cancellation.h"
#include "util/cell_harness.h"

namespace faascache {

/** Results of one OpenWhisk-vs-FaasCache comparison. */
struct PlatformComparison
{
    PlatformResult openwhisk;  ///< TTL keep-alive
    PlatformResult faascache;  ///< Greedy-Dual keep-alive

    /** FaasCache warm starts over OpenWhisk warm starts. */
    double warmStartRatio() const;

    /** FaasCache served requests over OpenWhisk served requests. */
    double servedRatio() const;

    /** OpenWhisk mean latency over FaasCache mean latency. */
    double latencyImprovement() const;
};

/** Run one policy on a fresh server. */
PlatformResult runPlatform(const Trace& trace, PolicyKind kind,
                           const ServerConfig& server_config,
                           const PolicyConfig& policy_config = {});

/** One independent platform run of a sweep. */
struct PlatformCell
{
    /** Workload to replay (non-owning; must outlive the sweep). */
    const Trace* trace = nullptr;
    PolicyKind kind = PolicyKind::GreedyDual;
    ServerConfig server;
    PolicyConfig policy;

    /**
     * Stable cell identity for error reports. Leave empty to have the
     * runner derive "<trace>/<policy>/<memory>" (with a "#n" suffix on
     * duplicates).
     */
    std::string key;
};

/**
 * Run every cell on a fixed-size worker pool and return the results in
 * cell order (deterministic for any jobs; 0 = hardware concurrency).
 * Rethrows the first cell failure, if any (strict mode).
 */
std::vector<PlatformResult> runPlatformSweep(
    const std::vector<PlatformCell>& cells, std::size_t jobs = 0);

/** Crash-safety knobs for runPlatformSweepReport(). */
struct PlatformSweepOptions
{
    /** Per-attempt wall-clock deadline, seconds; 0 disables it. */
    double deadline_s = 0.0;

    /** Extra attempts after a failed or timed-out first attempt. */
    int max_retries = 0;

    /** Rethrow the first cell failure instead of reporting it. */
    bool strict = false;

    /** External cancellation (non-owning; may be null). */
    const CancellationToken* cancel = nullptr;
};

/** Everything a harnessed platform sweep produced. */
struct PlatformSweepReport
{
    /** Per-cell outcomes, indexed like the input grid. */
    std::vector<CellOutcome<PlatformResult>> cells;

    /** False when external cancellation stopped the sweep early. */
    bool completed = true;

    std::size_t countWithStatus(CellStatus status) const;
    bool allOk() const;

    /** results()[i] is cells[i].result. @pre allOk(). */
    std::vector<PlatformResult> results() const;
};

/**
 * Harnessed flavour of runPlatformSweep(): every cell resolves to a
 * CellOutcome (ok | failed | timed_out | skipped) with watchdog
 * deadlines, bounded retry, and clean external cancellation — one
 * poisoned cell no longer aborts the sweep. Platform sweeps are small
 * (a handful of head-to-head runs), so they have no checkpoint
 * journal; use the SimResult sweep engine for checkpointable grids.
 *
 * @throws std::invalid_argument for a malformed cell (null trace),
 *         naming the offending cell index.
 */
PlatformSweepReport runPlatformSweepReport(
    const std::vector<PlatformCell>& cells, std::size_t jobs = 0,
    const PlatformSweepOptions& options = {});

/**
 * Run the vanilla-OpenWhisk vs FaasCache comparison. The two runs are
 * independent and execute concurrently (`jobs` workers; 0 = hardware
 * concurrency, 1 = serial).
 */
PlatformComparison compareOpenWhiskVsFaasCache(
    const Trace& trace, const ServerConfig& server_config,
    const PolicyConfig& policy_config = {}, std::size_t jobs = 0);

}  // namespace faascache

#endif  // FAASCACHE_PLATFORM_EXPERIMENT_H_

/**
 * @file
 * Head-to-head platform experiments: vanilla OpenWhisk (10-minute TTL
 * keep-alive) versus FaasCache (Greedy-Dual keep-alive) on the same
 * server and workload (paper §7.2).
 */
#ifndef FAASCACHE_PLATFORM_EXPERIMENT_H_
#define FAASCACHE_PLATFORM_EXPERIMENT_H_

#include "core/policy_factory.h"
#include "platform/server.h"
#include "trace/trace.h"

namespace faascache {

/** Results of one OpenWhisk-vs-FaasCache comparison. */
struct PlatformComparison
{
    PlatformResult openwhisk;  ///< TTL keep-alive
    PlatformResult faascache;  ///< Greedy-Dual keep-alive

    /** FaasCache warm starts over OpenWhisk warm starts. */
    double warmStartRatio() const;

    /** FaasCache served requests over OpenWhisk served requests. */
    double servedRatio() const;

    /** OpenWhisk mean latency over FaasCache mean latency. */
    double latencyImprovement() const;
};

/** Run one policy on a fresh server. */
PlatformResult runPlatform(const Trace& trace, PolicyKind kind,
                           const ServerConfig& server_config,
                           const PolicyConfig& policy_config = {});

/** Run the vanilla-OpenWhisk vs FaasCache comparison. */
PlatformComparison compareOpenWhiskVsFaasCache(
    const Trace& trace, const ServerConfig& server_config,
    const PolicyConfig& policy_config = {});

}  // namespace faascache

#endif  // FAASCACHE_PLATFORM_EXPERIMENT_H_

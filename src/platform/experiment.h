/**
 * @file
 * Head-to-head platform experiments: vanilla OpenWhisk (10-minute TTL
 * keep-alive) versus FaasCache (Greedy-Dual keep-alive) on the same
 * server and workload (paper §7.2).
 *
 * Independent platform runs fan across a thread pool through
 * runPlatformSweep(); results come back in submission order, so sweep
 * output is byte-identical regardless of the worker count.
 */
#ifndef FAASCACHE_PLATFORM_EXPERIMENT_H_
#define FAASCACHE_PLATFORM_EXPERIMENT_H_

#include <vector>

#include "core/policy_factory.h"
#include "platform/server.h"
#include "trace/trace.h"

namespace faascache {

/** Results of one OpenWhisk-vs-FaasCache comparison. */
struct PlatformComparison
{
    PlatformResult openwhisk;  ///< TTL keep-alive
    PlatformResult faascache;  ///< Greedy-Dual keep-alive

    /** FaasCache warm starts over OpenWhisk warm starts. */
    double warmStartRatio() const;

    /** FaasCache served requests over OpenWhisk served requests. */
    double servedRatio() const;

    /** OpenWhisk mean latency over FaasCache mean latency. */
    double latencyImprovement() const;
};

/** Run one policy on a fresh server. */
PlatformResult runPlatform(const Trace& trace, PolicyKind kind,
                           const ServerConfig& server_config,
                           const PolicyConfig& policy_config = {});

/** One independent platform run of a sweep. */
struct PlatformCell
{
    /** Workload to replay (non-owning; must outlive the sweep). */
    const Trace* trace = nullptr;
    PolicyKind kind = PolicyKind::GreedyDual;
    ServerConfig server;
    PolicyConfig policy;
};

/**
 * Run every cell on a fixed-size worker pool and return the results in
 * cell order (deterministic for any jobs; 0 = hardware concurrency).
 */
std::vector<PlatformResult> runPlatformSweep(
    const std::vector<PlatformCell>& cells, std::size_t jobs = 0);

/**
 * Run the vanilla-OpenWhisk vs FaasCache comparison. The two runs are
 * independent and execute concurrently (`jobs` workers; 0 = hardware
 * concurrency, 1 = serial).
 */
PlatformComparison compareOpenWhiskVsFaasCache(
    const Trace& trace, const ServerConfig& server_config,
    const PolicyConfig& policy_config = {}, std::size_t jobs = 0);

}  // namespace faascache

#endif  // FAASCACHE_PLATFORM_EXPERIMENT_H_

/**
 * @file
 * Head-to-head platform experiments: vanilla OpenWhisk (10-minute TTL
 * keep-alive) versus FaasCache (Greedy-Dual keep-alive) on the same
 * server and workload (paper §7.2).
 *
 * Independent platform runs fan across a thread pool through
 * runPlatformSweep(); results come back in submission order, so sweep
 * output is byte-identical regardless of the worker count.
 */
#ifndef FAASCACHE_PLATFORM_EXPERIMENT_H_
#define FAASCACHE_PLATFORM_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/policy_factory.h"
#include "platform/cluster.h"
#include "platform/server.h"
#include "trace/trace.h"
#include "util/cancellation.h"
#include "util/cell_harness.h"

namespace faascache {

/** Results of one OpenWhisk-vs-FaasCache comparison. */
struct PlatformComparison
{
    PlatformResult openwhisk;  ///< TTL keep-alive
    PlatformResult faascache;  ///< Greedy-Dual keep-alive

    /** FaasCache warm starts over OpenWhisk warm starts. */
    double warmStartRatio() const;

    /** FaasCache served requests over OpenWhisk served requests. */
    double servedRatio() const;

    /** OpenWhisk mean latency over FaasCache mean latency. */
    double latencyImprovement() const;
};

/** Run one policy on a fresh server. */
PlatformResult runPlatform(const Trace& trace, PolicyKind kind,
                           const ServerConfig& server_config,
                           const PolicyConfig& policy_config = {});

/** One independent platform run of a sweep. */
struct PlatformCell
{
    /** Workload to replay (non-owning; must outlive the sweep). */
    const Trace* trace = nullptr;
    PolicyKind kind = PolicyKind::GreedyDual;
    ServerConfig server;
    PolicyConfig policy;

    /**
     * Stable cell identity for error reports. Leave empty to have the
     * runner derive "<trace>/<policy>/<memory>" (with a "#n" suffix on
     * duplicates).
     */
    std::string key;
};

/**
 * Run every cell on a fixed-size worker pool and return the results in
 * cell order (deterministic for any jobs; 0 = hardware concurrency).
 * Rethrows the first cell failure, if any (strict mode).
 */
std::vector<PlatformResult> runPlatformSweep(
    const std::vector<PlatformCell>& cells, std::size_t jobs = 0);

/**
 * Effective per-cell keys of a platform sweep (cell.key or the derived
 * "<trace>/<policy>/<memory>MB" default, deduplicated with "#n").
 * Requires non-null traces.
 */
std::vector<std::string> platformCellKeys(
    const std::vector<PlatformCell>& cells);

/** Crash-safety knobs shared by the platform and cluster sweeps. */
struct PlatformSweepOptions
{
    /** Per-attempt wall-clock deadline, seconds; 0 disables it. */
    double deadline_s = 0.0;

    /** Extra attempts after a failed or timed-out first attempt. */
    int max_retries = 0;

    /** Rethrow the first cell failure instead of reporting it. */
    bool strict = false;

    /** Journal completed cells here; empty disables checkpointing. */
    std::string checkpoint_path;

    /**
     * Restore completed cells from checkpoint_path before running.
     * The file must exist and carry this grid's fingerprint.
     */
    bool resume = false;

    /** External cancellation (non-owning; may be null). */
    const CancellationToken* cancel = nullptr;
};

/** Everything a harnessed platform sweep produced. */
struct PlatformSweepReport
{
    /** Per-cell outcomes, indexed like the input grid. */
    std::vector<CellOutcome<PlatformResult>> cells;

    /** False when external cancellation stopped the sweep early. */
    bool completed = true;

    /** Cells restored from the checkpoint instead of re-run. */
    std::size_t restored = 0;

    /** The resumed checkpoint had a torn tail (truncated, re-run). */
    bool torn_tail = false;

    std::size_t countWithStatus(CellStatus status) const;
    bool allOk() const;

    /** results()[i] is cells[i].result. @pre allOk(). */
    std::vector<PlatformResult> results() const;
};

/**
 * Harnessed flavour of runPlatformSweep(): every cell resolves to a
 * CellOutcome (ok | failed | timed_out | skipped) with watchdog
 * deadlines, bounded retry, checkpoint/resume (the PlatformResult
 * journal flavour, platform/experiment_checkpoint.h), and clean
 * external cancellation — one poisoned cell no longer aborts the
 * sweep.
 *
 * @throws std::invalid_argument for a malformed cell (null trace),
 *         naming the offending cell index.
 * @throws std::runtime_error when options.resume is set and the
 *         checkpoint cannot be read or belongs to a different grid.
 */
PlatformSweepReport runPlatformSweepReport(
    const std::vector<PlatformCell>& cells, std::size_t jobs = 0,
    const PlatformSweepOptions& options = {});

/** One independent cluster run of a sweep. */
struct ClusterCell
{
    /** Workload to replay (non-owning; must outlive the sweep). */
    const Trace* trace = nullptr;
    PolicyKind kind = PolicyKind::GreedyDual;
    ClusterConfig config;
    PolicyConfig policy;

    /**
     * Stable cell identity for checkpointing and error reports. Leave
     * empty to have the runner derive
     * "<trace>/<policy>/<servers>x<memory>" (with a "#n" suffix on
     * duplicates); set it explicitly when the grid varies knobs that
     * derivation cannot see (balancers, fault plans).
     */
    std::string key;
};

/**
 * Effective per-cell keys of a cluster sweep (cell.key or the derived
 * default, deduplicated with "#n"). Requires non-null traces.
 */
std::vector<std::string> clusterCellKeys(
    const std::vector<ClusterCell>& cells);

/** Everything a harnessed cluster sweep produced. */
struct ClusterSweepReport
{
    /** Per-cell outcomes, indexed like the input grid. */
    std::vector<CellOutcome<ClusterResult>> cells;

    /** False when external cancellation stopped the sweep early. */
    bool completed = true;

    /** Cells restored from the checkpoint instead of re-run. */
    std::size_t restored = 0;

    /** The resumed checkpoint had a torn tail (truncated, re-run). */
    bool torn_tail = false;

    std::size_t countWithStatus(CellStatus status) const;
    bool allOk() const;

    /** results()[i] is cells[i].result. @pre allOk(). */
    std::vector<ClusterResult> results() const;
};

/**
 * Cluster flavour of runPlatformSweepReport(): fan independent
 * runCluster() cells across a worker pool under the crash-safety
 * harness, with the same deadline/retry/checkpoint/cancellation
 * contract and submission-order (byte-identical for any jobs)
 * results.
 *
 * @throws std::invalid_argument for a malformed cell (null trace),
 *         naming the offending cell index.
 * @throws std::runtime_error when options.resume is set and the
 *         checkpoint cannot be read or belongs to a different grid.
 */
ClusterSweepReport runClusterSweepReport(
    const std::vector<ClusterCell>& cells, std::size_t jobs = 0,
    const PlatformSweepOptions& options = {});

/**
 * Run the vanilla-OpenWhisk vs FaasCache comparison. The two runs are
 * independent and execute concurrently (`jobs` workers; 0 = hardware
 * concurrency, 1 = serial).
 */
PlatformComparison compareOpenWhiskVsFaasCache(
    const Trace& trace, const ServerConfig& server_config,
    const PolicyConfig& policy_config = {}, std::size_t jobs = 0);

}  // namespace faascache

#endif  // FAASCACHE_PLATFORM_EXPERIMENT_H_

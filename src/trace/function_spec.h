/**
 * @file
 * Static description of a serverless function.
 *
 * These are the only attributes the keep-alive policies observe
 * (paper §4.1): the memory footprint ("Size"), the warm execution time,
 * and the cold execution time whose excess over warm is the
 * initialization overhead ("Cost").
 */
#ifndef FAASCACHE_TRACE_FUNCTION_SPEC_H_
#define FAASCACHE_TRACE_FUNCTION_SPEC_H_

#include <string>

#include "util/types.h"

namespace faascache {

/** Immutable per-function characteristics. */
struct FunctionSpec
{
    /** Dense identifier, index into Trace::functions. */
    FunctionId id = kInvalidFunction;

    /** Human-readable name (unique within a trace). */
    std::string name;

    /** Container memory footprint in MB (> 0). */
    MemMb mem_mb = 0;

    /** CPU demand in cores (for multi-dimensional sizes, §4.1). */
    double cpu_units = 1.0;

    /** I/O bandwidth demand, arbitrary units (0 = negligible). */
    double io_units = 0.0;

    /** Execution time when served by a warm container. */
    TimeUs warm_us = 0;

    /**
     * Execution time when a new container must be created and
     * initialized; always >= warm_us.
     */
    TimeUs cold_us = 0;

    /** Initialization overhead: cold_us - warm_us. */
    TimeUs initTime() const { return cold_us - warm_us; }

    /** Whether the spec satisfies all invariants. */
    bool valid() const;
};

/**
 * Construct a spec from (memory, warm time, init time); the cold time is
 * derived. Convenience for tests and the FunctionBench catalog.
 */
FunctionSpec makeFunction(FunctionId id, std::string name, MemMb mem_mb,
                          TimeUs warm_us, TimeUs init_us);

}  // namespace faascache

#endif  // FAASCACHE_TRACE_FUNCTION_SPEC_H_

#include "trace/trace.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>

namespace faascache {

void
Trace::addFunction(FunctionSpec spec)
{
    assert(spec.id == functions_.size());
    functions_.push_back(std::move(spec));
}

void
Trace::addInvocation(FunctionId function, TimeUs arrival_us)
{
    invocations_.push_back(Invocation{function, arrival_us});
}

const FunctionSpec&
Trace::function(FunctionId id) const
{
    return functions_.at(id);
}

void
Trace::sortInvocations()
{
    std::stable_sort(invocations_.begin(), invocations_.end(),
                     [](const Invocation& a, const Invocation& b) {
                         return a.arrival_us < b.arrival_us;
                     });
}

bool
Trace::isSorted() const
{
    return std::is_sorted(invocations_.begin(), invocations_.end(),
                          [](const Invocation& a, const Invocation& b) {
                              return a.arrival_us < b.arrival_us;
                          });
}

bool
Trace::validate() const
{
    for (std::size_t i = 0; i < functions_.size(); ++i) {
        if (functions_[i].id != i || !functions_[i].valid())
            return false;
    }
    for (const auto& inv : invocations_) {
        if (inv.function >= functions_.size() || inv.arrival_us < 0)
            return false;
    }
    return true;
}

TraceStats
Trace::stats() const
{
    TraceStats s;
    s.num_functions = functions_.size();
    s.num_invocations = invocations_.size();
    for (const auto& fn : functions_)
        s.total_unique_mem_mb += fn.mem_mb;
    if (invocations_.empty())
        return s;
    TimeUs first = invocations_.front().arrival_us;
    TimeUs last = first;
    for (const auto& inv : invocations_) {
        first = std::min(first, inv.arrival_us);
        last = std::max(last, inv.arrival_us);
    }
    s.duration_us = last - first;
    if (s.duration_us > 0) {
        s.requests_per_sec = static_cast<double>(s.num_invocations) /
            toSeconds(s.duration_us);
    }
    if (s.num_invocations > 1) {
        s.avg_iat_us = s.duration_us /
            static_cast<TimeUs>(s.num_invocations - 1);
    }
    return s;
}

std::vector<std::size_t>
Trace::invocationCounts() const
{
    std::vector<std::size_t> counts(functions_.size(), 0);
    for (const auto& inv : invocations_)
        ++counts.at(inv.function);
    return counts;
}

Trace
Trace::subset(const std::vector<FunctionId>& keep, std::string name) const
{
    Trace out(std::move(name));
    std::unordered_map<FunctionId, FunctionId> remap;
    remap.reserve(keep.size());
    for (FunctionId old_id : keep) {
        if (old_id >= functions_.size())
            throw std::out_of_range("Trace::subset: unknown function id");
        if (remap.count(old_id))
            continue;
        FunctionSpec spec = functions_[old_id];
        spec.id = static_cast<FunctionId>(out.functions_.size());
        remap[old_id] = spec.id;
        out.functions_.push_back(std::move(spec));
    }
    for (const auto& inv : invocations_) {
        auto it = remap.find(inv.function);
        if (it != remap.end())
            out.invocations_.push_back(Invocation{it->second, inv.arrival_us});
    }
    return out;
}

}  // namespace faascache

#include "trace/trace.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace faascache {

void
Trace::addFunction(FunctionSpec spec)
{
    assert(spec.id == functions_.size());
    functions_.push_back(std::move(spec));
}

void
Trace::addInvocation(FunctionId function, TimeUs arrival_us)
{
    invocations_.push_back(Invocation{function, arrival_us});
}

const FunctionSpec&
Trace::function(FunctionId id) const
{
    return functions_.at(id);
}

void
Trace::sortInvocations()
{
    std::stable_sort(invocations_.begin(), invocations_.end(),
                     [](const Invocation& a, const Invocation& b) {
                         return a.arrival_us < b.arrival_us;
                     });
}

bool
Trace::isSorted() const
{
    return std::is_sorted(invocations_.begin(), invocations_.end(),
                          [](const Invocation& a, const Invocation& b) {
                              return a.arrival_us < b.arrival_us;
                          });
}

bool
Trace::validate() const
{
    for (std::size_t i = 0; i < functions_.size(); ++i) {
        if (functions_[i].id != i || !functions_[i].valid())
            return false;
    }
    for (const auto& inv : invocations_) {
        if (inv.function >= functions_.size() || inv.arrival_us < 0)
            return false;
    }
    return true;
}

TraceStats
Trace::stats() const
{
    TraceStats s;
    s.num_functions = functions_.size();
    s.num_invocations = invocations_.size();
    for (const auto& fn : functions_)
        s.total_unique_mem_mb += fn.mem_mb;
    if (invocations_.empty())
        return s;
    TimeUs first = invocations_.front().arrival_us;
    TimeUs last = first;
    for (const auto& inv : invocations_) {
        first = std::min(first, inv.arrival_us);
        last = std::max(last, inv.arrival_us);
    }
    s.duration_us = last - first;
    if (s.duration_us > 0) {
        s.requests_per_sec = static_cast<double>(s.num_invocations) /
            toSeconds(s.duration_us);
    }
    if (s.num_invocations > 1) {
        s.avg_iat_us = s.duration_us /
            static_cast<TimeUs>(s.num_invocations - 1);
    }
    return s;
}

std::vector<std::size_t>
Trace::invocationCounts() const
{
    std::vector<std::size_t> counts(functions_.size(), 0);
    for (const auto& inv : invocations_)
        ++counts.at(inv.function);
    return counts;
}

Trace
Trace::subset(const std::vector<FunctionId>& keep, std::string name) const
{
    Trace out(std::move(name));
    // Dense remap table (the catalog is dense by construction), doubling
    // as the membership test for the counting pre-pass below. One pass
    // over `keep` both assigns new ids and copies the spec; duplicate
    // keep entries are skipped by the membership test, and keep.size()
    // is the exact catalog reserve when there are none.
    std::vector<FunctionId> remap(functions_.size(), kInvalidFunction);
    out.functions_.reserve(keep.size());
    for (FunctionId old_id : keep) {
        if (old_id >= functions_.size())
            throw std::out_of_range("Trace::subset: unknown function id");
        if (remap[old_id] != kInvalidFunction)
            continue;  // duplicate keep entry, already copied
        const auto new_id = static_cast<FunctionId>(out.functions_.size());
        remap[old_id] = new_id;
        FunctionSpec spec = functions_[old_id];
        spec.id = new_id;
        out.functions_.push_back(std::move(spec));
    }
    // Exact-count pre-pass: one cheap scan buys a single allocation for
    // the (typically much larger) invocation stream.
    std::size_t kept_invocations = 0;
    for (const auto& inv : invocations_)
        kept_invocations += remap[inv.function] != kInvalidFunction ? 1 : 0;
    out.invocations_.reserve(kept_invocations);
    for (const auto& inv : invocations_) {
        const FunctionId target = remap[inv.function];
        if (target != kInvalidFunction)
            out.invocations_.push_back(Invocation{target, inv.arrival_us});
    }
    return out;
}

}  // namespace faascache

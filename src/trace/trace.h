/**
 * @file
 * A workload trace: a set of functions plus a time-ordered stream of
 * invocations, mirroring the Azure Functions trace format after the
 * paper's pre-processing (§7, "Adapting the Azure Functions Trace").
 */
#ifndef FAASCACHE_TRACE_TRACE_H_
#define FAASCACHE_TRACE_TRACE_H_

#include <string>
#include <vector>

#include "trace/function_spec.h"
#include "util/types.h"

namespace faascache {

/** One function invocation request. */
struct Invocation
{
    FunctionId function = kInvalidFunction;
    TimeUs arrival_us = 0;

    friend bool operator==(const Invocation&, const Invocation&) = default;
};

/** Aggregate statistics of a trace (Table 2 of the paper). */
struct TraceStats
{
    std::size_t num_functions = 0;
    std::size_t num_invocations = 0;
    TimeUs duration_us = 0;
    /** Mean arrival rate over the trace duration, requests per second. */
    double requests_per_sec = 0.0;
    /** Mean inter-arrival time across consecutive invocations. */
    TimeUs avg_iat_us = 0;
    /** Total memory footprint of all unique functions, MB. */
    MemMb total_unique_mem_mb = 0;
};

/** A complete workload: function catalog + invocation stream. */
class Trace
{
  public:
    Trace() = default;

    /** @param name Label used in bench output. */
    explicit Trace(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /**
     * @name Allocation hints
     * Pre-size the catalog / invocation stream when the producer knows
     * (or can estimate) the final counts, eliminating realloc churn on
     * large generated traces. Purely an optimization — never changes
     * the contents.
     * @{
     */
    void reserveFunctions(std::size_t n) { functions_.reserve(n); }
    void reserveInvocations(std::size_t n) { invocations_.reserve(n); }
    /** @} */

    /** Register a function; its id must equal the current catalog size. */
    void addFunction(FunctionSpec spec);

    /** Append one invocation (call sortInvocations() when done if the
     *  stream is not already time-ordered). */
    void addInvocation(FunctionId function, TimeUs arrival_us);

    const std::vector<FunctionSpec>& functions() const { return functions_; }
    const std::vector<Invocation>& invocations() const { return invocations_; }

    const FunctionSpec& function(FunctionId id) const;

    /** Stable-sort invocations by arrival time. */
    void sortInvocations();

    /** True when invocations are non-decreasing in time. */
    bool isSorted() const;

    /**
     * True when every invocation references a registered function, all
     * specs are valid, and ids are dense.
     */
    bool validate() const;

    /** Compute Table-2 style statistics. */
    TraceStats stats() const;

    /** Per-function invocation counts (indexed by FunctionId). */
    std::vector<std::size_t> invocationCounts() const;

    /**
     * Build a sub-trace containing only the selected functions (ids are
     * remapped densely, invocation order preserved, timestamps shifted so
     * the first retained invocation is at its original time).
     */
    Trace subset(const std::vector<FunctionId>& keep, std::string name) const;

  private:
    std::string name_;
    std::vector<FunctionSpec> functions_;
    std::vector<Invocation> invocations_;
};

}  // namespace faascache

#endif  // FAASCACHE_TRACE_TRACE_H_

/**
 * @file
 * Adapter for the real Azure Functions 2019 dataset
 * (AzureFunctionsDataset2019), implementing the paper's §7
 * pre-processing ("Adapting the Azure Functions Trace"):
 *
 *  - application-level memory is split evenly across the application's
 *    functions;
 *  - the cold-start overhead of a function is estimated as its maximum
 *    minus its average duration;
 *  - per-minute invocation counts are replayed with one invocation at
 *    the start of a minute bucket, or evenly spaced when a bucket holds
 *    several;
 *  - functions invoked fewer than two times are dropped.
 *
 * The dataset itself is not redistributable; this adapter consumes the
 * three published CSV files (invocations per function, function
 * duration percentiles, app memory percentiles). The synthetic
 * generator in azure_model.h is the drop-in replacement when the
 * dataset is unavailable.
 */
#ifndef FAASCACHE_TRACE_AZURE_DATASET_H_
#define FAASCACHE_TRACE_AZURE_DATASET_H_

#include <cstdint>
#include <string>

#include "trace/trace.h"

namespace faascache {

/** Raw CSV contents of the three dataset files (one day each). */
struct AzureDatasetCsv
{
    /** invocations_per_function_md.anon.dXX.csv */
    std::string invocations;

    /** function_durations_percentiles.anon.dXX.csv */
    std::string durations;

    /** app_memory_percentiles.anon.dXX.csv */
    std::string memory;
};

/** Adaptation knobs. */
struct AzureDatasetOptions
{
    /** Functions with fewer invocations than this are dropped. */
    std::size_t min_invocations = 2;

    /** Name given to the resulting trace. */
    std::string name = "azure-2019";
};

/** Outcome of the adaptation, with bookkeeping about skipped rows. */
struct AzureDatasetResult
{
    Trace trace;

    /** Functions present in the invocation file but lacking a duration
     *  row (skipped). */
    std::size_t skipped_no_duration = 0;

    /** Functions whose application has no memory row (skipped). */
    std::size_t skipped_no_memory = 0;

    /** Functions dropped for having < min_invocations invocations. */
    std::size_t dropped_rare = 0;
};

/**
 * Run the paper's adaptation over in-memory CSV contents.
 * @throws std::runtime_error on malformed headers or rows.
 */
AzureDatasetResult adaptAzureDataset(const AzureDatasetCsv& csv,
                                     const AzureDatasetOptions& options = {});

/**
 * Convenience: read the three files from disk and adapt.
 * @throws std::runtime_error on I/O failure or malformed content.
 */
AzureDatasetResult loadAzureDataset(const std::string& invocations_path,
                                    const std::string& durations_path,
                                    const std::string& memory_path,
                                    const AzureDatasetOptions& options = {});

}  // namespace faascache

#endif  // FAASCACHE_TRACE_AZURE_DATASET_H_

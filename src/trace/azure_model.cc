#include "trace/azure_model.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "util/rng.h"

namespace faascache {

double
diurnalMultiplier(TimeUs t, double peak_to_mean, TimeUs period_us)
{
    if (peak_to_mean <= 1.0 || period_us <= 0)
        return 1.0;
    const double amplitude = peak_to_mean - 1.0;
    const double phase = 2.0 * std::numbers::pi *
        static_cast<double>(t % period_us) / static_cast<double>(period_us);
    // Peak at the middle of the period.
    return std::max(0.0, 1.0 - amplitude * std::cos(phase));
}

Trace
generateAzureTrace(const AzureModelConfig& config)
{
    Rng rng(config.seed);
    Trace population(config.name);
    population.reserveFunctions(config.num_functions);

    struct FunctionModel
    {
        double rate_per_sec;
    };
    std::vector<FunctionModel> models;
    models.reserve(config.num_functions);

    const double ln = std::numbers::ln10;  // unused guard against ln() typo
    (void)ln;

    for (std::size_t i = 0; i < config.num_functions; ++i) {
        const double iat_sec = rng.lognormal(std::log(config.iat_median_sec),
                                             config.iat_sigma);
        const double rate = std::min(config.max_rate_per_sec, 1.0 / iat_sec);

        double mem = rng.lognormal(std::log(config.mem_median_mb),
                                   config.mem_sigma);
        mem = std::clamp(mem, config.mem_min_mb, config.mem_max_mb);
        mem = std::max(1.0, std::round(mem));

        double warm_ms = rng.lognormal(std::log(config.warm_median_ms),
                                       config.warm_sigma);
        warm_ms = std::clamp(warm_ms, config.warm_min_ms, config.warm_max_ms);
        // Keep heavy hitters short (per-function utilization cap).
        const double max_warm_ms =
            config.max_utilization * 1000.0 / rate;
        warm_ms = std::max(config.warm_min_ms,
                           std::min(warm_ms, max_warm_ms));

        double ratio = rng.lognormal(std::log(config.init_ratio_median),
                                     config.init_ratio_sigma);
        ratio = std::clamp(ratio, config.init_ratio_min,
                           config.init_ratio_max);

        const auto id = static_cast<FunctionId>(i);
        population.addFunction(makeFunction(
            id, "fn-" + std::to_string(i), mem, fromMillis(warm_ms),
            fromMillis(warm_ms * ratio)));
        models.push_back(FunctionModel{rate});
    }

    // Emit invocations minute bucket by minute bucket, per function, using
    // the paper's replay rule.
    const auto num_minutes = static_cast<std::int64_t>(
        (config.duration_us + kMinute - 1) / kMinute);
    // Reserve the invocation stream at its expected size (sum of the
    // per-function Poisson means over the whole duration; the diurnal
    // multiplier averages ~1 over full periods). One allocation instead
    // of a realloc cascade on large traces.
    double expected_invocations = 0.0;
    for (const FunctionModel& model : models) {
        expected_invocations +=
            model.rate_per_sec * 60.0 * static_cast<double>(num_minutes);
    }
    population.reserveInvocations(
        static_cast<std::size_t>(expected_invocations * 1.02) + 64);
    for (std::size_t i = 0; i < config.num_functions; ++i) {
        Rng fn_rng = rng.split();
        for (std::int64_t minute = 0; minute < num_minutes; ++minute) {
            const TimeUs bucket_start = minute * kMinute;
            double rate_per_min = models[i].rate_per_sec * 60.0;
            if (config.diurnal) {
                rate_per_min *= diurnalMultiplier(bucket_start,
                                                  config.diurnal_peak_to_mean,
                                                  config.diurnal_period_us);
            }
            const std::int64_t count = fn_rng.poisson(rate_per_min);
            if (count <= 0)
                continue;
            if (count == 1) {
                population.addInvocation(static_cast<FunctionId>(i),
                                         bucket_start);
                continue;
            }
            const TimeUs spacing = kMinute / count;
            for (std::int64_t k = 0; k < count; ++k) {
                population.addInvocation(static_cast<FunctionId>(i),
                                         bucket_start + k * spacing);
            }
        }
    }
    population.sortInvocations();

    if (!config.drop_single_invocation_functions)
        return population;

    const auto counts = population.invocationCounts();
    std::vector<FunctionId> keep;
    keep.reserve(counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] >= 2)
            keep.push_back(static_cast<FunctionId>(i));
    }
    return population.subset(keep, config.name);
}

}  // namespace faascache

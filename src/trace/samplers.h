/**
 * @file
 * The paper's three trace-sampling recipes (§7, Table 2):
 *
 *  - RARE:           the most infrequently invoked functions — these
 *                    nearly always cold-start under a 10-minute TTL;
 *  - REPRESENTATIVE: an equal number of functions from each frequency
 *                    quartile, preserving workload diversity;
 *  - RANDOM:         a uniform random sample, which is dominated by
 *                    infrequent functions because heavy hitters are few.
 */
#ifndef FAASCACHE_TRACE_SAMPLERS_H_
#define FAASCACHE_TRACE_SAMPLERS_H_

#include <cstdint>
#include <vector>

#include "trace/invocation_source.h"
#include "trace/trace.h"

namespace faascache {

/**
 * Sample `count` of the rarest (least frequently invoked) functions.
 * Draws randomly from the rarest half of the population so repeated
 * samples differ, like the paper's "random sample of the rarest".
 */
Trace sampleRare(const Trace& population, std::size_t count,
                 std::uint64_t seed);

/**
 * Sample `count` functions, count/4 from each invocation-frequency
 * quartile of the population.
 */
Trace sampleRepresentative(const Trace& population, std::size_t count,
                           std::uint64_t seed);

/** Sample `count` functions uniformly at random. */
Trace sampleRandom(const Trace& population, std::size_t count,
                   std::uint64_t seed);

/**
 * @name Streaming selection
 * Keep-list variants over a source: one counting pass selects the same
 * function ids (bit-identical) as the materialized sampler on the
 * equivalent Trace. Feed the result to SubsetSource (streamed) or
 * Trace::subset (materialized) — both apply the identical dense remap.
 * @{
 */
std::vector<FunctionId> sampleRareIds(InvocationSource& population,
                                      std::size_t count,
                                      std::uint64_t seed);
std::vector<FunctionId> sampleRepresentativeIds(
    InvocationSource& population, std::size_t count, std::uint64_t seed);
std::vector<FunctionId> sampleRandomIds(InvocationSource& population,
                                        std::size_t count,
                                        std::uint64_t seed);
/** @} */

}  // namespace faascache

#endif  // FAASCACHE_TRACE_SAMPLERS_H_

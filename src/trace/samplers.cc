#include "trace/samplers.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/rng.h"

namespace faascache {

namespace {

/** Function ids sorted ascending by invocation count (ties by id). */
std::vector<FunctionId>
idsByFrequency(const std::vector<std::size_t>& counts)
{
    std::vector<FunctionId> ids(counts.size());
    std::iota(ids.begin(), ids.end(), FunctionId{0});
    std::stable_sort(ids.begin(), ids.end(),
                     [&](FunctionId a, FunctionId b) {
                         return counts[a] < counts[b];
                     });
    return ids;
}

/** Pick `count` elements of `candidates` uniformly without replacement. */
std::vector<FunctionId>
pickRandom(const std::vector<FunctionId>& candidates, std::size_t count,
           Rng& rng)
{
    std::vector<FunctionId> out;
    if (candidates.empty())
        return out;
    count = std::min(count, candidates.size());
    const auto perm = rng.permutation(candidates.size());
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(candidates[perm[i]]);
    std::sort(out.begin(), out.end());
    return out;
}

// Selection cores, shared verbatim by the Trace samplers and the
// streaming *Ids variants so both pick bit-identical keep lists from
// the same per-function counts.

std::vector<FunctionId>
selectRare(const std::vector<std::size_t>& counts, std::size_t count,
           std::uint64_t seed)
{
    Rng rng(seed);
    auto ids = idsByFrequency(counts);
    // Restrict to the rarest half (at least `count` candidates).
    const std::size_t half = std::max(count, ids.size() / 2);
    ids.resize(std::min(ids.size(), half));
    return pickRandom(ids, count, rng);
}

std::vector<FunctionId>
selectRepresentative(const std::vector<std::size_t>& counts,
                     std::size_t count, std::uint64_t seed)
{
    Rng rng(seed);
    const auto ids = idsByFrequency(counts);
    std::vector<FunctionId> chosen;
    const std::size_t per_quartile = count / 4;
    for (int q = 0; q < 4; ++q) {
        const std::size_t begin = ids.size() * q / 4;
        const std::size_t end = ids.size() * (q + 1) / 4;
        std::vector<FunctionId> quartile(ids.begin() + begin,
                                         ids.begin() + end);
        // Give the remainder of count/4 to the top quartile.
        const std::size_t want =
            q == 3 ? count - 3 * per_quartile : per_quartile;
        const auto picked = pickRandom(quartile, want, rng);
        chosen.insert(chosen.end(), picked.begin(), picked.end());
    }
    std::sort(chosen.begin(), chosen.end());
    return chosen;
}

std::vector<FunctionId>
selectRandom(std::size_t num_functions, std::size_t count,
             std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<FunctionId> ids(num_functions);
    std::iota(ids.begin(), ids.end(), FunctionId{0});
    return pickRandom(ids, count, rng);
}

}  // namespace

Trace
sampleRare(const Trace& population, std::size_t count, std::uint64_t seed)
{
    return population.subset(
        selectRare(population.invocationCounts(), count, seed), "rare");
}

Trace
sampleRepresentative(const Trace& population, std::size_t count,
                     std::uint64_t seed)
{
    return population.subset(
        selectRepresentative(population.invocationCounts(), count, seed),
        "representative");
}

Trace
sampleRandom(const Trace& population, std::size_t count, std::uint64_t seed)
{
    return population.subset(
        selectRandom(population.functions().size(), count, seed), "random");
}

std::vector<FunctionId>
sampleRareIds(InvocationSource& population, std::size_t count,
              std::uint64_t seed)
{
    return selectRare(countInvocationsPerFunction(population), count, seed);
}

std::vector<FunctionId>
sampleRepresentativeIds(InvocationSource& population, std::size_t count,
                        std::uint64_t seed)
{
    return selectRepresentative(countInvocationsPerFunction(population),
                                count, seed);
}

std::vector<FunctionId>
sampleRandomIds(InvocationSource& population, std::size_t count,
                std::uint64_t seed)
{
    return selectRandom(population.functions().size(), count, seed);
}

}  // namespace faascache

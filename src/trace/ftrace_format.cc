#include "trace/ftrace_format.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string_view>
#include <unordered_map>

#include "util/checkpoint_journal.h"

namespace faascache {
namespace {

void putBytes(std::string& buf, const void* p, std::size_t n)
{
    buf.append(static_cast<const char*>(p), n);
}

void putU32(std::string& buf, std::uint32_t v) { putBytes(buf, &v, 4); }
void putU64(std::string& buf, std::uint64_t v) { putBytes(buf, &v, 8); }
void putI64(std::string& buf, std::int64_t v) { putBytes(buf, &v, 8); }
void putF64(std::string& buf, double v) { putBytes(buf, &v, 8); }

std::uint32_t loadU32(const unsigned char* p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

std::uint64_t loadU64(const unsigned char* p)
{
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

std::int64_t loadI64(const unsigned char* p)
{
    std::int64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

double loadF64(const unsigned char* p)
{
    double v;
    std::memcpy(&v, p, 8);
    return v;
}

std::string serializeFunctionTable(const std::vector<FunctionSpec>& fns)
{
    std::string table;
    for (const FunctionSpec& fn : fns) {
        putU32(table, static_cast<std::uint32_t>(fn.name.size()));
        putBytes(table, fn.name.data(), fn.name.size());
        putF64(table, fn.mem_mb);
        putF64(table, fn.cpu_units);
        putF64(table, fn.io_units);
        putI64(table, fn.warm_us);
        putI64(table, fn.cold_us);
    }
    return table;
}

/** Header bytes with the given final counts; checksum over first 56. */
std::string buildHeader(std::uint32_t chunk_capacity,
                        std::uint32_t name_bytes,
                        std::uint64_t num_functions,
                        std::uint64_t num_invocations,
                        std::uint64_t num_chunks,
                        std::uint64_t fn_table_bytes, bool sealed)
{
    std::string h;
    h.reserve(ftrace::kHeaderBytes);
    putBytes(h, ftrace::kMagic, 4);
    putU32(h, ftrace::kEndianness);
    putU32(h, ftrace::kVersion);
    putU32(h, chunk_capacity);
    putU32(h, name_bytes);
    putU32(h, 0);  // reserved
    putU64(h, num_functions);
    putU64(h, num_invocations);
    putU64(h, num_chunks);
    putU64(h, fn_table_bytes);
    putU64(h, sealed ? fnv1a64(std::string_view(h.data(), h.size())) : 0);
    return h;
}

}  // namespace

// ---------------------------------------------------------------------------
// Writer

FtraceWriter::FtraceWriter(const std::string& path, std::string name,
                           std::vector<FunctionSpec> functions,
                           std::uint32_t chunk_capacity)
    : path_(path), chunk_capacity_(chunk_capacity),
      num_functions_(functions.size())
{
    if (chunk_capacity_ == 0 || chunk_capacity_ > ftrace::kMaxChunkCapacity)
        throw std::runtime_error("ftrace: " + path_ +
                                 ": chunk_capacity: out of range");
    for (std::size_t i = 0; i < functions.size(); ++i) {
        if (functions[i].id != i)
            throw std::runtime_error(
                "ftrace: " + path_ + ": function table: id " +
                std::to_string(functions[i].id) + " at index " +
                std::to_string(i) + " (ids must be dense)");
        if (!functions[i].valid())
            throw std::runtime_error("ftrace: " + path_ +
                                     ": function table: function " +
                                     std::to_string(i) + " has invalid spec");
    }

    out_.open(path_, std::ios::binary | std::ios::trunc);
    if (!out_)
        throw std::runtime_error("ftrace: " + path_ + ": cannot open for write");

    const std::string table = serializeFunctionTable(functions);
    // Provisional header: zero checksum, so an unfinished file is rejected.
    const std::string header = buildHeader(
        chunk_capacity_, static_cast<std::uint32_t>(name.size()),
        num_functions_, 0, 0, table.size(), /*sealed=*/false);
    out_.write(header.data(), static_cast<std::streamsize>(header.size()));
    out_.write(name.data(), static_cast<std::streamsize>(name.size()));
    out_.write(table.data(), static_cast<std::streamsize>(table.size()));
    const std::uint64_t table_sum =
        fnv1a64(std::string_view(table.data(), table.size()));
    out_.write(reinterpret_cast<const char*>(&table_sum), 8);
    if (!out_)
        throw std::runtime_error("ftrace: " + path_ + ": write failed");

    name_bytes_cache_ = name.size();
    fn_table_bytes_cache_ = table.size();
    arrivals_.reserve(chunk_capacity_);
    funcs_.reserve(chunk_capacity_);
}

void FtraceWriter::append(const Invocation& inv)
{
    if (finished_)
        throw std::runtime_error("ftrace: " + path_ +
                                 ": append after finish()");
    if (inv.function >= num_functions_)
        throw std::runtime_error(
            "ftrace: " + path_ + ": append: function id " +
            std::to_string(inv.function) + " out of range (catalog " +
            std::to_string(num_functions_) + ")");
    if (appended_ > 0 && inv.arrival_us < prev_arrival_)
        throw std::runtime_error(
            "ftrace: " + path_ + ": append: arrival " +
            std::to_string(inv.arrival_us) + " out of order (previous " +
            std::to_string(prev_arrival_) + ")");
    prev_arrival_ = inv.arrival_us;
    arrivals_.push_back(inv.arrival_us);
    funcs_.push_back(inv.function);
    ++appended_;
    if (arrivals_.size() == chunk_capacity_)
        flushChunk();
}

void FtraceWriter::flushChunk()
{
    std::string chunk;
    chunk.reserve(ftrace::chunkStride(chunk_capacity_));
    putU32(chunk, static_cast<std::uint32_t>(arrivals_.size()));
    putU32(chunk, 0);
    for (TimeUs t : arrivals_)
        putI64(chunk, t);
    chunk.append((chunk_capacity_ - arrivals_.size()) * 8, '\0');
    for (FunctionId f : funcs_)
        putU32(chunk, f);
    chunk.append((chunk_capacity_ - funcs_.size()) * 4, '\0');
    putU64(chunk, fnv1a64(std::string_view(chunk.data(), chunk.size())));
    out_.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    if (!out_)
        throw std::runtime_error("ftrace: " + path_ + ": chunk write failed");
    ++num_chunks_;
    arrivals_.clear();
    funcs_.clear();
}

void FtraceWriter::finish()
{
    if (finished_)
        return;
    if (!arrivals_.empty())
        flushChunk();
    const std::string header = buildHeader(
        chunk_capacity_, static_cast<std::uint32_t>(name_bytes_cache_),
        num_functions_, appended_, num_chunks_, fn_table_bytes_cache_,
        /*sealed=*/true);
    out_.seekp(0);
    out_.write(header.data(), static_cast<std::streamsize>(header.size()));
    out_.flush();
    if (!out_)
        throw std::runtime_error("ftrace: " + path_ + ": header patch failed");
    out_.close();
    finished_ = true;
}

std::size_t writeFtraceFile(const std::string& path,
                            InvocationSource& source,
                            std::uint32_t chunk_capacity)
{
    source.reset();
    FtraceWriter writer(path, source.name(), source.functions(),
                        chunk_capacity);
    Invocation inv;
    while (source.next(inv))
        writer.append(inv);
    writer.finish();
    source.reset();
    return writer.appended();
}

// ---------------------------------------------------------------------------
// Region (the process-shared mapping)

namespace {

/** Process-wide registry: one live FtraceRegion per path string. */
std::mutex& regionRegistryMutex()
{
    static std::mutex m;
    return m;
}

std::unordered_map<std::string, std::weak_ptr<FtraceRegion>>&
regionRegistry()
{
    static std::unordered_map<std::string, std::weak_ptr<FtraceRegion>> r;
    return r;
}

}  // namespace

std::shared_ptr<FtraceRegion> FtraceRegion::open(const std::string& path)
{
    std::lock_guard<std::mutex> lock(regionRegistryMutex());
    auto& registry = regionRegistry();
    if (auto it = registry.find(path); it != registry.end()) {
        if (std::shared_ptr<FtraceRegion> live = it->second.lock())
            return live;
    }
    // Constructor may throw (validation); the registry is only updated
    // once the region is fully built.
    std::shared_ptr<FtraceRegion> region(new FtraceRegion(path));
    registry[path] = region;
    return region;
}

void FtraceRegion::fail(const std::string& field,
                        const std::string& problem) const
{
    throw std::runtime_error("ftrace: " + path_ + ": " + field + ": " +
                             problem);
}

FtraceRegion::FtraceRegion(const std::string& path) : path_(path)
{
    const int fd = ::open(path_.c_str(), O_RDONLY);
    if (fd < 0)
        fail("file", "cannot open");
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        fail("file", "cannot stat");
    }
    map_bytes_ = static_cast<std::size_t>(st.st_size);
    if (map_bytes_ < ftrace::kHeaderBytes) {
        ::close(fd);
        fail("header", "truncated (" + std::to_string(map_bytes_) +
                           " bytes, need " +
                           std::to_string(ftrace::kHeaderBytes) + ")");
    }
    void* m = ::mmap(nullptr, map_bytes_, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (m == MAP_FAILED)
        fail("file", "mmap failed");
    map_ = static_cast<const unsigned char*>(m);

    const unsigned char* h = map_;
    if (std::memcmp(h, ftrace::kMagic, 4) != 0)
        fail("magic", "not an .ftrace file (want \"FTRC\")");
    const std::uint32_t endianness = loadU32(h + 4);
    if (endianness != ftrace::kEndianness) {
        if (endianness == 0x04030201u)
            fail("endianness",
                 "byte-swapped (file written on opposite-endian machine)");
        fail("endianness", "unrecognized marker " +
                               std::to_string(endianness));
    }
    const std::uint32_t version = loadU32(h + 8);
    if (version != ftrace::kVersion)
        fail("version", "unsupported version " + std::to_string(version) +
                            " (reader supports " +
                            std::to_string(ftrace::kVersion) + ")");
    chunk_capacity_ = loadU32(h + 12);
    if (chunk_capacity_ == 0 ||
        chunk_capacity_ > ftrace::kMaxChunkCapacity)
        fail("chunk_capacity",
             "out of range (" + std::to_string(chunk_capacity_) + ")");
    const std::uint32_t name_bytes = loadU32(h + 16);
    const std::uint64_t num_functions = loadU64(h + 24);
    num_invocations_ = loadU64(h + 32);
    num_chunks_ = loadU64(h + 40);
    const std::uint64_t fn_table_bytes = loadU64(h + 48);
    const std::uint64_t header_sum = loadU64(h + 56);
    const std::uint64_t expect_sum = fnv1a64(
        std::string_view(reinterpret_cast<const char*>(h), 56));
    if (header_sum != expect_sum)
        fail("header_checksum", "mismatch (file corrupt or unfinished)");

    const std::uint64_t expect_chunks =
        num_invocations_ == 0
            ? 0
            : (num_invocations_ + chunk_capacity_ - 1) / chunk_capacity_;
    if (num_chunks_ != expect_chunks)
        fail("num_chunks", "inconsistent with num_invocations (" +
                               std::to_string(num_chunks_) + " chunks for " +
                               std::to_string(num_invocations_) +
                               " invocations, expected " +
                               std::to_string(expect_chunks) + ")");

    const std::uint64_t stride = ftrace::chunkStride(chunk_capacity_);
    const std::uint64_t meta_bytes = ftrace::kHeaderBytes +
                                     std::uint64_t{name_bytes} +
                                     fn_table_bytes + 8;
    const std::uint64_t expect_size = meta_bytes + num_chunks_ * stride;
    if (map_bytes_ != expect_size)
        fail("file", "size mismatch (" + std::to_string(map_bytes_) +
                         " bytes, header implies " +
                         std::to_string(expect_size) + ")");

    name_.assign(reinterpret_cast<const char*>(map_) + ftrace::kHeaderBytes,
                 name_bytes);

    const unsigned char* table = map_ + ftrace::kHeaderBytes + name_bytes;
    const std::uint64_t table_sum = loadU64(table + fn_table_bytes);
    const std::uint64_t table_expect = fnv1a64(std::string_view(
        reinterpret_cast<const char*>(table), fn_table_bytes));
    if (table_sum != table_expect)
        fail("function_table_checksum", "mismatch");
    functions_.reserve(num_functions);
    std::uint64_t off = 0;
    for (std::uint64_t i = 0; i < num_functions; ++i) {
        if (off + 4 > fn_table_bytes)
            fail("function_table", "truncated at function " +
                                       std::to_string(i));
        const std::uint32_t name_len = loadU32(table + off);
        off += 4;
        if (off + name_len + 40 > fn_table_bytes)
            fail("function_table", "truncated at function " +
                                       std::to_string(i));
        FunctionSpec fn;
        fn.id = static_cast<FunctionId>(i);
        fn.name.assign(reinterpret_cast<const char*>(table) + off, name_len);
        off += name_len;
        fn.mem_mb = loadF64(table + off);
        fn.cpu_units = loadF64(table + off + 8);
        fn.io_units = loadF64(table + off + 16);
        fn.warm_us = loadI64(table + off + 24);
        fn.cold_us = loadI64(table + off + 32);
        off += 40;
        if (!fn.valid())
            fail("function_table",
                 "function " + std::to_string(i) + " has invalid spec");
        functions_.push_back(std::move(fn));
    }
    if (off != fn_table_bytes)
        fail("fn_table_bytes", "trailing bytes after last function (" +
                                   std::to_string(fn_table_bytes - off) +
                                   ")");
    chunks_off_ = static_cast<std::size_t>(meta_bytes);
}

FtraceRegion::~FtraceRegion()
{
    if (map_ != nullptr)
        ::munmap(const_cast<unsigned char*>(map_), map_bytes_);
}

void FtraceRegion::touchChunk(std::uint64_t chunk)
{
    // Fast path: chunks below the watermark are immutable once verified,
    // so a plain acquire load suffices and concurrent cursors never
    // contend after first touch.
    if (chunk < verified_chunks_.load(std::memory_order_acquire))
        return;
    std::lock_guard<std::mutex> lock(verify_mutex_);
    const std::uint64_t stride = ftrace::chunkStride(chunk_capacity_);
    while (verified_chunks_.load(std::memory_order_relaxed) <= chunk) {
        const std::uint64_t c =
            verified_chunks_.load(std::memory_order_relaxed);
        const unsigned char* base = map_ + chunks_off_ + c * stride;
        const std::uint64_t sum = loadU64(base + stride - 8);
        const std::uint64_t expect = fnv1a64(std::string_view(
            reinterpret_cast<const char*>(base), stride - 8));
        if (sum != expect)
            fail("chunk " + std::to_string(c), "checksum mismatch");
        const std::uint32_t count = loadU32(base);
        const std::uint64_t expect_count =
            c + 1 < num_chunks_
                ? chunk_capacity_
                : num_invocations_ - (num_chunks_ - 1) * chunk_capacity_;
        if (count != expect_count)
            fail("chunk " + std::to_string(c),
                 "bad count (" + std::to_string(count) + ", expected " +
                     std::to_string(expect_count) + ")");
        const unsigned char* arrivals = base + 8;
        const unsigned char* fns = base + 8 + std::uint64_t{chunk_capacity_} * 8;
        // verified_tail_arrival_ starts at 0, which doubles as the
        // arrival_us >= 0 floor Trace::validate() enforces.
        TimeUs prev = verified_tail_arrival_;
        for (std::uint32_t i = 0; i < count; ++i) {
            const TimeUs t = loadI64(arrivals + std::uint64_t{i} * 8);
            if (t < prev)
                fail("chunk " + std::to_string(c),
                     "arrivals out of order at entry " + std::to_string(i));
            prev = t;
            const FunctionId f = loadU32(fns + std::uint64_t{i} * 4);
            if (f >= functions_.size())
                fail("chunk " + std::to_string(c),
                     "function id " + std::to_string(f) +
                         " out of range at entry " + std::to_string(i));
        }
        verified_tail_arrival_ = prev;
        verified_chunks_.store(c + 1, std::memory_order_release);
    }
}

bool FtraceRegion::load(std::uint64_t pos, Invocation& out)
{
    if (pos >= num_invocations_)
        return false;
    const std::uint64_t chunk = pos / chunk_capacity_;
    touchChunk(chunk);
    const std::uint64_t off = pos % chunk_capacity_;
    const std::uint64_t stride = ftrace::chunkStride(chunk_capacity_);
    const unsigned char* base = map_ + chunks_off_ + chunk * stride;
    out.arrival_us = loadI64(base + 8 + off * 8);
    out.function = loadU32(base + 8 + std::uint64_t{chunk_capacity_} * 8 +
                           off * 4);
    return true;
}

void FtraceRegion::releaseConsumed()
{
    // Release up to the slowest cursor: dropping pages a peer is still
    // streaming would be correct (they re-fault from the file) but would
    // defeat the point of sharing the mapping. A cursor that reset()
    // behind the watermark simply stalls further releases until it
    // catches up; its re-reads fault the pages back in.
    std::lock_guard<std::mutex> lock(cursors_mutex_);
    std::uint64_t min_pos = num_invocations_;
    for (const FtraceCursor* cursor : cursors_)
        min_pos = std::min(
            min_pos, cursor->pos_.load(std::memory_order_acquire));
    const std::uint64_t min_chunk = min_pos / chunk_capacity_;
    if (min_chunk <= released_chunks_)
        return;
    const std::uint64_t stride = ftrace::chunkStride(chunk_capacity_);
    const std::size_t page =
        static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    const std::size_t begin =
        (chunks_off_ + released_chunks_ * stride) / page * page;
    const std::size_t end =
        (chunks_off_ + min_chunk * stride) / page * page;
    if (end > begin)
        ::madvise(const_cast<unsigned char*>(map_) + begin, end - begin,
                  MADV_DONTNEED);
    released_chunks_ = min_chunk;
}

void FtraceRegion::registerCursor(const FtraceCursor* cursor)
{
    std::lock_guard<std::mutex> lock(cursors_mutex_);
    cursors_.push_back(cursor);
}

void FtraceRegion::unregisterCursor(const FtraceCursor* cursor)
{
    std::lock_guard<std::mutex> lock(cursors_mutex_);
    cursors_.erase(std::remove(cursors_.begin(), cursors_.end(), cursor),
                   cursors_.end());
}

std::unique_ptr<FtraceCursor> FtraceRegion::makeCursor()
{
    // open() is the only way to obtain a region and returns shared_ptr,
    // so shared_from_this() always has a control block to share.
    return std::make_unique<FtraceCursor>(shared_from_this());
}

// ---------------------------------------------------------------------------
// Cursor

FtraceCursor::FtraceCursor(std::shared_ptr<FtraceRegion> region)
    : region_(std::move(region))
{
    region_->registerCursor(this);
}

FtraceCursor::~FtraceCursor() { region_->unregisterCursor(this); }

bool FtraceCursor::peek(Invocation& out)
{
    return region_->load(pos_.load(std::memory_order_relaxed), out);
}

bool FtraceCursor::next(Invocation& out)
{
    const std::uint64_t pos = pos_.load(std::memory_order_relaxed);
    if (!region_->load(pos, out))
        return false;
    pos_.store(pos + 1, std::memory_order_release);
    // Crossing a chunk boundary: try to hand fully consumed chunks back
    // to the kernel so resident memory stays O(chunk) regardless of the
    // trace length. The region only drops chunks every cursor has passed.
    if ((pos + 1) % region_->chunkCapacity() == 0)
        region_->releaseConsumed();
    return true;
}

void FtraceCursor::reset() { pos_.store(0, std::memory_order_release); }

// ---------------------------------------------------------------------------
// Facade

FtraceSource::FtraceSource(const std::string& path)
    : region_(FtraceRegion::open(path)), cursor_(region_->makeCursor())
{
}

}  // namespace faascache

#include "trace/generated_source.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.h"

namespace faascache {

// ---------------------------------------------------------------------------
// Base merge plumbing

void GeneratedSource::primeIfNeeded()
{
    if (primed_)
        return;
    rewindStreams();
    const std::size_t n = streamCount();
    for (std::size_t i = 0; i < n; ++i) {
        if (!streamEmits(i))
            continue;
        TimeUs t = 0;
        if (streamNext(i, t))
            heap_.emplace(t, static_cast<std::uint32_t>(i));
    }
    primed_ = true;
}

bool GeneratedSource::peek(Invocation& out)
{
    primeIfNeeded();
    if (heap_.empty())
        return false;
    out.arrival_us = heap_.top().first;
    out.function = streamFunction(heap_.top().second);
    return true;
}

bool GeneratedSource::next(Invocation& out)
{
    primeIfNeeded();
    if (heap_.empty())
        return false;
    const auto [t, stream] = heap_.top();
    heap_.pop();
    out.arrival_us = t;
    out.function = streamFunction(stream);
    TimeUs next_t = 0;
    if (streamNext(stream, next_t))
        heap_.emplace(next_t, stream);
    return true;
}

void GeneratedSource::reset()
{
    heap_ = {};
    primed_ = false;
}

namespace {

/** Invocations a periodic stream of period `iat_us` starting at
 *  `phase_us` emits before `duration_us` (mirrors patterns.cc). */
std::size_t periodicCount(TimeUs phase_us, TimeUs iat_us,
                          TimeUs duration_us)
{
    if (phase_us >= duration_us)
        return 0;
    return static_cast<std::size_t>(
        (duration_us - phase_us + iat_us - 1) / iat_us);
}

// ---------------------------------------------------------------------------
// Periodic

class PeriodicSource final : public GeneratedSource
{
  public:
    PeriodicSource(std::vector<FunctionSpec> specs,
                   std::vector<TimeUs> iats_us, TimeUs duration_us,
                   std::string name)
        : GeneratedSource(std::move(name), std::move(specs)),
          iats_us_(std::move(iats_us)), duration_us_(duration_us)
    {
        assert(functions().size() == iats_us_.size());
        std::size_t total = 0;
        for (std::size_t i = 0; i < iats_us_.size(); ++i) {
            assert(iats_us_[i] > 0);
            total += periodicCount(static_cast<TimeUs>(i) * kMillisecond,
                                   iats_us_[i], duration_us_);
        }
        setTotalCount(total);
        cursor_.resize(iats_us_.size());
    }

  protected:
    std::size_t streamCount() const override { return iats_us_.size(); }

    void rewindStreams() override
    {
        for (std::size_t i = 0; i < cursor_.size(); ++i)
            cursor_[i] = static_cast<TimeUs>(i) * kMillisecond;
    }

    bool streamNext(std::size_t i, TimeUs& out) override
    {
        if (cursor_[i] >= duration_us_)
            return false;
        out = cursor_[i];
        cursor_[i] += iats_us_[i];
        return true;
    }

  private:
    std::vector<TimeUs> iats_us_;
    TimeUs duration_us_;
    std::vector<TimeUs> cursor_;
};

// ---------------------------------------------------------------------------
// Poisson

class PoissonSource final : public GeneratedSource
{
  public:
    PoissonSource(std::vector<FunctionSpec> specs,
                  std::vector<TimeUs> iats_us, TimeUs duration_us,
                  std::uint64_t seed, std::string name)
        : GeneratedSource(std::move(name), std::move(specs)),
          iats_us_(std::move(iats_us)), duration_us_(duration_us),
          seed_(seed)
    {
        assert(functions().size() == iats_us_.size());
        rngs_.resize(iats_us_.size(), Rng(0));
        cursor_.resize(iats_us_.size());
        // Counting pre-pass: replay every per-function process once so
        // the hint is exact. Same draws as the streaming pass below.
        std::size_t total = 0;
        Rng rng(seed_);
        for (std::size_t i = 0; i < iats_us_.size(); ++i) {
            assert(iats_us_[i] > 0);
            Rng fn_rng = rng.split();
            const double mean = static_cast<double>(iats_us_[i]);
            TimeUs t = static_cast<TimeUs>(fn_rng.exponential(mean));
            while (t < duration_us_) {
                ++total;
                t += static_cast<TimeUs>(fn_rng.exponential(mean));
            }
        }
        setTotalCount(total);
    }

  protected:
    std::size_t streamCount() const override { return iats_us_.size(); }

    void rewindStreams() override
    {
        Rng rng(seed_);
        for (std::size_t i = 0; i < rngs_.size(); ++i) {
            rngs_[i] = rng.split();
            cursor_[i] = static_cast<TimeUs>(
                rngs_[i].exponential(static_cast<double>(iats_us_[i])));
        }
    }

    bool streamNext(std::size_t i, TimeUs& out) override
    {
        if (cursor_[i] >= duration_us_)
            return false;
        out = cursor_[i];
        cursor_[i] += static_cast<TimeUs>(
            rngs_[i].exponential(static_cast<double>(iats_us_[i])));
        return true;
    }

  private:
    std::vector<TimeUs> iats_us_;
    TimeUs duration_us_;
    std::uint64_t seed_;
    std::vector<Rng> rngs_;
    std::vector<TimeUs> cursor_;
};

// ---------------------------------------------------------------------------
// Cyclic (a single already-sorted stream; no merge needed)

class CyclicSource final : public InvocationSource
{
  public:
    CyclicSource(std::vector<FunctionSpec> specs, TimeUs gap_us,
                 TimeUs duration_us, std::string name)
        : name_(std::move(name)), functions_(std::move(specs)),
          gap_us_(gap_us),
          count_(periodicCount(0, gap_us, duration_us))
    {
        assert(gap_us_ > 0);
        assert(!functions_.empty());
    }

    const std::string& name() const override { return name_; }
    const std::vector<FunctionSpec>& functions() const override
    {
        return functions_;
    }

    bool peek(Invocation& out) override
    {
        if (pos_ >= count_)
            return false;
        out.arrival_us = static_cast<TimeUs>(pos_) * gap_us_;
        out.function = static_cast<FunctionId>(pos_ % functions_.size());
        return true;
    }

    bool next(Invocation& out) override
    {
        if (!peek(out))
            return false;
        ++pos_;
        return true;
    }

    void reset() override { pos_ = 0; }

    SourceCountHint countHint() const override
    {
        return SourceCountHint{count_, true};
    }

  private:
    std::string name_;
    std::vector<FunctionSpec> functions_;
    TimeUs gap_us_;
    std::size_t count_;
    std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Azure model

class AzureSource final : public GeneratedSource
{
  public:
    explicit AzureSource(const AzureModelConfig& config,
                         std::vector<FunctionSpec> population,
                         std::vector<double> rates, Rng post_catalog_rng,
                         std::function<bool(FunctionId)> keep)
        : GeneratedSource(config.name, {}), config_(config),
          population_(std::move(population)), rates_(std::move(rates)),
          post_catalog_rng_(post_catalog_rng), keep_(std::move(keep)),
          num_minutes_(static_cast<std::int64_t>(
              (config.duration_us + kMinute - 1) / kMinute))
    {
        // Counting pre-pass: replay every per-function minute-bucket
        // process once. Gives the exact count hint and, when the
        // drop-single-invocation filter is on, the dense remap that
        // Trace::subset() would produce on the materialized path.
        std::vector<std::size_t> counts(population_.size(), 0);
        {
            Rng rng = post_catalog_rng_;
            for (std::size_t i = 0; i < population_.size(); ++i) {
                Rng fn_rng = rng.split();
                for (std::int64_t minute = 0; minute < num_minutes_;
                     ++minute) {
                    const std::int64_t c =
                        fn_rng.poisson(ratePerMinute(i, minute * kMinute));
                    if (c > 0)
                        counts[i] += static_cast<std::size_t>(c);
                }
            }
        }
        remap_.assign(population_.size(), kInvalidFunction);
        std::size_t total = 0;
        std::vector<FunctionSpec> kept;
        for (std::size_t i = 0; i < population_.size(); ++i) {
            if (config_.drop_single_invocation_functions && counts[i] < 2)
                continue;
            FunctionSpec spec = population_[i];
            const auto new_id = static_cast<FunctionId>(kept.size());
            spec.id = new_id;
            remap_[i] = new_id;
            kept.push_back(std::move(spec));
            // The keep partition layers on the OUTPUT id space: the
            // catalog (and hence the remap) is partition-independent,
            // only the emitted stream and its exact count shrink.
            if (!keep_ || keep_(new_id))
                total += counts[i];
        }
        setFunctions(std::move(kept));
        setTotalCount(total);
        streams_.resize(population_.size());
    }

  protected:
    std::size_t streamCount() const override { return population_.size(); }

    void rewindStreams() override
    {
        Rng rng = post_catalog_rng_;
        for (auto& s : streams_) {
            s.fn_rng = rng.split();
            s.minute = -1;
            s.count = 0;
            s.k = 0;
            s.bucket_start = 0;
            s.spacing = 0;
        }
    }

    bool streamNext(std::size_t i, TimeUs& out) override
    {
        Stream& s = streams_[i];
        while (true) {
            if (s.k < s.count) {
                out = s.count == 1 ? s.bucket_start
                                   : s.bucket_start + s.k * s.spacing;
                ++s.k;
                return true;
            }
            ++s.minute;
            if (s.minute >= num_minutes_)
                return false;
            s.bucket_start = s.minute * kMinute;
            const std::int64_t c =
                s.fn_rng.poisson(ratePerMinute(i, s.bucket_start));
            if (c <= 0) {
                s.count = 0;
                s.k = 0;
                continue;
            }
            s.count = c;
            s.k = 0;
            s.spacing = c > 1 ? kMinute / c : 0;
        }
    }

    bool streamEmits(std::size_t i) const override
    {
        if (remap_[i] == kInvalidFunction)
            return false;
        return !keep_ || keep_(remap_[i]);
    }

    FunctionId streamFunction(std::size_t i) const override
    {
        return remap_[i];
    }

  private:
    double ratePerMinute(std::size_t fn, TimeUs bucket_start) const
    {
        double rate = rates_[fn] * 60.0;
        if (config_.diurnal) {
            rate *= diurnalMultiplier(bucket_start,
                                      config_.diurnal_peak_to_mean,
                                      config_.diurnal_period_us);
        }
        return rate;
    }

    struct Stream
    {
        Rng fn_rng{0};
        std::int64_t minute = -1;
        TimeUs bucket_start = 0;
        std::int64_t count = 0;
        std::int64_t k = 0;
        TimeUs spacing = 0;
    };

    AzureModelConfig config_;
    std::vector<FunctionSpec> population_;
    std::vector<double> rates_;
    Rng post_catalog_rng_;
    std::function<bool(FunctionId)> keep_;
    std::int64_t num_minutes_;
    std::vector<FunctionId> remap_;
    std::vector<Stream> streams_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Factories

std::unique_ptr<InvocationSource> makePeriodicSource(
    std::vector<FunctionSpec> specs, std::vector<TimeUs> iats_us,
    TimeUs duration_us, std::string name)
{
    return std::make_unique<PeriodicSource>(std::move(specs),
                                            std::move(iats_us), duration_us,
                                            std::move(name));
}

std::unique_ptr<InvocationSource> makePoissonSource(
    std::vector<FunctionSpec> specs, std::vector<TimeUs> iats_us,
    TimeUs duration_us, std::uint64_t seed, std::string name)
{
    return std::make_unique<PoissonSource>(std::move(specs),
                                           std::move(iats_us), duration_us,
                                           seed, std::move(name));
}

std::unique_ptr<InvocationSource> makeCyclicSource(
    std::vector<FunctionSpec> specs, TimeUs gap_us, TimeUs duration_us,
    std::string name)
{
    return std::make_unique<CyclicSource>(std::move(specs), gap_us,
                                          duration_us, std::move(name));
}

std::unique_ptr<InvocationSource> makeSkewedSizeSource(
    std::vector<FunctionSpec> specs, TimeUs small_iat_us,
    TimeUs large_iat_us, TimeUs duration_us, std::string name)
{
    assert(!specs.empty());
    std::vector<MemMb> sizes;
    sizes.reserve(specs.size());
    for (const auto& spec : specs)
        sizes.push_back(spec.mem_mb);
    std::nth_element(sizes.begin(), sizes.begin() + sizes.size() / 2,
                     sizes.end());
    const MemMb median = sizes[sizes.size() / 2];

    std::vector<TimeUs> iats;
    iats.reserve(specs.size());
    for (const auto& spec : specs)
        iats.push_back(spec.mem_mb < median ? small_iat_us : large_iat_us);
    return makePeriodicSource(std::move(specs), std::move(iats),
                              duration_us, std::move(name));
}

std::unique_ptr<InvocationSource> makeAzureSource(
    const AzureModelConfig& config)
{
    return makeAzureSource(config, nullptr);
}

std::unique_ptr<InvocationSource> makeAzureSource(
    const AzureModelConfig& config, std::function<bool(FunctionId)> keep)
{
    // Replicate generateAzureTrace()'s catalog loop draw for draw, then
    // hand the post-catalog RNG state to the streaming source so the
    // per-function split() sequence matches the materialized path.
    Rng rng(config.seed);
    std::vector<FunctionSpec> population;
    population.reserve(config.num_functions);
    std::vector<double> rates;
    rates.reserve(config.num_functions);
    for (std::size_t i = 0; i < config.num_functions; ++i) {
        const double iat_sec = rng.lognormal(
            std::log(config.iat_median_sec), config.iat_sigma);
        const double rate =
            std::min(config.max_rate_per_sec, 1.0 / iat_sec);

        double mem = rng.lognormal(std::log(config.mem_median_mb),
                                   config.mem_sigma);
        mem = std::clamp(mem, config.mem_min_mb, config.mem_max_mb);
        mem = std::max(1.0, std::round(mem));

        double warm_ms = rng.lognormal(std::log(config.warm_median_ms),
                                       config.warm_sigma);
        warm_ms =
            std::clamp(warm_ms, config.warm_min_ms, config.warm_max_ms);
        const double max_warm_ms = config.max_utilization * 1000.0 / rate;
        warm_ms = std::max(config.warm_min_ms,
                           std::min(warm_ms, max_warm_ms));

        double ratio = rng.lognormal(std::log(config.init_ratio_median),
                                     config.init_ratio_sigma);
        ratio = std::clamp(ratio, config.init_ratio_min,
                           config.init_ratio_max);

        const auto id = static_cast<FunctionId>(i);
        population.push_back(makeFunction(
            id, "fn-" + std::to_string(i), mem, fromMillis(warm_ms),
            fromMillis(warm_ms * ratio)));
        rates.push_back(rate);
    }
    return std::make_unique<AzureSource>(config, std::move(population),
                                         std::move(rates), rng,
                                         std::move(keep));
}

}  // namespace faascache

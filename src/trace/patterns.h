/**
 * @file
 * Deterministic workload patterns used in the paper's OpenWhisk
 * experiments (§7.2, Figures 7 and 8): skewed-frequency, cyclic, and
 * skewed-size access patterns over a small catalog of functions.
 */
#ifndef FAASCACHE_TRACE_PATTERNS_H_
#define FAASCACHE_TRACE_PATTERNS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace faascache {

/**
 * Each function i is invoked periodically with its own inter-arrival
 * time; function i's stream is phase-shifted by i milliseconds so that
 * simultaneous arrivals are rare but the trace stays deterministic.
 *
 * @param specs        Function catalog (ids must be dense from 0).
 * @param iats_us      Per-function inter-arrival time; size must match.
 * @param duration_us  Trace length.
 */
Trace makePeriodicTrace(const std::vector<FunctionSpec>& specs,
                        const std::vector<TimeUs>& iats_us,
                        TimeUs duration_us, std::string name);

/**
 * Poisson arrivals: each function i receives an independent Poisson
 * stream with mean inter-arrival time iats_us[i] (exponential gaps).
 * Deterministic in `seed`. This is the jittered counterpart of
 * makePeriodicTrace, matching open-loop web traffic.
 */
Trace makePoissonTrace(const std::vector<FunctionSpec>& specs,
                       const std::vector<TimeUs>& iats_us,
                       TimeUs duration_us, std::uint64_t seed,
                       std::string name);

/**
 * Round-robin (cyclic) pattern: invocations visit functions
 * 0, 1, ..., n-1, 0, 1, ... with a fixed gap between consecutive
 * invocations. This is the classic LRU-adversarial sequence.
 */
Trace makeCyclicTrace(const std::vector<FunctionSpec>& specs,
                      TimeUs gap_us, TimeUs duration_us, std::string name);

/**
 * Skewed-size pattern: functions are split into small/large classes by
 * the median memory size; small functions fire with `small_iat_us`,
 * large ones with `large_iat_us`.
 */
Trace makeSkewedSizeTrace(const std::vector<FunctionSpec>& specs,
                          TimeUs small_iat_us, TimeUs large_iat_us,
                          TimeUs duration_us, std::string name);

}  // namespace faascache

#endif  // FAASCACHE_TRACE_PATTERNS_H_

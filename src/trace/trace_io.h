/**
 * @file
 * CSV (de)serialization of traces, analogous to the pickle files of the
 * paper's artifact. The format is line-oriented:
 *
 *     faascache-trace,2,<name>
 *     function,<id>,<name>,<mem_mb>,<warm_us>,<cold_us>[,<cpu>,<io>]
 *     ...
 *     invocation,<function_id>,<arrival_us>
 *     ...
 *
 * Version 2 appends the optional cpu/io resource dimensions; version 1
 * files (6-field function rows) are still read, defaulting cpu to 1 and
 * io to 0.
 */
#ifndef FAASCACHE_TRACE_TRACE_IO_H_
#define FAASCACHE_TRACE_TRACE_IO_H_

#include <iosfwd>
#include <string>

#include "trace/trace.h"

namespace faascache {

/** Serialize a trace to a stream. */
void writeTrace(const Trace& trace, std::ostream& out);

/**
 * Parse a trace from CSV text.
 * @throws std::runtime_error on malformed input.
 */
Trace readTrace(const std::string& text);

/** Write a trace to a file. @throws std::runtime_error on I/O failure. */
void saveTraceFile(const Trace& trace, const std::string& path);

/** Read a trace from a file. @throws std::runtime_error on failure. */
Trace loadTraceFile(const std::string& path);

}  // namespace faascache

#endif  // FAASCACHE_TRACE_TRACE_IO_H_

#include "trace/trace_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.h"

namespace faascache {

namespace {

[[noreturn]] void
malformed(const std::string& what)
{
    throw std::runtime_error("readTrace: malformed trace: " + what);
}

std::int64_t
parseInt(const std::string& s)
{
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(s, &pos);
    if (pos != s.size())
        malformed("bad integer '" + s + "'");
    return v;
}

double
parseDouble(const std::string& s)
{
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size())
        malformed("bad number '" + s + "'");
    return v;
}

}  // namespace

void
writeTrace(const Trace& trace, std::ostream& out)
{
    CsvWriter csv(out);
    csv.writeRow({"faascache-trace", "2", trace.name()});
    for (const auto& fn : trace.functions()) {
        csv.writeRow({"function", std::to_string(fn.id), fn.name,
                      std::to_string(fn.mem_mb),
                      std::to_string(fn.warm_us),
                      std::to_string(fn.cold_us),
                      std::to_string(fn.cpu_units),
                      std::to_string(fn.io_units)});
    }
    for (const auto& inv : trace.invocations()) {
        csv.writeRow({"invocation", std::to_string(inv.function),
                      std::to_string(inv.arrival_us)});
    }
}

Trace
readTrace(const std::string& text)
{
    const auto rows = parseCsv(text);
    if (rows.empty() || rows[0].size() < 3 ||
        rows[0][0] != "faascache-trace" ||
        (rows[0][1] != "1" && rows[0][1] != "2")) {
        malformed("missing header");
    }
    Trace trace(rows[0][2]);
    for (std::size_t i = 1; i < rows.size(); ++i) {
        const auto& row = rows[i];
        if (row.empty())
            continue;
        if (row[0] == "function") {
            if (row.size() != 6 && row.size() != 8)
                malformed("function row arity");
            FunctionSpec spec;
            spec.id = static_cast<FunctionId>(parseInt(row[1]));
            spec.name = row[2];
            spec.mem_mb = parseDouble(row[3]);
            spec.warm_us = parseInt(row[4]);
            spec.cold_us = parseInt(row[5]);
            if (row.size() == 8) {
                spec.cpu_units = parseDouble(row[6]);
                spec.io_units = parseDouble(row[7]);
            }
            if (spec.id != trace.functions().size())
                malformed("non-dense function ids");
            trace.addFunction(std::move(spec));
        } else if (row[0] == "invocation") {
            if (row.size() != 3)
                malformed("invocation row arity");
            trace.addInvocation(static_cast<FunctionId>(parseInt(row[1])),
                                parseInt(row[2]));
        } else {
            malformed("unknown row kind '" + row[0] + "'");
        }
    }
    if (!trace.validate())
        malformed("validation failed");
    return trace;
}

void
saveTraceFile(const Trace& trace, const std::string& path)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("saveTraceFile: cannot open " + path);
    writeTrace(trace, out);
    if (!out)
        throw std::runtime_error("saveTraceFile: write failed for " + path);
}

Trace
loadTraceFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("loadTraceFile: cannot open " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return readTrace(buffer.str());
}

}  // namespace faascache

#include "trace/trace_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.h"

namespace faascache {

namespace {

[[noreturn]] void
malformed(std::size_t line, const std::string& what)
{
    throw std::runtime_error("readTrace: malformed trace at line " +
                             std::to_string(line) + ": " + what);
}

std::int64_t
parseInt(std::size_t line, const std::string& s)
{
    std::size_t pos = 0;
    std::int64_t v = 0;
    try {
        v = std::stoll(s, &pos);
    } catch (const std::invalid_argument&) {
        malformed(line, "bad integer '" + s + "'");
    } catch (const std::out_of_range&) {
        malformed(line, "integer out of range '" + s + "'");
    }
    if (pos != s.size())
        malformed(line, "bad integer '" + s + "'");
    return v;
}

double
parseDouble(std::size_t line, const std::string& s)
{
    std::size_t pos = 0;
    double v = 0.0;
    try {
        v = std::stod(s, &pos);
    } catch (const std::invalid_argument&) {
        malformed(line, "bad number '" + s + "'");
    } catch (const std::out_of_range&) {
        malformed(line, "number out of range '" + s + "'");
    }
    if (pos != s.size())
        malformed(line, "bad number '" + s + "'");
    return v;
}

}  // namespace

void
writeTrace(const Trace& trace, std::ostream& out)
{
    CsvWriter csv(out);
    csv.writeRow({"faascache-trace", "2", trace.name()});
    for (const auto& fn : trace.functions()) {
        csv.writeRow({"function", std::to_string(fn.id), fn.name,
                      std::to_string(fn.mem_mb),
                      std::to_string(fn.warm_us),
                      std::to_string(fn.cold_us),
                      std::to_string(fn.cpu_units),
                      std::to_string(fn.io_units)});
    }
    for (const auto& inv : trace.invocations()) {
        csv.writeRow({"invocation", std::to_string(inv.function),
                      std::to_string(inv.arrival_us)});
    }
}

Trace
readTrace(const std::string& text)
{
    const auto rows = parseCsvLines(text);
    if (rows.empty() || rows[0].fields.size() < 3 ||
        rows[0].fields[0] != "faascache-trace" ||
        (rows[0].fields[1] != "1" && rows[0].fields[1] != "2")) {
        malformed(rows.empty() ? 1 : rows[0].line,
                  "missing 'faascache-trace' header");
    }
    Trace trace(rows[0].fields[2]);
    for (std::size_t i = 1; i < rows.size(); ++i) {
        const auto& row = rows[i].fields;
        const std::size_t line = rows[i].line;
        if (row.empty())
            continue;
        if (row[0] == "function") {
            if (row.size() != 6 && row.size() != 8) {
                malformed(line, "function row needs 6 or 8 fields, got " +
                                    std::to_string(row.size()));
            }
            FunctionSpec spec;
            spec.id = static_cast<FunctionId>(parseInt(line, row[1]));
            spec.name = row[2];
            spec.mem_mb = parseDouble(line, row[3]);
            spec.warm_us = parseInt(line, row[4]);
            spec.cold_us = parseInt(line, row[5]);
            if (row.size() == 8) {
                spec.cpu_units = parseDouble(line, row[6]);
                spec.io_units = parseDouble(line, row[7]);
            }
            if (spec.id != trace.functions().size()) {
                malformed(line, "non-dense function id " +
                                    std::to_string(spec.id) + ", expected " +
                                    std::to_string(trace.functions().size()));
            }
            trace.addFunction(std::move(spec));
        } else if (row[0] == "invocation") {
            if (row.size() != 3) {
                malformed(line, "invocation row needs 3 fields, got " +
                                    std::to_string(row.size()));
            }
            const std::int64_t fn = parseInt(line, row[1]);
            if (fn < 0 ||
                static_cast<std::size_t>(fn) >= trace.functions().size()) {
                malformed(line, "invocation references unknown function " +
                                    std::to_string(fn));
            }
            trace.addInvocation(static_cast<FunctionId>(fn),
                                parseInt(line, row[2]));
        } else {
            malformed(line, "unknown row kind '" + row[0] + "'");
        }
    }
    if (!trace.validate())
        malformed(rows.back().line, "trace validation failed");
    return trace;
}

void
saveTraceFile(const Trace& trace, const std::string& path)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("saveTraceFile: cannot open " + path);
    writeTrace(trace, out);
    if (!out)
        throw std::runtime_error("saveTraceFile: write failed for " + path);
}

Trace
loadTraceFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("loadTraceFile: cannot open " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
        return readTrace(buffer.str());
    } catch (const std::runtime_error& e) {
        throw std::runtime_error(std::string(e.what()) + " (in " + path +
                                 ")");
    }
}

}  // namespace faascache

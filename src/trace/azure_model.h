/**
 * @file
 * Statistical model of the Azure Functions 2019 workload.
 *
 * The paper evaluates against samples of the Azure trace, which is not
 * redistributable; this generator is the documented substitution
 * (DESIGN.md §1). It reproduces the distributional properties the paper
 * relies on:
 *
 *  - inter-arrival times and memory sizes spanning more than three orders
 *    of magnitude (lognormal with heavy tails, §2.1);
 *  - heavy-hitter functions that dominate the invocation stream (§3);
 *  - minute-bucketed invocation counts replayed with the paper's rule:
 *    a single invocation in a bucket lands at the start of the minute,
 *    multiple invocations are spaced evenly through it (§7);
 *  - cold-start cost modeled as a function-specific initialization
 *    overhead on top of the warm run time;
 *  - optional diurnal modulation with a configurable peak-to-mean ratio
 *    (the Azure trace shows ~2x peaks, §3).
 */
#ifndef FAASCACHE_TRACE_AZURE_MODEL_H_
#define FAASCACHE_TRACE_AZURE_MODEL_H_

#include <cstdint>
#include <string>

#include "trace/trace.h"

namespace faascache {

/** Tunable parameters of the synthetic Azure-like workload. */
struct AzureModelConfig
{
    /** Seed for the whole generation; equal configs generate equal traces. */
    std::uint64_t seed = 42;

    /** Number of functions in the population before filtering. */
    std::size_t num_functions = 1000;

    /** Length of the generated trace. */
    TimeUs duration_us = 2 * kHour;

    /** Median of the per-function mean inter-arrival time, seconds. */
    double iat_median_sec = 120.0;

    /** Lognormal sigma of the mean IAT (2.3 gives ~3 orders of magnitude
     *  between the 2nd and 98th percentile). */
    double iat_sigma = 2.3;

    /** Fastest allowed per-function mean rate, invocations per second.
     *  Caps the heavy hitters so trace sizes stay manageable. */
    double max_rate_per_sec = 4.0;

    /** Median container memory footprint, MB. */
    double mem_median_mb = 170.0;

    /** Lognormal sigma of the memory footprint. */
    double mem_sigma = 1.0;

    /** Memory clamp range, MB. */
    MemMb mem_min_mb = 32.0;
    MemMb mem_max_mb = 4096.0;

    /** Median warm execution time, milliseconds. */
    double warm_median_ms = 400.0;

    /** Lognormal sigma of the warm execution time. */
    double warm_sigma = 1.5;

    /** Warm time clamp range, milliseconds. */
    double warm_min_ms = 1.0;
    double warm_max_ms = 60'000.0;

    /**
     * Cap on per-function utilization: warm time <= this fraction of
     * the function's mean inter-arrival time. Prevents the unrealistic
     * combination of a heavy-hitter invocation rate with a long
     * execution time, which would imply dozens of permanently busy
     * containers for one function (Azure heavy hitters are short).
     */
    double max_utilization = 0.5;

    /** Median of init_time / warm_time; the paper's Table 1 shows ratios
     *  from ~0.05 (video encoding) to ~6 (web serving). */
    double init_ratio_median = 1.0;

    /** Lognormal sigma of the init ratio. */
    double init_ratio_sigma = 0.9;

    /** Init ratio clamp range. */
    double init_ratio_min = 0.05;
    double init_ratio_max = 10.0;

    /** Enable sinusoidal diurnal modulation of arrival rates. */
    bool diurnal = false;

    /** Peak arrival rate divided by the mean rate (>= 1). */
    double diurnal_peak_to_mean = 2.0;

    /** Period of the diurnal cycle. */
    TimeUs diurnal_period_us = 24 * kHour;

    /** Drop functions invoked fewer than two times, as the paper does. */
    bool drop_single_invocation_functions = true;

    /** Name given to the generated trace. */
    std::string name = "azure-synthetic";
};

/** Generate a workload trace from the model. Deterministic in the config. */
Trace generateAzureTrace(const AzureModelConfig& config);

/**
 * Diurnal rate multiplier at time t for the given peak-to-mean ratio and
 * period: a raised sinusoid with mean 1 and peak `peak_to_mean`,
 * floored at zero. Exposed for tests and for the elastic-scaling bench.
 */
double diurnalMultiplier(TimeUs t, double peak_to_mean, TimeUs period_us);

}  // namespace faascache

#endif  // FAASCACHE_TRACE_AZURE_MODEL_H_

/**
 * @file
 * Streaming invocation cursors (DESIGN.md §4h).
 *
 * A Trace materializes its whole invocation stream as a resident
 * std::vector, which makes a 14-day Azure-scale trace RAM-bound before
 * it is CPU-bound. InvocationSource is the streaming alternative every
 * execution layer consumes: a forward cursor over a time-sorted
 * invocation stream plus the (small, always resident) function catalog.
 *
 * Three implementations exist, mirroring the repo's oracle strategy
 * (PoolBackend::ReferenceMap, PlatformBackend::Reference):
 *
 *  - TraceSource — wraps a materialized Trace verbatim; the reference
 *    oracle the differential battery compares the others against;
 *  - FtraceSource (ftrace_format.h) — memory-mapped columnar `.ftrace`
 *    file, O(chunk) resident regardless of trace length;
 *  - GeneratedSource (generated_source.h) — chunkless on-the-fly
 *    generation from azure_model/patterns via a k-way merge of
 *    per-function arrival streams.
 *
 * Cursor contract:
 *  - reset() rewinds to the first invocation; a source is constructed
 *    reset, and reset() may be called any number of times;
 *  - peek() reports the next invocation without consuming it; next()
 *    consumes it; both return false at end of stream;
 *  - the stream is non-decreasing in arrival_us and every function id
 *    is < functions().size() (implementations enforce this and throw
 *    std::runtime_error on violation);
 *  - countHint() is exact when `exact` is set, otherwise an upper
 *    bound; consumers may use it only to pre-size allocations — never
 *    to change results.
 */
#ifndef FAASCACHE_TRACE_INVOCATION_SOURCE_H_
#define FAASCACHE_TRACE_INVOCATION_SOURCE_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace faascache {

/** Allocation hint for the total number of invocations of a source. */
struct SourceCountHint
{
    /** Total invocations (exact) or an upper bound. */
    std::size_t count = 0;

    /** True when `count` is the exact stream length. */
    bool exact = false;
};

/** Forward cursor over a time-sorted invocation stream. */
class InvocationSource
{
  public:
    virtual ~InvocationSource() = default;

    /** Display name of the workload (used in bench output). */
    virtual const std::string& name() const = 0;

    /** Function catalog; dense ids, resident for the source's life. */
    virtual const std::vector<FunctionSpec>& functions() const = 0;

    /** Report the next invocation without consuming it.
     *  @return false at end of stream (`out` untouched). */
    virtual bool peek(Invocation& out) = 0;

    /** Consume and report the next invocation.
     *  @return false at end of stream (`out` untouched). */
    virtual bool next(Invocation& out) = 0;

    /** Rewind to the first invocation. */
    virtual void reset() = 0;

    /** Exact count or upper bound of the whole stream. */
    virtual SourceCountHint countHint() const = 0;

    /** Catalog lookup. @pre id < functions().size(). */
    const FunctionSpec& function(FunctionId id) const
    {
        return functions().at(id);
    }
};

/** The materialized-Trace reference oracle. Non-owning. */
class TraceSource final : public InvocationSource
{
  public:
    /** @param trace Must outlive the source. */
    explicit TraceSource(const Trace& trace) : trace_(&trace) {}

    const std::string& name() const override { return trace_->name(); }

    const std::vector<FunctionSpec>& functions() const override
    {
        return trace_->functions();
    }

    bool peek(Invocation& out) override
    {
        if (pos_ >= trace_->invocations().size())
            return false;
        out = trace_->invocations()[pos_];
        return true;
    }

    bool next(Invocation& out) override
    {
        if (pos_ >= trace_->invocations().size())
            return false;
        out = trace_->invocations()[pos_++];
        return true;
    }

    void reset() override { pos_ = 0; }

    SourceCountHint countHint() const override
    {
        return SourceCountHint{trace_->invocations().size(), true};
    }

  private:
    const Trace* trace_;
    std::size_t pos_ = 0;
};

/**
 * Pass-through wrapper that invokes an observer on every *consumed*
 * invocation (next(), not peek()). Lets a second consumer — e.g. the
 * elastic controller's online reuse analyzer — ride the simulator's
 * single pass instead of keeping its own cursor over a materialized
 * vector. Non-owning; the underlying source must outlive the tee.
 */
class TeeSource final : public InvocationSource
{
  public:
    using Observer = std::function<void(const Invocation&)>;

    TeeSource(InvocationSource& inner, Observer observer)
        : inner_(&inner), observer_(std::move(observer))
    {
    }

    const std::string& name() const override { return inner_->name(); }

    const std::vector<FunctionSpec>& functions() const override
    {
        return inner_->functions();
    }

    bool peek(Invocation& out) override { return inner_->peek(out); }

    bool next(Invocation& out) override
    {
        if (!inner_->next(out))
            return false;
        if (observer_)
            observer_(out);
        return true;
    }

    void reset() override { inner_->reset(); }

    SourceCountHint countHint() const override
    {
        return inner_->countHint();
    }

  private:
    InvocationSource* inner_;
    Observer observer_;
};

/**
 * Streaming analogue of Trace::subset(): filters a source down to the
 * selected functions with the identical dense id remap (duplicate keep
 * entries skipped, unknown ids throw std::out_of_range, invocation
 * order and timestamps preserved). Construction runs one counting pass
 * over the inner source so countHint() is exact. Non-owning.
 */
class SubsetSource final : public InvocationSource
{
  public:
    SubsetSource(InvocationSource& inner,
                 const std::vector<FunctionId>& keep, std::string name);

    const std::string& name() const override { return name_; }
    const std::vector<FunctionSpec>& functions() const override
    {
        return functions_;
    }
    bool peek(Invocation& out) override;
    bool next(Invocation& out) override;
    void reset() override { inner_->reset(); }
    SourceCountHint countHint() const override
    {
        return SourceCountHint{kept_invocations_, true};
    }

  private:
    /** Skip inner entries until a kept one is pending (or end). */
    bool settle(Invocation& out);

    InvocationSource* inner_;
    std::string name_;
    std::vector<FunctionSpec> functions_;
    std::vector<FunctionId> remap_;
    std::size_t kept_invocations_ = 0;
};

/**
 * Materialize a source into a Trace (the documented escape hatch for
 * consumers that genuinely need random access — e.g. the Reference
 * platform backend, which preschedules every arrival). Resets the
 * source before and after draining it.
 * @throws std::runtime_error when the stream violates the cursor
 *         contract (out-of-order arrivals, unknown function ids).
 */
Trace materializeSource(InvocationSource& source);

/**
 * Per-function invocation counts via one counting pass (the streaming
 * analogue of Trace::invocationCounts()). Resets the source before and
 * after the pass.
 */
std::vector<std::size_t> countInvocationsPerFunction(
    InvocationSource& source);

}  // namespace faascache

#endif  // FAASCACHE_TRACE_INVOCATION_SOURCE_H_

#include "trace/azure_dataset.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "util/csv.h"

namespace faascache {

namespace {

using Rows = std::vector<std::vector<std::string>>;

[[noreturn]] void
malformed(const std::string& what)
{
    throw std::runtime_error("adaptAzureDataset: " + what);
}

/** Index of a named column in the header row. */
std::size_t
columnOf(const std::vector<std::string>& header, const std::string& name)
{
    const auto it = std::find(header.begin(), header.end(), name);
    if (it == header.end())
        malformed("missing column '" + name + "'");
    return static_cast<std::size_t>(it - header.begin());
}

double
toDouble(const std::string& field, const char* context)
{
    try {
        std::size_t pos = 0;
        const double v = std::stod(field, &pos);
        if (pos != field.size())
            throw std::invalid_argument(field);
        return v;
    } catch (const std::exception&) {
        malformed(std::string("bad number in ") + context + ": '" + field +
                  "'");
    }
}

struct DurationInfo
{
    TimeUs warm_us;
    TimeUs cold_us;
};

}  // namespace

AzureDatasetResult
adaptAzureDataset(const AzureDatasetCsv& csv,
                  const AzureDatasetOptions& options)
{
    const Rows invocations = parseCsv(csv.invocations);
    const Rows durations = parseCsv(csv.durations);
    const Rows memory = parseCsv(csv.memory);
    if (invocations.empty() || durations.empty() || memory.empty())
        malformed("one of the dataset files is empty");

    // --- Durations: (owner|app|function) -> warm/cold times. The
    // dataset reports averages and maxima in milliseconds; cold-start
    // overhead is estimated as max - average (paper §7).
    std::unordered_map<std::string, DurationInfo> duration_of;
    {
        const auto& header = durations.front();
        const std::size_t owner = columnOf(header, "HashOwner");
        const std::size_t app = columnOf(header, "HashApp");
        const std::size_t function = columnOf(header, "HashFunction");
        const std::size_t average = columnOf(header, "Average");
        const std::size_t maximum = columnOf(header, "Maximum");
        for (std::size_t i = 1; i < durations.size(); ++i) {
            const auto& row = durations[i];
            if (row.size() <= std::max({owner, app, function, average,
                                        maximum})) {
                malformed("short duration row");
            }
            const double avg_ms = toDouble(row[average], "durations");
            const double max_ms = toDouble(row[maximum], "durations");
            DurationInfo info;
            info.warm_us = std::max<TimeUs>(kMillisecond,
                                            fromMillis(avg_ms));
            info.cold_us = info.warm_us +
                std::max<TimeUs>(0, fromMillis(max_ms - avg_ms));
            duration_of[row[owner] + "|" + row[app] + "|" + row[function]] =
                info;
        }
    }

    // --- Memory: (owner|app) -> average allocated MB for the app.
    std::unordered_map<std::string, double> app_memory;
    {
        const auto& header = memory.front();
        const std::size_t owner = columnOf(header, "HashOwner");
        const std::size_t app = columnOf(header, "HashApp");
        const std::size_t avg_mb = columnOf(header, "AverageAllocatedMb");
        for (std::size_t i = 1; i < memory.size(); ++i) {
            const auto& row = memory[i];
            if (row.size() <= std::max({owner, app, avg_mb}))
                malformed("short memory row");
            app_memory[row[owner] + "|" + row[app]] =
                toDouble(row[avg_mb], "memory");
        }
    }

    // --- Invocations: per function, 1440 minute buckets. First pass
    // counts the functions per app (to split the app memory), second
    // pass emits the trace.
    const auto& header = invocations.front();
    const std::size_t owner = columnOf(header, "HashOwner");
    const std::size_t app = columnOf(header, "HashApp");
    const std::size_t function = columnOf(header, "HashFunction");
    std::size_t first_minute = 0;
    for (std::size_t i = 0; i < header.size(); ++i) {
        if (header[i] == "1") {
            first_minute = i;
            break;
        }
    }
    if (first_minute == 0)
        malformed("invocation file has no minute columns");

    std::unordered_map<std::string, std::size_t> functions_per_app;
    for (std::size_t i = 1; i < invocations.size(); ++i) {
        const auto& row = invocations[i];
        if (row.size() <= first_minute)
            malformed("short invocation row");
        ++functions_per_app[row[owner] + "|" + row[app]];
    }

    AzureDatasetResult result;
    result.trace.setName(options.name);
    for (std::size_t i = 1; i < invocations.size(); ++i) {
        const auto& row = invocations[i];
        const std::string app_key = row[owner] + "|" + row[app];
        const std::string fn_key = app_key + "|" + row[function];

        const auto duration_it = duration_of.find(fn_key);
        if (duration_it == duration_of.end()) {
            ++result.skipped_no_duration;
            continue;
        }
        const auto memory_it = app_memory.find(app_key);
        if (memory_it == app_memory.end()) {
            ++result.skipped_no_memory;
            continue;
        }

        // Per-minute counts and total.
        std::vector<std::int64_t> counts;
        counts.reserve(row.size() - first_minute);
        std::int64_t total = 0;
        for (std::size_t m = first_minute; m < row.size(); ++m) {
            const auto count = static_cast<std::int64_t>(
                toDouble(row[m], "invocations"));
            counts.push_back(count);
            total += count;
        }
        if (total < static_cast<std::int64_t>(options.min_invocations)) {
            ++result.dropped_rare;
            continue;
        }

        // Memory: the app allocation split evenly across its functions.
        const double mem_mb = std::max(
            1.0, memory_it->second /
                static_cast<double>(functions_per_app[app_key]));

        FunctionSpec spec;
        spec.id = static_cast<FunctionId>(result.trace.functions().size());
        spec.name = fn_key;
        spec.mem_mb = mem_mb;
        spec.warm_us = duration_it->second.warm_us;
        spec.cold_us = duration_it->second.cold_us;
        result.trace.addFunction(std::move(spec));
        const FunctionId id =
            static_cast<FunctionId>(result.trace.functions().size() - 1);

        for (std::size_t m = 0; m < counts.size(); ++m) {
            const std::int64_t count = counts[m];
            if (count <= 0)
                continue;
            const TimeUs bucket_start =
                static_cast<TimeUs>(m) * kMinute;
            if (count == 1) {
                result.trace.addInvocation(id, bucket_start);
                continue;
            }
            const TimeUs spacing = kMinute / count;
            for (std::int64_t k = 0; k < count; ++k) {
                result.trace.addInvocation(id,
                                           bucket_start + k * spacing);
            }
        }
    }
    result.trace.sortInvocations();
    if (!result.trace.validate())
        malformed("adapted trace failed validation");
    return result;
}

namespace {

std::string
readFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("loadAzureDataset: cannot open " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

}  // namespace

AzureDatasetResult
loadAzureDataset(const std::string& invocations_path,
                 const std::string& durations_path,
                 const std::string& memory_path,
                 const AzureDatasetOptions& options)
{
    AzureDatasetCsv csv;
    csv.invocations = readFile(invocations_path);
    csv.durations = readFile(durations_path);
    csv.memory = readFile(memory_path);
    return adaptAzureDataset(csv, options);
}

}  // namespace faascache

#include "trace/patterns.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.h"

namespace faascache {

namespace {

Trace
catalogOnly(const std::vector<FunctionSpec>& specs, std::string name)
{
    Trace trace(std::move(name));
    trace.reserveFunctions(specs.size());
    for (const auto& spec : specs) {
        assert(spec.id == trace.functions().size());
        trace.addFunction(spec);
    }
    return trace;
}

/** Invocations a periodic stream of period `iat_us` starting at
 *  `phase_us` emits before `duration_us` (0 when it never fires). */
std::size_t
periodicCount(TimeUs phase_us, TimeUs iat_us, TimeUs duration_us)
{
    if (phase_us >= duration_us)
        return 0;
    return static_cast<std::size_t>(
        (duration_us - phase_us + iat_us - 1) / iat_us);
}

}  // namespace

Trace
makePeriodicTrace(const std::vector<FunctionSpec>& specs,
                  const std::vector<TimeUs>& iats_us, TimeUs duration_us,
                  std::string name)
{
    assert(specs.size() == iats_us.size());
    Trace trace = catalogOnly(specs, std::move(name));
    std::size_t total = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        assert(iats_us[i] > 0);
        total += periodicCount(static_cast<TimeUs>(i) * kMillisecond,
                               iats_us[i], duration_us);
    }
    trace.reserveInvocations(total);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const TimeUs phase = static_cast<TimeUs>(i) * kMillisecond;
        for (TimeUs t = phase; t < duration_us; t += iats_us[i])
            trace.addInvocation(static_cast<FunctionId>(i), t);
    }
    trace.sortInvocations();
    return trace;
}

Trace
makePoissonTrace(const std::vector<FunctionSpec>& specs,
                 const std::vector<TimeUs>& iats_us, TimeUs duration_us,
                 std::uint64_t seed, std::string name)
{
    assert(specs.size() == iats_us.size());
    Trace trace = catalogOnly(specs, std::move(name));
    double expected = 0.0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        assert(iats_us[i] > 0);
        expected += static_cast<double>(duration_us) /
                    static_cast<double>(iats_us[i]);
    }
    // Mean arrival count plus three standard deviations of Poisson
    // spread, so reallocation is a tail event rather than the norm.
    trace.reserveInvocations(
        static_cast<std::size_t>(expected + 3.0 * std::sqrt(expected)));
    Rng rng(seed);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        Rng fn_rng = rng.split();
        const double mean = static_cast<double>(iats_us[i]);
        TimeUs t = static_cast<TimeUs>(fn_rng.exponential(mean));
        while (t < duration_us) {
            trace.addInvocation(static_cast<FunctionId>(i), t);
            t += static_cast<TimeUs>(fn_rng.exponential(mean));
        }
    }
    trace.sortInvocations();
    return trace;
}

Trace
makeCyclicTrace(const std::vector<FunctionSpec>& specs, TimeUs gap_us,
                TimeUs duration_us, std::string name)
{
    assert(gap_us > 0);
    assert(!specs.empty());
    Trace trace = catalogOnly(specs, std::move(name));
    trace.reserveInvocations(periodicCount(0, gap_us, duration_us));
    std::size_t next = 0;
    for (TimeUs t = 0; t < duration_us; t += gap_us) {
        trace.addInvocation(static_cast<FunctionId>(next), t);
        next = (next + 1) % specs.size();
    }
    return trace;
}

Trace
makeSkewedSizeTrace(const std::vector<FunctionSpec>& specs,
                    TimeUs small_iat_us, TimeUs large_iat_us,
                    TimeUs duration_us, std::string name)
{
    assert(!specs.empty());
    std::vector<MemMb> sizes;
    sizes.reserve(specs.size());
    for (const auto& spec : specs)
        sizes.push_back(spec.mem_mb);
    std::nth_element(sizes.begin(), sizes.begin() + sizes.size() / 2,
                     sizes.end());
    const MemMb median = sizes[sizes.size() / 2];

    std::vector<TimeUs> iats;
    iats.reserve(specs.size());
    for (const auto& spec : specs)
        iats.push_back(spec.mem_mb < median ? small_iat_us : large_iat_us);
    return makePeriodicTrace(specs, iats, duration_us, std::move(name));
}

}  // namespace faascache

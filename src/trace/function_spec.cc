#include "trace/function_spec.h"

namespace faascache {

bool
FunctionSpec::valid() const
{
    return id != kInvalidFunction && mem_mb > 0 && warm_us > 0 &&
        cold_us >= warm_us;
}

FunctionSpec
makeFunction(FunctionId id, std::string name, MemMb mem_mb, TimeUs warm_us,
             TimeUs init_us)
{
    FunctionSpec spec;
    spec.id = id;
    spec.name = std::move(name);
    spec.mem_mb = mem_mb;
    spec.warm_us = warm_us;
    spec.cold_us = warm_us + init_us;
    return spec;
}

}  // namespace faascache

#include "trace/invocation_source.h"

#include <stdexcept>
#include <string>

namespace faascache {

SubsetSource::SubsetSource(InvocationSource& inner,
                           const std::vector<FunctionId>& keep,
                           std::string name)
    : inner_(&inner), name_(std::move(name))
{
    // Identical remap construction to Trace::subset().
    remap_.assign(inner_->functions().size(), kInvalidFunction);
    functions_.reserve(keep.size());
    for (FunctionId old_id : keep) {
        if (old_id >= remap_.size())
            throw std::out_of_range("SubsetSource: unknown function id");
        if (remap_[old_id] != kInvalidFunction)
            continue;  // duplicate keep entry
        const auto new_id = static_cast<FunctionId>(functions_.size());
        remap_[old_id] = new_id;
        FunctionSpec spec = inner_->functions()[old_id];
        spec.id = new_id;
        functions_.push_back(std::move(spec));
    }
    // Counting pass for an exact hint.
    inner_->reset();
    Invocation inv;
    while (inner_->next(inv)) {
        if (inv.function >= remap_.size())
            throw std::runtime_error(
                "SubsetSource: inner function id out of range");
        if (remap_[inv.function] != kInvalidFunction)
            ++kept_invocations_;
    }
    inner_->reset();
}

bool SubsetSource::settle(Invocation& out)
{
    while (inner_->peek(out)) {
        if (out.function < remap_.size() &&
            remap_[out.function] != kInvalidFunction)
            return true;
        Invocation discard;
        inner_->next(discard);
    }
    return false;
}

bool SubsetSource::peek(Invocation& out)
{
    if (!settle(out))
        return false;
    out.function = remap_[out.function];
    return true;
}

bool SubsetSource::next(Invocation& out)
{
    if (!settle(out))
        return false;
    Invocation consumed;
    inner_->next(consumed);
    out.function = remap_[consumed.function];
    out.arrival_us = consumed.arrival_us;
    return true;
}

Trace materializeSource(InvocationSource& source)
{
    source.reset();
    Trace out(source.name());
    for (const FunctionSpec& fn : source.functions())
        out.addFunction(fn);

    const SourceCountHint hint = source.countHint();
    out.reserveInvocations(hint.count);

    const std::size_t nfuncs = source.functions().size();
    TimeUs prev = 0;
    bool first = true;
    Invocation inv;
    while (source.next(inv)) {
        if (inv.function >= nfuncs)
            throw std::runtime_error(
                "materializeSource: function id " +
                std::to_string(inv.function) + " out of range (catalog " +
                std::to_string(nfuncs) + ")");
        if (!first && inv.arrival_us < prev)
            throw std::runtime_error(
                "materializeSource: arrivals out of order (" +
                std::to_string(inv.arrival_us) + " after " +
                std::to_string(prev) + ")");
        prev = inv.arrival_us;
        first = false;
        out.addInvocation(inv.function, inv.arrival_us);
    }
    source.reset();
    return out;
}

std::vector<std::size_t> countInvocationsPerFunction(
    InvocationSource& source)
{
    source.reset();
    std::vector<std::size_t> counts(source.functions().size(), 0);
    Invocation inv;
    while (source.next(inv)) {
        if (inv.function >= counts.size())
            throw std::runtime_error(
                "countInvocationsPerFunction: function id " +
                std::to_string(inv.function) + " out of range");
        ++counts[inv.function];
    }
    source.reset();
    return counts;
}

}  // namespace faascache

/**
 * @file
 * On-the-fly streaming generation of the synthetic workloads
 * (DESIGN.md §4h).
 *
 * The materialized generators (patterns.h, azure_model.h) append each
 * function's chronological arrival stream in function-id order and
 * then stable_sort by arrival time alone, so the final order at equal
 * timestamps is exactly (arrival_us, function_id, within-function
 * order). A k-way min-heap merge over per-function streams keyed on
 * (arrival_us, stream_index) — holding at most one pending entry per
 * stream — reproduces that order without ever materializing the
 * invocation vector, and each stream replays the materialized path's
 * per-function RNG (`rng.split()` consumed in function-id order), so
 * the produced invocation sequence is byte-identical to the Trace the
 * eager generator builds. Peak memory is O(functions), not
 * O(invocations).
 *
 * Stochastic generators run a counting pre-pass at construction (same
 * replay, counts only), so every source here reports an exact
 * countHint() and the Azure model's drop-single-invocation-functions
 * filter knows its dense remap up front.
 */
#ifndef FAASCACHE_TRACE_GENERATED_SOURCE_H_
#define FAASCACHE_TRACE_GENERATED_SOURCE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "trace/azure_model.h"
#include "trace/invocation_source.h"

namespace faascache {

/**
 * Base of the merged per-function-stream sources: owns the catalog,
 * the (arrival, stream) min-heap, and the cursor plumbing. Subclasses
 * provide the per-stream arrival generators.
 */
class GeneratedSource : public InvocationSource
{
  public:
    const std::string& name() const override { return name_; }
    const std::vector<FunctionSpec>& functions() const override
    {
        return functions_;
    }
    bool peek(Invocation& out) override;
    bool next(Invocation& out) override;
    void reset() override;
    SourceCountHint countHint() const override
    {
        return SourceCountHint{total_count_, true};
    }

  protected:
    GeneratedSource(std::string name, std::vector<FunctionSpec> functions)
        : name_(std::move(name)), functions_(std::move(functions))
    {
    }

    /** Number of generator streams (pre-filter function count). */
    virtual std::size_t streamCount() const = 0;

    /** Recreate all per-stream states from the seed. */
    virtual void rewindStreams() = 0;

    /** Next chronological arrival of stream `i`; false when drained. */
    virtual bool streamNext(std::size_t i, TimeUs& out) = 0;

    /** False for streams filtered out (e.g. dropped single-invocation
     *  functions); their RNG state is still created in order. */
    virtual bool streamEmits(std::size_t) const { return true; }

    /** Output function id of stream `i` (dense remap post-filter). */
    virtual FunctionId streamFunction(std::size_t i) const
    {
        return static_cast<FunctionId>(i);
    }

    /** Exact total invocation count (set once by the subclass ctor). */
    void setTotalCount(std::size_t n) { total_count_ = n; }

    /** Replace the catalog (for subclasses whose filtered catalog is
     *  only known after their counting pre-pass). */
    void setFunctions(std::vector<FunctionSpec> functions)
    {
        functions_ = std::move(functions);
    }

  private:
    void primeIfNeeded();

    using HeapEntry = std::pair<TimeUs, std::uint32_t>;

    std::string name_;
    std::vector<FunctionSpec> functions_;
    std::size_t total_count_ = 0;
    bool primed_ = false;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>>
        heap_;
};

/** Streaming equivalent of makePeriodicTrace(). */
std::unique_ptr<InvocationSource> makePeriodicSource(
    std::vector<FunctionSpec> specs, std::vector<TimeUs> iats_us,
    TimeUs duration_us, std::string name);

/** Streaming equivalent of makePoissonTrace(). */
std::unique_ptr<InvocationSource> makePoissonSource(
    std::vector<FunctionSpec> specs, std::vector<TimeUs> iats_us,
    TimeUs duration_us, std::uint64_t seed, std::string name);

/** Streaming equivalent of makeCyclicTrace(). */
std::unique_ptr<InvocationSource> makeCyclicSource(
    std::vector<FunctionSpec> specs, TimeUs gap_us, TimeUs duration_us,
    std::string name);

/** Streaming equivalent of makeSkewedSizeTrace(). */
std::unique_ptr<InvocationSource> makeSkewedSizeSource(
    std::vector<FunctionSpec> specs, TimeUs small_iat_us,
    TimeUs large_iat_us, TimeUs duration_us, std::string name);

/** Streaming equivalent of generateAzureTrace(). */
std::unique_ptr<InvocationSource> makeAzureSource(
    const AzureModelConfig& config);

/**
 * Partitioned streaming Azure workload. Identical catalog, RNG replay,
 * and per-function arrival streams as makeAzureSource(config), but the
 * merge only emits invocations whose output function id — the dense
 * post-filter id every consumer sees — satisfies `keep`. The full
 * catalog is retained so ids stay catalog-global, every per-function
 * RNG is still consumed in id order (so arrivals are byte-identical to
 * the unpartitioned stream), and countHint() is the exact count of the
 * partition. Disjoint keep predicates covering the id space therefore
 * partition the full stream: merging the partitions by (arrival_us,
 * function order) reproduces makeAzureSource(config) exactly. This is
 * the per-shard generation hook for the sharded cluster: with the
 * FunctionHash balancer each shard generates only its own servers'
 * functions instead of filtering the full interleave.
 */
std::unique_ptr<InvocationSource> makeAzureSource(
    const AzureModelConfig& config,
    std::function<bool(FunctionId)> keep);

}  // namespace faascache

#endif  // FAASCACHE_TRACE_GENERATED_SOURCE_H_

/**
 * @file
 * Compiled columnar `.ftrace` trace files (DESIGN.md §4h).
 *
 * On-disk layout (all integers little-endian, doubles stored as their
 * raw IEEE-754 bit pattern, so round-trips are bit-exact):
 *
 *   [64-byte header]
 *     magic           4 B  "FTRC"
 *     endianness      u32  0x01020304 as written by the producer; a
 *                          reader on the other endianness sees
 *                          0x04030201 and rejects the file
 *     version         u32  1
 *     chunk_capacity  u32  invocations per chunk (default 4096)
 *     name_bytes      u32  length of the trace name
 *     reserved        u32  zero
 *     num_functions   u64
 *     num_invocations u64
 *     num_chunks      u64  == ceil(num_invocations / chunk_capacity)
 *     fn_table_bytes  u64  serialized function-table length
 *     header_checksum u64  fnv1a64 over the preceding 56 bytes
 *   [trace name        name_bytes]
 *   [function table    fn_table_bytes]   per function: name_len u32,
 *                          name, mem_mb/cpu_units/io_units f64,
 *                          warm_us/cold_us i64
 *   [fn_table_checksum u64]              fnv1a64 over the table bytes
 *   [chunk 0] ... [chunk num_chunks-1]   fixed stride:
 *     count           u32  live entries (== capacity except the last)
 *     pad             u32  zero
 *     arrival_us      i64 × capacity     (column; unused slots zero)
 *     function        u32 × capacity     (column; unused slots zero)
 *     chunk_checksum  u64  fnv1a64 over the preceding stride-8 bytes
 *
 * The reader validates header fields, the function table, and the
 * total file size eagerly at open (named-field errors), and each
 * chunk's checksum/count/sortedness lazily on first touch, so opening
 * a multi-GB file stays O(catalog). Consumed chunks are released back
 * to the kernel with madvise(MADV_DONTNEED), keeping peak RSS at
 * O(chunk) no matter the trace length.
 */
#ifndef FAASCACHE_TRACE_FTRACE_FORMAT_H_
#define FAASCACHE_TRACE_FTRACE_FORMAT_H_

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "trace/invocation_source.h"
#include "trace/trace.h"

namespace faascache {

/** `.ftrace` format constants shared by writer, reader, and tests. */
namespace ftrace {

inline constexpr char kMagic[4] = {'F', 'T', 'R', 'C'};
inline constexpr std::uint32_t kEndianness = 0x01020304u;
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::uint32_t kDefaultChunkCapacity = 4096;
/** Upper bound on chunk_capacity a reader will accept (guards
 *  stride-overflow on hostile headers). */
inline constexpr std::uint32_t kMaxChunkCapacity = 1u << 22;
inline constexpr std::size_t kHeaderBytes = 64;

/** Bytes of one chunk for a given capacity (count+pad+columns+checksum). */
constexpr std::size_t chunkStride(std::uint32_t capacity)
{
    return 8 + std::size_t{capacity} * 12 + 8;
}

}  // namespace ftrace

/**
 * Streaming `.ftrace` writer: catalog up front, invocations appended
 * in time order, finish() seals the file (back-patches the header with
 * the final counts). A writer that is destroyed without finish()
 * leaves a file that readers reject (zeroed header checksum).
 */
class FtraceWriter
{
  public:
    /**
     * Opens `path` for writing and emits the provisional header, name,
     * and function table.
     * @throws std::runtime_error on IO failure or invalid catalog.
     */
    FtraceWriter(const std::string& path, std::string name,
                 std::vector<FunctionSpec> functions,
                 std::uint32_t chunk_capacity =
                     ftrace::kDefaultChunkCapacity);

    FtraceWriter(const FtraceWriter&) = delete;
    FtraceWriter& operator=(const FtraceWriter&) = delete;

    /**
     * Append one invocation.
     * @throws std::runtime_error on out-of-order arrival, unknown
     *         function id, or append after finish().
     */
    void append(const Invocation& inv);

    /** Flush the tail chunk and back-patch the header. Idempotent. */
    void finish();

    std::size_t appended() const { return appended_; }

  private:
    void flushChunk();

    std::string path_;
    std::ofstream out_;
    std::uint32_t chunk_capacity_;
    std::size_t num_functions_;
    std::size_t name_bytes_cache_ = 0;
    std::size_t fn_table_bytes_cache_ = 0;
    std::size_t appended_ = 0;
    std::uint64_t num_chunks_ = 0;
    TimeUs prev_arrival_ = 0;
    bool finished_ = false;
    /** Buffered chunk: parallel columns, flushed when full. */
    std::vector<TimeUs> arrivals_;
    std::vector<FunctionId> funcs_;
};

/**
 * Compile an entire source to `path` in one pass (resets the source
 * before and after).
 * @return number of invocations written.
 */
std::size_t writeFtraceFile(const std::string& path,
                            InvocationSource& source,
                            std::uint32_t chunk_capacity =
                                ftrace::kDefaultChunkCapacity);

class FtraceCursor;

/**
 * One process-shared memory mapping of a `.ftrace` file plus every
 * piece of per-file state that consumers can share: the validated
 * catalog, the lazy chunk-verification watermark, and the registry of
 * active cursors.
 *
 * open() hands out the same region for the same path (a process-wide
 * weak registry keyed by the path string), so N shards streaming the
 * same trace touch one mapping instead of N — the file is opened and
 * mmapped once per process, and its pages are shared by every cursor.
 *
 * Header, name, function table, and file size are validated eagerly in
 * open(); chunk payloads are checksum-verified lazily on first touch
 * (lock-free fast path for already-verified chunks, a mutex serializes
 * first-touch verification, so concurrent cursors are safe). A chunk
 * is released back to the kernel with madvise(MADV_DONTNEED) only once
 * EVERY registered cursor has streamed past it — the minimum cursor
 * position gates the release watermark — keeping peak RSS at O(chunk)
 * for a fleet of shard cursors no matter the trace length.
 *
 * All failures throw std::runtime_error with messages of the form
 * "ftrace: <path>: <field>: <problem>".
 */
class FtraceRegion : public std::enable_shared_from_this<FtraceRegion>
{
  public:
    /** Shared handle to the process-wide region for `path` (creates and
     *  validates it on first open; later opens reuse the live mapping).
     *  The registry key is the path string as given. */
    static std::shared_ptr<FtraceRegion> open(const std::string& path);

    ~FtraceRegion();

    FtraceRegion(const FtraceRegion&) = delete;
    FtraceRegion& operator=(const FtraceRegion&) = delete;

    const std::string& path() const { return path_; }
    const std::string& name() const { return name_; }
    const std::vector<FunctionSpec>& functions() const
    {
        return functions_;
    }
    std::uint32_t chunkCapacity() const { return chunk_capacity_; }
    std::uint64_t numChunks() const { return num_chunks_; }
    std::uint64_t numInvocations() const { return num_invocations_; }

    /** New independent cursor at position 0 over this mapping. */
    std::unique_ptr<FtraceCursor> makeCursor();

  private:
    friend class FtraceCursor;

    explicit FtraceRegion(const std::string& path);

    [[noreturn]] void fail(const std::string& field,
                           const std::string& problem) const;
    /** Validate chunks [verified, chunk] (thread-safe, lazy). */
    void touchChunk(std::uint64_t chunk);
    /** Row `pos` of the columns; false past the end. */
    bool load(std::uint64_t pos, Invocation& out);
    /** Release chunks every registered cursor has passed. */
    void releaseConsumed();
    void registerCursor(const FtraceCursor* cursor);
    void unregisterCursor(const FtraceCursor* cursor);

    std::string path_;
    std::string name_;
    std::vector<FunctionSpec> functions_;
    const unsigned char* map_ = nullptr;
    std::size_t map_bytes_ = 0;
    std::size_t chunks_off_ = 0;
    std::uint32_t chunk_capacity_ = 0;
    std::uint64_t num_invocations_ = 0;
    std::uint64_t num_chunks_ = 0;

    /** Chunks [0, verified_chunks_) passed checksum/count/sortedness.
     *  Atomic so concurrent cursors skip the mutex once verified. */
    std::atomic<std::uint64_t> verified_chunks_{0};
    /** Serializes first-touch verification; guards the tail arrival. */
    std::mutex verify_mutex_;
    /** Arrival at the end of the last verified chunk (cross-chunk
     *  sortedness check); guarded by verify_mutex_. */
    TimeUs verified_tail_arrival_ = 0;

    /** Guards the cursor registry and the release watermark. */
    std::mutex cursors_mutex_;
    std::vector<const FtraceCursor*> cursors_;
    /** Chunks [0, released_chunks_) have been madvised away. */
    std::uint64_t released_chunks_ = 0;
};

/**
 * One streaming position over a shared FtraceRegion. Cheap to create —
 * no file open, no re-validation — and safe to drive from its own
 * thread concurrently with other cursors on the same region (this is
 * how the sharded cluster fans one mapping out to N shard threads).
 * Keeps the region alive; registers itself so the region's release
 * watermark never overtakes it.
 */
class FtraceCursor final : public InvocationSource
{
  public:
    explicit FtraceCursor(std::shared_ptr<FtraceRegion> region);
    ~FtraceCursor() override;

    FtraceCursor(const FtraceCursor&) = delete;
    FtraceCursor& operator=(const FtraceCursor&) = delete;

    const std::string& name() const override { return region_->name(); }
    const std::vector<FunctionSpec>& functions() const override
    {
        return region_->functions();
    }
    bool peek(Invocation& out) override;
    bool next(Invocation& out) override;
    void reset() override;
    SourceCountHint countHint() const override
    {
        return SourceCountHint{region_->numInvocations(), true};
    }

  private:
    friend class FtraceRegion;

    std::shared_ptr<FtraceRegion> region_;
    /** Atomic: read by the region's release scan from other threads. */
    std::atomic<std::uint64_t> pos_{0};
};

/**
 * Memory-mapped streaming reader over a `.ftrace` file: a facade over
 * FtraceRegion::open() + one FtraceCursor, preserving the historical
 * single-object API. Constructing several FtraceSources for the same
 * path shares one mapping (they are independent cursors over the same
 * FtraceRegion); validation errors are unchanged,
 * "ftrace: <path>: <field>: <problem>".
 */
class FtraceSource final : public InvocationSource
{
  public:
    explicit FtraceSource(const std::string& path);

    FtraceSource(const FtraceSource&) = delete;
    FtraceSource& operator=(const FtraceSource&) = delete;

    const std::string& name() const override { return cursor_->name(); }
    const std::vector<FunctionSpec>& functions() const override
    {
        return cursor_->functions();
    }
    bool peek(Invocation& out) override { return cursor_->peek(out); }
    bool next(Invocation& out) override { return cursor_->next(out); }
    void reset() override { cursor_->reset(); }
    SourceCountHint countHint() const override
    {
        return cursor_->countHint();
    }

    std::uint32_t chunkCapacity() const
    {
        return region_->chunkCapacity();
    }
    std::uint64_t numChunks() const { return region_->numChunks(); }

    /** The shared mapping backing this source (for fan-out: hand the
     *  region to ShardedWorkload factories instead of reopening). */
    const std::shared_ptr<FtraceRegion>& region() const { return region_; }

  private:
    std::shared_ptr<FtraceRegion> region_;
    std::unique_ptr<FtraceCursor> cursor_;
};

}  // namespace faascache

#endif  // FAASCACHE_TRACE_FTRACE_FORMAT_H_

/**
 * @file
 * Compiled columnar `.ftrace` trace files (DESIGN.md §4h).
 *
 * On-disk layout (all integers little-endian, doubles stored as their
 * raw IEEE-754 bit pattern, so round-trips are bit-exact):
 *
 *   [64-byte header]
 *     magic           4 B  "FTRC"
 *     endianness      u32  0x01020304 as written by the producer; a
 *                          reader on the other endianness sees
 *                          0x04030201 and rejects the file
 *     version         u32  1
 *     chunk_capacity  u32  invocations per chunk (default 4096)
 *     name_bytes      u32  length of the trace name
 *     reserved        u32  zero
 *     num_functions   u64
 *     num_invocations u64
 *     num_chunks      u64  == ceil(num_invocations / chunk_capacity)
 *     fn_table_bytes  u64  serialized function-table length
 *     header_checksum u64  fnv1a64 over the preceding 56 bytes
 *   [trace name        name_bytes]
 *   [function table    fn_table_bytes]   per function: name_len u32,
 *                          name, mem_mb/cpu_units/io_units f64,
 *                          warm_us/cold_us i64
 *   [fn_table_checksum u64]              fnv1a64 over the table bytes
 *   [chunk 0] ... [chunk num_chunks-1]   fixed stride:
 *     count           u32  live entries (== capacity except the last)
 *     pad             u32  zero
 *     arrival_us      i64 × capacity     (column; unused slots zero)
 *     function        u32 × capacity     (column; unused slots zero)
 *     chunk_checksum  u64  fnv1a64 over the preceding stride-8 bytes
 *
 * The reader validates header fields, the function table, and the
 * total file size eagerly at open (named-field errors), and each
 * chunk's checksum/count/sortedness lazily on first touch, so opening
 * a multi-GB file stays O(catalog). Consumed chunks are released back
 * to the kernel with madvise(MADV_DONTNEED), keeping peak RSS at
 * O(chunk) no matter the trace length.
 */
#ifndef FAASCACHE_TRACE_FTRACE_FORMAT_H_
#define FAASCACHE_TRACE_FTRACE_FORMAT_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "trace/invocation_source.h"
#include "trace/trace.h"

namespace faascache {

/** `.ftrace` format constants shared by writer, reader, and tests. */
namespace ftrace {

inline constexpr char kMagic[4] = {'F', 'T', 'R', 'C'};
inline constexpr std::uint32_t kEndianness = 0x01020304u;
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::uint32_t kDefaultChunkCapacity = 4096;
/** Upper bound on chunk_capacity a reader will accept (guards
 *  stride-overflow on hostile headers). */
inline constexpr std::uint32_t kMaxChunkCapacity = 1u << 22;
inline constexpr std::size_t kHeaderBytes = 64;

/** Bytes of one chunk for a given capacity (count+pad+columns+checksum). */
constexpr std::size_t chunkStride(std::uint32_t capacity)
{
    return 8 + std::size_t{capacity} * 12 + 8;
}

}  // namespace ftrace

/**
 * Streaming `.ftrace` writer: catalog up front, invocations appended
 * in time order, finish() seals the file (back-patches the header with
 * the final counts). A writer that is destroyed without finish()
 * leaves a file that readers reject (zeroed header checksum).
 */
class FtraceWriter
{
  public:
    /**
     * Opens `path` for writing and emits the provisional header, name,
     * and function table.
     * @throws std::runtime_error on IO failure or invalid catalog.
     */
    FtraceWriter(const std::string& path, std::string name,
                 std::vector<FunctionSpec> functions,
                 std::uint32_t chunk_capacity =
                     ftrace::kDefaultChunkCapacity);

    FtraceWriter(const FtraceWriter&) = delete;
    FtraceWriter& operator=(const FtraceWriter&) = delete;

    /**
     * Append one invocation.
     * @throws std::runtime_error on out-of-order arrival, unknown
     *         function id, or append after finish().
     */
    void append(const Invocation& inv);

    /** Flush the tail chunk and back-patch the header. Idempotent. */
    void finish();

    std::size_t appended() const { return appended_; }

  private:
    void flushChunk();

    std::string path_;
    std::ofstream out_;
    std::uint32_t chunk_capacity_;
    std::size_t num_functions_;
    std::size_t name_bytes_cache_ = 0;
    std::size_t fn_table_bytes_cache_ = 0;
    std::size_t appended_ = 0;
    std::uint64_t num_chunks_ = 0;
    TimeUs prev_arrival_ = 0;
    bool finished_ = false;
    /** Buffered chunk: parallel columns, flushed when full. */
    std::vector<TimeUs> arrivals_;
    std::vector<FunctionId> funcs_;
};

/**
 * Compile an entire source to `path` in one pass (resets the source
 * before and after).
 * @return number of invocations written.
 */
std::size_t writeFtraceFile(const std::string& path,
                            InvocationSource& source,
                            std::uint32_t chunk_capacity =
                                ftrace::kDefaultChunkCapacity);

/**
 * Memory-mapped streaming reader over a `.ftrace` file.
 *
 * Header, name, function table, and file size are validated in the
 * constructor; chunk payloads are checksum-verified lazily on first
 * touch and released with madvise(MADV_DONTNEED) once consumed.
 * All failures throw std::runtime_error with messages of the form
 * "ftrace: <path>: <field>: <problem>".
 */
class FtraceSource final : public InvocationSource
{
  public:
    explicit FtraceSource(const std::string& path);
    ~FtraceSource() override;

    FtraceSource(const FtraceSource&) = delete;
    FtraceSource& operator=(const FtraceSource&) = delete;

    const std::string& name() const override { return name_; }
    const std::vector<FunctionSpec>& functions() const override
    {
        return functions_;
    }
    bool peek(Invocation& out) override;
    bool next(Invocation& out) override;
    void reset() override;
    SourceCountHint countHint() const override
    {
        return SourceCountHint{num_invocations_, true};
    }

    std::uint32_t chunkCapacity() const { return chunk_capacity_; }
    std::uint64_t numChunks() const { return num_chunks_; }

  private:
    [[noreturn]] void fail(const std::string& field,
                           const std::string& problem) const;
    /** Validate + cache the chunk containing global index `pos`. */
    void touchChunk(std::uint64_t chunk);
    bool load(std::uint64_t pos, Invocation& out);

    std::string path_;
    std::string name_;
    std::vector<FunctionSpec> functions_;
    const unsigned char* map_ = nullptr;
    std::size_t map_bytes_ = 0;
    std::size_t chunks_off_ = 0;
    std::uint32_t chunk_capacity_ = 0;
    std::uint64_t num_invocations_ = 0;
    std::uint64_t num_chunks_ = 0;
    std::uint64_t pos_ = 0;
    /** Chunks [0, verified_chunks_) passed checksum/count/sortedness. */
    std::uint64_t verified_chunks_ = 0;
    /** Arrival at the end of the last verified chunk (cross-chunk
     *  sortedness check). */
    TimeUs verified_tail_arrival_ = 0;
};

}  // namespace faascache

#endif  // FAASCACHE_TRACE_FTRACE_FORMAT_H_

#include "core/histogram_policy.h"

#include <algorithm>
#include <cassert>

namespace faascache {

HistogramPolicy::HistogramPolicy(HistogramPolicyConfig config)
    : config_(config)
{
    assert(config.bucket_width_us > 0);
    assert(config.num_buckets > 0);
}

void
HistogramPolicy::reserveFunctions(std::size_t n)
{
    KeepAlivePolicy::reserveFunctions(n);
    models_.reserve(n);
}

HistogramPolicy::FunctionModel&
HistogramPolicy::modelOf(FunctionId function)
{
    if (function >= models_.size()) {
        models_.resize(std::max<std::size_t>(
            static_cast<std::size_t>(function) + 1, models_.size() * 2));
    }
    if (!models_[function].has_value())
        models_[function].emplace(config_);
    return *models_[function];
}

void
HistogramPolicy::setLease(const Container& container, TimeUs deadline)
{
    const std::uint32_t slot = container.poolSlot();
    if (slot >= leases_.size()) {
        leases_.resize(std::max<std::size_t>(
            static_cast<std::size_t>(slot) + 1, leases_.size() * 2));
    }
    leases_[slot] = Lease{container.id(), deadline};
}

KeepAliveWindow
HistogramPolicy::windowFor(FunctionId function) const
{
    KeepAliveWindow window;
    window.keepalive_us = config_.generic_ttl_us;

    if (function >= models_.size() || !models_[function].has_value())
        return window;
    const FunctionModel& model = *models_[function];
    if (model.iat_moments.count() < config_.min_samples)
        return window;
    if (model.iat_moments.coefficientOfVariation() > config_.cov_threshold)
        return window;
    if (model.iat_histogram.overflowFraction() >
        config_.max_out_of_bounds_fraction) {
        return window;
    }

    window.predictable = true;
    // The head must be *early*: take the lower edge of the head
    // percentile's bucket (the percentile query returns the upper
    // edge, which would schedule the prewarm after the arrival it is
    // meant to anticipate).
    const double head_upper =
        model.iat_histogram.percentile(config_.head_percentile);
    const double head =
        std::max(0.0,
                 head_upper - static_cast<double>(config_.bucket_width_us)) *
        config_.head_margin;
    const double tail =
        model.iat_histogram.percentile(config_.tail_percentile) *
        config_.tail_margin;
    TimeUs prewarm = static_cast<TimeUs>(head);
    auto keepalive = static_cast<TimeUs>(tail);
    if (prewarm < config_.prewarm_min_us)
        prewarm = 0;  // too soon to bother unloading: just stay warm
    keepalive = std::max(keepalive, prewarm + config_.bucket_width_us);
    window.prewarm_us = prewarm;
    window.keepalive_us = keepalive;
    return window;
}

void
HistogramPolicy::onInvocationArrival(const FunctionSpec& function, TimeUs now)
{
    KeepAlivePolicy::onInvocationArrival(function, now);
    FunctionModel& model = modelOf(function.id);
    if (model.last_arrival_us >= 0) {
        const auto iat = static_cast<double>(now - model.last_arrival_us);
        model.iat_histogram.add(iat);
        model.iat_moments.add(iat);
    }
    model.last_arrival_us = now;

    // Plan the next prewarm from this arrival, if the function is
    // predictable and its head is far enough away to unload meanwhile.
    const KeepAliveWindow window = windowFor(function.id);
    if (window.predictable && window.prewarm_us > 0)
        prewarm_schedule_.push({now + window.prewarm_us, function.id});
}

void
HistogramPolicy::assignExpiry(Container& container, FunctionId function,
                              TimeUs now)
{
    const KeepAliveWindow window = windowFor(function);
    if (window.predictable && window.prewarm_us > 0) {
        // Release as soon as the execution finishes; the scheduled
        // prewarm will bring a container back shortly before the
        // predicted next invocation.
        setLease(container, now);
    } else {
        setLease(container, now + window.keepalive_us);
    }
}

void
HistogramPolicy::onWarmStart(Container& container,
                             const FunctionSpec& function, TimeUs now)
{
    assignExpiry(container, function.id, now);
}

void
HistogramPolicy::onColdStart(Container& container,
                             const FunctionSpec& function, TimeUs now)
{
    assignExpiry(container, function.id, now);
}

void
HistogramPolicy::onPrewarm(Container& container, const FunctionSpec& function,
                           TimeUs now)
{
    // Keep the prewarmed container until the predicted tail, measured
    // from the arrival that scheduled the prewarm. `now` is the prewarm
    // (head) instant, so the remaining lease is tail - head.
    const KeepAliveWindow window = windowFor(function.id);
    const TimeUs lease = window.predictable
        ? std::max<TimeUs>(window.keepalive_us - window.prewarm_us,
                           config_.bucket_width_us)
        : config_.generic_ttl_us;
    setLease(container, now + lease);
}

void
HistogramPolicy::onEviction(const Container& container, bool last_of_function,
                            TimeUs now)
{
    KeepAlivePolicy::onEviction(container, last_of_function, now);
    const std::uint32_t slot = container.poolSlot();
    if (slot < leases_.size() && leases_[slot].id == container.id())
        leases_[slot] = Lease{};
}

std::vector<ContainerId>
HistogramPolicy::selectVictims(ContainerPool& pool, MemMb needed_mb, TimeUs)
{
    return selectAscending(pool, needed_mb,
                           [](const Container& a, const Container& b) {
                               if (a.lastUsed() != b.lastUsed())
                                   return a.lastUsed() < b.lastUsed();
                               return a.id() < b.id();
                           });
}

std::vector<ContainerId>
HistogramPolicy::expiredContainers(const ContainerPool& pool, TimeUs now)
{
    std::vector<ContainerId> expired;
    pool.forEach([&](const Container& c) {
        if (!c.idle())
            return;
        const std::uint32_t slot = c.poolSlot();
        const bool leased =
            slot < leases_.size() && leases_[slot].id == c.id();
        const TimeUs deadline = leased
            ? leases_[slot].deadline_us
            : c.lastUsed() + config_.generic_ttl_us;
        if (now >= deadline)
            expired.push_back(c.id());
    });
    return expired;
}

std::vector<FunctionId>
HistogramPolicy::duePrewarms(TimeUs now)
{
    std::vector<FunctionId> due;
    while (!prewarm_schedule_.empty() &&
           prewarm_schedule_.top().due_us <= now) {
        const FunctionId fn = prewarm_schedule_.top().function;
        prewarm_schedule_.pop();
        if (std::find(due.begin(), due.end(), fn) == due.end())
            due.push_back(fn);
    }
    return due;
}

}  // namespace faascache

#include "core/size_policy.h"

namespace faascache {

std::vector<ContainerId>
SizePolicy::selectVictims(ContainerPool& pool, MemMb needed_mb, TimeUs)
{
    return selectAscending(pool, needed_mb,
                           [](const Container& a, const Container& b) {
                               if (a.memMb() != b.memMb())
                                   return a.memMb() > b.memMb();
                               if (a.lastUsed() != b.lastUsed())
                                   return a.lastUsed() < b.lastUsed();
                               return a.id() < b.id();
                           });
}

}  // namespace faascache

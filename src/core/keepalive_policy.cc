#include "core/keepalive_policy.h"

#include <algorithm>

namespace faascache {

void
KeepAlivePolicy::reserveFunctions(std::size_t n)
{
    stats_.reserve(n);
}

void
KeepAlivePolicy::onInvocationArrival(const FunctionSpec& function, TimeUs now)
{
    stats_.recordArrival(function.id, now);
}

void
KeepAlivePolicy::onWarmStart(Container&, const FunctionSpec&, TimeUs)
{
}

void
KeepAlivePolicy::onColdStart(Container&, const FunctionSpec&, TimeUs)
{
}

void
KeepAlivePolicy::onPrewarm(Container& container, const FunctionSpec& function,
                           TimeUs now)
{
    onColdStart(container, function, now);
}

void
KeepAlivePolicy::onEviction(const Container& container, bool last_of_function,
                            TimeUs)
{
    if (last_of_function)
        stats_.resetFrequency(container.function());
}

std::vector<ContainerId>
KeepAlivePolicy::expiredContainers(const ContainerPool&, TimeUs)
{
    return {};
}

std::vector<FunctionId>
KeepAlivePolicy::duePrewarms(TimeUs)
{
    return {};
}

std::vector<ContainerId>
KeepAlivePolicy::selectAscending(
    ContainerPool& pool, MemMb needed_mb,
    const std::function<bool(const Container&, const Container&)>& less)
{
    std::vector<Container*> idle = pool.idleContainers();
    std::sort(idle.begin(), idle.end(),
              [&](const Container* a, const Container* b) {
                  return less(*a, *b);
              });
    std::vector<ContainerId> victims;
    MemMb freed = 0;
    for (const Container* c : idle) {
        if (freed >= needed_mb)
            break;
        victims.push_back(c->id());
        freed += c->memMb();
    }
    return victims;
}

}  // namespace faascache

/**
 * @file
 * Least-Frequently-Used keep-alive ("FREQ" in the paper's figures,
 * §4.2): Greedy-Dual with only the frequency term. Containers of the
 * least frequently invoked functions are terminated first; ties break
 * toward least recently used.
 */
#ifndef FAASCACHE_CORE_LFU_POLICY_H_
#define FAASCACHE_CORE_LFU_POLICY_H_

#include <string>
#include <vector>

#include "core/keepalive_policy.h"

namespace faascache {

/** Frequency-only keep-alive. */
class LfuPolicy : public KeepAlivePolicy
{
  public:
    std::string name() const override { return "FREQ"; }

    std::vector<ContainerId> selectVictims(ContainerPool& pool,
                                           MemMb needed_mb,
                                           TimeUs now) override;
};

}  // namespace faascache

#endif  // FAASCACHE_CORE_LFU_POLICY_H_

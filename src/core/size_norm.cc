#include "core/size_norm.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace faascache {

namespace {

double
dot(const ResourceVector& a, const ResourceVector& b)
{
    return a.cpu * b.cpu + a.mem_mb * b.mem_mb + a.io * b.io;
}

double
magnitude(const ResourceVector& v)
{
    return std::sqrt(dot(v, v));
}

}  // namespace

double
scalarSize(const ResourceVector& demand, const ResourceVector& server,
           SizeNorm norm)
{
    constexpr double kFloor = 1e-9;
    switch (norm) {
      case SizeNorm::MemoryOnly:
        return std::max(kFloor, demand.mem_mb);
      case SizeNorm::Magnitude:
        return std::max(kFloor, magnitude(demand));
      case SizeNorm::NormalizedSum: {
        double sum = 0.0;
        if (server.cpu > 0)
            sum += demand.cpu / server.cpu;
        if (server.mem_mb > 0)
            sum += demand.mem_mb / server.mem_mb;
        if (server.io > 0)
            sum += demand.io / server.io;
        return std::max(kFloor, sum);
      }
      case SizeNorm::CosineWeighted: {
        const double mags = magnitude(demand) * magnitude(server);
        double misalignment = 1.0;
        if (mags > 0) {
            const double cosine =
                std::clamp(dot(demand, server) / mags, 0.0, 1.0);
            // Perfectly aligned containers pack well: discount them,
            // but never to zero.
            misalignment = 1.0 - 0.5 * cosine;
        }
        return std::max(kFloor,
                        misalignment *
                            scalarSize(demand, server,
                                       SizeNorm::NormalizedSum));
      }
    }
    assert(false && "unknown SizeNorm");
    return kFloor;
}

ResourceVector
resourceVectorOf(const FunctionSpec& function)
{
    return ResourceVector{function.cpu_units, function.mem_mb,
                          function.io_units};
}

}  // namespace faascache

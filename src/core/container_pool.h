/**
 * @file
 * The prioritized ContainerPool (paper §6).
 *
 * Tracks all live containers on a server against a memory capacity.
 * Following the FaasCache implementation, the pool is not kept sorted by
 * priority on the invocation fast path; policies sort candidates only
 * when an eviction is needed.
 *
 * Two interchangeable backends (DESIGN.md §4d):
 *
 *  - PoolBackend::Slab (default): containers live in a chunked slab
 *    arena of recycled slots with stable addresses. Each function's
 *    intrusive idle list is kept sorted warmest-first (lastUsed is
 *    immutable while a container is idle), so warm lookup is O(1);
 *    invocation completion walks an intrusive global busy list.
 *    Add/remove/busy/idle transitions are allocation-free in steady
 *    state.
 *
 *  - PoolBackend::ReferenceMap: the original hash-map pool, kept as a
 *    differential-testing oracle (mirroring the Greedy-Dual heap-vs-sort
 *    pattern).
 *
 * Both backends are observably identical: same container ids, same
 * warm-container choice (most recent lastUsed, ties to the lowest id),
 * and deterministic orderings on every enumeration a policy result can
 * depend on.
 */
#ifndef FAASCACHE_CORE_CONTAINER_POOL_H_
#define FAASCACHE_CORE_CONTAINER_POOL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/container.h"
#include "trace/function_spec.h"
#include "util/audit.h"
#include "util/types.h"

namespace faascache {

/** Storage strategy for the container pool. */
enum class PoolBackend : std::uint8_t {
    /** Slab arena + intrusive lists (fast path, default). */
    Slab,
    /** Original unordered_map pool (reference oracle). */
    ReferenceMap,
};

/** Stable lowercase name ("slab" / "reference") for configs and logs. */
const char* poolBackendName(PoolBackend backend);

/** Set of live containers bounded by server memory. */
class ContainerPool
{
  public:
    /** @param capacity_mb Total keep-alive cache memory, MB (> 0). */
    explicit ContainerPool(MemMb capacity_mb,
                           PoolBackend backend = PoolBackend::Slab);

    /** Containers hold back-pointers into the pool; it must not move. */
    ContainerPool(const ContainerPool&) = delete;
    ContainerPool& operator=(const ContainerPool&) = delete;

    PoolBackend backend() const { return backend_; }

    MemMb capacityMb() const { return capacity_mb_; }

    /** Memory consumed by all live containers (busy + warm). */
    MemMb usedMb() const { return used_mb_; }

    /** Remaining capacity; zero if the pool is (over-)full. */
    MemMb freeMb() const;

    /** Memory held by idle containers (the reclaimable part). */
    MemMb idleMb() const;

    /**
     * Change the capacity (elastic scaling). May leave the pool over
     * capacity; the caller is expected to evict down to fit (cascade
     * deflation shrinks the pool first, §6).
     */
    void setCapacityMb(MemMb capacity_mb);

    /** Whether a container of `mem_mb` MB fits right now. */
    bool fits(MemMb mem_mb) const { return used_mb_ + mem_mb <= capacity_mb_; }

    /** Number of live containers. */
    std::size_t size() const { return size_; }

    /** Number of idle containers. */
    std::size_t idleCount() const;

    /**
     * Pre-size internal storage for an expected load (slots for
     * `containers` concurrent containers, id tables for `functions`
     * distinct functions). Purely an allocation hint; growing past it is
     * always safe.
     */
    void reserve(std::size_t containers, std::size_t functions);

    /**
     * Exclusive upper bound on Container::poolSlot() values handed out
     * so far. Policies size slot-indexed side tables from this; it only
     * grows.
     */
    std::uint32_t slotUpperBound() const;

    /**
     * Create a container for `function`.
     * @pre fits(function.mem_mb).
     * @return Reference valid until the container is removed.
     */
    Container& add(const FunctionSpec& function, TimeUs now,
                   bool prewarmed = false);

    /** Destroy a container. @pre it exists and is idle. */
    void remove(ContainerId id);

    /** Look up by id; nullptr if absent. */
    Container* get(ContainerId id);
    const Container* get(ContainerId id) const;

    /**
     * An idle warm container for `function`, preferring the most
     * recently used one (ties to the lowest id); nullptr if none.
     */
    Container* findIdleWarm(FunctionId function);

    /** All containers of one function (busy and idle), ordered by id. */
    std::vector<const Container*> containersOf(FunctionId function) const;

    /** Number of live containers (busy + idle) for `function`. */
    std::size_t countOf(FunctionId function) const;

    /** Pointers to all idle containers, ordered by id. */
    std::vector<Container*> idleContainers();
    std::vector<const Container*> idleContainers() const;

    /** Visit every container (order is backend-specific). */
    void forEach(const std::function<void(Container&)>& fn);
    void forEach(const std::function<void(const Container&)>& fn) const;

    /**
     * Transition every busy container whose invocation completed by
     * `now` to idle.
     * @return Containers released this call, ordered by id.
     */
    std::vector<Container*> releaseFinished(TimeUs now);

    /**
     * Attach a runtime invariant auditor (non-owning; null or Off
     * detaches). With an auditor attached, busy/idle transition hooks
     * verify container state-machine legality; auditInvariants() runs
     * the deep structural walk. Null = zero overhead.
     */
    void setAuditor(Auditor* auditor)
    {
        audit_ =
            auditor != nullptr && auditor->enabled() ? auditor : nullptr;
    }

    /**
     * Deep structural audit (util/audit.h): used memory equals the sum
     * over live containers, live == busy + idle, slab free/busy/idle
     * lists partition the slots, per-function idle lists stay
     * warmest-first and agree with the per-function counts, and the
     * dense id→slot map round-trips. Reference backend: the id map and
     * per-function index agree. O(slots) — call from periodic
     * maintenance, not per event.
     */
    void auditInvariants(Auditor& audit, TimeUs now) const;

  private:
    friend class Container;

    /** Null link / empty list head in the intrusive lists. */
    static constexpr std::uint32_t kNilSlot = 0xffffffffu;
    /** Slab chunk geometry: 256 containers per chunk. */
    static constexpr std::uint32_t kChunkShift = 8;
    static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
    static constexpr std::uint32_t kChunkMask = kChunkSize - 1;
    /** Smallest id-window size that triggers prefix compaction. */
    static constexpr std::size_t kMinCompactWindow = 1024;

    /**
     * One slab cell. A live slot is on exactly one intrusive list: its
     * function's idle list when the container is idle, the global busy
     * list while an invocation runs. Dead slots chain on the free list.
     */
    struct Slot
    {
        Container container;
        std::uint32_t prev = kNilSlot;
        std::uint32_t next = kNilSlot;
        std::uint32_t next_free = kNilSlot;
        bool live = false;
    };

    Slot& slotAt(std::uint32_t slot)
    {
        return chunks_[slot >> kChunkShift][slot & kChunkMask];
    }
    const Slot& slotAt(std::uint32_t slot) const
    {
        return chunks_[slot >> kChunkShift][slot & kChunkMask];
    }

    /** Head of the idle list for `function` (kNilSlot when empty). */
    std::uint32_t& idleHead(FunctionId function);

    /** Take a slot from the free list, allocating a chunk if needed. */
    std::uint32_t acquireSlot();

    /** Push `slot` onto the list rooted at `head`. */
    void pushList(std::uint32_t& head, std::uint32_t slot);
    /**
     * Insert `slot` into its function's idle list, keeping the list
     * sorted warmest-first. A newly idle container's lastUsed is its
     * invocation start time, so it usually outranks (or nearly
     * outranks) everything already idle and the walk stays short.
     */
    void insertIdleSorted(FunctionId function, std::uint32_t slot);
    /** Remove `slot` from the list rooted at `head`. */
    void unlinkList(std::uint32_t& head, std::uint32_t slot);

    /** Drop the dead prefix of the id→slot window (amortized O(1)). */
    void maybeCompactIdWindow();

    /** Container state-change hooks (slab list maintenance). */
    void onContainerBusy(Container& c);
    void onContainerIdle(Container& c);

    PoolBackend backend_;
    MemMb capacity_mb_;
    MemMb used_mb_ = 0;
    Auditor* audit_ = nullptr;
    ContainerId next_id_ = 1;
    std::size_t size_ = 0;

    // --- Slab backend ---
    std::vector<std::unique_ptr<Slot[]>> chunks_;
    std::uint32_t slot_count_ = 0;     ///< Slots ever carved from chunks.
    std::uint32_t free_head_ = kNilSlot;
    std::uint32_t busy_head_ = kNilSlot;
    std::vector<std::uint32_t> idle_head_;  ///< Per-function idle lists.
    std::vector<std::uint32_t> fn_count_;   ///< Live containers per function.
    /** id→slot, indexed by (id - id_base_); kNilSlot for dead ids. */
    std::vector<std::uint32_t> slot_by_id_;
    ContainerId id_base_ = 1;
    std::size_t compact_at_ = kMinCompactWindow;

    // --- ReferenceMap backend ---
    std::unordered_map<ContainerId, std::unique_ptr<Container>> containers_;
    std::unordered_map<FunctionId, std::vector<Container*>> by_function_;
    std::uint32_t next_ref_slot_ = 0;
    std::vector<std::uint32_t> free_ref_slots_;
};

}  // namespace faascache

#endif  // FAASCACHE_CORE_CONTAINER_POOL_H_

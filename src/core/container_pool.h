/**
 * @file
 * The prioritized ContainerPool (paper §6).
 *
 * Tracks all live containers on a server against a memory capacity.
 * Following the FaasCache implementation, the pool is not kept sorted by
 * priority on the invocation fast path; policies sort candidates only
 * when an eviction is needed.
 */
#ifndef FAASCACHE_CORE_CONTAINER_POOL_H_
#define FAASCACHE_CORE_CONTAINER_POOL_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/container.h"
#include "trace/function_spec.h"
#include "util/types.h"

namespace faascache {

/** Set of live containers bounded by server memory. */
class ContainerPool
{
  public:
    /** @param capacity_mb Total keep-alive cache memory, MB (> 0). */
    explicit ContainerPool(MemMb capacity_mb);

    MemMb capacityMb() const { return capacity_mb_; }

    /** Memory consumed by all live containers (busy + warm). */
    MemMb usedMb() const { return used_mb_; }

    /** Remaining capacity; zero if the pool is (over-)full. */
    MemMb freeMb() const;

    /** Memory held by idle containers (the reclaimable part). */
    MemMb idleMb() const;

    /**
     * Change the capacity (elastic scaling). May leave the pool over
     * capacity; the caller is expected to evict down to fit (cascade
     * deflation shrinks the pool first, §6).
     */
    void setCapacityMb(MemMb capacity_mb);

    /** Whether a container of `mem_mb` MB fits right now. */
    bool fits(MemMb mem_mb) const { return used_mb_ + mem_mb <= capacity_mb_; }

    /** Number of live containers. */
    std::size_t size() const { return containers_.size(); }

    /** Number of idle containers. */
    std::size_t idleCount() const;

    /**
     * Create a container for `function`.
     * @pre fits(function.mem_mb).
     * @return Reference valid until the container is removed.
     */
    Container& add(const FunctionSpec& function, TimeUs now,
                   bool prewarmed = false);

    /** Destroy a container. @pre it exists and is idle. */
    void remove(ContainerId id);

    /** Look up by id; nullptr if absent. */
    Container* get(ContainerId id);
    const Container* get(ContainerId id) const;

    /**
     * An idle warm container for `function`, preferring the most
     * recently used one; nullptr if none.
     */
    Container* findIdleWarm(FunctionId function);

    /** All containers of one function (busy and idle). */
    const std::vector<Container*>& containersOf(FunctionId function) const;

    /** Number of live containers (busy + idle) for `function`. */
    std::size_t countOf(FunctionId function) const;

    /** Pointers to all idle containers (arbitrary stable order). */
    std::vector<Container*> idleContainers();
    std::vector<const Container*> idleContainers() const;

    /** Visit every container. */
    void forEach(const std::function<void(Container&)>& fn);
    void forEach(const std::function<void(const Container&)>& fn) const;

    /**
     * Transition every busy container whose invocation completed by
     * `now` to idle.
     * @return Containers released this call.
     */
    std::vector<Container*> releaseFinished(TimeUs now);

  private:
    MemMb capacity_mb_;
    MemMb used_mb_ = 0;
    ContainerId next_id_ = 1;
    std::unordered_map<ContainerId, std::unique_ptr<Container>> containers_;
    std::unordered_map<FunctionId, std::vector<Container*>> by_function_;
};

}  // namespace faascache

#endif  // FAASCACHE_CORE_CONTAINER_POOL_H_

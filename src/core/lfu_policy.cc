#include "core/lfu_policy.h"

namespace faascache {

std::vector<ContainerId>
LfuPolicy::selectVictims(ContainerPool& pool, MemMb needed_mb, TimeUs)
{
    const FunctionStatsTable& stats = stats_;
    return selectAscending(
        pool, needed_mb, [&stats](const Container& a, const Container& b) {
            const auto fa = stats.of(a.function()).frequency;
            const auto fb = stats.of(b.function()).frequency;
            if (fa != fb)
                return fa < fb;
            if (a.lastUsed() != b.lastUsed())
                return a.lastUsed() < b.lastUsed();
            return a.id() < b.id();
        });
}

}  // namespace faascache

/**
 * @file
 * The Landlord online caching algorithm adapted to keep-alive ("LND" in
 * the paper's figures, §4.2; Young 2002).
 *
 * Each container holds a "credit". On every invocation of its function,
 * a container's credit is reset to the function's initialization cost.
 * When space is needed, a rent of delta x size is charged to every idle
 * container, where delta = min over idle containers of credit/size; the
 * containers whose credit reaches zero are evicted. Unlike Greedy-Dual,
 * the priority decrease depends on the global state of the pool rather
 * than being applied independently. Landlord has a proven competitive
 * ratio for online file caching.
 */
#ifndef FAASCACHE_CORE_LANDLORD_POLICY_H_
#define FAASCACHE_CORE_LANDLORD_POLICY_H_

#include <string>
#include <vector>

#include "core/keepalive_policy.h"

namespace faascache {

/** Landlord rent-charging keep-alive. */
class LandlordPolicy : public KeepAlivePolicy
{
  public:
    std::string name() const override { return "LND"; }

    void onWarmStart(Container& container, const FunctionSpec& function,
                     TimeUs now) override;
    void onColdStart(Container& container, const FunctionSpec& function,
                     TimeUs now) override;
    std::vector<ContainerId> selectVictims(ContainerPool& pool,
                                           MemMb needed_mb,
                                           TimeUs now) override;
};

}  // namespace faascache

#endif  // FAASCACHE_CORE_LANDLORD_POLICY_H_

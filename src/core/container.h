/**
 * @file
 * A live container instance hosting (or kept warm for) one function.
 *
 * Containers are the unit of eviction: keep-alive policies compute a
 * priority per container (paper §4.1) and the pool terminates the lowest
 * priority idle containers under memory pressure. A container is either
 * running an invocation (busy) or idle/warm; only idle containers may be
 * evicted.
 *
 * A container owned by a ContainerPool notifies the pool on every
 * busy/idle transition so the pool can maintain its intrusive idle/busy
 * lists without scanning (DESIGN.md §4d). Standalone containers (unit
 * tests) have no pool bound and skip the notification.
 */
#ifndef FAASCACHE_CORE_CONTAINER_H_
#define FAASCACHE_CORE_CONTAINER_H_

#include <cstdint>

#include "trace/function_spec.h"
#include "util/types.h"

namespace faascache {

class ContainerPool;

/** One virtual execution environment for a single function. */
class Container
{
  public:
    /** An invalid placeholder (unoccupied slab slot). */
    Container() = default;

    /**
     * @param id        Pool-unique identifier.
     * @param function  Function this container can execute.
     * @param now       Creation time.
     * @param prewarmed Whether the container was created ahead of an
     *                  invocation (HIST prewarming) rather than by a
     *                  cold start.
     */
    Container(ContainerId id, const FunctionSpec& function, TimeUs now,
              bool prewarmed = false);

    ContainerId id() const { return id_; }
    FunctionId function() const { return function_; }

    /** Memory footprint while alive (busy or warm), MB. */
    MemMb memMb() const { return mem_mb_; }

    TimeUs createdAt() const { return created_at_; }
    bool prewarmed() const { return prewarmed_; }

    /** Whether an invocation is currently executing here. */
    bool busy() const { return busy_; }
    bool idle() const { return !busy_; }

    /** Completion time of the current invocation (valid while busy). */
    TimeUs busyUntil() const { return busy_until_; }

    /** Start of the most recent invocation (creation time if none). */
    TimeUs lastUsed() const { return last_used_; }

    /** Invocations served by this particular container. */
    std::int64_t useCount() const { return use_count_; }

    /**
     * Dense index of this container inside its owning pool (stable for
     * the container's lifetime, recycled after removal). Policies use it
     * to key per-container state in flat arrays instead of hash maps.
     * Zero for unbound (standalone) containers.
     */
    std::uint32_t poolSlot() const { return pool_slot_; }

    /**
     * Begin executing an invocation.
     * @pre idle(); finish_us >= now.
     */
    void startInvocation(TimeUs now, TimeUs finish_us);

    /** Mark the current invocation complete. @pre busy(). */
    void finishInvocation();

    /**
     * @name Policy bookkeeping
     * Scratch fields owned by the keep-alive policy attached to the pool.
     * @{
     */
    double priority() const { return priority_; }
    void setPriority(double p) { priority_ = p; }

    /** Landlord credit. */
    double credit() const { return credit_; }
    void setCredit(double c) { credit_ = c; }

    /** Greedy-Dual logical-clock value captured at this container's
     *  last use (used to break ties among a function's containers). */
    double policyClock() const { return policy_clock_; }
    void setPolicyClock(double c) { policy_clock_ = c; }
    /** @} */

  private:
    friend class ContainerPool;

    /** Attach to `pool` as slot `slot` (pool-internal). */
    void bindPool(ContainerPool* pool, std::uint32_t slot)
    {
        pool_ = pool;
        pool_slot_ = slot;
    }

    ContainerId id_ = kInvalidContainer;
    FunctionId function_ = kInvalidFunction;
    MemMb mem_mb_ = 0;
    TimeUs created_at_ = 0;
    bool prewarmed_ = false;

    bool busy_ = false;
    TimeUs busy_until_ = 0;
    TimeUs last_used_ = 0;
    std::int64_t use_count_ = 0;

    double priority_ = 0.0;
    double credit_ = 0.0;
    double policy_clock_ = 0.0;

    /** Owning pool (null for standalone containers) and slab slot. */
    ContainerPool* pool_ = nullptr;
    std::uint32_t pool_slot_ = 0;
};

}  // namespace faascache

#endif  // FAASCACHE_CORE_CONTAINER_H_

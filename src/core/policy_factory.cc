#include "core/policy_factory.h"

#include <stdexcept>

#include "core/landlord_policy.h"
#include "core/lfu_policy.h"
#include "core/lru_policy.h"
#include "core/size_policy.h"

namespace faascache {

const std::vector<PolicyKind>&
allPolicyKinds()
{
    static const std::vector<PolicyKind> kKinds = {
        PolicyKind::GreedyDual, PolicyKind::Ttl,  PolicyKind::Lru,
        PolicyKind::Hist,       PolicyKind::Size, PolicyKind::Landlord,
        PolicyKind::Lfu,
    };
    return kKinds;
}

std::string
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::GreedyDual:
        return "GD";
      case PolicyKind::Ttl:
        return "TTL";
      case PolicyKind::Lru:
        return "LRU";
      case PolicyKind::Hist:
        return "HIST";
      case PolicyKind::Size:
        return "SIZE";
      case PolicyKind::Landlord:
        return "LND";
      case PolicyKind::Lfu:
        return "FREQ";
    }
    throw std::invalid_argument("policyKindName: unknown kind");
}

PolicyKind
policyKindFromName(const std::string& name)
{
    for (PolicyKind kind : allPolicyKinds()) {
        if (policyKindName(kind) == name)
            return kind;
    }
    throw std::invalid_argument("policyKindFromName: unknown policy '" +
                                name + "'");
}

std::unique_ptr<KeepAlivePolicy>
makePolicy(PolicyKind kind, const PolicyConfig& config)
{
    switch (kind) {
      case PolicyKind::GreedyDual:
        return std::make_unique<GreedyDualPolicy>(config.greedy_dual);
      case PolicyKind::Ttl:
        return std::make_unique<TtlPolicy>(config.ttl_us,
                                           config.ttl_victim_order);
      case PolicyKind::Lru:
        return std::make_unique<LruPolicy>();
      case PolicyKind::Hist:
        return std::make_unique<HistogramPolicy>(config.histogram);
      case PolicyKind::Size:
        return std::make_unique<SizePolicy>();
      case PolicyKind::Landlord:
        return std::make_unique<LandlordPolicy>();
      case PolicyKind::Lfu:
        return std::make_unique<LfuPolicy>();
    }
    throw std::invalid_argument("makePolicy: unknown kind");
}

}  // namespace faascache

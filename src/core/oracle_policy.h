/**
 * @file
 * Clairvoyant keep-alive baseline: Belady's MIN adapted to function
 * keep-alive. Landlord's competitive ratio (paper §4.2) is stated
 * against exactly this kind of optimal offline algorithm that "knows
 * future requests"; this policy makes the gap measurable.
 *
 * Given the full trace up front, the oracle evicts the idle container
 * whose function is re-invoked farthest in the future (never-again
 * functions first, larger containers first among ties). With multiple
 * containers per function the next-use time is shared — a conservative
 * approximation of the true per-container optimum, which is already
 * NP-hard for non-uniform sizes (weighted caching); MIN-style greedy is
 * the standard offline yardstick.
 */
#ifndef FAASCACHE_CORE_ORACLE_POLICY_H_
#define FAASCACHE_CORE_ORACLE_POLICY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/keepalive_policy.h"
#include "trace/trace.h"

namespace faascache {

/** Offline-optimal (farthest-next-use) keep-alive baseline. */
class OraclePolicy : public KeepAlivePolicy
{
  public:
    /** @param trace The full workload that will be replayed. */
    explicit OraclePolicy(const Trace& trace);

    std::string name() const override { return "ORACLE"; }

    void onInvocationArrival(const FunctionSpec& function,
                             TimeUs now) override;
    std::vector<ContainerId> selectVictims(ContainerPool& pool,
                                           MemMb needed_mb,
                                           TimeUs now) override;

    /**
     * Arrival time of `function`'s next invocation strictly after
     * `now`, or -1 if it is never invoked again.
     */
    TimeUs nextUseAfter(FunctionId function, TimeUs now) const;

  private:
    /** Sorted arrival times per function. */
    std::vector<std::vector<TimeUs>> arrivals_;
};

}  // namespace faascache

#endif  // FAASCACHE_CORE_ORACLE_POLICY_H_

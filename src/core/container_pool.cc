#include "core/container_pool.h"

#include <algorithm>
#include <cassert>

namespace faascache {

ContainerPool::ContainerPool(MemMb capacity_mb) : capacity_mb_(capacity_mb)
{
    assert(capacity_mb > 0);
}

MemMb
ContainerPool::freeMb() const
{
    return std::max(0.0, capacity_mb_ - used_mb_);
}

MemMb
ContainerPool::idleMb() const
{
    MemMb total = 0;
    for (const auto& [id, c] : containers_) {
        if (c->idle())
            total += c->memMb();
    }
    return total;
}

void
ContainerPool::setCapacityMb(MemMb capacity_mb)
{
    assert(capacity_mb > 0);
    capacity_mb_ = capacity_mb;
}

std::size_t
ContainerPool::idleCount() const
{
    std::size_t n = 0;
    for (const auto& [id, c] : containers_) {
        if (c->idle())
            ++n;
    }
    return n;
}

Container&
ContainerPool::add(const FunctionSpec& function, TimeUs now, bool prewarmed)
{
    assert(fits(function.mem_mb));
    const ContainerId id = next_id_++;
    auto container = std::make_unique<Container>(id, function, now, prewarmed);
    Container& ref = *container;
    containers_.emplace(id, std::move(container));
    by_function_[function.id].push_back(&ref);
    used_mb_ += function.mem_mb;
    return ref;
}

void
ContainerPool::remove(ContainerId id)
{
    auto it = containers_.find(id);
    assert(it != containers_.end());
    assert(it->second->idle());
    Container* raw = it->second.get();
    auto& vec = by_function_[raw->function()];
    vec.erase(std::remove(vec.begin(), vec.end(), raw), vec.end());
    if (vec.empty())
        by_function_.erase(raw->function());
    used_mb_ -= raw->memMb();
    if (used_mb_ < 0)
        used_mb_ = 0;  // defend against float drift
    containers_.erase(it);
}

Container*
ContainerPool::get(ContainerId id)
{
    auto it = containers_.find(id);
    return it == containers_.end() ? nullptr : it->second.get();
}

const Container*
ContainerPool::get(ContainerId id) const
{
    auto it = containers_.find(id);
    return it == containers_.end() ? nullptr : it->second.get();
}

Container*
ContainerPool::findIdleWarm(FunctionId function)
{
    auto it = by_function_.find(function);
    if (it == by_function_.end())
        return nullptr;
    Container* best = nullptr;
    for (Container* c : it->second) {
        if (!c->idle())
            continue;
        if (!best || c->lastUsed() > best->lastUsed())
            best = c;
    }
    return best;
}

const std::vector<Container*>&
ContainerPool::containersOf(FunctionId function) const
{
    static const std::vector<Container*> kEmpty;
    auto it = by_function_.find(function);
    return it == by_function_.end() ? kEmpty : it->second;
}

std::size_t
ContainerPool::countOf(FunctionId function) const
{
    auto it = by_function_.find(function);
    return it == by_function_.end() ? 0 : it->second.size();
}

std::vector<Container*>
ContainerPool::idleContainers()
{
    std::vector<Container*> out;
    out.reserve(containers_.size());
    for (auto& [id, c] : containers_) {
        if (c->idle())
            out.push_back(c.get());
    }
    // Deterministic order independent of hash-map iteration.
    std::sort(out.begin(), out.end(),
              [](const Container* a, const Container* b) {
                  return a->id() < b->id();
              });
    return out;
}

std::vector<const Container*>
ContainerPool::idleContainers() const
{
    std::vector<const Container*> out;
    out.reserve(containers_.size());
    for (const auto& [id, c] : containers_) {
        if (c->idle())
            out.push_back(c.get());
    }
    std::sort(out.begin(), out.end(),
              [](const Container* a, const Container* b) {
                  return a->id() < b->id();
              });
    return out;
}

void
ContainerPool::forEach(const std::function<void(Container&)>& fn)
{
    for (auto& [id, c] : containers_)
        fn(*c);
}

void
ContainerPool::forEach(const std::function<void(const Container&)>& fn) const
{
    for (const auto& [id, c] : containers_)
        fn(*c);
}

std::vector<Container*>
ContainerPool::releaseFinished(TimeUs now)
{
    std::vector<Container*> released;
    for (auto& [id, c] : containers_) {
        if (c->busy() && c->busyUntil() <= now) {
            c->finishInvocation();
            released.push_back(c.get());
        }
    }
    std::sort(released.begin(), released.end(),
              [](const Container* a, const Container* b) {
                  return a->id() < b->id();
              });
    return released;
}

}  // namespace faascache

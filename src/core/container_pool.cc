#include "core/container_pool.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

namespace faascache {

namespace {

/** Warm-lookup preference: most recent lastUsed, ties to the lowest id. */
bool
warmerThan(const Container& a, const Container& b)
{
    if (a.lastUsed() != b.lastUsed())
        return a.lastUsed() > b.lastUsed();
    return a.id() < b.id();
}

bool
byIdAsc(const Container* a, const Container* b)
{
    return a->id() < b->id();
}

}  // namespace

const char*
poolBackendName(PoolBackend backend)
{
    switch (backend) {
    case PoolBackend::Slab:
        return "slab";
    case PoolBackend::ReferenceMap:
        return "reference";
    }
    return "?";
}

ContainerPool::ContainerPool(MemMb capacity_mb, PoolBackend backend)
    : backend_(backend), capacity_mb_(capacity_mb)
{
    assert(capacity_mb > 0);
}

MemMb
ContainerPool::freeMb() const
{
    return std::max(0.0, capacity_mb_ - used_mb_);
}

MemMb
ContainerPool::idleMb() const
{
    MemMb total = 0;
    forEach([&total](const Container& c) {
        if (c.idle())
            total += c.memMb();
    });
    return total;
}

void
ContainerPool::setCapacityMb(MemMb capacity_mb)
{
    assert(capacity_mb > 0);
    capacity_mb_ = capacity_mb;
}

std::size_t
ContainerPool::idleCount() const
{
    std::size_t n = 0;
    forEach([&n](const Container& c) {
        if (c.idle())
            ++n;
    });
    return n;
}

void
ContainerPool::reserve(std::size_t containers, std::size_t functions)
{
    if (backend_ == PoolBackend::ReferenceMap) {
        containers_.reserve(containers);
        by_function_.reserve(functions);
        free_ref_slots_.reserve(containers);
        return;
    }
    const std::size_t chunks = (containers + kChunkSize - 1) / kChunkSize;
    chunks_.reserve(chunks);
    slot_by_id_.reserve(std::max(containers, kMinCompactWindow));
    if (idle_head_.size() < functions) {
        idle_head_.resize(functions, kNilSlot);
        fn_count_.resize(functions, 0);
    }
}

std::uint32_t
ContainerPool::slotUpperBound() const
{
    return backend_ == PoolBackend::Slab ? slot_count_ : next_ref_slot_;
}

std::uint32_t&
ContainerPool::idleHead(FunctionId function)
{
    if (function >= idle_head_.size()) {
        std::size_t grown = std::max<std::size_t>(
            static_cast<std::size_t>(function) + 1, idle_head_.size() * 2);
        idle_head_.resize(grown, kNilSlot);
        fn_count_.resize(grown, 0);
    }
    return idle_head_[function];
}

std::uint32_t
ContainerPool::acquireSlot()
{
    if (free_head_ != kNilSlot) {
        const std::uint32_t slot = free_head_;
        free_head_ = slotAt(slot).next_free;
        return slot;
    }
    if ((slot_count_ >> kChunkShift) == chunks_.size())
        chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    return slot_count_++;
}

void
ContainerPool::pushList(std::uint32_t& head, std::uint32_t slot)
{
    Slot& s = slotAt(slot);
    s.prev = kNilSlot;
    s.next = head;
    if (head != kNilSlot)
        slotAt(head).prev = slot;
    head = slot;
}

void
ContainerPool::unlinkList(std::uint32_t& head, std::uint32_t slot)
{
    Slot& s = slotAt(slot);
    if (s.prev != kNilSlot)
        slotAt(s.prev).next = s.next;
    else
        head = s.next;
    if (s.next != kNilSlot)
        slotAt(s.next).prev = s.prev;
    s.prev = kNilSlot;
    s.next = kNilSlot;
}

void
ContainerPool::insertIdleSorted(FunctionId function, std::uint32_t slot)
{
    std::uint32_t& head = idleHead(function);
    const Container& c = slotAt(slot).container;
    std::uint32_t prev = kNilSlot;
    std::uint32_t cur = head;
    while (cur != kNilSlot && warmerThan(slotAt(cur).container, c)) {
        prev = cur;
        cur = slotAt(cur).next;
    }
    Slot& s = slotAt(slot);
    s.prev = prev;
    s.next = cur;
    if (prev != kNilSlot)
        slotAt(prev).next = slot;
    else
        head = slot;
    if (cur != kNilSlot)
        slotAt(cur).prev = slot;
}

void
ContainerPool::maybeCompactIdWindow()
{
    if (slot_by_id_.size() < compact_at_)
        return;
    std::size_t drop = 0;
    while (drop < slot_by_id_.size() && slot_by_id_[drop] == kNilSlot)
        ++drop;
    if (drop > 0) {
        slot_by_id_.erase(slot_by_id_.begin(),
                          slot_by_id_.begin() + static_cast<long>(drop));
        id_base_ += static_cast<ContainerId>(drop);
    }
    // Double the threshold past the surviving window so a long-lived
    // oldest container cannot make compaction quadratic.
    compact_at_ = std::max(2 * slot_by_id_.size(), kMinCompactWindow);
}

void
ContainerPool::onContainerBusy(Container& c)
{
    if (audit_ != nullptr) {
        // The only legal path into Busy is startInvocation() on an idle
        // container, which stamps lastUsed = now and busyUntil >= now.
        audit_->require(c.busy(), "container-transition", c.lastUsed(),
                        static_cast<std::int64_t>(c.id()),
                        "busy hook fired on a container not in the "
                        "Busy state");
        audit_->require(c.busyUntil() >= c.lastUsed(),
                        "container-transition", c.lastUsed(),
                        static_cast<std::int64_t>(c.id()),
                        "invocation completes before it starts "
                        "(busyUntil < lastUsed)");
    }
    if (backend_ != PoolBackend::Slab)
        return;
    const std::uint32_t slot = c.pool_slot_;
    unlinkList(idleHead(c.function()), slot);
    pushList(busy_head_, slot);
}

void
ContainerPool::onContainerIdle(Container& c)
{
    if (audit_ != nullptr) {
        audit_->require(c.idle(), "container-transition", c.lastUsed(),
                        static_cast<std::int64_t>(c.id()),
                        "idle hook fired on a container not in the "
                        "Idle state");
    }
    if (backend_ != PoolBackend::Slab)
        return;
    const std::uint32_t slot = c.pool_slot_;
    unlinkList(busy_head_, slot);
    insertIdleSorted(c.function(), slot);
}

Container&
ContainerPool::add(const FunctionSpec& function, TimeUs now, bool prewarmed)
{
    assert(fits(function.mem_mb));
    const ContainerId id = next_id_++;
    used_mb_ += function.mem_mb;
    ++size_;

    if (backend_ == PoolBackend::ReferenceMap) {
        auto container =
            std::make_unique<Container>(id, function, now, prewarmed);
        Container& ref = *container;
        std::uint32_t slot = next_ref_slot_;
        if (!free_ref_slots_.empty()) {
            slot = free_ref_slots_.back();
            free_ref_slots_.pop_back();
        } else {
            ++next_ref_slot_;
        }
        ref.bindPool(this, slot);
        containers_.emplace(id, std::move(container));
        by_function_[function.id].push_back(&ref);
        return ref;
    }

    const std::uint32_t slot = acquireSlot();
    Slot& s = slotAt(slot);
    s.container = Container(id, function, now, prewarmed);
    s.container.bindPool(this, slot);
    s.live = true;
    insertIdleSorted(function.id, slot);
    ++fn_count_[function.id];

    // Ids are sequential, so the new id always lands one past the window.
    assert(id - id_base_ == slot_by_id_.size());
    slot_by_id_.push_back(slot);
    return s.container;
}

void
ContainerPool::remove(ContainerId id)
{
    if (backend_ == PoolBackend::ReferenceMap) {
        auto it = containers_.find(id);
        assert(it != containers_.end());
        assert(it->second->idle());
        Container* raw = it->second.get();
        auto& vec = by_function_[raw->function()];
        // Swap-remove: by_function_ order is not meaningful (warm lookup
        // scans for an explicit best), so O(1) beats the old O(n) erase.
        auto pos = std::find(vec.begin(), vec.end(), raw);
        assert(pos != vec.end());
        *pos = vec.back();
        vec.pop_back();
        if (vec.empty())
            by_function_.erase(raw->function());
        used_mb_ -= raw->memMb();
        if (used_mb_ < 0)
            used_mb_ = 0;  // defend against float drift
        free_ref_slots_.push_back(raw->poolSlot());
        containers_.erase(it);
        --size_;
        return;
    }

    assert(id >= id_base_ && id < next_id_);
    const std::uint32_t slot =
        slot_by_id_[static_cast<std::size_t>(id - id_base_)];
    assert(slot != kNilSlot);
    Slot& s = slotAt(slot);
    assert(s.live);
    assert(s.container.idle());
    unlinkList(idleHead(s.container.function()), slot);
    --fn_count_[s.container.function()];
    used_mb_ -= s.container.memMb();
    if (used_mb_ < 0)
        used_mb_ = 0;  // defend against float drift
    slot_by_id_[static_cast<std::size_t>(id - id_base_)] = kNilSlot;
    s.live = false;
    s.container = Container();
    s.next_free = free_head_;
    free_head_ = slot;
    --size_;
    maybeCompactIdWindow();
}

Container*
ContainerPool::get(ContainerId id)
{
    if (backend_ == PoolBackend::ReferenceMap) {
        auto it = containers_.find(id);
        return it == containers_.end() ? nullptr : it->second.get();
    }
    if (id < id_base_ || id >= next_id_)
        return nullptr;
    const std::uint32_t slot =
        slot_by_id_[static_cast<std::size_t>(id - id_base_)];
    return slot == kNilSlot ? nullptr : &slotAt(slot).container;
}

const Container*
ContainerPool::get(ContainerId id) const
{
    return const_cast<ContainerPool*>(this)->get(id);
}

Container*
ContainerPool::findIdleWarm(FunctionId function)
{
    if (backend_ == PoolBackend::ReferenceMap) {
        auto it = by_function_.find(function);
        if (it == by_function_.end())
            return nullptr;
        Container* best = nullptr;
        for (Container* c : it->second) {
            if (!c->idle())
                continue;
            if (best == nullptr || warmerThan(*c, *best))
                best = c;
        }
        return best;
    }
    if (function >= idle_head_.size())
        return nullptr;
    // The idle list is sorted warmest-first, so the head is the answer.
    const std::uint32_t head = idle_head_[function];
    return head == kNilSlot ? nullptr : &slotAt(head).container;
}

std::vector<const Container*>
ContainerPool::containersOf(FunctionId function) const
{
    std::vector<const Container*> out;
    if (backend_ == PoolBackend::ReferenceMap) {
        auto it = by_function_.find(function);
        if (it != by_function_.end())
            out.assign(it->second.begin(), it->second.end());
    } else {
        forEach([&](const Container& c) {
            if (c.function() == function)
                out.push_back(&c);
        });
    }
    std::sort(out.begin(), out.end(), byIdAsc);
    return out;
}

std::size_t
ContainerPool::countOf(FunctionId function) const
{
    if (backend_ == PoolBackend::ReferenceMap) {
        auto it = by_function_.find(function);
        return it == by_function_.end() ? 0 : it->second.size();
    }
    return function < fn_count_.size() ? fn_count_[function] : 0;
}

std::vector<Container*>
ContainerPool::idleContainers()
{
    std::vector<Container*> out;
    out.reserve(size_);
    forEach([&out](Container& c) {
        if (c.idle())
            out.push_back(&c);
    });
    // Deterministic order independent of backend enumeration.
    std::sort(out.begin(), out.end(), byIdAsc);
    return out;
}

std::vector<const Container*>
ContainerPool::idleContainers() const
{
    std::vector<const Container*> out;
    out.reserve(size_);
    forEach([&out](const Container& c) {
        if (c.idle())
            out.push_back(&c);
    });
    std::sort(out.begin(), out.end(), byIdAsc);
    return out;
}

void
ContainerPool::forEach(const std::function<void(Container&)>& fn)
{
    if (backend_ == PoolBackend::ReferenceMap) {
        for (auto& [id, c] : containers_)
            fn(*c);
        return;
    }
    for (std::uint32_t slot = 0; slot < slot_count_; ++slot) {
        Slot& s = slotAt(slot);
        if (s.live)
            fn(s.container);
    }
}

void
ContainerPool::forEach(const std::function<void(const Container&)>& fn) const
{
    if (backend_ == PoolBackend::ReferenceMap) {
        for (const auto& [id, c] : containers_)
            fn(*c);
        return;
    }
    for (std::uint32_t slot = 0; slot < slot_count_; ++slot) {
        const Slot& s = slotAt(slot);
        if (s.live)
            fn(s.container);
    }
}

void
ContainerPool::auditInvariants(Auditor& audit, TimeUs now) const
{
    // Shared accounting: memory and population recomputed from a full
    // walk must match the incrementally maintained totals.
    MemMb mem = 0;
    std::size_t live = 0;
    std::size_t busy = 0;
    std::vector<std::size_t> per_fn_live;
    forEach([&](const Container& c) {
        mem += c.memMb();
        ++live;
        if (c.busy())
            ++busy;
        if (c.function() >= per_fn_live.size())
            per_fn_live.resize(c.function() + 1, 0);
        ++per_fn_live[c.function()];
    });
    const double eps = 1e-6 * std::max(1.0, std::abs(used_mb_)) + 1e-6;
    if (std::abs(mem - used_mb_) > eps) {
        audit.fail("pool-memory-accounting", now, -1,
                   "sum of live container memory " + std::to_string(mem) +
                       " MB != tracked used " + std::to_string(used_mb_) +
                       " MB");
    }
    audit.require(used_mb_ > -eps, "pool-memory-accounting", now, -1,
                  "tracked used memory is negative");
    if (live != size_) {
        audit.fail("pool-size-accounting", now, -1,
                   "walk found " + std::to_string(live) +
                       " live containers, tracked size is " +
                       std::to_string(size_));
    }

    if (backend_ == PoolBackend::ReferenceMap) {
        audit.require(containers_.size() == size_,
                      "pool-size-accounting", now, -1,
                      "id map size disagrees with tracked size");
        std::size_t indexed = 0;
        for (const auto& [fn, vec] : by_function_) {
            audit.require(!vec.empty(), "pool-index-consistency", now,
                          static_cast<std::int64_t>(fn),
                          "per-function index holds an empty list");
            for (const Container* c : vec) {
                ++indexed;
                if (c->function() != fn) {
                    audit.fail("pool-index-consistency", now,
                               static_cast<std::int64_t>(c->id()),
                               "container filed under function " +
                                   std::to_string(fn) + " belongs to " +
                                   std::to_string(c->function()));
                }
                auto it = containers_.find(c->id());
                audit.require(it != containers_.end() &&
                                  it->second.get() == c,
                              "pool-index-consistency", now,
                              static_cast<std::int64_t>(c->id()),
                              "per-function index points at a container "
                              "absent from the id map");
            }
        }
        audit.require(indexed == size_, "pool-index-consistency", now, -1,
                      "per-function index population disagrees with "
                      "tracked size");
        return;
    }

    // Slab: free + live slots partition everything ever carved.
    std::size_t free_slots = 0;
    for (std::uint32_t s = free_head_; s != kNilSlot;
         s = slotAt(s).next_free) {
        ++free_slots;
        audit.require(!slotAt(s).live, "pool-slot-accounting", now,
                      static_cast<std::int64_t>(s),
                      "free-list slot is marked live");
        if (free_slots > slot_count_)
            break;  // cycle guard: the count check below reports it
    }
    if (free_slots + live != slot_count_) {
        audit.fail("pool-slot-accounting", now, -1,
                   "free (" + std::to_string(free_slots) + ") + live (" +
                       std::to_string(live) +
                       ") slots != slots carved (" +
                       std::to_string(slot_count_) + ")");
    }

    // Busy list: every node live and busy; covers all busy containers.
    std::size_t busy_listed = 0;
    for (std::uint32_t s = busy_head_; s != kNilSlot;
         s = slotAt(s).next) {
        ++busy_listed;
        const Slot& slot = slotAt(s);
        audit.require(slot.live && slot.container.busy(),
                      "pool-busy-list", now,
                      static_cast<std::int64_t>(slot.container.id()),
                      "busy-list node is not a live busy container");
        if (busy_listed > slot_count_)
            break;
    }
    audit.require(busy_listed == busy, "pool-busy-list", now, -1,
                  "busy list does not cover every busy container");

    // Per-function idle lists: live, idle, right function, sorted
    // warmest-first; together with the busy count they partition the
    // live population.
    std::size_t idle_listed = 0;
    for (FunctionId fn = 0; fn < idle_head_.size(); ++fn) {
        const Container* prev = nullptr;
        for (std::uint32_t s = idle_head_[fn]; s != kNilSlot;
             s = slotAt(s).next) {
            ++idle_listed;
            const Slot& slot = slotAt(s);
            const Container& c = slot.container;
            audit.require(slot.live && c.idle() && c.function() == fn,
                          "pool-idle-list", now,
                          static_cast<std::int64_t>(c.id()),
                          "idle-list node is not a live idle container "
                          "of its function");
            if (prev != nullptr && warmerThan(c, *prev)) {
                audit.fail("pool-idle-list", now,
                           static_cast<std::int64_t>(c.id()),
                           "idle list of function " + std::to_string(fn) +
                               " is not sorted warmest-first");
            }
            prev = &c;
            if (idle_listed > slot_count_)
                break;
        }
        const std::size_t expect =
            fn < per_fn_live.size() ? per_fn_live[fn] : 0;
        if (fn < fn_count_.size() && fn_count_[fn] != expect) {
            audit.fail("pool-fn-count", now,
                       static_cast<std::int64_t>(fn),
                       "per-function count " +
                           std::to_string(fn_count_[fn]) +
                           " != live containers " +
                           std::to_string(expect));
        }
    }
    audit.require(idle_listed + busy == live, "pool-idle-list", now, -1,
                  "idle lists + busy list do not partition the live "
                  "population");

    // Dense id→slot map round-trips: every window entry either dead or
    // pointing at the live container with that id.
    std::size_t mapped = 0;
    for (std::size_t i = 0; i < slot_by_id_.size(); ++i) {
        const std::uint32_t s = slot_by_id_[i];
        if (s == kNilSlot)
            continue;
        ++mapped;
        const ContainerId id = id_base_ + static_cast<ContainerId>(i);
        const Slot& slot = slotAt(s);
        if (!slot.live || slot.container.id() != id) {
            audit.fail("pool-id-map", now,
                       static_cast<std::int64_t>(id),
                       "id map entry does not point at the live "
                       "container with that id");
        }
    }
    audit.require(mapped == size_, "pool-id-map", now, -1,
                  "id map population disagrees with tracked size");
}

std::vector<Container*>
ContainerPool::releaseFinished(TimeUs now)
{
    std::vector<Container*> released;
    if (backend_ == PoolBackend::ReferenceMap) {
        for (auto& [id, c] : containers_) {
            if (c->busy() && c->busyUntil() <= now) {
                c->finishInvocation();
                released.push_back(c.get());
            }
        }
    } else {
        // Collect first: finishInvocation relinks the busy list.
        for (std::uint32_t slot = busy_head_; slot != kNilSlot;
             slot = slotAt(slot).next) {
            Container& c = slotAt(slot).container;
            if (c.busyUntil() <= now)
                released.push_back(&c);
        }
        for (Container* c : released)
            c->finishInvocation();
    }
    std::sort(released.begin(), released.end(), byIdAsc);
    return released;
}

}  // namespace faascache

/**
 * @file
 * Least-Recently-Used keep-alive (paper §4.2): the Greedy-Dual framework
 * with only the access clock as priority. Resource-conserving — warm
 * containers live until memory pressure, then the least recently used
 * idle container is terminated first.
 */
#ifndef FAASCACHE_CORE_LRU_POLICY_H_
#define FAASCACHE_CORE_LRU_POLICY_H_

#include <string>
#include <vector>

#include "core/keepalive_policy.h"

namespace faascache {

/** Recency-only keep-alive. */
class LruPolicy : public KeepAlivePolicy
{
  public:
    std::string name() const override { return "LRU"; }

    std::vector<ContainerId> selectVictims(ContainerPool& pool,
                                           MemMb needed_mb,
                                           TimeUs now) override;
};

}  // namespace faascache

#endif  // FAASCACHE_CORE_LRU_POLICY_H_

/**
 * @file
 * Construction of keep-alive policies by name, covering the seven
 * policies of the paper's evaluation (GD, TTL, LRU, HIST, SIZE, LND,
 * FREQ).
 */
#ifndef FAASCACHE_CORE_POLICY_FACTORY_H_
#define FAASCACHE_CORE_POLICY_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/greedy_dual.h"
#include "core/histogram_policy.h"
#include "core/keepalive_policy.h"
#include "core/ttl_policy.h"

namespace faascache {

/** The policies evaluated in the paper, in figure-legend order. */
enum class PolicyKind
{
    GreedyDual,  ///< GD   — Greedy-Dual-Size-Frequency (§4.1)
    Ttl,         ///< TTL  — OpenWhisk 10-minute constant TTL
    Lru,         ///< LRU  — recency only
    Hist,        ///< HIST — Shahrad et al. histogram policy
    Size,        ///< SIZE — 1/size priority
    Landlord,    ///< LND  — Landlord online algorithm
    Lfu,         ///< FREQ — frequency only
};

/** Aggregate configuration for policy construction. */
struct PolicyConfig
{
    TimeUs ttl_us = 10 * kMinute;
    TtlVictimOrder ttl_victim_order = TtlVictimOrder::LeastRecentlyUsed;
    GreedyDualConfig greedy_dual;
    HistogramPolicyConfig histogram;
};

/** All policy kinds, in the order the paper's figures list them. */
const std::vector<PolicyKind>& allPolicyKinds();

/** Figure-legend name for a kind (e.g. "GD"). */
std::string policyKindName(PolicyKind kind);

/**
 * Parse a figure-legend name back to a kind.
 * @throws std::invalid_argument for unknown names.
 */
PolicyKind policyKindFromName(const std::string& name);

/** Instantiate a fresh policy. */
std::unique_ptr<KeepAlivePolicy> makePolicy(PolicyKind kind,
                                            const PolicyConfig& config = {});

}  // namespace faascache

#endif  // FAASCACHE_CORE_POLICY_FACTORY_H_

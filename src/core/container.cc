#include "core/container.h"

#include <cassert>

#include "core/container_pool.h"

namespace faascache {

Container::Container(ContainerId id, const FunctionSpec& function, TimeUs now,
                     bool prewarmed)
    : id_(id), function_(function.id), mem_mb_(function.mem_mb),
      created_at_(now), prewarmed_(prewarmed), last_used_(now)
{
    assert(function.valid());
}

void
Container::startInvocation(TimeUs now, TimeUs finish_us)
{
    assert(!busy_);
    assert(finish_us >= now);
    busy_ = true;
    busy_until_ = finish_us;
    last_used_ = now;
    ++use_count_;
    if (pool_ != nullptr)
        pool_->onContainerBusy(*this);
}

void
Container::finishInvocation()
{
    assert(busy_);
    busy_ = false;
    if (pool_ != nullptr)
        pool_->onContainerIdle(*this);
}

}  // namespace faascache

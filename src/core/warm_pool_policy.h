/**
 * @file
 * Warm-container-pool keep-alive (paper §8 related work, Lin & Glikson:
 * "a Kubernetes cluster runs a certain number of warm containers for
 * functions"). Each function keeps at most `pool_size` idle containers
 * alive; surplus idle containers are released immediately. The paper's
 * caching-based policies generalize this ("decide which container to
 * keep-alive, and for how long"); the pool policy is the natural
 * fixed-budget baseline to compare them against.
 */
#ifndef FAASCACHE_CORE_WARM_POOL_POLICY_H_
#define FAASCACHE_CORE_WARM_POOL_POLICY_H_

#include <string>
#include <vector>

#include "core/keepalive_policy.h"

namespace faascache {

/** Fixed per-function warm pool. */
class WarmPoolPolicy : public KeepAlivePolicy
{
  public:
    /** @param pool_size Idle containers kept per function (>= 1). */
    explicit WarmPoolPolicy(std::size_t pool_size = 1);

    std::string name() const override { return "POOL"; }

    std::vector<ContainerId> selectVictims(ContainerPool& pool,
                                           MemMb needed_mb,
                                           TimeUs now) override;

    /**
     * Surplus idle containers beyond the per-function budget are
     * released eagerly (reported through the expiry channel).
     */
    std::vector<ContainerId> expiredContainers(const ContainerPool& pool,
                                               TimeUs now) override;

    std::size_t poolSize() const { return pool_size_; }

  private:
    std::size_t pool_size_;
};

}  // namespace faascache

#endif  // FAASCACHE_CORE_WARM_POOL_POLICY_H_

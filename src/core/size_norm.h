/**
 * @file
 * Multi-dimensional container sizes and their scalarizations
 * (paper §4.1): the "Size" term of the Greedy-Dual priority is memory
 * by default, but the paper describes vector sizes reduced via the
 * standard multi-dimensional bin-packing formulations — vector
 * magnitude, resources normalized by server totals and summed, and
 * cosine similarity to the server's resource vector.
 */
#ifndef FAASCACHE_CORE_SIZE_NORM_H_
#define FAASCACHE_CORE_SIZE_NORM_H_

#include "trace/function_spec.h"
#include "util/types.h"

namespace faascache {

/** A container's resource footprint along three dimensions. */
struct ResourceVector
{
    /** CPU demand, in cores. */
    double cpu = 1.0;

    /** Memory footprint, MB. */
    double mem_mb = 0.0;

    /** I/O bandwidth demand, arbitrary units. */
    double io = 0.0;
};

/** How a resource vector is reduced to the scalar "Size". */
enum class SizeNorm
{
    /** Memory only — the paper's default ("for ease of exposition and
     *  practicality, we consider only the container memory use"). */
    MemoryOnly,

    /** Euclidean magnitude ||d|| of the raw vector. */
    Magnitude,

    /** Sum of dimensions normalized by the server totals,
     *  sum_j d_j / a_j. */
    NormalizedSum,

    /** 1 - cosine similarity between d and the server vector a:
     *  containers aligned with the server's resource shape pack well
     *  and count as "small". Scaled by the normalized sum so that
     *  absolute demand still matters. */
    CosineWeighted,
};

/**
 * Reduce `demand` to a scalar under `norm` given the server's total
 * resources. Always strictly positive for a valid footprint.
 */
double scalarSize(const ResourceVector& demand, const ResourceVector& server,
                  SizeNorm norm);

/** The resource vector of a function's container. */
ResourceVector resourceVectorOf(const FunctionSpec& function);

}  // namespace faascache

#endif  // FAASCACHE_CORE_SIZE_NORM_H_

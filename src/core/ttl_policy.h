/**
 * @file
 * Constant time-to-live keep-alive — the OpenWhisk default the paper
 * compares against ("TTL", §3.1): every container is kept warm for a
 * fixed duration (10 minutes) after its last use, regardless of function
 * characteristics. When the server fills before leases expire,
 * containers are evicted in LRU order (§7.1). TTL is not
 * resource-conserving: it terminates containers even when memory is
 * plentiful.
 */
#ifndef FAASCACHE_CORE_TTL_POLICY_H_
#define FAASCACHE_CORE_TTL_POLICY_H_

#include <string>
#include <vector>

#include "core/keepalive_policy.h"

namespace faascache {

/** How TTL picks pressure-eviction victims. */
enum class TtlVictimOrder
{
    /** Least recently *used* first — the simulator baseline the paper
     *  evaluates ("this TTL policy evicts containers in an LRU order"). */
    LeastRecentlyUsed,

    /** Oldest *created* free container first — what vanilla OpenWhisk's
     *  ContainerPool.remove actually does (it takes the first free
     *  container in pool insertion order). This is blind to how hot a
     *  container is, and is what starves frequently-invoked functions
     *  under memory pressure in the paper's §7.2 experiments. */
    OldestCreated,
};

/** Fixed keep-alive duration with naive pressure eviction. */
class TtlPolicy : public KeepAlivePolicy
{
  public:
    /**
     * @param ttl_us       Keep-alive lease after last use (default 10 min).
     * @param victim_order Pressure-eviction order (default LRU).
     */
    explicit TtlPolicy(
        TimeUs ttl_us = 10 * kMinute,
        TtlVictimOrder victim_order = TtlVictimOrder::LeastRecentlyUsed);

    std::string name() const override { return "TTL"; }

    std::vector<ContainerId> selectVictims(ContainerPool& pool,
                                           MemMb needed_mb,
                                           TimeUs now) override;
    std::vector<ContainerId> expiredContainers(const ContainerPool& pool,
                                               TimeUs now) override;

    TimeUs ttl() const { return ttl_us_; }
    TtlVictimOrder victimOrder() const { return victim_order_; }

  private:
    TimeUs ttl_us_;
    TtlVictimOrder victim_order_;
};

}  // namespace faascache

#endif  // FAASCACHE_CORE_TTL_POLICY_H_

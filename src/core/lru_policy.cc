#include "core/lru_policy.h"

namespace faascache {

std::vector<ContainerId>
LruPolicy::selectVictims(ContainerPool& pool, MemMb needed_mb, TimeUs)
{
    return selectAscending(pool, needed_mb,
                           [](const Container& a, const Container& b) {
                               if (a.lastUsed() != b.lastUsed())
                                   return a.lastUsed() < b.lastUsed();
                               return a.id() < b.id();
                           });
}

}  // namespace faascache

#include "core/oracle_policy.h"

#include <algorithm>
#include <limits>

namespace faascache {

OraclePolicy::OraclePolicy(const Trace& trace)
    : arrivals_(trace.functions().size())
{
    for (const auto& inv : trace.invocations())
        arrivals_[inv.function].push_back(inv.arrival_us);
    for (auto& times : arrivals_) {
        if (!std::is_sorted(times.begin(), times.end()))
            std::sort(times.begin(), times.end());
    }
}

TimeUs
OraclePolicy::nextUseAfter(FunctionId function, TimeUs now) const
{
    if (function >= arrivals_.size())
        return -1;
    const auto& times = arrivals_[function];
    const auto it = std::upper_bound(times.begin(), times.end(), now);
    return it == times.end() ? -1 : *it;
}

void
OraclePolicy::onInvocationArrival(const FunctionSpec& function, TimeUs now)
{
    KeepAlivePolicy::onInvocationArrival(function, now);
}

std::vector<ContainerId>
OraclePolicy::selectVictims(ContainerPool& pool, MemMb needed_mb, TimeUs now)
{
    // Farthest next use goes first; never-used-again functions are the
    // farthest of all. Ties prefer freeing more memory per eviction.
    auto key = [&](const Container& c) {
        const TimeUs next = nextUseAfter(c.function(), now);
        return next < 0 ? std::numeric_limits<TimeUs>::max() : next;
    };
    return selectAscending(pool, needed_mb,
                           [&](const Container& a, const Container& b) {
                               const TimeUs ka = key(a);
                               const TimeUs kb = key(b);
                               if (ka != kb)
                                   return ka > kb;
                               if (a.memMb() != b.memMb())
                                   return a.memMb() > b.memMb();
                               return a.id() < b.id();
                           });
}

}  // namespace faascache

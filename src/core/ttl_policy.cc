#include "core/ttl_policy.h"

#include <cassert>

namespace faascache {

TtlPolicy::TtlPolicy(TimeUs ttl_us, TtlVictimOrder victim_order)
    : ttl_us_(ttl_us), victim_order_(victim_order)
{
    assert(ttl_us > 0);
}

std::vector<ContainerId>
TtlPolicy::selectVictims(ContainerPool& pool, MemMb needed_mb, TimeUs)
{
    if (victim_order_ == TtlVictimOrder::OldestCreated) {
        return selectAscending(pool, needed_mb,
                               [](const Container& a, const Container& b) {
                                   if (a.createdAt() != b.createdAt())
                                       return a.createdAt() < b.createdAt();
                                   return a.id() < b.id();
                               });
    }
    return selectAscending(pool, needed_mb,
                           [](const Container& a, const Container& b) {
                               if (a.lastUsed() != b.lastUsed())
                                   return a.lastUsed() < b.lastUsed();
                               return a.id() < b.id();
                           });
}

std::vector<ContainerId>
TtlPolicy::expiredContainers(const ContainerPool& pool, TimeUs now)
{
    std::vector<ContainerId> expired;
    pool.forEach([&](const Container& c) {
        if (c.idle() && now - c.lastUsed() >= ttl_us_)
            expired.push_back(c.id());
    });
    return expired;
}

}  // namespace faascache

/**
 * @file
 * Size-aware keep-alive ("SIZE" in the paper's figures, §4.2):
 * Greedy-Dual with priority 1/size. The largest idle containers are
 * terminated first, which is attractive when server memory is at a
 * premium; ties break toward least recently used.
 */
#ifndef FAASCACHE_CORE_SIZE_POLICY_H_
#define FAASCACHE_CORE_SIZE_POLICY_H_

#include <string>
#include <vector>

#include "core/keepalive_policy.h"

namespace faascache {

/** Size-only keep-alive (largest evicted first). */
class SizePolicy : public KeepAlivePolicy
{
  public:
    std::string name() const override { return "SIZE"; }

    std::vector<ContainerId> selectVictims(ContainerPool& pool,
                                           MemMb needed_mb,
                                           TimeUs now) override;
};

}  // namespace faascache

#endif  // FAASCACHE_CORE_SIZE_POLICY_H_

/**
 * @file
 * The histogram-based keep-alive policy of Shahrad et al. ("HIST" in the
 * paper's figures) — the state-of-the-art baseline the paper compares
 * against (§7.1). Effectively "TTL + prefetching":
 *
 *  - per function, inter-arrival times (execution time plus subsequent
 *    idle time) are recorded in minute-wide histogram buckets covering
 *    up to four hours;
 *  - the coefficient of variation of the IAT is maintained with
 *    Welford's online algorithm;
 *  - when the IAT is predictable (CoV <= 2 and enough in-window
 *    samples), the function's containers are released after execution
 *    and a fresh container is pre-warmed shortly before the predicted
 *    next invocation (head = 5th percentile x 0.85), then kept until the
 *    tail (99th percentile x 1.15);
 *  - otherwise the function falls back to a generic two-hour TTL.
 *
 * The policy considers only inter-arrival times — not size or
 * initialization cost — which is exactly the limitation the paper's
 * Greedy-Dual policy addresses. Under memory pressure it evicts in LRU
 * order, like TTL.
 */
#ifndef FAASCACHE_CORE_HISTOGRAM_POLICY_H_
#define FAASCACHE_CORE_HISTOGRAM_POLICY_H_

#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "core/keepalive_policy.h"
#include "util/histogram.h"
#include "util/welford.h"

namespace faascache {

/** Tunables of the HIST policy. */
struct HistogramPolicyConfig
{
    /** Histogram bucket width (minute granularity in the original). */
    TimeUs bucket_width_us = kMinute;

    /** Number of in-range buckets (4 hours in the original). */
    std::size_t num_buckets = 240;

    /** Functions with IAT CoV above this are unpredictable. */
    double cov_threshold = 2.0;

    /** Head (pre-warm) percentile of the IAT distribution. */
    double head_percentile = 0.05;

    /** Tail (keep-alive) percentile of the IAT distribution. */
    double tail_percentile = 0.99;

    /** Safety margins applied to head and tail. */
    double head_margin = 0.85;
    double tail_margin = 1.15;

    /** Fallback TTL for unpredictable functions (two hours). */
    TimeUs generic_ttl_us = 2 * kHour;

    /** Minimum IAT samples before trusting the histogram. */
    std::int64_t min_samples = 2;

    /** Heads shorter than this do not trigger release + prewarm (the
     *  container simply stays warm until the tail). */
    TimeUs prewarm_min_us = kMinute;

    /** Functions whose IATs overflow the histogram window more than
     *  this fraction of the time are unpredictable. */
    double max_out_of_bounds_fraction = 0.5;
};

/** Predicted keep-alive window for one function. */
struct KeepAliveWindow
{
    /** Whether the IAT histogram is trusted. */
    bool predictable = false;

    /** Release containers after execution and pre-warm this long after
     *  the last arrival (0 = no prewarming). */
    TimeUs prewarm_us = 0;

    /** Keep containers until this long after the last arrival. */
    TimeUs keepalive_us = 0;
};

/** Histogram-based TTL + prefetch keep-alive. */
class HistogramPolicy : public KeepAlivePolicy
{
  public:
    explicit HistogramPolicy(HistogramPolicyConfig config = {});

    std::string name() const override { return "HIST"; }

    void reserveFunctions(std::size_t n) override;

    void onInvocationArrival(const FunctionSpec& function,
                             TimeUs now) override;
    void onWarmStart(Container& container, const FunctionSpec& function,
                     TimeUs now) override;
    void onColdStart(Container& container, const FunctionSpec& function,
                     TimeUs now) override;
    void onPrewarm(Container& container, const FunctionSpec& function,
                   TimeUs now) override;
    void onEviction(const Container& container, bool last_of_function,
                    TimeUs now) override;

    std::vector<ContainerId> selectVictims(ContainerPool& pool,
                                           MemMb needed_mb,
                                           TimeUs now) override;
    std::vector<ContainerId> expiredContainers(const ContainerPool& pool,
                                               TimeUs now) override;
    std::vector<FunctionId> duePrewarms(TimeUs now) override;

    /** The current keep-alive window prediction for `function`. */
    KeepAliveWindow windowFor(FunctionId function) const;

    const HistogramPolicyConfig& config() const { return config_; }

  private:
    struct FunctionModel
    {
        Histogram iat_histogram;
        Welford iat_moments;
        TimeUs last_arrival_us = -1;

        explicit FunctionModel(const HistogramPolicyConfig& config)
            : iat_histogram(static_cast<double>(config.bucket_width_us),
                            config.num_buckets)
        {
        }
    };

    /** Model for `function`, creating it on first touch. */
    FunctionModel& modelOf(FunctionId function);

    /** Expiry assignment shared by cold/warm start handling. */
    void assignExpiry(Container& container, FunctionId function, TimeUs now);

    /** Store `deadline` as `container`'s lease. */
    void setLease(const Container& container, TimeUs deadline);

    /**
     * A keep-alive lease, keyed by pool slot. The stored id guards
     * against slot recycling: a lease is only valid for the container
     * whose id it recorded.
     */
    struct Lease
    {
        ContainerId id = kInvalidContainer;
        TimeUs deadline_us = 0;
    };

    HistogramPolicyConfig config_;
    /** Per-function IAT model, indexed by dense function id. */
    std::vector<std::optional<FunctionModel>> models_;
    /** Per-container lease, indexed by Container::poolSlot(). */
    std::vector<Lease> leases_;

    struct ScheduledPrewarm
    {
        TimeUs due_us;
        FunctionId function;

        bool operator>(const ScheduledPrewarm& other) const
        {
            if (due_us != other.due_us)
                return due_us > other.due_us;
            return function > other.function;
        }
    };
    std::priority_queue<ScheduledPrewarm, std::vector<ScheduledPrewarm>,
                        std::greater<>> prewarm_schedule_;
};

}  // namespace faascache

#endif  // FAASCACHE_CORE_HISTOGRAM_POLICY_H_

#include "core/function_stats.h"

namespace faascache {

const FunctionStats&
FunctionStatsTable::of(FunctionId function) const
{
    static const FunctionStats kZero;
    auto it = table_.find(function);
    return it == table_.end() ? kZero : it->second;
}

void
FunctionStatsTable::recordArrival(FunctionId function, TimeUs now)
{
    FunctionStats& s = table_[function];
    ++s.frequency;
    ++s.total_invocations;
    s.last_arrival_us = now;
}

void
FunctionStatsTable::resetFrequency(FunctionId function)
{
    auto it = table_.find(function);
    if (it != table_.end())
        it->second.frequency = 0;
}

}  // namespace faascache

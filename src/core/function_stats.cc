#include "core/function_stats.h"

#include <algorithm>

namespace faascache {

void
FunctionStatsTable::touch(FunctionId function)
{
    if (function >= table_.size()) {
        const std::size_t grown = std::max<std::size_t>(
            static_cast<std::size_t>(function) + 1, table_.size() * 2);
        table_.resize(grown);
        seen_.resize(grown, 0);
    }
    if (seen_[function] == 0) {
        seen_[function] = 1;
        ++observed_;
    }
}

void
FunctionStatsTable::recordArrival(FunctionId function, TimeUs now)
{
    FunctionStats& s = of(function);
    ++s.frequency;
    ++s.total_invocations;
    s.last_arrival_us = now;
}

void
FunctionStatsTable::resetFrequency(FunctionId function)
{
    if (function < table_.size())
        table_[function].frequency = 0;
}

void
FunctionStatsTable::reserve(std::size_t functions)
{
    table_.reserve(functions);
    seen_.reserve(functions);
}

}  // namespace faascache

/**
 * @file
 * The Greedy-Dual-Size-Frequency keep-alive policy (paper §4.1) — the
 * paper's primary contribution, labeled "GD" in its figures.
 *
 * Each container carries a priority
 *
 *     Priority = Clock + Frequency x Cost / Size
 *
 * where Clock is a per-server logical clock advanced to the priority of
 * evicted containers (an "aging" mechanism), Frequency is the function's
 * invocation count since it last had zero containers, Cost is the
 * initialization (cold-start) overhead, and Size is the container memory
 * footprint. The clock component is captured per container at its last
 * use, which breaks ties toward evicting the least recently used
 * container of a function. Lowest-priority idle containers are
 * terminated first. The policy is resource-conserving: nothing expires
 * by wall clock.
 *
 * Priorities are recomputed lazily at eviction time from each
 * container's clock snapshot and the function's current frequency; this
 * is observationally identical to the paper's eager update on every
 * invocation, because a function's frequency only changes when the
 * function itself is invoked (which refreshes its containers anyway).
 *
 * Victim selection comes in two engines (GdEvictionEngine):
 *
 *  - SortReference re-sorts every idle container on each eviction round
 *    — the original implementation, O(n log n) per round, kept as the
 *    conformance oracle;
 *  - LazyHeap (default) keeps a min-heap of (priority, lastUsed, id)
 *    snapshots taken when a container is used. Stale entries (dead,
 *    busy, superseded, or outdated-key) are skipped or re-keyed on pop,
 *    so a round costs O(k log n) for k popped entries. The two engines
 *    select identical victim sequences: a live container's priority
 *    triple never decreases (its clock snapshot is fixed until re-use,
 *    frequency is monotone while the function has containers, and
 *    cost/size are per-function constants), so every heap key is a
 *    lower bound of its container's current triple and the first popped
 *    entry whose key still matches its current triple is the exact
 *    minimum.
 */
#ifndef FAASCACHE_CORE_GREEDY_DUAL_H_
#define FAASCACHE_CORE_GREEDY_DUAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/keepalive_policy.h"
#include "core/size_norm.h"

namespace faascache {

/** Victim-selection implementation of the Greedy-Dual policy. */
enum class GdEvictionEngine
{
    /** Lazy-deletion min-heap over priority snapshots (fast path). */
    LazyHeap,
    /** Full re-sort of idle containers per round (reference oracle). */
    SortReference,
};

/** Tunables of the Greedy-Dual policy. */
struct GreedyDualConfig
{
    /**
     * Eviction batching (paper §6): when evicting, keep terminating
     * containers until this much memory is free, amortizing the
     * slow-path sort. Zero frees exactly what the new container needs.
     */
    MemMb batch_free_mb = 0.0;

    /**
     * @name Priority-term ablations
     * Each flag drops one term of Freq x Cost / Size (the clock term is
     * always present — dropping everything else yields plain LRU-like
     * aging). Used by the ablation benches; all true reproduces GDSF.
     * @{
     */
    bool use_frequency = true;  ///< false: Greedy-Dual-Size
    bool use_cost = true;       ///< false: cost treated as 1 second
    bool use_size = true;       ///< false: size treated as 1 MB
    /** @} */

    /**
     * Scalarization of the container size when the function declares a
     * multi-dimensional resource footprint (paper §4.1). MemoryOnly
     * matches the paper's default evaluation.
     */
    SizeNorm size_norm = SizeNorm::MemoryOnly;

    /** Server resource totals used by the normalized/cosine norms. */
    ResourceVector server_resources = ResourceVector{48.0, 48.0 * 1024.0,
                                                     100.0};

    /**
     * Victim-selection engine. LazyHeap and SortReference are
     * conformance-tested to produce identical victim sequences; the
     * sort engine exists as the oracle and for A/B benchmarking.
     */
    GdEvictionEngine eviction_engine = GdEvictionEngine::LazyHeap;
};

/** Greedy-Dual-Size-Frequency keep-alive. */
class GreedyDualPolicy : public KeepAlivePolicy
{
  public:
    explicit GreedyDualPolicy(GreedyDualConfig config = {});

    std::string name() const override { return "GD"; }

    void reserveFunctions(std::size_t n) override;

    void onWarmStart(Container& container, const FunctionSpec& function,
                     TimeUs now) override;
    void onColdStart(Container& container, const FunctionSpec& function,
                     TimeUs now) override;
    void onEviction(const Container& container, bool last_of_function,
                    TimeUs now) override;
    std::vector<ContainerId> selectVictims(ContainerPool& pool,
                                           MemMb needed_mb,
                                           TimeUs now) override;

    /** Current logical clock (for tests and introspection). */
    double clock() const { return clock_; }

    /**
     * The priority a container of `function` would get if used now,
     * given the current clock and frequency.
     */
    double priorityOf(const FunctionSpec& function) const;

    /** Live heap entries, stale included (tests and introspection). */
    std::size_t heapSize() const { return heap_.size(); }

  private:
    /** Frequency x cost / size term for `function` under the current
     *  frequency (no clock component). */
    double valueTerm(FunctionId function) const;

    /** Stamp the container's clock snapshot and priority at use. */
    void touch(Container& container, const FunctionSpec& function);

    /** The "Size" of a function's container under the configured norm. */
    double scalarSizeOf(const FunctionSpec& function) const;

    /** Priority of a live container under the current frequency. */
    double containerPriority(const Container& container) const;

    std::vector<ContainerId> selectVictimsSort(ContainerPool& pool,
                                               MemMb needed_mb);
    std::vector<ContainerId> selectVictimsHeap(ContainerPool& pool,
                                               MemMb needed_mb);

    /** A (priority, lastUsed, id) snapshot; seq marks the live one.
     *  `slot` keys the dense live-seq table (ids never recycle, seqs are
     *  globally unique, so a recycled slot cannot false-match). */
    struct HeapEntry
    {
        double priority;
        TimeUs last_used;
        ContainerId id;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /** Heap comparator: a ordered after b (std::*_heap min-heap). */
    static bool entryAfter(const HeapEntry& a, const HeapEntry& b);

    /** Push a fresh snapshot for `c`, superseding its previous entry. */
    void pushEntry(const Container& c);

    /** Drop superseded entries once they dominate the heap. */
    void maybeCompact();

    struct CostSize
    {
        double cost_sec = 0.0;
        /** Scalarized size under the configured SizeNorm; zero marks a
         *  function never touched (sizes of real functions are > 0). */
        double size = 0.0;
    };

    /** Invalidate the live entry keyed at `slot`, if any. */
    void dropEntry(std::uint32_t slot);

    GreedyDualConfig config_;
    double clock_ = 0.0;
    /** Per-function cost/size, indexed by dense function id. */
    std::vector<CostSize> characteristics_;

    /** Min-heap (via std::*_heap with a greater-than comparator). */
    std::vector<HeapEntry> heap_;
    /** Seq of each pool slot's current (non-superseded) entry; zero =
     *  none. Indexed by Container::poolSlot(). */
    std::vector<std::uint64_t> entry_seq_;
    /** Number of non-zero entries in entry_seq_ (compaction trigger). */
    std::size_t live_entries_ = 0;
    std::uint64_t next_seq_ = 1;
};

}  // namespace faascache

#endif  // FAASCACHE_CORE_GREEDY_DUAL_H_

#include "core/warm_pool_policy.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace faascache {

WarmPoolPolicy::WarmPoolPolicy(std::size_t pool_size)
    : pool_size_(pool_size)
{
    assert(pool_size >= 1);
}

std::vector<ContainerId>
WarmPoolPolicy::selectVictims(ContainerPool& pool, MemMb needed_mb, TimeUs)
{
    // Under pressure the per-function budget no longer matters: free
    // memory in LRU order like the simple baselines.
    return selectAscending(pool, needed_mb,
                           [](const Container& a, const Container& b) {
                               if (a.lastUsed() != b.lastUsed())
                                   return a.lastUsed() < b.lastUsed();
                               return a.id() < b.id();
                           });
}

std::vector<ContainerId>
WarmPoolPolicy::expiredContainers(const ContainerPool& pool, TimeUs)
{
    // Group idle containers per function, newest first; everything past
    // the budget is released.
    std::unordered_map<FunctionId, std::vector<const Container*>> idle;
    pool.forEach([&](const Container& c) {
        if (c.idle())
            idle[c.function()].push_back(&c);
    });

    std::vector<ContainerId> surplus;
    for (auto& [function, containers] : idle) {
        if (containers.size() <= pool_size_)
            continue;
        std::sort(containers.begin(), containers.end(),
                  [](const Container* a, const Container* b) {
                      if (a->lastUsed() != b->lastUsed())
                          return a->lastUsed() > b->lastUsed();
                      return a->id() > b->id();
                  });
        for (std::size_t i = pool_size_; i < containers.size(); ++i)
            surplus.push_back(containers[i]->id());
    }
    std::sort(surplus.begin(), surplus.end());
    return surplus;
}

}  // namespace faascache

#include "core/warm_pool_policy.h"

#include <algorithm>
#include <cassert>

namespace faascache {

WarmPoolPolicy::WarmPoolPolicy(std::size_t pool_size)
    : pool_size_(pool_size)
{
    assert(pool_size >= 1);
}

std::vector<ContainerId>
WarmPoolPolicy::selectVictims(ContainerPool& pool, MemMb needed_mb, TimeUs)
{
    // Under pressure the per-function budget no longer matters: free
    // memory in LRU order like the simple baselines.
    return selectAscending(pool, needed_mb,
                           [](const Container& a, const Container& b) {
                               if (a.lastUsed() != b.lastUsed())
                                   return a.lastUsed() < b.lastUsed();
                               return a.id() < b.id();
                           });
}

std::vector<ContainerId>
WarmPoolPolicy::expiredContainers(const ContainerPool& pool, TimeUs)
{
    // Group idle containers per function (one sort, no hashing), newest
    // first within a function; everything past the budget is released.
    std::vector<const Container*> idle;
    pool.forEach([&idle](const Container& c) {
        if (c.idle())
            idle.push_back(&c);
    });
    std::sort(idle.begin(), idle.end(),
              [](const Container* a, const Container* b) {
                  if (a->function() != b->function())
                      return a->function() < b->function();
                  if (a->lastUsed() != b->lastUsed())
                      return a->lastUsed() > b->lastUsed();
                  return a->id() > b->id();
              });

    std::vector<ContainerId> surplus;
    std::size_t run = 0;
    for (std::size_t i = 0; i < idle.size(); ++i) {
        run = (i > 0 && idle[i]->function() == idle[i - 1]->function())
            ? run + 1 : 0;
        if (run >= pool_size_)
            surplus.push_back(idle[i]->id());
    }
    std::sort(surplus.begin(), surplus.end());
    return surplus;
}

}  // namespace faascache

/**
 * @file
 * The keep-alive policy interface (paper §4).
 *
 * A keep-alive policy is the FaaS analogue of a cache eviction policy:
 * it decides which warm containers to terminate when a new container
 * must be launched and memory is insufficient, and — for non
 * resource-conserving policies such as TTL and HIST — which containers'
 * keep-alive leases have expired. The same interface drives both the
 * trace simulator (§7.1) and the OpenWhisk-like platform model (§7.2).
 */
#ifndef FAASCACHE_CORE_KEEPALIVE_POLICY_H_
#define FAASCACHE_CORE_KEEPALIVE_POLICY_H_

#include <functional>
#include <string>
#include <vector>

#include "core/container_pool.h"
#include "core/function_stats.h"
#include "trace/function_spec.h"

namespace faascache {

/** Abstract keep-alive (container termination) policy. */
class KeepAlivePolicy
{
  public:
    virtual ~KeepAlivePolicy() = default;

    /** Short policy name as used in the paper's figures (GD, TTL, ...). */
    virtual std::string name() const = 0;

    /**
     * Allocation hint: function ids will fall in [0, n). Drivers call
     * this once with the trace catalog size before the run so dense
     * per-function tables can be sized up front. Overrides must call the
     * base. Never required for correctness — tables grow on demand.
     */
    virtual void reserveFunctions(std::size_t n);

    /**
     * Notification: an invocation of `function` arrived at `now`, before
     * any placement decision. Default updates the shared function stats;
     * overrides must call the base.
     */
    virtual void onInvocationArrival(const FunctionSpec& function,
                                     TimeUs now);

    /** Notification: the invocation was served warm by `container`. */
    virtual void onWarmStart(Container& container,
                             const FunctionSpec& function, TimeUs now);

    /** Notification: `container` was just created by a cold start. */
    virtual void onColdStart(Container& container,
                             const FunctionSpec& function, TimeUs now);

    /**
     * Notification: `container` was created by proactive prewarming
     * (only HIST requests prewarms). Default treats it as a cold start
     * for bookkeeping.
     */
    virtual void onPrewarm(Container& container,
                           const FunctionSpec& function, TimeUs now);

    /**
     * Notification: `container` was terminated (for space, expiry, or a
     * capacity shrink). Default resets the function's frequency when its
     * last container goes away; overrides must call the base.
     *
     * @param last_of_function Whether the function now has no containers.
     */
    virtual void onEviction(const Container& container,
                            bool last_of_function, TimeUs now);

    /**
     * Decision: pick idle containers to terminate so that at least
     * `needed_mb` MB are freed (the driver asks only when the pool
     * cannot fit a new container). Implementations terminate lowest
     * priority first. If the idle containers cannot cover `needed_mb`,
     * returns the best effort (possibly all idle containers); the driver
     * then drops the request.
     *
     * The pool is non-const because some policies (Landlord) update
     * per-container bookkeeping while deciding.
     */
    virtual std::vector<ContainerId> selectVictims(ContainerPool& pool,
                                                   MemMb needed_mb,
                                                   TimeUs now) = 0;

    /**
     * Decision: idle containers whose keep-alive lease expired at `now`.
     * Resource-conserving policies (the caching family) return {} — they
     * keep containers until memory pressure (paper §4.1).
     */
    virtual std::vector<ContainerId> expiredContainers(
        const ContainerPool& pool, TimeUs now);

    /**
     * Decision: functions that should be prewarmed at or before `now`.
     * Entries returned are consumed from the internal schedule. Only the
     * HIST policy uses this.
     */
    virtual std::vector<FunctionId> duePrewarms(TimeUs now);

    /** Shared per-function statistics. */
    const FunctionStatsTable& stats() const { return stats_; }

  protected:
    /**
     * Helper: greedily select idle containers in ascending `less` order
     * until at least `needed_mb` MB would be freed (best effort).
     */
    static std::vector<ContainerId> selectAscending(
        ContainerPool& pool, MemMb needed_mb,
        const std::function<bool(const Container&, const Container&)>& less);

    FunctionStatsTable stats_;
};

}  // namespace faascache

#endif  // FAASCACHE_CORE_KEEPALIVE_POLICY_H_

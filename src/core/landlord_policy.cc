#include "core/landlord_policy.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace faascache {

namespace {

/** Credit granted on use: the initialization cost in seconds. */
double
grantCredit(const FunctionSpec& function)
{
    return toSeconds(function.initTime());
}

}  // namespace

void
LandlordPolicy::onWarmStart(Container& container,
                            const FunctionSpec& function, TimeUs)
{
    container.setCredit(grantCredit(function));
}

void
LandlordPolicy::onColdStart(Container& container,
                            const FunctionSpec& function, TimeUs)
{
    container.setCredit(grantCredit(function));
}

std::vector<ContainerId>
LandlordPolicy::selectVictims(ContainerPool& pool, MemMb needed_mb, TimeUs)
{
    constexpr double kEps = 1e-12;
    std::vector<Container*> idle = pool.idleContainers();
    std::vector<ContainerId> victims;
    MemMb freed = 0;

    while (freed < needed_mb && !idle.empty()) {
        // Rent: the smallest credit density among remaining candidates.
        double delta = std::numeric_limits<double>::infinity();
        for (const Container* c : idle) {
            assert(c->memMb() > 0);
            delta = std::min(delta, c->credit() / c->memMb());
        }
        // Charge everyone; collect the containers run out of credit.
        std::vector<Container*> still_solvent;
        still_solvent.reserve(idle.size());
        // Evict insolvent containers in deterministic (LRU, id) order.
        std::vector<Container*> insolvent;
        for (Container* c : idle) {
            c->setCredit(c->credit() - delta * c->memMb());
            if (c->credit() <= kEps) {
                c->setCredit(0.0);
                insolvent.push_back(c);
            } else {
                still_solvent.push_back(c);
            }
        }
        std::sort(insolvent.begin(), insolvent.end(),
                  [](const Container* a, const Container* b) {
                      if (a->lastUsed() != b->lastUsed())
                          return a->lastUsed() < b->lastUsed();
                      return a->id() < b->id();
                  });
        for (Container* c : insolvent) {
            if (freed >= needed_mb) {
                // Spare the rest; they keep zero credit until next use.
                still_solvent.push_back(c);
                continue;
            }
            victims.push_back(c->id());
            freed += c->memMb();
        }
        idle = std::move(still_solvent);
    }
    return victims;
}

}  // namespace faascache

/**
 * @file
 * Per-function runtime statistics shared by keep-alive policies.
 *
 * Tracks the invocation frequency used by Greedy-Dual and LFU. Following
 * the paper (§4.1), "frequency" counts invocations across all of a
 * function's containers and resets to zero when the function's last
 * container is terminated.
 *
 * FunctionId is a dense uint32 assigned by the trace catalog, so the
 * table is a flat vector indexed by id — a per-arrival array load on the
 * hot path instead of a hash probe (DESIGN.md §4d).
 */
#ifndef FAASCACHE_CORE_FUNCTION_STATS_H_
#define FAASCACHE_CORE_FUNCTION_STATS_H_

#include <cstdint>
#include <vector>

#include "util/types.h"

namespace faascache {

/** Mutable statistics for one function. */
struct FunctionStats
{
    /** Invocations since the function last had zero containers. */
    std::int64_t frequency = 0;

    /** Lifetime invocation count (never reset). */
    std::int64_t total_invocations = 0;

    /** Arrival time of the most recent invocation; -1 if none. */
    TimeUs last_arrival_us = -1;
};

/** Table of FunctionStats indexed by dense function id. */
class FunctionStatsTable
{
  public:
    /** Stats for `function`, default-constructed on first access. */
    FunctionStats& of(FunctionId function)
    {
        touch(function);
        return table_[function];
    }

    /** Read-only lookup; returns a zero value if never seen. */
    const FunctionStats& of(FunctionId function) const
    {
        static const FunctionStats kZero;
        return function < table_.size() ? table_[function] : kZero;
    }

    /** Record an invocation arrival. */
    void recordArrival(FunctionId function, TimeUs now);

    /** Reset the Greedy-Dual frequency (last container evicted). */
    void resetFrequency(FunctionId function);

    /** Pre-size for ids in [0, functions) (allocation hint only). */
    void reserve(std::size_t functions);

    /** Number of functions ever observed. */
    std::size_t size() const { return observed_; }

  private:
    /** Ensure `function` is in range and counted as observed. */
    void touch(FunctionId function);

    std::vector<FunctionStats> table_;
    /** Parallel observed-markers; `table_` slots default to zero stats,
     *  so this only feeds the observed-function count. */
    std::vector<std::uint8_t> seen_;
    std::size_t observed_ = 0;
};

}  // namespace faascache

#endif  // FAASCACHE_CORE_FUNCTION_STATS_H_

/**
 * @file
 * Per-function runtime statistics shared by keep-alive policies.
 *
 * Tracks the invocation frequency used by Greedy-Dual and LFU. Following
 * the paper (§4.1), "frequency" counts invocations across all of a
 * function's containers and resets to zero when the function's last
 * container is terminated.
 */
#ifndef FAASCACHE_CORE_FUNCTION_STATS_H_
#define FAASCACHE_CORE_FUNCTION_STATS_H_

#include <cstdint>
#include <unordered_map>

#include "util/types.h"

namespace faascache {

/** Mutable statistics for one function. */
struct FunctionStats
{
    /** Invocations since the function last had zero containers. */
    std::int64_t frequency = 0;

    /** Lifetime invocation count (never reset). */
    std::int64_t total_invocations = 0;

    /** Arrival time of the most recent invocation; -1 if none. */
    TimeUs last_arrival_us = -1;
};

/** Table of FunctionStats keyed by function id. */
class FunctionStatsTable
{
  public:
    /** Stats for `function`, default-constructed on first access. */
    FunctionStats& of(FunctionId function) { return table_[function]; }

    /** Read-only lookup; returns a zero value if never seen. */
    const FunctionStats& of(FunctionId function) const;

    /** Record an invocation arrival. */
    void recordArrival(FunctionId function, TimeUs now);

    /** Reset the Greedy-Dual frequency (last container evicted). */
    void resetFrequency(FunctionId function);

    /** Number of functions ever observed. */
    std::size_t size() const { return table_.size(); }

  private:
    std::unordered_map<FunctionId, FunctionStats> table_;
};

}  // namespace faascache

#endif  // FAASCACHE_CORE_FUNCTION_STATS_H_

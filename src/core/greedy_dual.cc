#include "core/greedy_dual.h"

#include <algorithm>
#include <cassert>

namespace faascache {

GreedyDualPolicy::GreedyDualPolicy(GreedyDualConfig config) : config_(config)
{
}

double
GreedyDualPolicy::valueTerm(FunctionId function) const
{
    auto it = characteristics_.find(function);
    if (it == characteristics_.end())
        return 0.0;
    const double freq = config_.use_frequency
        ? static_cast<double>(std::max<std::int64_t>(
              1, stats_.of(function).frequency))
        : 1.0;
    const double cost = config_.use_cost ? it->second.cost_sec : 1.0;
    const double size = config_.use_size ? it->second.size : 1.0;
    return freq * cost / size;
}

double
GreedyDualPolicy::scalarSizeOf(const FunctionSpec& function) const
{
    return scalarSize(resourceVectorOf(function), config_.server_resources,
                      config_.size_norm);
}

double
GreedyDualPolicy::priorityOf(const FunctionSpec& function) const
{
    const double freq = config_.use_frequency
        ? static_cast<double>(std::max<std::int64_t>(
              1, stats_.of(function.id).frequency))
        : 1.0;
    const double cost =
        config_.use_cost ? toSeconds(function.initTime()) : 1.0;
    const double size = config_.use_size ? scalarSizeOf(function) : 1.0;
    return clock_ + freq * cost / size;
}

void
GreedyDualPolicy::touch(Container& container, const FunctionSpec& function)
{
    assert(function.mem_mb > 0);
    characteristics_[function.id] =
        CostSize{toSeconds(function.initTime()), scalarSizeOf(function)};
    container.setPolicyClock(clock_);
    container.setPriority(clock_ + valueTerm(function.id));
}

void
GreedyDualPolicy::onWarmStart(Container& container,
                              const FunctionSpec& function, TimeUs)
{
    touch(container, function);
}

void
GreedyDualPolicy::onColdStart(Container& container,
                              const FunctionSpec& function, TimeUs)
{
    touch(container, function);
}

double
GreedyDualPolicy::containerPriority(const Container& container) const
{
    return container.policyClock() + valueTerm(container.function());
}

std::vector<ContainerId>
GreedyDualPolicy::selectVictims(ContainerPool& pool, MemMb needed_mb, TimeUs)
{
    // Eviction batching: free up to the configured threshold in one
    // slow-path pass.
    const MemMb target =
        std::max(needed_mb, config_.batch_free_mb - pool.freeMb());

    std::vector<Container*> idle = pool.idleContainers();
    for (Container* c : idle)
        c->setPriority(containerPriority(*c));
    std::sort(idle.begin(), idle.end(),
              [](const Container* a, const Container* b) {
                  if (a->priority() != b->priority())
                      return a->priority() < b->priority();
                  if (a->lastUsed() != b->lastUsed())
                      return a->lastUsed() < b->lastUsed();
                  return a->id() < b->id();
              });

    std::vector<ContainerId> victims;
    MemMb freed = 0;
    double max_evicted_priority = clock_;
    for (const Container* c : idle) {
        if (freed >= target)
            break;
        victims.push_back(c->id());
        freed += c->memMb();
        max_evicted_priority = std::max(max_evicted_priority, c->priority());
    }
    // Clock advances to the highest evicted priority (paper §4.1:
    // Clock = max over the evicted set).
    if (freed >= needed_mb && !victims.empty())
        clock_ = max_evicted_priority;
    return victims;
}

}  // namespace faascache

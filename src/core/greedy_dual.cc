#include "core/greedy_dual.h"

#include <algorithm>
#include <cassert>

namespace faascache {

namespace {

/** Lexicographic (priority, lastUsed, id) — the eviction order. */
struct TripleLess
{
    bool
    operator()(double pa, TimeUs la, ContainerId ia, double pb, TimeUs lb,
               ContainerId ib) const
    {
        if (pa != pb)
            return pa < pb;
        if (la != lb)
            return la < lb;
        return ia < ib;
    }
};

}  // namespace

GreedyDualPolicy::GreedyDualPolicy(GreedyDualConfig config) : config_(config)
{
}

void
GreedyDualPolicy::reserveFunctions(std::size_t n)
{
    KeepAlivePolicy::reserveFunctions(n);
    characteristics_.reserve(n);
}

double
GreedyDualPolicy::valueTerm(FunctionId function) const
{
    if (function >= characteristics_.size() ||
        characteristics_[function].size == 0.0) {
        return 0.0;
    }
    const CostSize& cs = characteristics_[function];
    const double freq = config_.use_frequency
        ? static_cast<double>(std::max<std::int64_t>(
              1, stats_.of(function).frequency))
        : 1.0;
    const double cost = config_.use_cost ? cs.cost_sec : 1.0;
    const double size = config_.use_size ? cs.size : 1.0;
    return freq * cost / size;
}

double
GreedyDualPolicy::scalarSizeOf(const FunctionSpec& function) const
{
    return scalarSize(resourceVectorOf(function), config_.server_resources,
                      config_.size_norm);
}

double
GreedyDualPolicy::priorityOf(const FunctionSpec& function) const
{
    const double freq = config_.use_frequency
        ? static_cast<double>(std::max<std::int64_t>(
              1, stats_.of(function.id).frequency))
        : 1.0;
    const double cost =
        config_.use_cost ? toSeconds(function.initTime()) : 1.0;
    const double size = config_.use_size ? scalarSizeOf(function) : 1.0;
    return clock_ + freq * cost / size;
}

void
GreedyDualPolicy::touch(Container& container, const FunctionSpec& function)
{
    assert(function.mem_mb > 0);
    if (function.id >= characteristics_.size()) {
        characteristics_.resize(std::max<std::size_t>(
            static_cast<std::size_t>(function.id) + 1,
            characteristics_.size() * 2));
    }
    characteristics_[function.id] =
        CostSize{toSeconds(function.initTime()), scalarSizeOf(function)};
    assert(characteristics_[function.id].size > 0.0);
    container.setPolicyClock(clock_);
    container.setPriority(clock_ + valueTerm(function.id));
    if (config_.eviction_engine == GdEvictionEngine::LazyHeap)
        pushEntry(container);
}

void
GreedyDualPolicy::onWarmStart(Container& container,
                              const FunctionSpec& function, TimeUs)
{
    touch(container, function);
}

void
GreedyDualPolicy::onColdStart(Container& container,
                              const FunctionSpec& function, TimeUs)
{
    touch(container, function);
}

void
GreedyDualPolicy::onEviction(const Container& container,
                             bool last_of_function, TimeUs now)
{
    // Superseding rather than erasing from the middle of the heap: any
    // remaining entries for this container become stale and are skipped
    // on pop.
    dropEntry(container.poolSlot());
    KeepAlivePolicy::onEviction(container, last_of_function, now);
}

double
GreedyDualPolicy::containerPriority(const Container& container) const
{
    return container.policyClock() + valueTerm(container.function());
}

bool
GreedyDualPolicy::entryAfter(const HeapEntry& a, const HeapEntry& b)
{
    return TripleLess{}(b.priority, b.last_used, b.id, a.priority,
                        a.last_used, a.id);
}

void
GreedyDualPolicy::dropEntry(std::uint32_t slot)
{
    if (slot < entry_seq_.size() && entry_seq_[slot] != 0) {
        entry_seq_[slot] = 0;
        --live_entries_;
    }
}

void
GreedyDualPolicy::pushEntry(const Container& c)
{
    const std::uint32_t slot = c.poolSlot();
    if (slot >= entry_seq_.size()) {
        entry_seq_.resize(std::max<std::size_t>(
            static_cast<std::size_t>(slot) + 1, entry_seq_.size() * 2), 0);
    }
    HeapEntry entry{containerPriority(c), c.lastUsed(), c.id(), next_seq_++,
                    slot};
    if (entry_seq_[slot] == 0)
        ++live_entries_;
    entry_seq_[slot] = entry.seq;
    heap_.push_back(entry);
    std::push_heap(heap_.begin(), heap_.end(), &entryAfter);
}

void
GreedyDualPolicy::maybeCompact()
{
    if (heap_.size() < 64 || heap_.size() < 4 * live_entries_)
        return;
    std::erase_if(heap_, [this](const HeapEntry& e) {
        return e.slot >= entry_seq_.size() || entry_seq_[e.slot] != e.seq;
    });
    std::make_heap(heap_.begin(), heap_.end(), &entryAfter);
}

std::vector<ContainerId>
GreedyDualPolicy::selectVictims(ContainerPool& pool, MemMb needed_mb, TimeUs)
{
    return config_.eviction_engine == GdEvictionEngine::LazyHeap
        ? selectVictimsHeap(pool, needed_mb)
        : selectVictimsSort(pool, needed_mb);
}

std::vector<ContainerId>
GreedyDualPolicy::selectVictimsSort(ContainerPool& pool, MemMb needed_mb)
{
    // Eviction batching: free up to the configured threshold in one
    // slow-path pass.
    const MemMb target =
        std::max(needed_mb, config_.batch_free_mb - pool.freeMb());

    std::vector<Container*> idle = pool.idleContainers();
    for (Container* c : idle)
        c->setPriority(containerPriority(*c));
    std::sort(idle.begin(), idle.end(),
              [](const Container* a, const Container* b) {
                  if (a->priority() != b->priority())
                      return a->priority() < b->priority();
                  if (a->lastUsed() != b->lastUsed())
                      return a->lastUsed() < b->lastUsed();
                  return a->id() < b->id();
              });

    std::vector<ContainerId> victims;
    MemMb freed = 0;
    double max_evicted_priority = clock_;
    for (const Container* c : idle) {
        if (freed >= target)
            break;
        victims.push_back(c->id());
        freed += c->memMb();
        max_evicted_priority = std::max(max_evicted_priority, c->priority());
    }
    // Clock advances to the highest evicted priority (paper §4.1:
    // Clock = max over the evicted set).
    if (freed >= needed_mb && !victims.empty())
        clock_ = max_evicted_priority;
    return victims;
}

std::vector<ContainerId>
GreedyDualPolicy::selectVictimsHeap(ContainerPool& pool, MemMb needed_mb)
{
    const MemMb target =
        std::max(needed_mb, config_.batch_free_mb - pool.freeMb());

    const auto pop_min = [this]() {
        std::pop_heap(heap_.begin(), heap_.end(), &entryAfter);
        HeapEntry e = heap_.back();
        heap_.pop_back();
        return e;
    };

    std::vector<ContainerId> victims;
    std::vector<const Container*> selected;
    std::vector<const Container*> deferred_busy;
    MemMb freed = 0;
    double max_evicted_priority = clock_;
    while (freed < target && !heap_.empty()) {
        const HeapEntry e = pop_min();
        if (e.slot >= entry_seq_.size() || entry_seq_[e.slot] != e.seq)
            continue;  // superseded or already evicted
        Container* c = pool.get(e.id);
        if (c == nullptr) {
            // Removed without an onEviction notification (defensive).
            dropEntry(e.slot);
            continue;
        }
        if (c->busy()) {
            // Not an eviction candidate; park it outside the heap for
            // the rest of this round so it cannot be popped again.
            dropEntry(e.slot);
            deferred_busy.push_back(c);
            continue;
        }
        const double current = containerPriority(*c);
        if (current != e.priority || c->lastUsed() != e.last_used) {
            // Key grew since the snapshot (frequency moved on): re-key
            // and keep popping. The re-pushed key is exact, so the entry
            // competes at its true priority from now on.
            c->setPriority(current);
            pushEntry(*c);
            continue;
        }
        // Key matches the container's current triple, and every other
        // candidate's key is a lower bound of its own triple, so this
        // is exactly the sort engine's next victim.
        c->setPriority(current);
        victims.push_back(e.id);
        selected.push_back(c);
        dropEntry(e.slot);
        freed += c->memMb();
        max_evicted_priority = std::max(max_evicted_priority, current);
    }
    // Victims are only *proposed*: the driver declines them (dropping
    // the request) when even this best effort cannot cover needed_mb.
    // Re-insert everything popped; an actual eviction invalidates the
    // new entry through onEviction.
    for (const Container* c : selected)
        pushEntry(*c);
    for (const Container* c : deferred_busy)
        pushEntry(*c);
    if (freed >= needed_mb && !victims.empty())
        clock_ = max_evicted_priority;
    maybeCompact();
    return victims;
}

}  // namespace faascache

/**
 * @file
 * Shared resume/journal wiring for harnessed sweeps.
 *
 * Every sweep flavour (platform, cluster, elastic) opens its checkpoint
 * journal the same way: validate the grid fingerprint, decode the
 * journaled records with the flavour's typed codec, pre-mark restored
 * cells Ok so the harness skips them, and reopen the journal for
 * appending at the end of the valid prefix. openSweepJournal() is that
 * wiring, templated on the result type and payload decoder. (The sim
 * sweep predates this helper and keeps its own equivalent wiring in
 * sim/sweep_runner.cc.)
 */
#ifndef FAASCACHE_UTIL_SWEEP_JOURNAL_H_
#define FAASCACHE_UTIL_SWEEP_JOURNAL_H_

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/cell_harness.h"
#include "util/checkpoint_journal.h"

namespace faascache {

/**
 * Open the checkpoint journal for a harnessed sweep, restoring any
 * journaled cells into `outcomes` first.
 *
 * @param checkpoint_path Journal file; empty disables checkpointing
 *                        (returns null).
 * @param resume          Restore from an existing journal instead of
 *                        starting fresh.
 * @param who             Caller name for error/warning messages.
 * @param fingerprint     This grid's fingerprint; a resumed journal
 *                        must carry the same one.
 * @param keys            Effective per-cell keys, indexed like
 *                        `outcomes`.
 * @param outcomes        Pre-sized outcome slots; restored cells are
 *                        marked Ok with `restored` set.
 * @param restored_count  Incremented once per restored cell.
 * @param torn_tail       Set when the journal's tail was truncated.
 * @param decode          Typed payload decoder:
 *                        bool(const std::string&, std::string*, Result*).
 *                        A checksum-valid record that fails to decode
 *                        ends the valid prefix exactly like a torn
 *                        tail.
 *
 * @throws std::invalid_argument when resume is requested without a
 *         checkpoint path.
 * @throws std::runtime_error when the journal cannot be read or
 *         belongs to a different grid.
 */
template <typename Result, typename DecodeFn>
std::unique_ptr<CheckpointJournalWriter>
openSweepJournal(const std::string& checkpoint_path, bool resume,
                 const char* who, std::uint64_t fingerprint,
                 const std::vector<std::string>& keys,
                 std::vector<CellOutcome<Result>>& outcomes,
                 std::size_t* restored_count, bool* torn_tail,
                 DecodeFn decode)
{
    if (checkpoint_path.empty()) {
        if (resume)
            throw std::invalid_argument(
                std::string(who) +
                ": resume requested without a checkpoint path");
        return nullptr;
    }
    if (!resume)
        return std::make_unique<CheckpointJournalWriter>(
            CheckpointJournalWriter::beginFresh(checkpoint_path,
                                                fingerprint));

    CheckpointJournalLoad load = loadCheckpointJournal(checkpoint_path);
    if (load.fingerprint != fingerprint) {
        char want[24], got[24];
        std::snprintf(want, sizeof want, "%016" PRIx64, fingerprint);
        std::snprintf(got, sizeof got, "%016" PRIx64, load.fingerprint);
        throw std::runtime_error(
            std::string(who) + ": checkpoint " + checkpoint_path +
            " belongs to a different sweep grid (fingerprint " + got +
            ", this grid is " + want + "); refusing to resume");
    }

    std::unordered_map<std::string, Result> restored;
    std::size_t prefix = load.header_bytes;
    bool torn = load.torn_tail;
    for (const CheckpointJournalRecord& record : load.records) {
        std::string key;
        Result result;
        if (!decode(record.payload, &key, &result)) {
            torn = true;
            break;
        }
        restored[key] = std::move(result);  // last record wins
        prefix = record.end_offset;
    }
    const std::size_t valid_bytes =
        prefix < load.valid_bytes ? prefix : load.valid_bytes;
    if (torn) {
        *torn_tail = true;
        std::fprintf(stderr,
                     "%s: checkpoint %s has a torn tail (record cut "
                     "mid-write); truncating to %zu valid bytes and "
                     "re-running the affected cell\n",
                     who, checkpoint_path.c_str(), valid_bytes);
    }
    for (std::size_t i = 0; i < keys.size(); ++i) {
        auto it = restored.find(keys[i]);
        if (it == restored.end())
            continue;
        outcomes[i].status = CellStatus::Ok;
        outcomes[i].result = it->second;
        outcomes[i].restored = true;
        ++*restored_count;
    }
    return std::make_unique<CheckpointJournalWriter>(
        CheckpointJournalWriter::continueAt(checkpoint_path, valid_bytes));
}

}  // namespace faascache

#endif  // FAASCACHE_UTIL_SWEEP_JOURNAL_H_

#include "util/audit.h"

#include <sstream>
#include <utility>

namespace faascache {

std::string
AuditViolation::format() const
{
    std::ostringstream out;
    out << invariant << " @" << time_us;
    if (entity >= 0)
        out << " entity=" << entity;
    out << ": " << detail;
    return out.str();
}

void
Auditor::fail(const char* invariant, TimeUs time_us, std::int64_t entity,
              std::string detail)
{
    if (mode_ == AuditMode::Off)
        return;  // inert even when a hook site skips the enabled() guard
    std::lock_guard<std::mutex> lock(mutex_);
    ++count_;
    if (stored_.size() < kMaxStored) {
        AuditViolation v;
        v.invariant = invariant;
        v.time_us = time_us;
        v.entity = entity;
        v.detail = std::move(detail);
        stored_.push_back(std::move(v));
    }
}

std::int64_t
Auditor::violationCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
}

std::vector<AuditViolation>
Auditor::violations() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stored_;
}

std::string
Auditor::report() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0)
        return "";
    std::ostringstream out;
    out << count_ << " invariant violation(s)";
    if (static_cast<std::size_t>(count_) > stored_.size())
        out << " (first " << stored_.size() << " shown)";
    out << ":\n";
    for (const AuditViolation& v : stored_)
        out << "  " << v.format() << '\n';
    return out.str();
}

void
Auditor::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    count_ = 0;
    stored_.clear();
}

}  // namespace faascache

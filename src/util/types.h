/**
 * @file
 * Fundamental scalar types and unit helpers shared across FaasCache.
 *
 * Time is represented as signed 64-bit microseconds so that event ordering
 * is exact and deterministic. Memory is represented in megabytes as a
 * double, matching the granularity of the Azure trace and of container
 * memory limits.
 */
#ifndef FAASCACHE_UTIL_TYPES_H_
#define FAASCACHE_UTIL_TYPES_H_

#include <cstdint>

namespace faascache {

/** Absolute simulation time or duration, in microseconds. */
using TimeUs = std::int64_t;

/** Memory quantity in megabytes. */
using MemMb = double;

/** Identifier of a registered function. */
using FunctionId = std::uint32_t;

/** Identifier of a live container instance. */
using ContainerId = std::uint64_t;

/** Sentinel for "no function". */
inline constexpr FunctionId kInvalidFunction = ~FunctionId{0};

/** Sentinel for "no container". */
inline constexpr ContainerId kInvalidContainer = ~ContainerId{0};

/** One millisecond expressed in microseconds. */
inline constexpr TimeUs kMillisecond = 1'000;

/** One second expressed in microseconds. */
inline constexpr TimeUs kSecond = 1'000'000;

/** One minute expressed in microseconds. */
inline constexpr TimeUs kMinute = 60 * kSecond;

/** One hour expressed in microseconds. */
inline constexpr TimeUs kHour = 60 * kMinute;

/** Convert microseconds to (fractional) seconds. */
constexpr double toSeconds(TimeUs t) { return static_cast<double>(t) / kSecond; }

/** Convert microseconds to (fractional) milliseconds. */
constexpr double toMillis(TimeUs t) { return static_cast<double>(t) / kMillisecond; }

/** Convert (fractional) seconds to microseconds, truncating. */
constexpr TimeUs fromSeconds(double s) { return static_cast<TimeUs>(s * kSecond); }

/** Convert (fractional) milliseconds to microseconds, truncating. */
constexpr TimeUs fromMillis(double ms) { return static_cast<TimeUs>(ms * kMillisecond); }

}  // namespace faascache

#endif  // FAASCACHE_UTIL_TYPES_H_

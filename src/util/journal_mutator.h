/**
 * @file
 * Deterministic checkpoint-journal mutator (crash-consistency fuzzing).
 *
 * tests/checkpoint_fuzz_test.cc feeds thousands of corrupted journals
 * through the resume path and asserts the contract of
 * util/checkpoint_journal.h: a resume either restores exactly what an
 * uninterrupted run wrote (byte-identical payloads) or refuses with a
 * named error — never crashes, never silently diverges. This mutator
 * produces the corruptions: given a journal's bytes and a seed, it
 * applies one deterministic mutation drawn from the classes a real
 * filesystem failure (or a hostile edit) produces — single bit flips,
 * truncation mid-record, duplicated / reordered / deleted records, and
 * header corruption — and reports what it did, so a failing seed
 * reproduces and explains itself.
 */
#ifndef FAASCACHE_UTIL_JOURNAL_MUTATOR_H_
#define FAASCACHE_UTIL_JOURNAL_MUTATOR_H_

#include <cstdint>
#include <string>

namespace faascache {

/** What mutateJournal() did to the bytes (for failure messages). */
struct JournalMutation
{
    /** Mutation class: "bit-flip", "truncate", "duplicate-line",
     *  "swap-lines", "delete-line", "corrupt-header", "append-garbage". */
    std::string kind;

    /** Specifics (offset / line indices / byte values). */
    std::string detail;

    std::string format() const { return kind + " (" + detail + ")"; }
};

/**
 * Apply one seeded mutation to `content` (a whole journal file's
 * bytes). Equal (content, seed) pairs produce equal output — the fuzz
 * battery is reproducible seed by seed.
 *
 * @param content  Original journal bytes.
 * @param seed     Selects the mutation class and its parameters.
 * @param applied  When non-null, receives a description of the
 *                 mutation.
 * @return The mutated bytes (may equal `content` only for degenerate
 *         inputs, e.g. an empty journal).
 */
std::string mutateJournal(const std::string& content, std::uint64_t seed,
                          JournalMutation* applied = nullptr);

}  // namespace faascache

#endif  // FAASCACHE_UTIL_JOURNAL_MUTATOR_H_

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in FaasCache (trace generation, sampling,
 * SHARDS hashing) flows through this class. The generator and every
 * distribution are implemented by hand so that results are bit-identical
 * across standard libraries and platforms — std::*_distribution is
 * implementation-defined and would break golden tests.
 */
#ifndef FAASCACHE_UTIL_RNG_H_
#define FAASCACHE_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace faascache {

/**
 * Deterministic random number generator (xoshiro256** seeded via
 * SplitMix64) with a set of hand-rolled distributions.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t nextU64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). Requires lo <= hi. */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Exponentially distributed value with the given mean (> 0). */
    double exponential(double mean);

    /** Standard normal via Box-Muller (cached second deviate). */
    double normal();

    /** Normal with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Lognormal: exp(N(mu, sigma)). */
    double lognormal(double mu, double sigma);

    /** Pareto with scale x_m > 0 and shape alpha > 0. */
    double pareto(double x_m, double alpha);

    /**
     * Poisson-distributed count with the given mean (>= 0). Uses Knuth's
     * method for small means and a clamped normal approximation for large
     * ones.
     */
    std::int64_t poisson(double mean);

    /**
     * Sample an index in [0, weights.size()) with probability proportional
     * to weights[i]. Requires at least one strictly positive weight.
     */
    std::size_t weightedIndex(const std::vector<double>& weights);

    /** Fisher-Yates shuffle of an index permutation [0, n). */
    std::vector<std::size_t> permutation(std::size_t n);

    /** Split off an independent child generator (for parallel streams). */
    Rng split();

    /**
     * Stateless 64-bit mix of a key (SplitMix64 finalizer); used for
     * SHARDS-style hash sampling.
     */
    static std::uint64_t hashMix(std::uint64_t key);

  private:
    std::uint64_t state_[4];
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

}  // namespace faascache

#endif  // FAASCACHE_UTIL_RNG_H_

/**
 * @file
 * Cooperative cancellation for long-running simulation work.
 *
 * A CancellationToken is a thread-safe latch: a watchdog, a signal
 * handler, or any controller thread requests cancellation once, and
 * workers poll `cancelled()` (a relaxed atomic load, cheap enough for
 * per-step checks) or call `throwIfCancelled()` at their checkpoints.
 * The Simulator, the elastic-scaling harness, and the platform server
 * thread a token through their step loops so a wedged or over-deadline
 * sweep cell can be unwound promptly and cleanly via CancelledError
 * instead of being killed (and taking every completed result with it).
 *
 * Cancellation is strictly cooperative and one-way: a token never
 * un-cancels, and the first recorded reason wins. The signal-requested
 * path (`ScopedSignalCancellation`) touches only lock-free atomics, so
 * it is safe to drive from a SIGINT/SIGTERM handler.
 */
#ifndef FAASCACHE_UTIL_CANCELLATION_H_
#define FAASCACHE_UTIL_CANCELLATION_H_

#include <atomic>
#include <stdexcept>
#include <string>

namespace faascache {

/** Why a token was cancelled (first cause is kept). */
enum class CancelReason
{
    None,      ///< not cancelled
    Manual,    ///< an explicit cancel() call
    Deadline,  ///< a watchdog observed a wall-clock deadline expire
    Signal,    ///< SIGINT/SIGTERM requested an orderly shutdown
};

/** Human-readable name of a cancel reason. */
const char* cancelReasonName(CancelReason reason);

/** Thrown by cancellation checkpoints once a token is cancelled. */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(CancelReason reason);

    CancelReason reason() const { return reason_; }

  private:
    CancelReason reason_;
};

/** One-way cooperative cancellation latch. Thread- and signal-safe. */
class CancellationToken
{
  public:
    CancellationToken() = default;

    CancellationToken(const CancellationToken&) = delete;
    CancellationToken& operator=(const CancellationToken&) = delete;

    /**
     * Request cancellation. Idempotent; the first reason is kept.
     * Touches only a lock-free atomic, so it is async-signal-safe.
     */
    void cancel(CancelReason reason = CancelReason::Manual);

    /** Whether cancellation has been requested (relaxed load). */
    bool cancelled() const
    {
        return state_.load(std::memory_order_relaxed) !=
            static_cast<int>(CancelReason::None);
    }

    /** The recorded reason (None while not cancelled). */
    CancelReason reason() const
    {
        return static_cast<CancelReason>(
            state_.load(std::memory_order_relaxed));
    }

    /** Checkpoint: throw CancelledError if cancellation was requested. */
    void throwIfCancelled() const;

  private:
    std::atomic<int> state_{static_cast<int>(CancelReason::None)};
};

/**
 * RAII SIGINT/SIGTERM hookup: while alive, either signal cancels the
 * bound token with CancelReason::Signal (and nothing else — the
 * handler is async-signal-safe), letting sweep drivers cancel
 * outstanding cells, flush completed ones, and exit cleanly. The
 * previous handlers are restored on destruction. At most one instance
 * may be alive at a time.
 */
class ScopedSignalCancellation
{
  public:
    explicit ScopedSignalCancellation(CancellationToken& token);
    ~ScopedSignalCancellation();

    ScopedSignalCancellation(const ScopedSignalCancellation&) = delete;
    ScopedSignalCancellation& operator=(const ScopedSignalCancellation&) =
        delete;

    /** Signal number delivered while installed (0 if none yet). */
    static int lastSignal();
};

}  // namespace faascache

#endif  // FAASCACHE_UTIL_CANCELLATION_H_

#include "util/journal_mutator.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/rng.h"

namespace faascache {

namespace {

/** Split into lines, keeping each line's trailing '\n' when present. */
std::vector<std::string>
splitLines(const std::string& content)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < content.size()) {
        std::size_t end = content.find('\n', start);
        if (end == std::string::npos) {
            lines.push_back(content.substr(start));
            break;
        }
        lines.push_back(content.substr(start, end - start + 1));
        start = end + 1;
    }
    return lines;
}

std::string
joinLines(const std::vector<std::string>& lines)
{
    std::string out;
    for (const std::string& line : lines)
        out += line;
    return out;
}

}  // namespace

std::string
mutateJournal(const std::string& content, std::uint64_t seed,
              JournalMutation* applied)
{
    JournalMutation mutation;
    Rng rng(Rng::hashMix(seed ^ 0x6A0C0DE5ULL));
    std::string out = content;

    if (content.empty()) {
        mutation.kind = "append-garbage";
        mutation.detail = "input was empty";
        out = "garbage\n";
        if (applied != nullptr)
            *applied = mutation;
        return out;
    }

    switch (rng.uniformInt(7)) {
      case 0: {  // flip one bit anywhere in the file
        const std::size_t offset = rng.uniformInt(content.size());
        const int bit = static_cast<int>(rng.uniformInt(8));
        out[offset] = static_cast<char>(
            static_cast<unsigned char>(out[offset]) ^ (1u << bit));
        mutation.kind = "bit-flip";
        std::ostringstream d;
        d << "offset " << offset << " bit " << bit;
        mutation.detail = d.str();
        break;
      }
      case 1: {  // truncate, possibly mid-record
        const std::size_t keep = rng.uniformInt(content.size());
        out = content.substr(0, keep);
        mutation.kind = "truncate";
        std::ostringstream d;
        d << "kept " << keep << " of " << content.size() << " bytes";
        mutation.detail = d.str();
        break;
      }
      case 2: {  // duplicate a line in place
        std::vector<std::string> lines = splitLines(content);
        const std::size_t i = rng.uniformInt(lines.size());
        lines.insert(lines.begin() + static_cast<long>(i), lines[i]);
        out = joinLines(lines);
        mutation.kind = "duplicate-line";
        std::ostringstream d;
        d << "line " << i << " of " << lines.size() - 1;
        mutation.detail = d.str();
        break;
      }
      case 3: {  // swap two lines (reordering)
        std::vector<std::string> lines = splitLines(content);
        const std::size_t i = rng.uniformInt(lines.size());
        const std::size_t j = rng.uniformInt(lines.size());
        std::swap(lines[i], lines[j]);
        out = joinLines(lines);
        mutation.kind = "swap-lines";
        std::ostringstream d;
        d << "lines " << i << " and " << j;
        mutation.detail = d.str();
        break;
      }
      case 4: {  // delete a line
        std::vector<std::string> lines = splitLines(content);
        const std::size_t i = rng.uniformInt(lines.size());
        lines.erase(lines.begin() + static_cast<long>(i));
        out = joinLines(lines);
        mutation.kind = "delete-line";
        std::ostringstream d;
        d << "line " << i << " of " << lines.size() + 1;
        mutation.detail = d.str();
        break;
      }
      case 5: {  // corrupt a byte of the header line
        const std::size_t header_end =
            std::min(content.find('\n'), content.size() - 1);
        const std::size_t offset =
            header_end > 0 ? rng.uniformInt(header_end) : 0;
        // Replace with a printable byte that differs, so the header
        // stays one line but its text (magic / version / fingerprint)
        // no longer matches.
        char replacement =
            static_cast<char>('!' + rng.uniformInt(94));
        if (replacement == out[offset])
            replacement = replacement == '!' ? '"' : '!';
        out[offset] = replacement;
        mutation.kind = "corrupt-header";
        std::ostringstream d;
        d << "offset " << offset << " '" << content[offset] << "' -> '"
          << replacement << "'";
        mutation.detail = d.str();
        break;
      }
      default: {  // append garbage past the last record
        const std::size_t len = 1 + rng.uniformInt(64);
        std::string garbage;
        garbage.reserve(len);
        for (std::size_t i = 0; i < len; ++i)
            garbage.push_back(
                static_cast<char>(rng.uniformInt(256)));
        out += garbage;
        mutation.kind = "append-garbage";
        std::ostringstream d;
        d << len << " bytes";
        mutation.detail = d.str();
        break;
      }
    }

    if (applied != nullptr)
        *applied = mutation;
    return out;
}

}  // namespace faascache

#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace faascache {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print(std::ostream& out) const
{
    std::size_t cols = headers_.size();
    for (const auto& row : rows_)
        cols = std::max(cols, row.size());

    std::vector<std::size_t> widths(cols, 0);
    auto consider = [&](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    consider(headers_);
    for (const auto& row : rows_)
        consider(row);

    auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < cols; ++i) {
            const std::string& cell = i < row.size() ? row[i] : std::string();
            out << cell;
            if (i + 1 < cols)
                out << std::string(widths[i] - cell.size() + 2, ' ');
        }
        out << '\n';
    };

    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < cols; ++i)
        total += widths[i] + (i + 1 < cols ? 2 : 0);
    out << std::string(total, '-') << '\n';
    for (const auto& row : rows_)
        print_row(row);
}

std::string
formatDouble(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

}  // namespace faascache

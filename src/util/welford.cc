#include "util/welford.h"

#include <cmath>
#include <limits>

namespace faascache {

void
Welford::add(double value)
{
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    const double delta2 = value - mean_;
    m2_ += delta * delta2;
}

double
Welford::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
Welford::stddev() const
{
    return std::sqrt(variance());
}

double
Welford::coefficientOfVariation() const
{
    const double sd = stddev();
    if (sd == 0.0)
        return 0.0;
    if (mean_ == 0.0)
        return std::numeric_limits<double>::infinity();
    return sd / std::fabs(mean_);
}

void
Welford::merge(const Welford& other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
}

void
Welford::reset()
{
    count_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
}

}  // namespace faascache

/**
 * @file
 * Minimal CSV reading/writing used for trace serialization and bench
 * output. Supports quoting of fields containing commas, quotes, or
 * newlines — enough for round-tripping FaasCache traces.
 */
#ifndef FAASCACHE_UTIL_CSV_H_
#define FAASCACHE_UTIL_CSV_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace faascache {

/** Streaming CSV writer over any std::ostream. */
class CsvWriter
{
  public:
    /** @param out Destination stream; must outlive the writer. */
    explicit CsvWriter(std::ostream& out);

    /** Write one row, quoting fields as needed. */
    void writeRow(const std::vector<std::string>& fields);

  private:
    std::ostream& out_;
};

/** Escape a single CSV field (quotes it only when required). */
std::string csvEscape(const std::string& field);

/**
 * Parse a complete CSV document into rows of fields. Handles quoted
 * fields, embedded quotes (doubled), commas and newlines inside quotes.
 * A trailing newline does not produce an empty final row.
 */
std::vector<std::vector<std::string>> parseCsv(const std::string& text);

/** A parsed CSV row annotated with its 1-based source line number. */
struct CsvRow
{
    std::size_t line = 0;
    std::vector<std::string> fields;
};

/**
 * Like parseCsv, but each row carries the line number where it starts
 * (blank lines are skipped but still counted), so parsers can report
 * the offending location of malformed input.
 */
std::vector<CsvRow> parseCsvLines(const std::string& text);

}  // namespace faascache

#endif  // FAASCACHE_UTIL_CSV_H_

/**
 * @file
 * Batch descriptive statistics and exponential smoothing.
 */
#ifndef FAASCACHE_UTIL_STATS_H_
#define FAASCACHE_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace faascache {

/** Five-number-style summary of a sample. */
struct Summary
{
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

/** Compute a Summary over the values (empty input gives all zeros). */
Summary summarize(std::vector<double> values);

/**
 * Percentile by linear interpolation between order statistics.
 * @param sorted Values sorted ascending (non-empty).
 * @param p      Percentile in [0, 1].
 */
double percentileSorted(const std::vector<double>& sorted, double p);

/**
 * First-order exponential smoother, x' = alpha * sample + (1-alpha) * x.
 * Initializes to the first sample. Used by the provisioning controller to
 * smooth the observed arrival rate (paper §5.2).
 */
class ExponentialSmoother
{
  public:
    /** @param alpha Smoothing weight of the newest sample, in (0, 1]. */
    explicit ExponentialSmoother(double alpha);

    /** Feed one sample and return the smoothed value. */
    double update(double sample);

    /** Smoothed value so far (0 before the first sample). */
    double value() const { return value_; }

    /** Whether at least one sample was seen. */
    bool initialized() const { return initialized_; }

  private:
    double alpha_;
    double value_ = 0.0;
    bool initialized_ = false;
};

}  // namespace faascache

#endif  // FAASCACHE_UTIL_STATS_H_

/**
 * @file
 * Fixed-width bucket histogram with percentile queries.
 *
 * The HIST keep-alive policy records inter-arrival times in minute-wide
 * buckets spanning up to four hours; this class generalizes that to any
 * bucket width/count and supports the head/tail percentile lookups the
 * policy performs.
 */
#ifndef FAASCACHE_UTIL_HISTOGRAM_H_
#define FAASCACHE_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace faascache {

/**
 * Histogram over [0, bucket_width * num_buckets) with an overflow bucket.
 *
 * Values below zero clamp into the first bucket; values at or above the
 * range fall into the overflow bucket, which is reported separately so
 * callers can decide how to treat out-of-window samples (the HIST policy
 * treats them as unpredictable).
 */
class Histogram
{
  public:
    /**
     * @param bucket_width Width of each bucket (> 0), in caller units.
     * @param num_buckets  Number of in-range buckets (> 0).
     */
    Histogram(double bucket_width, std::size_t num_buckets);

    /** Record one sample. */
    void add(double value);

    /** Total samples recorded, including overflow. */
    std::int64_t totalCount() const { return total_; }

    /** Samples that fell past the histogram range. */
    std::int64_t overflowCount() const { return overflow_; }

    /** Fraction of samples in the overflow bucket (0 if empty). */
    double overflowFraction() const;

    /** Count in bucket i. */
    std::int64_t bucketCount(std::size_t i) const { return counts_.at(i); }

    /** Number of in-range buckets. */
    std::size_t numBuckets() const { return counts_.size(); }

    /** Bucket width supplied at construction. */
    double bucketWidth() const { return bucket_width_; }

    /**
     * Smallest value v such that at least `p` (in [0,1]) of the in-range
     * samples are <= v, computed at bucket granularity (upper bucket
     * edge). Returns 0 when the histogram holds no in-range samples.
     */
    double percentile(double p) const;

    /** Forget all samples. */
    void reset();

  private:
    double bucket_width_;
    std::vector<std::int64_t> counts_;
    std::int64_t total_ = 0;
    std::int64_t overflow_ = 0;
};

}  // namespace faascache

#endif  // FAASCACHE_UTIL_HISTOGRAM_H_

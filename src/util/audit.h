/**
 * @file
 * Runtime invariant auditor (DESIGN.md §4g).
 *
 * The platform's correctness story so far rests on differential tests
 * and golden fixtures: two backends agree, so both are presumed right.
 * The auditor adds a second, orthogonal line of defense — the layers
 * themselves assert their *semantic* invariants while a run executes:
 *
 *  - request conservation: every arrival ends in exactly one of
 *    completed / shed / dropped / timed-out / failed (checked per drain
 *    and at end-of-run);
 *  - ContainerPool accounting: used memory equals the sum of live
 *    containers, busy + idle == live, per-function idle lists stay
 *    warmest-first and consistent with the dense id→slot map;
 *  - container state-machine legality (cold→warm→busy→idle only);
 *  - EventCore delivery order: strictly increasing (time, lane, seq);
 *  - overload-state legality: retry-budget tokens within bounds,
 *    circuit-breaker transition counters consistent.
 *
 * The auditor is compiled in always and enabled per run by attaching an
 * Auditor to the config (ServerConfig::audit). A null pointer — or an
 * Auditor constructed with AuditMode::Off — disables every check: hook
 * sites guard on a single pointer, maintain no counters, and perturb
 * nothing, so audited-off runs stay byte-identical to pre-auditor
 * builds.
 *
 * Violations do not abort the run (a chaos soak wants the full list,
 * and production telemetry cannot throw): they are recorded with a
 * named invariant, the simulation timestamp, and an entity id, bounded
 * in storage but exactly counted. Thread-safe, so one Auditor can watch
 * every cell of a parallel sweep.
 */
#ifndef FAASCACHE_UTIL_AUDIT_H_
#define FAASCACHE_UTIL_AUDIT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/types.h"

namespace faascache {

/** Whether an Auditor instance actually checks anything. */
enum class AuditMode : std::uint8_t
{
    Off,  ///< hooks are dead: no counters, no checks, no overhead
    On,   ///< every layer's invariants are checked as the run executes
};

/** One recorded invariant violation. */
struct AuditViolation
{
    /** Named invariant, e.g. "request-conservation". */
    std::string invariant;

    /** Simulation time at which the violation was observed. */
    TimeUs time_us = 0;

    /** Offending entity (server index, container id, event seq);
     *  -1 when no single entity applies. */
    std::int64_t entity = -1;

    /** Human-readable specifics (expected vs. observed). */
    std::string detail;

    /** "invariant @t entity=e: detail" on one line. */
    std::string format() const;
};

/**
 * Collects invariant violations from every audited layer. Recording is
 * thread-safe; storage is bounded (the first kMaxStored violations are
 * kept verbatim) while the total count is exact.
 */
class Auditor
{
  public:
    /** Violations stored verbatim; later ones only count. */
    static constexpr std::size_t kMaxStored = 64;

    explicit Auditor(AuditMode mode = AuditMode::On) : mode_(mode) {}

    Auditor(const Auditor&) = delete;
    Auditor& operator=(const Auditor&) = delete;

    bool enabled() const { return mode_ == AuditMode::On; }

    /** Record one violation. */
    void fail(const char* invariant, TimeUs time_us, std::int64_t entity,
              std::string detail);

    /** Record a violation iff `ok` is false (detail is a literal so the
     *  passing fast path builds no strings). */
    void require(bool ok, const char* invariant, TimeUs time_us,
                 std::int64_t entity, const char* detail)
    {
        if (!ok)
            fail(invariant, time_us, entity, detail);
    }

    /** Exact number of violations recorded so far. */
    std::int64_t violationCount() const;

    /** The stored violations (first kMaxStored), in record order. */
    std::vector<AuditViolation> violations() const;

    /** Multi-line human-readable report ("" when clean). */
    std::string report() const;

    /** Forget everything recorded (mode is retained). */
    void reset();

  private:
    const AuditMode mode_;
    mutable std::mutex mutex_;
    std::int64_t count_ = 0;
    std::vector<AuditViolation> stored_;
};

}  // namespace faascache

#endif  // FAASCACHE_UTIL_AUDIT_H_

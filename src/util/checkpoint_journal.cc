#include "util/checkpoint_journal.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <stdexcept>

#include <unistd.h>

namespace faascache {

namespace {

constexpr const char* kHeaderMagic = "faascache-sweep-ckpt v1 fp=";
constexpr const char* kRecordTag = "cell ";

}  // namespace

std::uint64_t
fnv1a64(std::string_view data, std::uint64_t seed)
{
    std::uint64_t hash = seed;
    for (unsigned char c : data) {
        hash ^= c;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::string
escapeJournalToken(const std::string& raw)
{
    std::string out;
    out.reserve(raw.size());
    for (unsigned char c : raw) {
        if (c <= 0x20 || c == '%' || c >= 0x7f) {
            char buf[4];
            std::snprintf(buf, sizeof buf, "%%%02X", c);
            out += buf;
        } else {
            out += static_cast<char>(c);
        }
    }
    // An empty token would vanish in the whitespace-separated payload.
    return out.empty() ? std::string("%00") : out;
}

bool
unescapeJournalToken(const std::string& escaped, std::string* out)
{
    out->clear();
    if (escaped == "%00")  // the empty-token marker
        return true;
    out->reserve(escaped.size());
    for (std::size_t i = 0; i < escaped.size(); ++i) {
        if (escaped[i] != '%') {
            *out += escaped[i];
            continue;
        }
        if (i + 2 >= escaped.size())
            return false;
        char hex[3] = {escaped[i + 1], escaped[i + 2], '\0'};
        char* end = nullptr;
        const long value = std::strtol(hex, &end, 16);
        if (end != hex + 2)
            return false;
        *out += static_cast<char>(value);
        i += 2;
    }
    return true;
}

std::string
hexDoubleToken(double value)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%a", value);
    return buf;
}

bool
parseDoubleToken(const std::string& token, double* out)
{
    if (token.empty())
        return false;
    char* end = nullptr;
    *out = std::strtod(token.c_str(), &end);
    return end == token.c_str() + token.size();
}

bool
parseI64Token(const std::string& token, std::int64_t* out)
{
    if (token.empty())
        return false;
    char* end = nullptr;
    *out = std::strtoll(token.c_str(), &end, 10);
    return end == token.c_str() + token.size();
}

bool
parseU64HexToken(const std::string& token, std::uint64_t* out)
{
    if (token.empty())
        return false;
    char* end = nullptr;
    *out = std::strtoull(token.c_str(), &end, 16);
    return end == token.c_str() + token.size();
}

CheckpointJournalLoad
loadCheckpointJournal(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot read checkpoint file: " + path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());

    CheckpointJournalLoad load;

    // Header line.
    const std::size_t header_end = content.find('\n');
    if (header_end == std::string::npos ||
        content.compare(0, std::strlen(kHeaderMagic), kHeaderMagic) != 0) {
        throw std::runtime_error(
            "not a faascache sweep checkpoint (bad header): " + path);
    }
    const std::string fp_hex = content.substr(
        std::strlen(kHeaderMagic), header_end - std::strlen(kHeaderMagic));
    if (!parseU64HexToken(fp_hex, &load.fingerprint))
        throw std::runtime_error(
            "not a faascache sweep checkpoint (bad fingerprint field): " +
            path);
    load.header_bytes = header_end + 1;
    load.valid_bytes = load.header_bytes;

    // Records: extend the valid prefix line by line; the first invalid
    // or unterminated line ends it.
    std::size_t pos = load.valid_bytes;
    while (pos < content.size()) {
        const std::size_t eol = content.find('\n', pos);
        if (eol == std::string::npos)
            break;  // unterminated tail (write cut mid-record)
        const std::string line = content.substr(pos, eol - pos);
        if (line.compare(0, std::strlen(kRecordTag), kRecordTag) != 0)
            break;
        const std::size_t space = line.find(' ', std::strlen(kRecordTag));
        if (space == std::string::npos)
            break;
        const std::string checksum_hex = line.substr(
            std::strlen(kRecordTag), space - std::strlen(kRecordTag));
        std::string payload = line.substr(space + 1);
        std::uint64_t checksum = 0;
        if (!parseU64HexToken(checksum_hex, &checksum) ||
            checksum != fnv1a64(payload))
            break;
        pos = eol + 1;
        load.records.push_back({std::move(payload), pos});
        load.valid_bytes = pos;
    }
    load.torn_tail = load.valid_bytes < content.size();
    return load;
}

struct CheckpointJournalWriter::Impl
{
    std::string path;
    std::FILE* file = nullptr;
    std::mutex mutex;

    ~Impl()
    {
        if (file != nullptr)
            std::fclose(file);
    }
};

CheckpointJournalWriter::CheckpointJournalWriter(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl))
{
}

CheckpointJournalWriter::CheckpointJournalWriter(
    CheckpointJournalWriter&&) noexcept = default;
CheckpointJournalWriter&
CheckpointJournalWriter::operator=(CheckpointJournalWriter&&) noexcept =
    default;
CheckpointJournalWriter::~CheckpointJournalWriter() = default;

CheckpointJournalWriter
CheckpointJournalWriter::beginFresh(const std::string& path,
                                    std::uint64_t fingerprint)
{
    auto impl = std::make_unique<Impl>();
    impl->path = path;
    impl->file = std::fopen(path.c_str(), "wb");
    if (impl->file == nullptr)
        throw std::runtime_error("cannot create checkpoint file: " + path);
    std::fprintf(impl->file, "%s%016" PRIx64 "\n", kHeaderMagic,
                 fingerprint);
    std::fflush(impl->file);
    return CheckpointJournalWriter(std::move(impl));
}

CheckpointJournalWriter
CheckpointJournalWriter::continueAt(const std::string& path,
                                    std::size_t valid_bytes)
{
    auto impl = std::make_unique<Impl>();
    impl->path = path;
    // "r+b" so we can truncate the torn tail in place, then append.
    impl->file = std::fopen(path.c_str(), "r+b");
    if (impl->file == nullptr)
        throw std::runtime_error("cannot reopen checkpoint file: " + path);
    std::fflush(impl->file);
    if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
        std::fclose(impl->file);
        impl->file = nullptr;
        throw std::runtime_error(
            "cannot truncate checkpoint torn tail: " + path);
    }
    if (std::fseek(impl->file, static_cast<long>(valid_bytes), SEEK_SET) !=
        0) {
        std::fclose(impl->file);
        impl->file = nullptr;
        throw std::runtime_error("cannot seek checkpoint file: " + path);
    }
    return CheckpointJournalWriter(std::move(impl));
}

void
CheckpointJournalWriter::append(const std::string& payload)
{
    const std::uint64_t checksum = fnv1a64(payload);
    std::lock_guard<std::mutex> lock(impl_->mutex);
    std::fprintf(impl_->file, "%s%016" PRIx64 " %s\n", kRecordTag, checksum,
                 payload.c_str());
    // Flush record-by-record: a SIGKILL can tear at most the record
    // being written, which the loader truncates and re-runs.
    std::fflush(impl_->file);
}

const std::string&
CheckpointJournalWriter::path() const
{
    return impl_->path;
}

}  // namespace faascache

/**
 * @file
 * Failure-isolating execution harness for grids of independent cells.
 *
 * PR 2's sweep engine fans hundreds of (trace, policy, memory) cells
 * across a thread pool but lets one throwing cell abort the whole
 * sweep, and one wedged straggler block it forever. This harness is the
 * robustness layer both sweep flavours (SimResult sweeps in
 * sim/sweep_runner and PlatformResult sweeps in platform/experiment)
 * share:
 *
 *  - **Failure isolation**: every cell resolves to a CellOutcome
 *    (ok | failed | timed_out | skipped) with captured error text;
 *    exceptions never cross cell boundaries.
 *  - **Watchdog deadlines**: a monitor thread tracks each running
 *    attempt's wall-clock age and cancels stragglers through a
 *    per-attempt CancellationToken (the cell's step loop cooperates
 *    via util/cancellation checkpoints).
 *  - **Bounded retry**: failed or timed-out attempts are re-run up to
 *    `max_retries` times; the runner derives a fresh attempt seed from
 *    the cell's own seed, so retries stay deterministic per attempt.
 *  - **External cancellation**: a caller-owned token (typically bound
 *    to SIGINT/SIGTERM) stops the sweep — running cells are cancelled,
 *    pending ones are marked skipped, completed ones keep their
 *    results — so the driver can flush what finished and exit cleanly.
 *
 * Determinism: outcomes are indexed by submission order and each cell
 * still owns all its mutable state, so for cells that complete, the
 * results are byte-identical to a plain serial loop regardless of
 * worker count, deadlines, or retries.
 */
#ifndef FAASCACHE_UTIL_CELL_HARNESS_H_
#define FAASCACHE_UTIL_CELL_HARNESS_H_

#include <chrono>
#include <condition_variable>
#include <exception>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/cancellation.h"
#include "util/thread_pool.h"

namespace faascache {

/** Terminal state of one sweep cell. */
enum class CellStatus
{
    Ok,        ///< result is valid (fresh run or checkpoint restore)
    Failed,    ///< every attempt threw; error holds the first message
    TimedOut,  ///< every attempt exceeded the wall-clock deadline
    Skipped,   ///< never ran (sweep cancelled before/while it was due)
};

/** Lower-case wire/name of a cell status (ok, failed, ...). */
inline const char*
cellStatusName(CellStatus status)
{
    switch (status) {
        case CellStatus::Ok: return "ok";
        case CellStatus::Failed: return "failed";
        case CellStatus::TimedOut: return "timed_out";
        case CellStatus::Skipped: return "skipped";
    }
    return "unknown";
}

/** Per-cell outcome of a harnessed sweep. */
template <typename Result>
struct CellOutcome
{
    CellStatus status = CellStatus::Skipped;

    /** Valid only when status == Ok. */
    Result result{};

    /** The cell's stable key (checkpoint identity / display label). */
    std::string key;

    /** Captured error text for failed/timed-out/skipped cells. */
    std::string error;

    /** Simulation attempts actually made (0 for restored/skipped). */
    int attempts = 0;

    /** Result was restored from a checkpoint, not re-simulated. */
    bool restored = false;

    /** First attempt's exception, for strict-mode rethrow. */
    std::exception_ptr exception;

    bool ok() const { return status == CellStatus::Ok; }
};

/** Harness knobs shared by both sweep flavours. */
struct CellHarnessOptions
{
    /** Per-attempt wall-clock deadline, seconds; 0 disables the
     *  watchdog. */
    double deadline_s = 0.0;

    /** Extra attempts after a failed or timed-out first attempt. */
    int max_retries = 0;

    /**
     * Caller-owned cancellation (non-owning; may be null). Once
     * cancelled, running cells are cancelled and pending cells are
     * skipped; completed outcomes are kept.
     */
    const CancellationToken* cancel = nullptr;

    /** @throws std::invalid_argument on negative knobs. */
    void validate() const
    {
        if (deadline_s < 0.0)
            throw std::invalid_argument(
                "CellHarnessOptions: deadline_s must be >= 0");
        if (max_retries < 0)
            throw std::invalid_argument(
                "CellHarnessOptions: max_retries must be >= 0");
    }
};

namespace harness_detail {

/** One in-flight attempt the watchdog is timing. */
struct AttemptWatch
{
    std::shared_ptr<CancellationToken> token;
    std::chrono::steady_clock::time_point started;
    bool running = false;
};

struct WatchBoard
{
    std::mutex mutex;
    std::condition_variable wake;
    std::vector<AttemptWatch> cells;
    bool done = false;

    /** External cancellation observed: skip cells not yet started. */
    std::atomic<bool> shutdown{false};
};

}  // namespace harness_detail

/**
 * Run cells [0, outcomes.size()) on `pool`, filling `outcomes`.
 *
 * Cells whose outcome is pre-marked `restored` (checkpoint hits) are
 * not re-run. `run_cell(index, attempt, token)` produces the cell's
 * Result and must poll `token` at its step checkpoints; `on_ok(index,
 * outcome)` is invoked — serialized under an internal mutex, in
 * completion order — for every *fresh* Ok outcome, which is where the
 * checkpoint journal appends.
 *
 * Blocks until every non-restored cell resolved. Returns true if the
 * sweep ran to completion, false if it was stopped by external
 * cancellation.
 */
template <typename Result, typename RunCell, typename OnOk>
bool
runHarnessedCells(ThreadPool& pool,
                  std::vector<CellOutcome<Result>>& outcomes,
                  RunCell run_cell, OnOk on_ok,
                  const CellHarnessOptions& options)
{
    using harness_detail::WatchBoard;
    namespace chrono = std::chrono;
    options.validate();

    auto board = std::make_shared<WatchBoard>();
    board->cells.resize(outcomes.size());

    const auto deadline =
        chrono::duration_cast<chrono::steady_clock::duration>(
            chrono::duration<double>(options.deadline_s));
    const bool watch_deadlines = options.deadline_s > 0.0;
    const bool watch_external = options.cancel != nullptr;

    // The watchdog: cancels over-deadline attempts, and fans external
    // cancellation out to every running cell exactly once.
    std::thread watchdog;
    if (watch_deadlines || watch_external) {
        watchdog = std::thread([board, options, deadline, watch_deadlines,
                                watch_external]() {
            std::unique_lock<std::mutex> lock(board->mutex);
            while (!board->done) {
                board->wake.wait_for(lock, chrono::milliseconds(20));
                if (board->done)
                    break;
                // Re-fanned every tick (cancel() is idempotent) so an
                // attempt that started between ticks is still caught.
                if (watch_external && options.cancel->cancelled()) {
                    board->shutdown.store(true,
                                          std::memory_order_relaxed);
                    for (auto& watch : board->cells) {
                        if (watch.running)
                            watch.token->cancel(CancelReason::Signal);
                    }
                }
                if (!watch_deadlines)
                    continue;
                const auto now = chrono::steady_clock::now();
                for (auto& watch : board->cells) {
                    if (watch.running && now - watch.started >= deadline)
                        watch.token->cancel(CancelReason::Deadline);
                }
            }
        });
    }

    std::mutex on_ok_mutex;
    std::vector<std::future<void>> futures;
    futures.reserve(outcomes.size());

    for (std::size_t index = 0; index < outcomes.size(); ++index) {
        if (outcomes[index].restored)
            continue;
        futures.push_back(pool.submit([index, board, &outcomes, &run_cell,
                                       &on_ok, &on_ok_mutex, &options]() {
            CellOutcome<Result>& outcome = outcomes[index];
            const int attempts_allowed = options.max_retries + 1;
            for (int attempt = 0; attempt < attempts_allowed; ++attempt) {
                if (board->shutdown.load(std::memory_order_relaxed)) {
                    if (outcome.attempts == 0) {
                        outcome.status = CellStatus::Skipped;
                        outcome.error = "sweep cancelled before the cell "
                                        "could run";
                    }
                    return;
                }
                auto token = std::make_shared<CancellationToken>();
                {
                    std::lock_guard<std::mutex> lock(board->mutex);
                    auto& watch = board->cells[index];
                    watch.token = token;
                    watch.started = std::chrono::steady_clock::now();
                    watch.running = true;
                }
                ++outcome.attempts;
                try {
                    outcome.result = run_cell(index, attempt, *token);
                    outcome.status = CellStatus::Ok;
                    outcome.error.clear();
                } catch (const CancelledError& e) {
                    if (e.reason() == CancelReason::Signal) {
                        outcome.status = CellStatus::Skipped;
                        outcome.error =
                            "cancelled mid-run (sweep shutdown)";
                    } else {
                        outcome.status = CellStatus::TimedOut;
                        outcome.error = "attempt " +
                            std::to_string(attempt + 1) + " exceeded the " +
                            std::to_string(options.deadline_s) +
                            " s deadline";
                    }
                } catch (const std::exception& e) {
                    outcome.status = CellStatus::Failed;
                    outcome.error = e.what();
                    if (!outcome.exception)
                        outcome.exception = std::current_exception();
                } catch (...) {
                    outcome.status = CellStatus::Failed;
                    outcome.error = "unknown exception";
                    if (!outcome.exception)
                        outcome.exception = std::current_exception();
                }
                {
                    std::lock_guard<std::mutex> lock(board->mutex);
                    board->cells[index].running = false;
                    board->cells[index].token.reset();
                }
                if (outcome.ok()) {
                    std::lock_guard<std::mutex> lock(on_ok_mutex);
                    on_ok(index, outcome);
                    return;
                }
                if (outcome.status == CellStatus::Skipped)
                    return;  // shutdown: no retry
            }
        }));
    }

    for (auto& future : futures)
        future.get();

    {
        std::lock_guard<std::mutex> lock(board->mutex);
        board->done = true;
    }
    board->wake.notify_all();
    if (watchdog.joinable())
        watchdog.join();

    return !(watch_external && options.cancel->cancelled());
}

}  // namespace faascache

#endif  // FAASCACHE_UTIL_CELL_HARNESS_H_

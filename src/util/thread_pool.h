/**
 * @file
 * A fixed-size worker thread pool with futures-based task submission.
 *
 * The pool exists so the experiment engine (sim/sweep_runner.h) and the
 * platform benches can fan independent simulation cells across cores.
 * Tasks are arbitrary callables; submit() returns a std::future for the
 * callable's result. Worker threads are started once in the constructor
 * and joined in the destructor; the pool never grows or shrinks.
 *
 * Determinism note: the pool makes no ordering promises between tasks —
 * callers that need reproducible output must make every task
 * self-contained (own its RNG stream, write only its own result slot)
 * and merge results in submission order, as parallelMap() below and the
 * SweepRunner do.
 */
#ifndef FAASCACHE_UTIL_THREAD_POOL_H_
#define FAASCACHE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace faascache {

/** Fixed-size worker pool. Thread-safe; tasks may submit further tasks. */
class ThreadPool
{
  public:
    /**
     * @param threads Worker count; 0 selects defaultConcurrency().
     */
    explicit ThreadPool(std::size_t threads = 0);

    /** Drains nothing: pending tasks are completed before join. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /**
     * Enqueue `fn(args...)` and return a future for its result. The
     * callable runs on some worker thread; exceptions propagate through
     * the future.
     */
    template <typename Fn, typename... Args>
    auto submit(Fn&& fn, Args&&... args)
        -> std::future<std::invoke_result_t<Fn, Args...>>
    {
        using Result = std::invoke_result_t<Fn, Args...>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            [fn = std::forward<Fn>(fn),
             ... args = std::forward<Args>(args)]() mutable {
                return std::invoke(std::move(fn), std::move(args)...);
            });
        std::future<Result> future = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            tasks_.emplace_back([task]() { (*task)(); });
        }
        cv_.notify_one();
        return future;
    }

    /**
     * std::thread::hardware_concurrency() with a floor of 1 (the
     * standard allows it to return 0 when unknown).
     */
    static std::size_t defaultConcurrency();

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> tasks_;
    bool shutting_down_ = false;
    std::vector<std::thread> workers_;
};

/**
 * Apply `fn` to every element of `items` on the pool and return the
 * results in input order (a deterministic parallel map). Blocks until
 * every task finished; the first exception, if any, is rethrown.
 */
template <typename T, typename Fn>
auto
parallelMap(ThreadPool& pool, const std::vector<T>& items, Fn fn)
    -> std::vector<std::invoke_result_t<Fn, const T&>>
{
    using Result = std::invoke_result_t<Fn, const T&>;
    std::vector<std::future<Result>> futures;
    futures.reserve(items.size());
    for (const T& item : items)
        futures.push_back(pool.submit([&fn, &item]() { return fn(item); }));
    std::vector<Result> results;
    results.reserve(items.size());
    for (auto& future : futures)
        results.push_back(future.get());
    return results;
}

}  // namespace faascache

#endif  // FAASCACHE_UTIL_THREAD_POOL_H_

/**
 * @file
 * A fixed-size worker thread pool with futures-based task submission.
 *
 * The pool exists so the experiment engine (sim/sweep_runner.h) and the
 * platform benches can fan independent simulation cells across cores.
 * Tasks are arbitrary callables; submit() returns a std::future for the
 * callable's result. Worker threads are started once in the constructor
 * and joined on shutdown; the pool never grows or shrinks.
 *
 * Shutdown is drain-then-join: pending tasks complete before workers
 * exit. Because a deadlocked or wedged task would otherwise hang the
 * destructor forever, shutdown accepts an optional drain timeout
 * (`setDrainTimeout` arms the destructor with one): when the timeout
 * expires, queued-but-unstarted tasks are abandoned (their futures get
 * broken_promise), the stuck workers are detached, and a diagnostic
 * ShutdownReport is surfaced instead of a hang. Worker threads only
 * reference the pool's shared internal state (kept alive by
 * shared_ptr), so detaching is memory-safe even if a wedged task wakes
 * up after the pool object is gone.
 *
 * Determinism note: the pool makes no ordering promises between tasks —
 * callers that need reproducible output must make every task
 * self-contained (own its RNG stream, write only its own result slot)
 * and merge results in submission order, as parallelMap() below and the
 * SweepRunner do.
 */
#ifndef FAASCACHE_UTIL_THREAD_POOL_H_
#define FAASCACHE_UTIL_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace faascache {

/** Fixed-size worker pool. Thread-safe; tasks may submit further tasks. */
class ThreadPool
{
  public:
    /** What shutdown() observed while draining the pool. */
    struct ShutdownReport
    {
        /** Every worker drained its work and was joined. */
        bool drained = true;

        /** Workers still busy when the drain timeout expired; they were
         *  detached (cooperatively wedged tasks keep running but can no
         *  longer block the caller). */
        std::size_t unjoined_workers = 0;

        /** Queued tasks that never started; their futures report
         *  std::future_error(broken_promise). */
        std::size_t abandoned_tasks = 0;
    };

    /**
     * @param threads Worker count; 0 selects defaultConcurrency().
     */
    explicit ThreadPool(std::size_t threads = 0);

    /**
     * Drains pending tasks and joins workers. If a drain timeout was
     * armed via setDrainTimeout() and expires, detaches the stuck
     * workers and reports the diagnostics to stderr instead of
     * blocking forever.
     */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /**
     * Arm the destructor with a bounded drain: instead of joining
     * unconditionally it calls shutdown(timeout) and logs any
     * unjoined-worker diagnostics. Unset (the default) preserves the
     * original block-until-drained behaviour.
     */
    void setDrainTimeout(std::chrono::milliseconds timeout)
    {
        drain_timeout_ = timeout;
    }

    /**
     * Stop accepting work, finish the queue, and join the workers.
     * With a timeout, waits at most that long for busy workers to
     * finish; on expiry the remaining queue is abandoned and the stuck
     * workers are detached (see ShutdownReport). Idempotent — repeated
     * calls return the first call's report.
     */
    ShutdownReport shutdown(
        std::optional<std::chrono::milliseconds> timeout = std::nullopt);

    /**
     * Enqueue `fn(args...)` and return a future for its result. The
     * callable runs on some worker thread; exceptions propagate through
     * the future.
     * @throws std::runtime_error after shutdown() has begun.
     */
    template <typename Fn, typename... Args>
    auto submit(Fn&& fn, Args&&... args)
        -> std::future<std::invoke_result_t<Fn, Args...>>
    {
        using Result = std::invoke_result_t<Fn, Args...>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            [fn = std::forward<Fn>(fn),
             ... args = std::forward<Args>(args)]() mutable {
                return std::invoke(std::move(fn), std::move(args)...);
            });
        std::future<Result> future = task->get_future();
        enqueue([task]() { (*task)(); });
        return future;
    }

    /**
     * std::thread::hardware_concurrency() with a floor of 1 (the
     * standard allows it to return 0 when unknown).
     */
    static std::size_t defaultConcurrency();

  private:
    /**
     * Everything the workers touch, held by shared_ptr so a detached
     * (wedged) worker never dereferences a destroyed pool.
     */
    struct State
    {
        std::mutex mutex;
        std::condition_variable work_cv;     ///< tasks available/shutdown
        std::condition_variable drained_cv;  ///< a worker exited
        std::deque<std::function<void()>> tasks;
        bool shutting_down = false;
        std::size_t alive_workers = 0;
    };

    void enqueue(std::function<void()> task);

    static void workerLoop(const std::shared_ptr<State>& state);

    std::shared_ptr<State> state_;
    std::vector<std::thread> workers_;
    std::optional<std::chrono::milliseconds> drain_timeout_;
    std::optional<ShutdownReport> shutdown_report_;
};

/**
 * Apply `fn` to every element of `items` on the pool and return the
 * results in input order (a deterministic parallel map). Blocks until
 * every task finished; the first exception, if any, is rethrown.
 */
template <typename T, typename Fn>
auto
parallelMap(ThreadPool& pool, const std::vector<T>& items, Fn fn)
    -> std::vector<std::invoke_result_t<Fn, const T&>>
{
    using Result = std::invoke_result_t<Fn, const T&>;
    std::vector<std::future<Result>> futures;
    futures.reserve(items.size());
    for (const T& item : items)
        futures.push_back(pool.submit([&fn, &item]() { return fn(item); }));
    std::vector<Result> results;
    results.reserve(items.size());
    for (auto& future : futures)
        results.push_back(future.get());
    return results;
}

}  // namespace faascache

#endif  // FAASCACHE_UTIL_THREAD_POOL_H_

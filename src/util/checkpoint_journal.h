/**
 * @file
 * Generic append-only checkpoint journal (crash-safe progress records).
 *
 * PR 3 introduced checkpoint/resume for SimResult sweeps; porting the
 * cluster and elastic benches onto the same crash-safety contract needs
 * the journal mechanics — header/fingerprint validation, checksummed
 * records, torn-tail truncation, record-at-a-time flushing — without
 * the SimResult payload codec baked in. This file is that split: the
 * journal carries opaque payload strings, and each result kind
 * (sim/sweep_checkpoint.h, platform/experiment_checkpoint.h,
 * provisioning/elastic_sweep.h) layers its own payload codec on top.
 *
 * File format (unchanged from PR 3, so existing journals stay
 * readable):
 *
 *   faascache-sweep-ckpt v1 fp=<grid fingerprint, 16 hex digits>
 *   cell <fnv1a64 checksum, 16 hex digits> <payload>
 *   ...
 *
 * Robustness rules on load:
 *  - the header names the grid fingerprint; callers refuse to resume
 *    under a mismatch;
 *  - records are validated line by line (structure + checksum); the
 *    first invalid or unterminated line ends the valid prefix — a torn
 *    tail from a mid-write SIGKILL is truncated and its cells re-run;
 *  - payload *meaning* is the caller's concern: every record carries
 *    its end offset so a typed loader that fails to decode a payload
 *    can end its own valid prefix at that record.
 */
#ifndef FAASCACHE_UTIL_CHECKPOINT_JOURNAL_H_
#define FAASCACHE_UTIL_CHECKPOINT_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace faascache {

/** FNV-1a 64-bit hash (the journal's record checksum). */
std::uint64_t fnv1a64(std::string_view data,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

/**
 * @name Payload token helpers
 * Journal payloads are single-line, whitespace-separated token streams.
 * Strings are percent-escaped (bytes <= 0x20, '%', and >= 0x7f; the
 * empty string encodes as "%00") and doubles use C hexfloat (`%a`) so
 * a decoded value is bit-for-bit equal to the encoded one.
 * @{
 */
std::string escapeJournalToken(const std::string& raw);

/** @return false when the escaped form is malformed. */
bool unescapeJournalToken(const std::string& escaped, std::string* out);

std::string hexDoubleToken(double value);

bool parseDoubleToken(const std::string& token, double* out);
bool parseI64Token(const std::string& token, std::int64_t* out);

/** Parses 16-digit lower-case hex (fingerprints, checksums). */
bool parseU64HexToken(const std::string& token, std::uint64_t* out);
/** @} */

/** One structurally valid journal record. */
struct CheckpointJournalRecord
{
    /** The record's payload (checksum already verified). */
    std::string payload;

    /** Byte offset just past this record's newline — the valid-prefix
     *  length a typed loader truncates to when *this* record's payload
     *  fails to decode. */
    std::size_t end_offset = 0;
};

/** What loadCheckpointJournal() recovered from a journal file. */
struct CheckpointJournalLoad
{
    /** Grid fingerprint the journal was written for. */
    std::uint64_t fingerprint = 0;

    /** Structurally valid records, file order. */
    std::vector<CheckpointJournalRecord> records;

    /** Byte length of the header line (where the first record starts). */
    std::size_t header_bytes = 0;

    /** Byte length of the valid prefix (header + intact records). */
    std::size_t valid_bytes = 0;

    /** Data past the valid prefix existed (torn tail — a record cut by
     *  a crash mid-write) and was discarded. */
    bool torn_tail = false;
};

/**
 * Read and validate a checkpoint journal's structure (header, record
 * framing, checksums). Payload decoding is the caller's.
 * @throws std::runtime_error when the file cannot be read or its
 *         header is not a faascache checkpoint journal.
 */
CheckpointJournalLoad loadCheckpointJournal(const std::string& path);

/** Appends checksummed payload records to a journal file. Thread-safe. */
class CheckpointJournalWriter
{
  public:
    /**
     * Start a fresh journal at `path` (truncating any previous file)
     * with the sweep's grid fingerprint in the header.
     * @throws std::runtime_error when the file cannot be created.
     */
    static CheckpointJournalWriter beginFresh(const std::string& path,
                                              std::uint64_t fingerprint);

    /**
     * Reopen an existing journal for appending after a resume:
     * truncates the file to `valid_bytes` (discarding any torn tail)
     * and appends after it.
     * @throws std::runtime_error when the file cannot be opened.
     */
    static CheckpointJournalWriter continueAt(const std::string& path,
                                              std::size_t valid_bytes);

    CheckpointJournalWriter(CheckpointJournalWriter&&) noexcept;
    CheckpointJournalWriter& operator=(CheckpointJournalWriter&&) noexcept;
    ~CheckpointJournalWriter();

    /** Append one record (checksum computed here) and flush it to the
     *  OS. Thread-safe. */
    void append(const std::string& payload);

    const std::string& path() const;

  private:
    struct Impl;
    explicit CheckpointJournalWriter(std::unique_ptr<Impl> impl);
    std::unique_ptr<Impl> impl_;
};

}  // namespace faascache

#endif  // FAASCACHE_UTIL_CHECKPOINT_JOURNAL_H_

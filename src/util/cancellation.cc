#include "util/cancellation.h"

#include <csignal>
#include <stdexcept>

namespace faascache {

const char*
cancelReasonName(CancelReason reason)
{
    switch (reason) {
        case CancelReason::None: return "none";
        case CancelReason::Manual: return "cancelled";
        case CancelReason::Deadline: return "deadline exceeded";
        case CancelReason::Signal: return "interrupted by signal";
    }
    return "unknown";
}

CancelledError::CancelledError(CancelReason reason)
    : std::runtime_error(cancelReasonName(reason)), reason_(reason)
{
}

void
CancellationToken::cancel(CancelReason reason)
{
    int expected = static_cast<int>(CancelReason::None);
    // First cause wins; later calls (e.g. a deadline firing on an
    // already signal-cancelled cell) keep the original reason.
    state_.compare_exchange_strong(expected, static_cast<int>(reason),
                                   std::memory_order_relaxed);
}

void
CancellationToken::throwIfCancelled() const
{
    const CancelReason r = reason();
    if (r != CancelReason::None)
        throw CancelledError(r);
}

namespace {

// The handler may only touch lock-free atomics: it cancels the bound
// token and records which signal fired.
std::atomic<CancellationToken*> g_signal_token{nullptr};
volatile std::sig_atomic_t g_last_signal = 0;

extern "C" void
faascacheSignalHandler(int signum)
{
    g_last_signal = signum;
    if (CancellationToken* token =
            g_signal_token.load(std::memory_order_relaxed))
        token->cancel(CancelReason::Signal);
}

struct SavedHandlers
{
    struct sigaction on_int;
    struct sigaction on_term;
};

SavedHandlers g_saved;

}  // namespace

ScopedSignalCancellation::ScopedSignalCancellation(CancellationToken& token)
{
    CancellationToken* expected = nullptr;
    if (!g_signal_token.compare_exchange_strong(expected, &token))
        throw std::logic_error(
            "ScopedSignalCancellation: another instance is already "
            "installed");
    struct sigaction action = {};
    action.sa_handler = faascacheSignalHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // no SA_RESTART: interrupt blocking syscalls
    sigaction(SIGINT, &action, &g_saved.on_int);
    sigaction(SIGTERM, &action, &g_saved.on_term);
}

ScopedSignalCancellation::~ScopedSignalCancellation()
{
    sigaction(SIGINT, &g_saved.on_int, nullptr);
    sigaction(SIGTERM, &g_saved.on_term, nullptr);
    g_signal_token.store(nullptr, std::memory_order_relaxed);
}

int
ScopedSignalCancellation::lastSignal()
{
    return static_cast<int>(g_last_signal);
}

}  // namespace faascache

#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace faascache {

namespace {

std::uint64_t
splitMix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto& word : state_)
        word = splitMix64(s);
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high-quality mantissa bits.
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    assert(lo <= hi);
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    assert(n > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
    std::uint64_t v;
    do {
        v = nextU64();
    } while (v >= limit);
    return v % n;
}

double
Rng::exponential(double mean)
{
    assert(mean > 0);
    double u;
    do {
        u = uniform();
    } while (u == 0.0);
    return -mean * std::log(u);
}

double
Rng::normal()
{
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 == 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::pareto(double x_m, double alpha)
{
    assert(x_m > 0 && alpha > 0);
    double u;
    do {
        u = uniform();
    } while (u == 0.0);
    return x_m / std::pow(u, 1.0 / alpha);
}

std::int64_t
Rng::poisson(double mean)
{
    assert(mean >= 0);
    if (mean == 0)
        return 0;
    if (mean < 30.0) {
        const double limit = std::exp(-mean);
        std::int64_t k = 0;
        double p = 1.0;
        do {
            ++k;
            p *= uniform();
        } while (p > limit);
        return k - 1;
    }
    const double v = normal(mean, std::sqrt(mean));
    return std::max<std::int64_t>(0, static_cast<std::int64_t>(std::lround(v)));
}

std::size_t
Rng::weightedIndex(const std::vector<double>& weights)
{
    double total = 0.0;
    for (double w : weights)
        total += w;
    assert(total > 0);
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        target -= weights[i];
        if (target < 0)
            return i;
    }
    // Floating point slack: return the last positively weighted index.
    for (std::size_t i = weights.size(); i-- > 0;) {
        if (weights[i] > 0)
            return i;
    }
    return 0;
}

std::vector<std::size_t>
Rng::permutation(std::size_t n)
{
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i)
        perm[i] = i;
    for (std::size_t i = n; i > 1; --i) {
        const std::size_t j = uniformInt(i);
        std::swap(perm[i - 1], perm[j]);
    }
    return perm;
}

Rng
Rng::split()
{
    return Rng(nextU64());
}

std::uint64_t
Rng::hashMix(std::uint64_t key)
{
    std::uint64_t x = key;
    return splitMix64(x);
}

}  // namespace faascache

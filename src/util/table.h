/**
 * @file
 * Fixed-width console table printing used by the bench harnesses to emit
 * the rows/series of each paper table and figure.
 */
#ifndef FAASCACHE_UTIL_TABLE_H_
#define FAASCACHE_UTIL_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace faascache {

/** Accumulates rows and prints them with aligned columns. */
class TablePrinter
{
  public:
    /** @param headers Column titles. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a row; extra/missing cells are tolerated. */
    void addRow(std::vector<std::string> cells);

    /** Render the table (header, separator, rows) to the stream. */
    void print(std::ostream& out) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given number of decimals. */
std::string formatDouble(double value, int decimals = 2);

}  // namespace faascache

#endif  // FAASCACHE_UTIL_TABLE_H_

/**
 * @file
 * Welford's online algorithm for running mean/variance.
 *
 * Used by the HIST keep-alive policy (Shahrad et al.) to maintain the
 * coefficient of variation of per-function inter-arrival times without
 * storing the samples, exactly as the FaasCache paper describes (§7.1).
 */
#ifndef FAASCACHE_UTIL_WELFORD_H_
#define FAASCACHE_UTIL_WELFORD_H_

#include <cstdint>

namespace faascache {

/**
 * Numerically stable running estimator of mean, variance, and
 * coefficient of variation.
 */
class Welford
{
  public:
    /** Incorporate one sample. */
    void add(double value);

    /** Number of samples seen so far. */
    std::int64_t count() const { return count_; }

    /** Running mean (0 if no samples). */
    double mean() const { return count_ > 0 ? mean_ : 0.0; }

    /** Unbiased sample variance (0 with fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /**
     * Coefficient of variation, stddev / mean. Returns +infinity when the
     * mean is zero but samples vary, 0 when degenerate.
     */
    double coefficientOfVariation() const;

    /** Merge another estimator into this one (parallel Welford). */
    void merge(const Welford& other);

    /** Forget all samples. */
    void reset();

  private:
    std::int64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

}  // namespace faascache

#endif  // FAASCACHE_UTIL_WELFORD_H_

#include "util/csv.h"

#include <ostream>

namespace faascache {

CsvWriter::CsvWriter(std::ostream& out) : out_(out) {}

void
CsvWriter::writeRow(const std::vector<std::string>& fields)
{
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0)
            out_ << ',';
        out_ << csvEscape(fields[i]);
    }
    out_ << '\n';
}

std::string
csvEscape(const std::string& field)
{
    const bool needs_quote =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quote)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::vector<CsvRow>
parseCsvLines(const std::string& text)
{
    std::vector<CsvRow> rows;
    std::vector<std::string> row;
    std::string field;
    bool in_quotes = false;
    bool row_started = false;
    std::size_t line = 1;
    std::size_t row_line = 1;

    auto end_field = [&] {
        row.push_back(field);
        field.clear();
    };
    auto end_row = [&] {
        end_field();
        rows.push_back(CsvRow{row_line, row});
        row.clear();
        row_started = false;
    };
    auto start_row = [&] {
        if (!row_started)
            row_line = line;
        row_started = true;
    };

    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    field += '"';
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                if (c == '\n')
                    ++line;
                field += c;
            }
            continue;
        }
        switch (c) {
          case '"':
            in_quotes = true;
            start_row();
            break;
          case ',':
            start_row();
            end_field();
            break;
          case '\r':
            break;
          case '\n':
            if (row_started || !field.empty() || !row.empty())
                end_row();
            ++line;
            break;
          default:
            start_row();
            field += c;
            break;
        }
    }
    if (row_started || !field.empty() || !row.empty())
        end_row();
    return rows;
}

std::vector<std::vector<std::string>>
parseCsv(const std::string& text)
{
    std::vector<std::vector<std::string>> rows;
    for (auto& row : parseCsvLines(text))
        rows.push_back(std::move(row.fields));
    return rows;
}

}  // namespace faascache

#include "util/csv.h"

#include <ostream>

namespace faascache {

CsvWriter::CsvWriter(std::ostream& out) : out_(out) {}

void
CsvWriter::writeRow(const std::vector<std::string>& fields)
{
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0)
            out_ << ',';
        out_ << csvEscape(fields[i]);
    }
    out_ << '\n';
}

std::string
csvEscape(const std::string& field)
{
    const bool needs_quote =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quote)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::vector<std::vector<std::string>>
parseCsv(const std::string& text)
{
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> row;
    std::string field;
    bool in_quotes = false;
    bool row_started = false;

    auto end_field = [&] {
        row.push_back(field);
        field.clear();
    };
    auto end_row = [&] {
        end_field();
        rows.push_back(row);
        row.clear();
        row_started = false;
    };

    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    field += '"';
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                field += c;
            }
            continue;
        }
        switch (c) {
          case '"':
            in_quotes = true;
            row_started = true;
            break;
          case ',':
            end_field();
            row_started = true;
            break;
          case '\r':
            break;
          case '\n':
            if (row_started || !field.empty() || !row.empty())
                end_row();
            break;
          default:
            field += c;
            row_started = true;
            break;
        }
    }
    if (row_started || !field.empty() || !row.empty())
        end_row();
    return rows;
}

}  // namespace faascache

#include "util/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace faascache {

Histogram::Histogram(double bucket_width, std::size_t num_buckets)
    : bucket_width_(bucket_width), counts_(num_buckets, 0)
{
    assert(bucket_width > 0);
    assert(num_buckets > 0);
}

void
Histogram::add(double value)
{
    ++total_;
    if (value < 0)
        value = 0;
    const auto idx = static_cast<std::size_t>(value / bucket_width_);
    if (idx >= counts_.size()) {
        ++overflow_;
        return;
    }
    ++counts_[idx];
}

double
Histogram::overflowFraction() const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(overflow_) / static_cast<double>(total_);
}

double
Histogram::percentile(double p) const
{
    p = std::clamp(p, 0.0, 1.0);
    const std::int64_t in_range = total_ - overflow_;
    if (in_range <= 0)
        return 0.0;
    const auto target = static_cast<std::int64_t>(
        std::ceil(p * static_cast<double>(in_range)));
    std::int64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen >= target)
            return bucket_width_ * static_cast<double>(i + 1);
    }
    return bucket_width_ * static_cast<double>(counts_.size());
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
    overflow_ = 0;
}

}  // namespace faascache

#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace faascache {

double
percentileSorted(const std::vector<double>& sorted, double p)
{
    assert(!sorted.empty());
    p = std::clamp(p, 0.0, 1.0);
    if (sorted.size() == 1)
        return sorted.front();
    const double pos = p * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary
summarize(std::vector<double> values)
{
    Summary s;
    if (values.empty())
        return s;
    std::sort(values.begin(), values.end());
    s.count = values.size();
    s.min = values.front();
    s.max = values.back();
    double sum = 0.0;
    for (double v : values)
        sum += v;
    s.mean = sum / static_cast<double>(values.size());
    double sq = 0.0;
    for (double v : values)
        sq += (v - s.mean) * (v - s.mean);
    s.stddev = values.size() > 1
        ? std::sqrt(sq / static_cast<double>(values.size() - 1)) : 0.0;
    s.p50 = percentileSorted(values, 0.50);
    s.p90 = percentileSorted(values, 0.90);
    s.p99 = percentileSorted(values, 0.99);
    return s;
}

ExponentialSmoother::ExponentialSmoother(double alpha) : alpha_(alpha)
{
    assert(alpha > 0.0 && alpha <= 1.0);
}

double
ExponentialSmoother::update(double sample)
{
    if (!initialized_) {
        value_ = sample;
        initialized_ = true;
    } else {
        value_ = alpha_ * sample + (1.0 - alpha_) * value_;
    }
    return value_;
}

}  // namespace faascache

#include "util/thread_pool.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace faascache {

ThreadPool::ThreadPool(std::size_t threads)
    : state_(std::make_shared<State>())
{
    if (threads == 0)
        threads = defaultConcurrency();
    state_->alive_workers = threads;
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([state = state_]() { workerLoop(state); });
}

ThreadPool::~ThreadPool()
{
    const ShutdownReport report = shutdown(drain_timeout_);
    if (!report.drained) {
        std::fprintf(
            stderr,
            "ThreadPool: drain timed out after %lld ms: %zu worker(s) "
            "still busy (wedged or deadlocked task?) were detached, %zu "
            "queued task(s) abandoned\n",
            static_cast<long long>(drain_timeout_.value_or(
                std::chrono::milliseconds(0)).count()),
            report.unjoined_workers, report.abandoned_tasks);
    }
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(state_->mutex);
        if (state_->shutting_down)
            throw std::runtime_error(
                "ThreadPool: submit() after shutdown");
        state_->tasks.push_back(std::move(task));
    }
    state_->work_cv.notify_one();
}

ThreadPool::ShutdownReport
ThreadPool::shutdown(std::optional<std::chrono::milliseconds> timeout)
{
    if (shutdown_report_)
        return *shutdown_report_;

    {
        std::lock_guard<std::mutex> lock(state_->mutex);
        state_->shutting_down = true;
    }
    state_->work_cv.notify_all();

    ShutdownReport report;
    bool detach = false;
    if (timeout) {
        std::unique_lock<std::mutex> lock(state_->mutex);
        const bool drained = state_->drained_cv.wait_for(
            lock, *timeout,
            [this]() { return state_->alive_workers == 0; });
        if (!drained) {
            report.drained = false;
            report.unjoined_workers = state_->alive_workers;
            report.abandoned_tasks = state_->tasks.size();
            // Abandoning the queue breaks the pending futures
            // (broken_promise) so waiters unblock instead of hanging
            // on work that will never run.
            state_->tasks.clear();
            detach = true;
        }
    }
    for (std::thread& worker : workers_) {
        if (detach)
            worker.detach();
        else
            worker.join();
    }
    workers_.clear();
    shutdown_report_ = report;
    return report;
}

void
ThreadPool::workerLoop(const std::shared_ptr<State>& state)
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(state->mutex);
            state->work_cv.wait(lock, [&state]() {
                return state->shutting_down || !state->tasks.empty();
            });
            if (state->tasks.empty())
                break;  // shutting down and drained
            task = std::move(state->tasks.front());
            state->tasks.pop_front();
        }
        task();
    }
    {
        std::lock_guard<std::mutex> lock(state->mutex);
        --state->alive_workers;
    }
    state->drained_cv.notify_all();
}

std::size_t
ThreadPool::defaultConcurrency()
{
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace faascache
